//! # dod — fast and exact distance-based outlier detection in metric spaces
//!
//! A from-scratch Rust reproduction of *"Fast and Exact Outlier Detection
//! in Metric Spaces: A Proximity Graph-based Approach"* (Amagata, Onizuka
//! & Hara, SIGMOD 2021; full version arXiv:2110.08959).
//!
//! Given a set `P` of objects in any metric space, a radius `r` and a
//! count threshold `k`, an object is a **distance-based outlier** iff
//! fewer than `k` objects lie within distance `r` of it. This crate finds
//! *exactly* those objects, fast, by:
//!
//! 1. building **MRPG** — a proximity graph purpose-built for outlier
//!    detection — once, offline ([`graph::mrpg::build`]);
//! 2. answering any `(r, k)` query with graph-bounded counting plus exact
//!    verification ([`core::GraphDod`]).
//!
//! ```
//! use dod::prelude::*;
//!
//! // 2-d points: three dense blobs plus two isolated points.
//! let mut rows: Vec<Vec<f32>> = Vec::new();
//! for i in 0..300 {
//!     let c = (i % 3) as f32 * 10.0;
//!     let o = (i as f32 * 0.618).fract() - 0.5;
//!     rows.push(vec![c + o, (i as f32 * 0.382).fract() - 0.5]);
//! }
//! rows.push(vec![500.0, 500.0]);
//! rows.push(vec![-400.0, 300.0]);
//! let data = VectorSet::from_rows(&rows, L2);
//!
//! // Offline: build the MRPG once.
//! let (graph, _timing) = dod::graph::mrpg::build(&data, &MrpgParams::new(8));
//!
//! // Online: any (r, k) query.
//! let report = GraphDod::new(&graph).detect(&data, &DodParams::new(2.0, 5));
//! assert_eq!(report.outliers, vec![300, 301]);
//! ```
//!
//! ## Crate map
//!
//! * [`metrics`] — the [`metrics::Dataset`] abstraction plus L1/L2/L4,
//!   angular and edit distances (paper Table 1).
//! * [`datasets`] — synthetic generators mirroring the paper's seven
//!   evaluation datasets, plus radius calibration.
//! * [`vptree`] — VP-tree index (baseline + verification engine).
//! * [`graph`] — proximity graphs: KGraph (NNDescent), NSW, and MRPG with
//!   its full §5 pipeline (NNDescent+, Connect-SubGraphs, Remove-Detours,
//!   Remove-Links).
//! * [`core`] — the DOD algorithms: Algorithm 1 plus the nested-loop,
//!   SNIF, DOLPHIN and VP-tree baselines.
//! * [`stream`] — sliding-window streaming detection: ingest points one at
//!   a time, maintain neighbor counts incrementally, answer "current
//!   outliers" exactly after every slide.
//!
//! ## Streaming
//!
//! ```
//! use dod::prelude::*;
//!
//! // Flag points with < 2 neighbors within 1.5 among the 32 most recent.
//! let params = StreamParams::count(1.5, 2, 32);
//! let mut det = StreamDetector::new(VectorSpace::new(L2, 1), params);
//! for i in 0..32 {
//!     det.insert(vec![(i % 4) as f32]);
//! }
//! det.insert(vec![500.0]);
//! assert_eq!(det.outliers(), vec![32]);
//! ```
//!
//! The `dod-bench` crate (workspace-internal) regenerates every table and
//! figure of the paper's evaluation; see `EXPERIMENTS.md`.

pub use dod_core as core;
pub use dod_datasets as datasets;
pub use dod_graph as graph;
pub use dod_metrics as metrics;
pub use dod_stream as stream;
pub use dod_vptree as vptree;

/// One-stop imports for typical use.
pub mod prelude {
    pub use dod_core::{DodParams, DodResult, GraphDod, VerifyStrategy, VpTreeDod};
    pub use dod_graph::{GraphKind, MrpgParams, ProximityGraph};
    pub use dod_metrics::{Angular, Dataset, StringSet, VectorSet, L1, L2, L4};
    pub use dod_stream::{
        Backend, GraphParams, SlideReport, StreamDetector, StreamParams, StringSpace, VectorSpace,
        WindowSpec,
    };
}
