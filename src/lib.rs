//! # dod — fast and exact distance-based outlier detection in metric spaces
//!
//! A from-scratch Rust reproduction of *"Fast and Exact Outlier Detection
//! in Metric Spaces: A Proximity Graph-based Approach"* (Amagata, Onizuka
//! & Hara, SIGMOD 2021; full version arXiv:2110.08959).
//!
//! Given a set `P` of objects in any metric space, a radius `r` and a
//! count threshold `k`, an object is a **distance-based outlier** iff
//! fewer than `k` objects lie within distance `r` of it. This crate finds
//! *exactly* those objects, fast.
//!
//! ## The front door: [`Engine`](core::Engine)
//!
//! The paper's operational model — build an index once offline, answer
//! any `(r, k)` query online — is one owned value: an `Engine` holds the
//! dataset, the index ([`IndexSpec`](core::IndexSpec) picks MRPG, NSW,
//! KGraph, a VP-tree, or no index at all), and per-session query state.
//! Invalid input surfaces as [`DodError`](core::DodError) instead of
//! panicking.
//!
//! ```
//! use dod::prelude::*;
//!
//! // 2-d points: three dense blobs plus two isolated points.
//! let mut rows: Vec<Vec<f32>> = Vec::new();
//! for i in 0..300 {
//!     let c = (i % 3) as f32 * 10.0;
//!     let o = (i as f32 * 0.618).fract() - 0.5;
//!     rows.push(vec![c + o, (i as f32 * 0.382).fract() - 0.5]);
//! }
//! rows.push(vec![500.0, 500.0]);
//! rows.push(vec![-400.0, 300.0]);
//! let data = VectorSet::from_rows(&rows, L2);
//!
//! // Offline: build the engine (MRPG index) once.
//! let engine = Engine::builder(data)
//!     .index(IndexSpec::Mrpg(MrpgParams::new(8)))
//!     .build()?;
//!
//! // Online: any (r, k) query, through one validated type.
//! let report = engine.query(Query::new(2.0, 5)?)?;
//! assert_eq!(report.outliers, vec![300, 301]);
//! # Ok::<(), DodError>(())
//! ```
//!
//! ## Serving from `Arc<Engine>`
//!
//! An `Engine` is `Send + Sync` and immutable after build, so a service
//! shares one behind an [`std::sync::Arc`] across request handlers; its
//! traversal buffers and verification engine are pooled internally, so
//! concurrent queries do not re-allocate:
//!
//! ```
//! use dod::prelude::*;
//! use std::sync::Arc;
//!
//! # let rows: Vec<Vec<f32>> = (0..200).map(|i| vec![(i % 10) as f32, (i / 10) as f32]).collect();
//! # let data = VectorSet::from_rows(&rows, L2);
//! let engine = Arc::new(
//!     Engine::builder(data)
//!         .index(IndexSpec::Mrpg(MrpgParams::new(8)))
//!         .threads(2)
//!         .build()?,
//! );
//! let handlers: Vec<_> = (0..4)
//!     .map(|i| {
//!         let engine = Arc::clone(&engine);
//!         std::thread::spawn(move || {
//!             // Each "request" runs its own (r, k) query.
//!             let q = Query::new(1.5, 2 + i)?;
//!             engine.query(q).map(|rep| rep.outliers.len())
//!         })
//!     })
//!     .collect();
//! for h in handlers {
//!     h.join().expect("handler panicked")?;
//! }
//! # Ok::<(), DodError>(())
//! ```
//!
//! `Engine::save`/`Engine::load` persist the index and parameters, so a
//! restarted service skips the offline build (see
//! `examples/persist_index.rs`).
//!
//! ## Crate map
//!
//! * [`metrics`] — the [`metrics::Dataset`] abstraction plus L1/L2/L4,
//!   angular and edit distances (paper Table 1).
//! * [`datasets`] — synthetic generators mirroring the paper's seven
//!   evaluation datasets, plus radius calibration.
//! * [`vptree`] — VP-tree index (baseline + verification engine).
//! * [`graph`] — proximity graphs: KGraph (NNDescent), NSW, and MRPG with
//!   its full §5 pipeline (NNDescent+, Connect-SubGraphs, Remove-Detours,
//!   Remove-Links).
//! * [`core`] — [`core::Engine`] plus the DOD algorithms behind it:
//!   Algorithm 1 and the nested-loop, SNIF, DOLPHIN and VP-tree
//!   baselines, all exact and all pinned to the same ground truth.
//! * [`stream`] — sliding-window streaming detection: ingest points one at
//!   a time, maintain neighbor counts incrementally, answer "current
//!   outliers" exactly after every slide.
//! * [`shard`] — the streaming engine partitioned across cores:
//!   pivot-based metric sharding with ghost replication (still exact),
//!   parallel slides, and bounded-queue async ingestion
//!   ([`IngestHandle`](shard::IngestHandle) feeding one pump thread per
//!   shard).
//! * [`wire`] — the shared std-only JSON wire format (parser +
//!   serializer) spoken by the server, the bench artifacts and their
//!   comparison tooling.
//! * [`server`] — the std-only HTTP/1.1 serving layer:
//!   [`DodServer`](server::DodServer) exposes `Engine::query_many`,
//!   sharded ingest/report sessions, `/healthz` and Prometheus
//!   `/metrics` over TCP with a fixed worker pool, keep-alive and
//!   graceful shutdown.
//!
//! ## Streaming
//!
//! The streaming side speaks the same vocabulary: construction takes the
//! same [`Query`](core::Query) (and fails with the same
//! [`DodError`](core::DodError)), and
//! [`StreamDetector::report`](stream::StreamDetector::report) answers in
//! the same [`OutlierReport`](core::OutlierReport) shape as
//! `Engine::query`, so batch and stream results compare directly.
//!
//! ```
//! use dod::prelude::*;
//!
//! // Flag points with < 2 neighbors within 1.5 among the 32 most recent.
//! let mut det = StreamDetector::open(
//!     VectorSpace::new(L2, 1),
//!     Query::new(1.5, 2)?,
//!     WindowSpec::Count(32),
//!     Backend::Exhaustive,
//! )?;
//! for i in 0..32 {
//!     det.insert(vec![(i % 4) as f32]);
//! }
//! det.insert(vec![500.0]);
//! assert_eq!(det.outliers(), vec![32]);
//! # Ok::<(), DodError>(())
//! ```
//!
//! When one window outgrows one core, the same stream runs **sharded**:
//! the window splits across per-shard detectors by nearest pivot, points
//! near a boundary are replicated as ghosts so every answer stays exact,
//! and an [`IngestPipeline`](shard::IngestPipeline) moves each shard onto
//! its own pump thread behind a bounded queue:
//!
//! ```
//! use dod::prelude::*;
//!
//! let det = ShardedStreamDetector::open(
//!     VectorSpace::new(L2, 1),
//!     Query::new(1.5, 2)?,
//!     WindowSpec::Count(32),
//!     Backend::Exhaustive,
//!     ShardSpec::new(4),
//! )?;
//! let pipeline = det.into_pipeline(64); // bounded queue of 64
//! let producer = pipeline.handle();     // cloneable, backpressured
//! for i in 0..32 {
//!     producer.insert(vec![(i % 4) as f32])?;
//! }
//! producer.insert(vec![500.0])?;
//! // Snapshot-consistent: reflects every insert enqueued above.
//! assert_eq!(pipeline.outliers()?, vec![32]);
//! # Ok::<(), DodError>(())
//! ```
//!
//! ## Serving over HTTP
//!
//! [`server`] turns all of the above into a network service — std-only,
//! no framework: `POST /v1/query` answers batches through
//! [`Engine::query_many`](core::Engine::query_many), `POST /v1/ingest` /
//! `GET /v1/report` run a sharded sliding-window session, and
//! `GET /metrics` exposes the engine's query counters and latency
//! histogram plus per-shard-pair ghost rates in Prometheus text format:
//!
//! ```
//! use dod::prelude::*;
//!
//! # let rows: Vec<Vec<f32>> = (0..200).map(|i| vec![(i % 10) as f32, (i / 10) as f32]).collect();
//! # let data = VectorSet::from_rows(&rows, L2);
//! let engine = Engine::builder(data)
//!     .index(IndexSpec::Mrpg(MrpgParams::new(8)))
//!     .build()?;
//! let handle = DodServer::builder()
//!     .engine(engine)
//!     .bind("127.0.0.1:0")? // ephemeral port; production binds e.g. 0.0.0.0:8080
//!     .start();
//! // curl -d '{"queries":[{"r":1.5,"k":3}]}' http://<addr>/v1/query
//! let addr = handle.addr();
//! assert_ne!(addr.port(), 0);
//! handle.shutdown(); // graceful: in-flight requests finish
//! # Ok::<(), DodError>(())
//! ```
//!
//! The `dod-bench` crate (workspace-internal) regenerates every table and
//! figure of the paper's evaluation; see `EXPERIMENTS.md`.

pub use dod_core as core;
pub use dod_datasets as datasets;
pub use dod_graph as graph;
pub use dod_metrics as metrics;
pub use dod_server as server;
pub use dod_shard as shard;
pub use dod_stream as stream;
pub use dod_vptree as vptree;
pub use dod_wal as wal;
pub use dod_wire as wire;

/// One-stop imports for typical use.
pub mod prelude {
    pub use dod_core::{
        DodError, DodParams, Engine, EngineBuilder, EngineMetrics, IndexSpec, OutlierReport, Query,
        VerifyStrategy,
    };
    pub use dod_datasets::{AnyDataset, AnyEngine, Family};
    pub use dod_graph::{GraphKind, MrpgParams, ProximityGraph};
    pub use dod_metrics::{Angular, Dataset, StringSet, VectorSet, L1, L2, L4};
    pub use dod_server::{AnyStreamDetector, DodServer, QueryEngine, ServerHandle};
    pub use dod_shard::{
        DurabilityPolicy, DurableSession, IngestHandle, IngestPipeline, RecoveryStats, ShardSpec,
        ShardedStreamDetector, SyncPolicy,
    };
    pub use dod_stream::{
        Backend, GraphParams, SlideReport, StreamDetector, StreamParams, StringSpace, VectorSpace,
        WindowSpec,
    };
}
