//! Durable continuous monitoring: the sharded monitor with a write-ahead
//! log under it. The session is killed mid-stream without any shutdown
//! courtesy, reopened from disk, and the recovered report is shown (and
//! asserted) identical to a twin that never crashed.
//!
//! Run with:
//! ```text
//! cargo run --release --example durable_monitor
//! ```
//!
//! Three lives of one session over the same directory:
//!
//! 1. a fresh session ingests half the stream, then "crashes" (dropped
//!    without [`DurableSession::close`] — exactly what a `SIGKILL` leaves
//!    behind: a log, no final snapshot);
//! 2. reopen replays the log, the report matches the pre-crash one, and
//!    the recovered session finishes the stream asynchronously through
//!    the ingest pipeline;
//! 3. a last reopen recovers from the pipeline's final snapshot alone —
//!    the fast path a clean shutdown buys.

use dod::datasets::StreamScenario;
use dod::prelude::*;
use std::path::PathBuf;

fn scratch_dir() -> PathBuf {
    std::env::temp_dir().join(format!("dod_durable_monitor_{}", std::process::id()))
}

fn main() -> Result<(), DodError> {
    let scenario = StreamScenario::new(4);
    let events = scenario.events(3000, 7);
    let half = events.len() / 2;
    let query = Query::new(3.0, 4)?;
    let dir = scratch_dir();
    let _ = std::fs::remove_dir_all(&dir);
    let open = || {
        DurableSession::open(
            VectorSpace::new(L2, 4),
            query,
            WindowSpec::Count(512),
            Backend::Exhaustive,
            ShardSpec::new(2).with_warmup(128),
            &dir,
            // Sync every 8 ops: each insert is logged before it returns,
            // flushed to the OS at worst 8 ops behind the disk.
            DurabilityPolicy {
                sync: SyncPolicy::EveryN(8),
                snapshot_ops: 1024,
            },
        )
    };

    // A never-crashing twin consuming the same stream is the oracle for
    // every assertion below.
    let mut twin = ShardedStreamDetector::open(
        VectorSpace::new(L2, 4),
        query,
        WindowSpec::Count(512),
        Backend::Exhaustive,
        ShardSpec::new(2).with_warmup(128),
    )?;

    // --- life 1: ingest half the stream, then crash ----------------------
    let (mut session, stats) = open()?;
    assert!(stats.is_fresh());
    println!("life 1: fresh session at {}", dir.display());
    for event in &events[..half] {
        session.insert(event.point.clone());
        twin.insert(event.point.clone());
    }
    let before_crash = session.report();
    println!(
        "  ingested {half} points, {} outliers in the window",
        before_crash.outliers.len()
    );
    drop(session); // no close(): the crash. The log is all that survives.
    println!("  session killed mid-stream (dropped without close)\n");

    // --- life 2: replay-on-open, then finish the stream async -----------
    let (mut session, stats) = open()?;
    println!(
        "life 2: recovered {} snapshot entries + {} replayed ops in {:.1}ms{}",
        stats.snapshot_entries,
        stats.replayed_ops,
        stats.replay_secs * 1e3,
        if stats.truncated_tail {
            " (torn tail truncated)"
        } else {
            ""
        }
    );
    let recovered = session.report();
    // Everything but the wall-clock timings must reproduce exactly (the
    // timings measure this run's hardware, not the window's state).
    let essence = |r: &OutlierReport| {
        (
            r.outliers.clone(),
            r.candidates,
            r.false_positives,
            r.decided_in_filter,
        )
    };
    assert_eq!(
        essence(&recovered),
        essence(&before_crash),
        "recovered report diverged from the pre-crash one"
    );
    assert_eq!(session.outliers(), twin.outliers());
    println!("  report identical to the moment before the crash");

    // The recovered session moves onto threads like any other: the WAL
    // rides on the router (append-before-ack), so the pipeline is as
    // crash-safe as the synchronous session was.
    let pipeline = session.into_pipeline(256);
    for chunk in events[half..].chunks(128) {
        pipeline.insert_many(chunk.iter().map(|e| e.point.clone()).collect())?;
    }
    for event in &events[half..] {
        twin.insert(event.point.clone());
    }
    let final_outliers = pipeline.outliers()?;
    assert_eq!(final_outliers, twin.outliers(), "async half diverged");
    println!(
        "  pipeline finished the stream: {} outliers after {} points",
        final_outliers.len(),
        events.len()
    );
    drop(pipeline); // clean stop: commits a final snapshot.

    // --- life 3: a clean shutdown leaves a snapshot-only recovery --------
    let (mut session, stats) = open()?;
    println!(
        "\nlife 3: clean-shutdown recovery = {} snapshot entries, {} ops to replay",
        stats.snapshot_entries, stats.replayed_ops
    );
    assert_eq!(session.outliers(), twin.outliers());
    println!("  report still identical to the never-crashed twin");

    session.close();
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
