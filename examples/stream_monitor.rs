//! Continuous monitoring: a sliding-window detector watching a drifting
//! sensor stream with outlier bursts and cluster churn.
//!
//! Run with:
//! ```text
//! cargo run --release --example stream_monitor
//! ```
//!
//! Feeds 3000 points of a drift/burst/churn scenario through the
//! graph-backed streaming engine, printing what the monitor sees at a
//! regular cadence, and periodically cross-checks the incremental answer
//! against a from-scratch recount (`audit`).

use dod::datasets::StreamScenario;
use dod::prelude::*;

fn main() -> Result<(), DodError> {
    // --- 1. The stream: drifting clusters, a burst every 400 events ------
    let scenario = StreamScenario::new(4);
    let events = scenario.events(3000, 7);

    // --- 2. The monitor: 512-point window, flag points with < 4 neighbors
    //        within r. r is chosen from the scenario's geometry: clusters
    //        have std 1.0, so 3.0 comfortably covers in-cluster spacing
    //        while tail points (≥ 80 away) stay far outside. The stream
    //        takes the same validated Query type the batch Engine does.
    let query = Query::new(3.0, 4)?;
    let mut monitor = StreamDetector::open(
        VectorSpace::new(L2, 4),
        query,
        WindowSpec::Count(512),
        Backend::Graph(GraphParams::default()),
    )?;

    println!(
        "monitoring a drift/burst/churn stream: window=512, r={}, k={}\n",
        query.r(),
        query.k()
    );
    let mut planted = 0usize;
    let mut flagged_planted = 0usize;
    for (i, event) in events.iter().enumerate() {
        let report = monitor.insert(event.point.clone());
        let outliers = monitor.outliers();
        if event.planted_outlier {
            planted += 1;
            if outliers.contains(&report.seq) {
                flagged_planted += 1;
            }
        }
        if (i + 1) % 500 == 0 {
            println!(
                "t={:>4}  window={:>3}  outliers={:>2}  tracked={:>3}  safe-promoted={:>4}{}",
                i + 1,
                report.window_len,
                outliers.len(),
                monitor.tracked(),
                monitor.stats().safe_promotions,
                if event.in_burst { "  [burst]" } else { "" },
            );
            // Cross-check: the incremental answer must equal a from-scratch
            // recount of the window.
            assert_eq!(outliers, monitor.audit(), "incremental answer drifted");
        }
    }

    // --- 3. Wrap-up --------------------------------------------------------
    let stats = monitor.stats();
    println!(
        "\nfed {} points ({} expired); {} planted outliers, {} flagged on arrival",
        stats.inserts, stats.expirations, planted, flagged_planted
    );
    println!(
        "engine: backend={}, repairs={} full + {} incremental, ~{} KiB state",
        monitor.backend_name(),
        stats.full_repairs,
        stats.incremental_repairs,
        monitor.size_bytes() / 1024
    );
    assert_eq!(monitor.outliers(), monitor.audit());
    println!("verified: final incremental answer equals the from-scratch recount");

    // The unified report compares the stream against a batch engine over
    // the same window snapshot — one result shape for both worlds.
    let report = monitor.report();
    let batch = Engine::builder(monitor.window_view())
        .index(IndexSpec::None)
        .build()?
        .query(query)?;
    assert_eq!(report.outliers, batch.outliers);
    println!(
        "cross-checked against a batch engine over the window: {} outliers either way",
        report.outliers.len()
    );
    Ok(())
}
