//! Index persistence: build the MRPG once, save it, reload in a "new
//! process", and serve queries — the deployment shape the paper's offline /
//! online split implies (Table 3 builds are hours at paper scale; you do
//! not want them on the query path).
//!
//! Run with:
//! ```text
//! cargo run --release --example persist_index
//! ```

use dod::core::nested_loop;
use dod::datasets::Family;
use dod::graph::serialize;
use dod::prelude::*;
use std::time::Instant;

fn main() {
    let gen = Family::Glove.generate(4000, 77);
    let data = &gen.data;
    let k = Family::Glove.default_k();
    let r = dod::datasets::calibrate_r(data, k, 0.006, 400, 5);

    // --- offline: build and persist -----------------------------------
    let mut params = MrpgParams::new(Family::Glove.graph_degree());
    params.threads = 2;
    let t = Instant::now();
    let (graph, _) = dod::graph::mrpg::build(data, &params);
    println!("built MRPG in {:.2} s", t.elapsed().as_secs_f64());

    let path = std::env::temp_dir().join("dod_quickstart.mrpg");
    let t = Instant::now();
    serialize::write_to(&graph, std::fs::File::create(&path).expect("create")).expect("serialize");
    let bytes = std::fs::metadata(&path).expect("stat").len();
    println!(
        "saved to {} ({:.2} MB) in {:.1} ms",
        path.display(),
        bytes as f64 / 1048576.0,
        t.elapsed().as_secs_f64() * 1e3
    );

    // --- "new process": load and query --------------------------------
    let t = Instant::now();
    let loaded =
        serialize::read_from(std::fs::File::open(&path).expect("open")).expect("deserialize");
    println!("loaded in {:.1} ms", t.elapsed().as_secs_f64() * 1e3);

    let report = GraphDod::new(&loaded)
        .with_verify(VerifyStrategy::Linear)
        .detect(data, &DodParams::new(r, k).with_threads(2));
    println!(
        "query (r={r:.3}, k={k}): {} outliers in {:.1} ms",
        report.outliers.len(),
        report.total_secs() * 1e3
    );

    // The loaded index answers identically to a fresh build and to brute
    // force.
    let fresh = GraphDod::new(&graph)
        .with_verify(VerifyStrategy::Linear)
        .detect(data, &DodParams::new(r, k));
    assert_eq!(report.outliers, fresh.outliers);
    let truth = nested_loop::detect(data, &DodParams::new(r, k), 0);
    assert_eq!(report.outliers, truth.outliers);
    println!("verified: loaded index = fresh index = brute force");

    let _ = std::fs::remove_file(&path);
}
