//! Index persistence: build the engine once, save it, reload in a "new
//! process", and serve queries — the deployment shape the paper's offline /
//! online split implies (Table 3 builds are hours at paper scale; you do
//! not want them on the query path).
//!
//! Run with:
//! ```text
//! cargo run --release --example persist_index
//! ```

use dod::core::nested_loop;
use dod::datasets::Family;
use dod::prelude::*;
use std::time::Instant;

fn main() -> Result<(), DodError> {
    let gen = Family::Glove.generate(4000, 77);
    let data = &gen.data;
    let k = Family::Glove.default_k();
    let r = dod::datasets::calibrate_r(data, k, 0.006, 400, 5);

    // --- offline: build and persist -----------------------------------
    let mut params = MrpgParams::new(Family::Glove.graph_degree());
    params.threads = 2;
    let engine = Engine::builder(data)
        .index(IndexSpec::Mrpg(params))
        .verify(VerifyStrategy::Linear)
        .threads(2)
        .build()?;
    println!("built MRPG engine in {:.2} s", engine.build_secs());

    let path = std::env::temp_dir().join("dod_quickstart.engine");
    let t = Instant::now();
    engine.save(std::fs::File::create(&path)?)?;
    let bytes = std::fs::metadata(&path)?.len();
    println!(
        "saved to {} ({:.2} MB) in {:.1} ms",
        path.display(),
        bytes as f64 / 1048576.0,
        t.elapsed().as_secs_f64() * 1e3
    );

    // --- "new process": load and query --------------------------------
    let loaded = Engine::load(data, std::fs::File::open(&path)?)?;
    println!(
        "loaded warm engine ({} index, verify={:?}) in {:.1} ms",
        loaded.index_name(),
        loaded.verify(),
        loaded.build_secs() * 1e3
    );

    let query = Query::new(r, k)?;
    let report = loaded.query(query)?;
    println!(
        "query (r={r:.3}, k={k}): {} outliers in {:.1} ms",
        report.outliers.len(),
        report.total_secs() * 1e3
    );

    // The loaded engine answers identically to the fresh build and to
    // brute force.
    let fresh = engine.query(query)?;
    assert_eq!(report.outliers, fresh.outliers);
    let truth = nested_loop::detect(data, &DodParams::new(r, k), 0);
    assert_eq!(report.outliers, truth.outliers);
    println!("verified: loaded engine = fresh engine = brute force");

    // A damaged file is a typed error, not a crash.
    let mut corrupt = std::fs::read(&path)?;
    corrupt.truncate(corrupt.len() / 2);
    match Engine::load(data, &corrupt[..]) {
        Err(DodError::Corrupt { offset, reason }) => {
            println!("corrupt file rejected cleanly: {reason} at byte {offset}")
        }
        Err(e) => panic!("expected a Corrupt error, got {e}"),
        Ok(_) => panic!("a truncated engine file was accepted"),
    }

    let _ = std::fs::remove_file(&path);
    Ok(())
}
