//! Embedding-space outlier detection under angular distance — the paper's
//! GloVe workload (§1: "word (sentence) embedding vectors usually exist in
//! angular distance spaces").
//!
//! Run with:
//! ```text
//! cargo run --release --example embedding_outliers
//! ```
//!
//! Generates GloVe-like embedding vectors (directional clusters plus a
//! tail of semantically isolated directions), compares all four proximity
//! graphs on the same query, and prints a miniature of the paper's
//! Table 5 / Table 7 (running time and false positives).

use dod::datasets::{calibrate_r, Family};
use dod::prelude::*;

fn main() -> Result<(), DodError> {
    let n = 4000;
    let gen = Family::Glove.generate(n, 21);
    let data = &gen.data;
    let k = Family::Glove.default_k();
    let r = calibrate_r(data, k, Family::Glove.target_outlier_ratio(), 300, 3);
    println!(
        "embeddings: {n} vectors, {}-d angular space, query (r = {r:.3}, k = {k})",
        Family::Glove.dim()
    );

    let query = Query::new(r, k)?;
    let degree = Family::Glove.graph_degree();

    // Build one engine per graph family the paper compares. The two MRPG
    // variants go through IndexSpec; NSW and KGraph reuse the prebuilt
    // graphs the graph crate exposes for the bench harness.
    let mut basic_params = MrpgParams::basic(degree);
    basic_params.threads = 2;
    let mut full_params = MrpgParams::new(degree);
    full_params.threads = 2;
    let engines = [
        Engine::builder(data)
            .prebuilt_graph(dod::graph::mrpg::build_nsw(data, degree, 1))
            .verify(VerifyStrategy::Linear)
            .threads(2)
            .build()?,
        Engine::builder(data)
            .prebuilt_graph(dod::graph::mrpg::build_kgraph(data, degree, 2, 1))
            .verify(VerifyStrategy::Linear)
            .threads(2)
            .build()?,
        Engine::builder(data)
            .index(IndexSpec::Mrpg(basic_params))
            .verify(VerifyStrategy::Linear)
            .threads(2)
            .build()?,
        Engine::builder(data)
            .index(IndexSpec::Mrpg(full_params))
            .verify(VerifyStrategy::Linear)
            .threads(2)
            .build()?,
    ];

    println!(
        "\n{:<12} {:>12} {:>12} {:>14} {:>10}",
        "graph", "time [ms]", "false pos", "in-filter out", "outliers"
    );
    let mut reference: Option<Vec<u32>> = None;
    for engine in &engines {
        let report = engine.query(query)?;
        println!(
            "{:<12} {:>12.1} {:>12} {:>14} {:>10}",
            engine.index_name(),
            report.total_secs() * 1e3,
            report.false_positives,
            report.decided_in_filter,
            report.outliers.len()
        );
        // Exactness: all four graphs give the same answer.
        match &reference {
            None => reference = Some(report.outliers),
            Some(r0) => assert_eq!(r0, &report.outliers, "{} differs", engine.index_name()),
        }
    }
    println!("\nall four graphs returned the identical exact outlier set");
    Ok(())
}
