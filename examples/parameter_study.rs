//! Parameter study: how the outlier set reacts to `r` and `k`.
//!
//! Run with:
//! ```text
//! cargo run --release --example parameter_study
//! ```
//!
//! The DOD definition is monotone — growing `r` removes outliers, growing
//! `k` adds them (both proved in this workspace's property tests). One MRPG
//! serves *every* query, which is the paper's core operational argument
//! against the online-index baselines: pick `(r, k)` interactively without
//! rebuilding anything.

use dod::datasets::Family;
use dod::prelude::*;

fn main() -> Result<(), DodError> {
    let n = 5000;
    let gen = Family::Hepmass.generate(n, 33);
    let data = &gen.data;
    let k0 = Family::Hepmass.default_k();
    let r0 = dod::datasets::calibrate_r(data, k0, 0.0065, 500, 7);
    println!("hepmass-like: n={n}, 27-d L1; calibrated defaults r={r0:.1}, k={k0}\n");

    // One engine, built once.
    let mut params = MrpgParams::new(Family::Hepmass.graph_degree());
    params.threads = 2;
    let engine = Engine::builder(data)
        .index(IndexSpec::Mrpg(params))
        .verify(VerifyStrategy::VpTree)
        .threads(2)
        .build()?;
    println!(
        "MRPG engine built once in {:.2} s — reused for every query below\n",
        engine.build_secs()
    );

    println!("vary r (k = {k0}):");
    println!(
        "{:>10} {:>10} {:>12} {:>12}",
        "r", "outliers", "ratio", "time [ms]"
    );
    let mut last = usize::MAX;
    for mult in [0.85, 0.95, 1.0, 1.05, 1.15] {
        let r = r0 * mult;
        let report = engine.query(Query::new(r, k0)?)?;
        println!(
            "{:>10.1} {:>10} {:>11.2}% {:>12.1}",
            r,
            report.outliers.len(),
            report.outliers.len() as f64 / n as f64 * 100.0,
            report.total_secs() * 1e3
        );
        assert!(
            report.outliers.len() <= last,
            "outliers must shrink as r grows"
        );
        last = report.outliers.len();
    }

    println!("\nvary k (r = {r0:.1}):");
    println!(
        "{:>10} {:>10} {:>12} {:>12}",
        "k", "outliers", "ratio", "time [ms]"
    );
    let mut last = 0usize;
    for k in [k0 / 2, k0 - 10, k0, k0 + 10, k0 * 2] {
        let report = engine.query(Query::new(r0, k)?)?;
        println!(
            "{:>10} {:>10} {:>11.2}% {:>12.1}",
            k,
            report.outliers.len(),
            report.outliers.len() as f64 / n as f64 * 100.0,
            report.total_secs() * 1e3
        );
        assert!(report.outliers.len() >= last, "outliers must grow with k");
        last = report.outliers.len();
    }
    println!("\n(monotonicity asserted on every step — the library's property tests prove it in general)");
    Ok(())
}
