//! Sharded continuous monitoring: the same drift/burst/churn stream as
//! `stream_monitor`, but partitioned across four per-shard windows with
//! asynchronous bounded-queue ingestion — the deployment shape for
//! streams one window/one core cannot keep up with.
//!
//! Run with:
//! ```text
//! cargo run --release --example sharded_monitor
//! ```
//!
//! The detector stays *exact* under partitioning: points near a shard
//! boundary are replicated as ghosts (counted, never reported), so the
//! merged answer equals the single-window answer — asserted here against
//! both a single `StreamDetector` twin and the from-scratch `audit`.

use dod::datasets::StreamScenario;
use dod::prelude::*;

fn main() -> Result<(), DodError> {
    // --- 1. The stream: drifting clusters, bursts, churn ----------------
    let scenario = StreamScenario::new(4);
    let events = scenario.events(3000, 7);
    let query = Query::new(3.0, 4)?;

    // --- 2. The sharded monitor: 512-point window over 4 shards ---------
    let monitor = ShardedStreamDetector::open(
        VectorSpace::new(L2, 4),
        query,
        WindowSpec::Count(512),
        Backend::Exhaustive,
        ShardSpec::new(4).with_warmup(128),
    )?;
    // A single-window twin consumes the same stream as the ground truth.
    let mut twin = StreamDetector::open(
        VectorSpace::new(L2, 4),
        query,
        WindowSpec::Count(512),
        Backend::Exhaustive,
    )?;

    println!(
        "sharded monitoring: window=512, shards=4, r={}, k={}\n",
        query.r(),
        query.k()
    );

    // --- 3. Go async: per-shard pumps behind a bounded queue ------------
    let pipeline = monitor.into_pipeline(256);
    let producer = pipeline.handle();
    for (i, event) in events.iter().enumerate() {
        // The producer enqueues (blocking if the pumps fall behind) …
        producer.insert(event.point.clone())?;
        twin.insert(event.point.clone());
        // … and the monitor answers at slide boundaries, each report
        // reflecting exactly the inserts enqueued before it.
        if (i + 1) % 500 == 0 {
            let outliers = pipeline.outliers()?;
            assert_eq!(outliers, twin.outliers(), "sharded answer diverged");
            println!(
                "t={:>4}  outliers={:>2}  ghosts so far={:>3}{}",
                i + 1,
                outliers.len(),
                pipeline.stats()?.ghost_inserts,
                if event.in_burst { "  [burst]" } else { "" },
            );
        }
    }

    // --- 4. Wrap-up: back to the synchronous detector --------------------
    let mut monitor = pipeline.finish()?;
    let stats = monitor.stats();
    println!(
        "\nfed {} points; {} ghost replicas kept shard boundaries exact",
        events.len(),
        stats.ghost_inserts
    );
    println!("shard occupancy (owned, ghosts): {:?}", monitor.occupancy());
    assert_eq!(monitor.outliers(), twin.outliers());
    assert_eq!(monitor.audit(), twin.outliers());
    println!("verified: merged sharded answer = single-window answer = recount");

    // The merged report is the same unified shape the batch Engine and
    // the single-window stream speak.
    let report = monitor.report();
    assert_eq!(report.outliers, twin.report().outliers);
    println!(
        "final window: {} residents, {} outliers",
        monitor.len(),
        report.outliers.len()
    );
    Ok(())
}
