//! Dirty-vocabulary detection under edit distance — the paper's Words
//! workload (§1 cites error-sentence detection; Table 1's Words dataset
//! uses edit distance, the canonical non-vector metric).
//!
//! Run with:
//! ```text
//! cargo run --release --example word_typos
//! ```
//!
//! Builds a vocabulary of word clusters (a root word and its close
//! variants), plants corrupted entries, and lets MRPG flag the entries no
//! cluster claims. Every algorithm here is exact, so the comparison with
//! the VP-tree baseline is about speed, not answers.

use dod::core::nested_loop;
use dod::prelude::*;
use std::time::Instant;

fn main() -> Result<(), DodError> {
    // --- 1. Vocabulary with planted junk ----------------------------------
    let gen = dod::datasets::Family::Words.generate(3000, 11);
    // Typed access: a mismatch would surface as DodError::FamilyMismatch.
    let data = gen.data.as_strings().map_err(DodError::from)?;
    println!("vocabulary: {} strings (edit distance)", data.len());

    // r = 3, k = 4: a legitimate entry has at least 4 variants within 3
    // edits; junk does not.
    let query = Query::new(3.0, 4)?;

    // --- 2. MRPG-based detection ------------------------------------------
    let mut mp = MrpgParams::new(15);
    mp.threads = 2;
    let engine = Engine::builder(data)
        .index(IndexSpec::Mrpg(mp))
        .verify(VerifyStrategy::VpTree) // paper's choice for Words
        .threads(2)
        .build()?;
    let report = engine.query(query)?;
    println!(
        "MRPG engine: {:.2} s build, {:.3} s detection, {} suspicious entries",
        engine.build_secs(),
        report.total_secs(),
        report.outliers.len()
    );

    // --- 3. VP-tree baseline (same answer, different speed) ---------------
    let vp = Engine::builder(data)
        .index(IndexSpec::VpTree)
        .threads(2)
        .build()?;
    let t = Instant::now();
    let vp_result = vp.query(query)?;
    println!(
        "VP-tree baseline: {:.2} s build, {:.3} s detection",
        vp.build_secs(),
        t.elapsed().as_secs_f64()
    );
    assert_eq!(report.outliers, vp_result.outliers, "both are exact");

    // --- 4. Show some flagged entries --------------------------------------
    println!("sample flagged entries:");
    for &o in report.outliers.iter().take(8) {
        println!("  {:?}", data.get_str(o as usize));
    }

    // Junk is planted at the tail of the id space by the generator; check
    // the detector found mostly tail entries.
    let truth = nested_loop::detect(data, &DodParams::new(3.0, 4).with_threads(2), 0);
    assert_eq!(report.outliers, truth.outliers);
    let tail_start = (data.len() as f64 * 0.97) as u32;
    let tail_hits = report.outliers.iter().filter(|&&o| o >= tail_start).count();
    println!(
        "{} of {} flagged entries come from the planted junk tail",
        tail_hits,
        report.outliers.len()
    );
    Ok(())
}
