//! Dirty-vocabulary detection under edit distance — the paper's Words
//! workload (§1 cites error-sentence detection; Table 1's Words dataset
//! uses edit distance, the canonical non-vector metric).
//!
//! Run with:
//! ```text
//! cargo run --release --example word_typos
//! ```
//!
//! Builds a vocabulary of word clusters (a root word and its close
//! variants), plants corrupted entries, and lets MRPG flag the entries no
//! cluster claims. Every algorithm here is exact, so the comparison with
//! the VP-tree baseline is about speed, not answers.

use dod::core::nested_loop;
use dod::prelude::*;
use std::time::Instant;

fn main() {
    // --- 1. Vocabulary with planted junk ----------------------------------
    let gen = dod::datasets::Family::Words.generate(3000, 11);
    let data = match &gen.data {
        dod::datasets::AnyDataset::Strings(s) => s,
        _ => unreachable!("words family generates strings"),
    };
    println!("vocabulary: {} strings (edit distance)", data.len());

    // r = 3, k = 4: a legitimate entry has at least 4 variants within 3
    // edits; junk does not.
    let params = DodParams::new(3.0, 4).with_threads(2);

    // --- 2. MRPG-based detection ------------------------------------------
    let mut mp = MrpgParams::new(15);
    mp.threads = 2;
    let t = Instant::now();
    let (graph, _) = dod::graph::mrpg::build(data, &mp);
    let build_secs = t.elapsed().as_secs_f64();
    let report = GraphDod::new(&graph)
        .with_verify(VerifyStrategy::VpTree) // paper's choice for Words
        .detect(data, &params);
    println!(
        "MRPG: {:.2} s build, {:.3} s detection, {} suspicious entries",
        build_secs,
        report.total_secs(),
        report.outliers.len()
    );

    // --- 3. VP-tree baseline (same answer, different speed) ---------------
    let vp = VpTreeDod::build(data, 0);
    let t = Instant::now();
    let vp_result = vp.detect(data, &params);
    println!(
        "VP-tree baseline: {:.2} s build, {:.3} s detection",
        vp.build_secs,
        t.elapsed().as_secs_f64()
    );
    assert_eq!(report.outliers, vp_result.outliers, "both are exact");

    // --- 4. Show some flagged entries --------------------------------------
    println!("sample flagged entries:");
    for &o in report.outliers.iter().take(8) {
        println!("  {:?}", data.get_str(o as usize));
    }

    // Junk is planted at the tail of the id space by the generator; check
    // the detector found mostly tail entries.
    let truth = nested_loop::detect(data, &params, 0);
    assert_eq!(report.outliers, truth.outliers);
    let tail_start = (data.len() as f64 * 0.97) as u32;
    let tail_hits = report.outliers.iter().filter(|&&o| o >= tail_start).count();
    println!(
        "{} of {} flagged entries come from the planted junk tail",
        tail_hits,
        report.outliers.len()
    );
}
