//! Noise removal for machine-learning pipelines — the paper's motivating
//! application (§1: "it is now a common practice for many applications to
//! remove noises as a pre-processing of training").
//!
//! Run with:
//! ```text
//! cargo run --release --example noise_removal
//! ```
//!
//! Generates a SIFT-like descriptor workload with a contaminated tail,
//! removes the `(r, k)` outliers found by MRPG, and shows the effect on a
//! simple training statistic (mean distance to the class centroid — the
//! quantity noisy labels inflate).

use dod::datasets::{calibrate_r, Family};
use dod::prelude::*;

fn main() -> Result<(), DodError> {
    // --- 1. A SIFT-like training set with planted noise -------------------
    let n = 4000;
    let gen = Family::Sift.generate(n, 42);
    let data = &gen.data;
    println!(
        "training set: {} SIFT-like descriptors ({}-d, {})",
        n,
        Family::Sift.dim(),
        Family::Sift.metric()
    );

    // --- 2. Calibrate (r, k) like the paper's Table 2 ---------------------
    let k = Family::Sift.default_k();
    let r = calibrate_r(data, k, Family::Sift.target_outlier_ratio(), 300, 7);
    println!("calibrated query: r = {r:.1}, k = {k}");

    // --- 3. Detect and remove outliers ------------------------------------
    let mut mrpg_params = MrpgParams::new(Family::Sift.graph_degree());
    mrpg_params.threads = 2;
    let engine = Engine::builder(data)
        .index(IndexSpec::Mrpg(mrpg_params))
        .verify(VerifyStrategy::Linear)
        .threads(2)
        .build()?;
    let report = engine.query(Query::new(r, k)?)?;
    println!(
        "MRPG engine: built in {:.2} s, detected {} outliers in {:.3} s \
         ({} decided without verification)",
        engine.build_secs(),
        report.outliers.len(),
        report.total_secs(),
        report.decided_in_filter,
    );

    // --- 4. Quantify the cleanup ------------------------------------------
    // Mean distance of each point to the mean of its 5 nearest kept
    // neighbors is a proxy for label noise pressure on a kNN classifier.
    let outlier_set: std::collections::HashSet<u32> = report.outliers.iter().copied().collect();
    let spread = |ids: &[usize]| -> f64 {
        let mut acc = 0.0;
        for &i in ids {
            let mut dists: Vec<f64> = ids
                .iter()
                .filter(|&&j| j != i)
                .take(64)
                .map(|&j| data.dist(i, j))
                .collect();
            dists.sort_by(f64::total_cmp);
            acc += dists.iter().take(5).sum::<f64>() / 5.0;
        }
        acc / ids.len() as f64
    };
    let before: Vec<usize> = (0..n).step_by(8).collect();
    let after: Vec<usize> = (0..n)
        .step_by(8)
        .filter(|&i| !outlier_set.contains(&(i as u32)))
        .collect();
    let s_before = spread(&before);
    let s_after = spread(&after);
    println!(
        "mean 5-NN spread (sampled): {s_before:.1} before cleanup, {s_after:.1} after \
         ({:.1}% tighter)",
        (1.0 - s_after / s_before) * 100.0
    );
    assert!(
        s_after <= s_before,
        "removing distance-based outliers must not loosen the training set"
    );
    Ok(())
}
