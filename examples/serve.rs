//! Serving the whole system over HTTP through the resource-oriented
//! `/v1` API: an empty `DodServer` is populated entirely over the wire —
//! two named engines (`PUT /v1/engines/{name}`) and a sharded
//! sliding-window session (`POST /v1/sessions`) — then queried, fed,
//! listed and scraped via `GET /metrics`.
//!
//! Run with:
//! ```text
//! cargo run --release --example serve
//! ```
//!
//! The example binds an ephemeral port and plays both client and
//! operator. Point `curl` at the printed address while it runs (it stays
//! up for a few seconds at the end), e.g.:
//! ```text
//! curl http://127.0.0.1:<port>/v1/engines
//! curl -d '{"queries":[{"r":60,"k":40}]}' http://127.0.0.1:<port>/v1/engines/sift-prod/query
//! curl http://127.0.0.1:<port>/metrics
//! ```
//!
//! Three environment variables repurpose the example as a long-lived
//! test server (`scripts/crash_smoke.sh` drives it this way):
//! `DOD_LISTEN` fixes the bind address (default `127.0.0.1:0`),
//! `DOD_DATA_DIR` enables durable sessions (the walkthrough session
//! becomes `"durable": true` and survives restarts over the same
//! directory), and `DOD_SERVE_SECS` stretches the stay-up window.

use dod::prelude::*;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// One HTTP/1.1 exchange (the example doubles as its own curl).
fn http(addr: std::net::SocketAddr, raw: String) -> std::io::Result<String> {
    let mut conn = TcpStream::connect(addr)?;
    conn.write_all(raw.as_bytes())?;
    let mut reader = BufReader::new(conn);
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        if line.trim_end().is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap_or(0);
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(String::from_utf8_lossy(&body).into_owned())
}

fn request(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<String> {
    http(
        addr,
        format!(
            "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn get(addr: std::net::SocketAddr, path: &str) -> std::io::Result<String> {
    request(addr, "GET", path, "")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. An empty server: every resource will arrive over the wire ---
    let listen = std::env::var("DOD_LISTEN").unwrap_or_else(|_| "127.0.0.1:0".into());
    let data_dir = std::env::var_os("DOD_DATA_DIR").map(std::path::PathBuf::from);
    let serve_secs: u64 = std::env::var("DOD_SERVE_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let mut builder = DodServer::builder()
        .workers(4)
        .max_engines(4)
        .max_sessions(4);
    if let Some(dir) = &data_dir {
        builder = builder.data_dir(dir);
    }
    let handle = builder.bind(&listen)?.start();
    let addr = handle.addr();
    println!("serving on http://{addr}\n");
    if let Some(dir) = &data_dir {
        println!(
            "durable sessions enabled under {} (recovered: {})\n",
            dir.display(),
            get(addr, "/v1/sessions")?
        );
    }

    // --- 2. Two named engines from dataset specs -------------------------
    let sift = r#"{"family":"sift","n":2000,"seed":42,"index":"mrpg:8"}"#;
    println!("PUT /v1/engines/sift-prod {sift}");
    println!(
        "  -> {}",
        request(addr, "PUT", "/v1/engines/sift-prod", sift)?
    );
    let glove = r#"{"family":"glove","n":1500,"seed":7,"index":"vptree"}"#;
    println!("PUT /v1/engines/glove-exp {glove}");
    println!(
        "  -> {}\n",
        request(addr, "PUT", "/v1/engines/glove-exp", glove)?
    );
    println!("GET /v1/engines\n  -> {}\n", get(addr, "/v1/engines")?);

    // --- 3. Batch queries against each, by name --------------------------
    // The radius is calibrated in-process from the same deterministic
    // spec the server built from — the wire engine is that exact twin.
    let r = Family::Sift.generate(2_000, 42).calibrate_default_r(300);
    let body = format!(
        "{{\"queries\":[{{\"r\":{r},\"k\":40}},{{\"r\":{},\"k\":40}}]}}",
        r * 2.0
    );
    println!("POST /v1/engines/sift-prod/query {}", truncate(&body, 80));
    println!(
        "  -> {}",
        truncate(
            &request(addr, "POST", "/v1/engines/sift-prod/query", &body)?,
            120
        )
    );
    let gbody = r#"{"queries":[{"r":0.9,"k":50}]}"#;
    println!("POST /v1/engines/glove-exp/query {gbody}");
    println!(
        "  -> {}\n",
        truncate(
            &request(addr, "POST", "/v1/engines/glove-exp/query", gbody)?,
            120
        )
    );

    // --- 4. A sharded stream session, opened over the wire ---------------
    // With a data directory the session is durable: every accepted ingest
    // batch is WAL-logged before the ack, and a restart over the same
    // directory recovers it (see `scripts/crash_smoke.sh`).
    let spec = format!(
        r#"{{"metric":"l2","dim":2,"r":3.0,"k":4,"window":{{"count":256}},"shards":2,"warmup":32{}}}"#,
        if data_dir.is_some() {
            r#","durable":true"#
        } else {
            ""
        }
    );
    println!("POST /v1/sessions {spec}");
    let created = request(addr, "POST", "/v1/sessions", &spec)?;
    println!("  -> {created}");
    // Recovered sessions keep their ids, so a restarted walkthrough gets
    // a fresh id — read it from the response rather than assuming "s1".
    let sid = created
        .split(r#""id":""#)
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .ok_or("session create did not return an id")?
        .to_string();

    let points = dod::datasets::StreamScenario::new(2).generate(400, 7);
    let rows: Vec<String> = points
        .iter()
        .map(|p| format!("[{},{}]", p[0], p[1]))
        .collect();
    let ingest = format!("{{\"points\":[{}]}}", rows.join(","));
    println!("POST /v1/sessions/{sid}/ingest ({} points)", points.len());
    println!(
        "  -> {}",
        request(addr, "POST", &format!("/v1/sessions/{sid}/ingest"), &ingest)?
    );
    println!("GET /v1/sessions/{sid}/report");
    println!(
        "  -> {}\n",
        truncate(&get(addr, &format!("/v1/sessions/{sid}/report"))?, 120)
    );

    // --- 5. The operator's view: /healthz and /metrics -------------------
    println!("GET /healthz\n  -> {}\n", get(addr, "/healthz")?);
    let metrics = get(addr, "/metrics")?;
    println!("GET /metrics (registry, per-engine and ghost-rate lines):");
    for line in metrics.lines().filter(|l| {
        !l.starts_with('#')
            && (l.starts_with("dod_engine_resident")
                || l.starts_with("dod_session_active")
                || l.starts_with("dod_engine_queries")
                || l.starts_with("dod_shard_ghost_rate")
                || l.starts_with("dod_wal_appended")
                || l.starts_with("dod_wal_fsyncs"))
    }) {
        println!("  {line}");
    }

    // --- 6. Evict one engine by name, then bow out -----------------------
    println!("\nDELETE /v1/engines/glove-exp");
    println!(
        "  -> {}",
        request(addr, "DELETE", "/v1/engines/glove-exp", "")?
    );

    println!("\nserver stays up for {serve_secs}s — try curl http://{addr}/v1/engines");
    std::thread::sleep(std::time::Duration::from_secs(serve_secs));
    handle.shutdown();
    println!("graceful shutdown complete");
    Ok(())
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n])
    }
}
