//! Serving the whole system over HTTP: one `DodServer` fronting a batch
//! engine (`POST /v1/query`) and a sharded sliding-window session
//! (`POST /v1/ingest` + `GET /v1/report`), scraped via `GET /metrics`.
//!
//! Run with:
//! ```text
//! cargo run --release --example serve
//! ```
//!
//! The example binds an ephemeral port, plays both a client and the
//! operator: it queries the engine over real TCP, streams points in,
//! reads the snapshot-consistent report, and prints a slice of the
//! Prometheus scrape. Point `curl` at the printed address while it runs
//! (it stays up for a few seconds at the end), e.g.:
//! ```text
//! curl -d '{"queries":[{"r":60,"k":40}]}' http://127.0.0.1:<port>/v1/query
//! curl http://127.0.0.1:<port>/metrics
//! ```

use dod::prelude::*;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// One HTTP/1.1 exchange (the example doubles as its own curl).
fn http(addr: std::net::SocketAddr, raw: String) -> std::io::Result<String> {
    let mut conn = TcpStream::connect(addr)?;
    conn.write_all(raw.as_bytes())?;
    let mut reader = BufReader::new(conn);
    let mut head = String::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        if line.trim_end().is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap_or(0);
        }
        head.push_str(&line);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(String::from_utf8_lossy(&body).into_owned())
}

fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> std::io::Result<String> {
    http(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn get(addr: std::net::SocketAddr, path: &str) -> std::io::Result<String> {
    http(
        addr,
        format!("GET {path} HTTP/1.1\r\nconnection: close\r\n\r\n"),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. The batch engine: a SIFT-like dataset behind an MRPG --------
    let gen = Family::Sift.generate(2_000, 42);
    let r = gen.calibrate_default_r(300);
    let engine: AnyEngine = gen
        .data
        .into_engine()
        .index(IndexSpec::Mrpg(MrpgParams::new(8)))
        .build()?;
    println!(
        "engine: {} objects behind {} ({} bytes of index)",
        engine.len(),
        engine.index_name(),
        engine.index_bytes()
    );

    // --- 2. The stream session: 2-d window sharded across 2 shards ------
    let stream = ShardedStreamDetector::open(
        VectorSpace::new(L2, 2),
        Query::new(3.0, 4)?,
        WindowSpec::Count(256),
        Backend::Exhaustive,
        ShardSpec::new(2).with_warmup(32),
    )?;

    // --- 3. One server over both, on an ephemeral port ------------------
    let handle = DodServer::builder()
        .engine(engine)
        .stream(stream)
        .workers(4)
        .bind("127.0.0.1:0")?
        .start();
    let addr = handle.addr();
    println!("serving on http://{addr}\n");

    // --- 4. Batch queries over the wire ----------------------------------
    let body = format!(
        "{{\"queries\":[{{\"r\":{r},\"k\":40}},{{\"r\":{},\"k\":40}}]}}",
        r * 2.0
    );
    println!("POST /v1/query {body}");
    println!("  -> {}\n", truncate(&post(addr, "/v1/query", &body)?, 120));

    // --- 5. Stream ingest + snapshot report ------------------------------
    let points = dod::datasets::StreamScenario::new(2).generate(400, 7);
    let rows: Vec<String> = points
        .iter()
        .map(|p| format!("[{},{}]", p[0], p[1]))
        .collect();
    let ingest = format!("{{\"points\":[{}]}}", rows.join(","));
    println!("POST /v1/ingest ({} points)", points.len());
    println!("  -> {}", post(addr, "/v1/ingest", &ingest)?);
    println!("GET /v1/report");
    println!("  -> {}\n", truncate(&get(addr, "/v1/report")?, 120));

    // --- 6. The operator's view: /healthz and /metrics -------------------
    println!("GET /healthz\n  -> {}\n", get(addr, "/healthz")?);
    let metrics = get(addr, "/metrics")?;
    println!("GET /metrics (engine + ghost-rate lines):");
    for line in metrics.lines().filter(|l| {
        !l.starts_with('#')
            && (l.starts_with("dod_engine_queries")
                || l.starts_with("dod_engine_query_latency_seconds_count")
                || l.starts_with("dod_shard_ghost_"))
    }) {
        println!("  {line}");
    }

    println!("\nserver stays up for 3s — try curl http://{addr}/metrics");
    std::thread::sleep(std::time::Duration::from_secs(3));
    handle.shutdown();
    println!("graceful shutdown complete");
    Ok(())
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n])
    }
}
