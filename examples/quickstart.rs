//! Quickstart: find distance-based outliers in a small 2-d point set.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Demonstrates the whole workflow through the `Engine` front door: build
//! the MRPG index once (offline), answer `(r, k)` outlier queries
//! (online), and cross-check the result against the brute-force nested
//! loop.

use dod::core::nested_loop;
use dod::prelude::*;

fn main() -> Result<(), DodError> {
    // --- 1. Data: three dense blobs + three isolated points --------------
    let mut rows: Vec<Vec<f32>> = Vec::new();
    for i in 0..600 {
        let cluster = (i % 3) as f32;
        // Low-discrepancy jitter keeps the example dependency-free.
        let jx = ((i as f32) * 0.754877).fract() - 0.5;
        let jy = ((i as f32) * 0.569840).fract() - 0.5;
        rows.push(vec![cluster * 10.0 + jx, cluster * 4.0 + jy]);
    }
    rows.push(vec![60.0, 60.0]);
    rows.push(vec![-45.0, 30.0]);
    rows.push(vec![15.0, -70.0]);
    let data = VectorSet::from_rows(&rows, L2);
    println!("dataset: {} points in 2-d (L2)", data.len());

    // --- 2. Offline: one engine owning data + MRPG index -----------------
    let engine = Engine::builder(data)
        .index(IndexSpec::Mrpg(MrpgParams::new(10)))
        .build()?;
    let graph = engine.graph().expect("MRPG engines are graph-backed");
    println!(
        "engine built in {:.1} ms ({} nodes, {} links, {} pivots, {:.1} KiB index)",
        engine.build_secs() * 1e3,
        graph.node_count(),
        graph.link_count(),
        graph.pivot_ids().len(),
        engine.index_bytes() as f64 / 1024.0,
    );

    // --- 3. Online: answer an (r, k) query --------------------------------
    let query = Query::new(2.0, 8)?;
    let report = engine.query(query)?;
    println!(
        "query (r = {}, k = {}): {} outliers, {} candidates after filtering, \
         {} false positives, filter {:.2} ms + verify {:.2} ms",
        query.r(),
        query.k(),
        report.outliers.len(),
        report.candidates,
        report.false_positives,
        report.filter_secs * 1e3,
        report.verify_secs * 1e3,
    );
    for &o in &report.outliers {
        let row = engine.data().row(o as usize);
        println!("  outlier #{o}: ({:.1}, {:.1})", row[0], row[1]);
    }

    // --- 4. Exactness check ------------------------------------------------
    let truth = nested_loop::detect(engine.data(), &DodParams::new(2.0, 8), 0);
    assert_eq!(
        report.outliers, truth.outliers,
        "graph-based result must equal the brute-force ground truth"
    );
    println!("verified: result identical to brute-force nested loop");

    // Bad input never panics — it comes back as a typed error.
    assert!(Query::new(f64::NAN, 8).is_err());
    Ok(())
}
