//! [`ShardedStreamDetector`] — the synchronous sharded front door.

use crate::health::HealthReport;
use crate::router::{Ingestion, Router, ShardOp};
use crate::shard::{Shard, ShardAnswer};
use crate::spec::ShardSpec;
use dod_core::parallel::par_for_each_mut;
use dod_core::{DodError, OutlierReport, Query};
use dod_stream::{Backend, Space, StreamParams, StreamStats, WindowSpec};

/// What one sharded insertion did to the global window.
#[derive(Debug, Clone)]
pub struct ShardSlideReport {
    /// Global seq assigned to the inserted point.
    pub seq: u64,
    /// Global seqs expired by this slide, oldest first.
    pub expired: Vec<u64>,
    /// Global window size after the slide.
    pub window_len: usize,
    /// Shard that owns the point, `None` while it sits in the warm-up
    /// buffer (it will be routed when pivots are fixed).
    pub owner: Option<usize>,
    /// Ghost replicas created for the point.
    pub ghosts: usize,
}

/// A sliding-window exact detector partitioned across `S` per-shard
/// windows, answering identically to a single
/// [`StreamDetector`](dod_stream::StreamDetector) over the same stream.
///
/// See the [crate docs](crate) for the partitioning scheme and the
/// exactness argument; see
/// [`into_pipeline`](ShardedStreamDetector::into_pipeline) for the
/// asynchronous ingestion path.
pub struct ShardedStreamDetector<S: Space + Clone> {
    router: Router<S>,
    shards: Vec<Shard<S>>,
    backend: Backend,
    /// Per-shard op buckets, reused across slides so the hot path
    /// allocates nothing.
    buckets: Vec<Vec<ShardOp<S::Point>>>,
}

impl<S: Space + Clone + 'static> ShardedStreamDetector<S> {
    /// Opens a sharded detector in the batch vocabulary — the same
    /// arguments as [`StreamDetector::open`](dod_stream::StreamDetector::open)
    /// plus the [`ShardSpec`].
    pub fn open(
        space: S,
        query: Query,
        window: WindowSpec,
        backend: Backend,
        spec: ShardSpec,
    ) -> Result<Self, DodError> {
        let params = StreamParams::from_query(query, window);
        params.validate()?;
        spec.validate()?;
        let router = Router::new(space.clone(), params, spec);
        let shard_params = StreamParams {
            r: params.r,
            k: params.k,
            window: router.shard_window(),
        };
        let shards = (0..spec.shards)
            .map(|_| Shard::new(space.clone(), shard_params, backend.clone()))
            .collect();
        let buckets = (0..spec.shards).map(|_| Vec::new()).collect();
        Ok(ShardedStreamDetector {
            router,
            shards,
            backend,
            buckets,
        })
    }

    /// Reconfigures every shard's sampled recall auditor: audit
    /// `audit_sample` residents every `sample_rate` local slides. A zero
    /// `sample_rate` is a typed [`DodError::InvalidSpec`] (disable with
    /// `audit_sample = 0` instead); no knob is silently clamped.
    pub fn set_audit_params(
        &mut self,
        sample_rate: u64,
        audit_sample: usize,
    ) -> Result<(), DodError> {
        for shard in &mut self.shards {
            shard.set_audit_params(sample_rate, audit_sample)?;
        }
        Ok(())
    }

    /// Ingests a point at the next unit-spaced tick (`0, 1, 2, …`).
    pub fn insert(&mut self, point: S::Point) -> ShardSlideReport {
        let t = self.next_tick();
        self.insert_at(point, t)
    }

    /// The timestamp [`insert`](Self::insert) would assign next — what a
    /// durable session logs for auto-ticked insertions so replay can use
    /// the explicit-timestamp path.
    pub(crate) fn next_tick(&self) -> f64 {
        self.router.next_tick()
    }

    /// Ingests a point at an explicit timestamp.
    ///
    /// # Panics
    /// Panics if `time` is NaN or behind the latest observed timestamp.
    pub fn insert_at(&mut self, point: S::Point, time: f64) -> ShardSlideReport {
        let Ingestion {
            seq,
            expired,
            window_len,
            ops,
            routed,
        } = self.router.ingest(point, time);
        self.apply_ops(ops);
        ShardSlideReport {
            seq,
            expired,
            window_len,
            owner: routed.map(|(o, _)| o),
            ghosts: routed.map_or(0, |(_, g)| g),
        }
    }

    /// Advances the clock without inserting, expiring due residents of a
    /// time-based window. Returns the expired global seqs.
    ///
    /// # Panics
    /// Panics if `time` regresses.
    pub fn advance_to(&mut self, time: f64) -> Vec<u64> {
        // Shards expire lazily: their clocks catch up at the next op or
        // report, which is when expiry becomes observable.
        self.router.advance(time)
    }

    /// Applies routed ops, fanning out over scoped threads when the spec
    /// asks for it and more than one shard has work this slide.
    fn apply_ops(&mut self, ops: Vec<(usize, ShardOp<S::Point>)>) {
        if ops.is_empty() {
            return;
        }
        let threads = self.router.spec().slide_threads.max(1);
        let mut per_shard = std::mem::take(&mut self.buckets);
        let mut busy = 0;
        for (s, op) in ops {
            if per_shard[s].is_empty() {
                busy += 1;
            }
            per_shard[s].push(op);
        }
        if threads == 1 || busy <= 1 {
            for (shard, bucket) in self.shards.iter_mut().zip(per_shard.iter_mut()) {
                for op in bucket.drain(..) {
                    shard.apply(op);
                }
            }
        } else {
            #[allow(clippy::type_complexity)]
            let mut work: Vec<(&mut Shard<S>, &mut Vec<ShardOp<S::Point>>)> =
                self.shards.iter_mut().zip(per_shard.iter_mut()).collect();
            par_for_each_mut(&mut work, threads, |_, pair| {
                for op in pair.1.drain(..) {
                    pair.0.apply(op);
                }
            });
        }
        self.buckets = per_shard;
    }

    /// Brings every shard to the current slide boundary and collects the
    /// per-shard answers. Callers check the warm-up path first — before
    /// the partition exists, the shards are empty.
    fn collect(&mut self) -> Vec<ShardAnswer> {
        let Some(now) = self.router.shard_now() else {
            return Vec::new();
        };
        let threads = self.router.spec().slide_threads.max(1);
        let mut answers: Vec<Option<ShardAnswer>> = Vec::new();
        if threads == 1 {
            for shard in &mut self.shards {
                shard.advance(now);
                answers.push(Some(shard.collect()));
            }
        } else {
            let mut work: Vec<(&mut Shard<S>, Option<ShardAnswer>)> =
                self.shards.iter_mut().map(|s| (s, None)).collect();
            par_for_each_mut(&mut work, threads, |_, pair| {
                pair.0.advance(now);
                pair.1 = Some(pair.0.collect());
            });
            answers = work.into_iter().map(|(_, a)| a).collect();
        }
        answers.into_iter().map(|a| a.expect("collected")).collect()
    }

    /// Global seqs of the current window's outliers, ascending — exactly
    /// the single-detector answer. While the warm-up prefix is still
    /// buffering, the answer comes from a brute-force count over the
    /// buffer (early queries never freeze the partition early).
    pub fn outliers(&mut self) -> Vec<u64> {
        if let Some(seqs) = self.router.warmup_outliers() {
            return seqs;
        }
        let mut out: Vec<u64> = self
            .collect()
            .into_iter()
            .flat_map(|a| a.outliers)
            .collect();
        out.sort_unstable();
        out
    }

    /// The current window's outliers as the unified batch-vocabulary
    /// [`OutlierReport`], merged across shards. Ids are global **window
    /// positions** (`0..len()`, oldest first), identical to
    /// [`StreamDetector::report`](dod_stream::StreamDetector::report)
    /// over the same stream; the filter/verify accounting is the sum of
    /// the per-shard accountings (zeros for a pre-partition warm-up
    /// answer, which is one brute-force count).
    pub fn report(&mut self) -> OutlierReport {
        let front = self.router.front_seq();
        if let Some(seqs) = self.router.warmup_outliers() {
            return OutlierReport::from_outliers(
                seqs.into_iter().map(|s| (s - front) as u32).collect(),
                0.0,
            );
        }
        let answers = self.collect();
        merge_answers(answers, front)
    }

    /// Recomputes the outlier set from scratch: every shard recounts its
    /// owned residents against its full local window through the batch
    /// verification engine. An independent code path from the
    /// incremental `outliers` (pre-partition, both reduce to the same
    /// brute-force count over the warm-up buffer).
    pub fn audit(&mut self) -> Vec<u64> {
        if let Some(seqs) = self.router.warmup_outliers() {
            return seqs;
        }
        if let Some(now) = self.router.shard_now() {
            for shard in &mut self.shards {
                shard.advance(now);
            }
        }
        let mut out: Vec<u64> = self.shards.iter().flat_map(|s| s.audit_owned()).collect();
        out.sort_unstable();
        out
    }

    /// Number of points currently in the global window.
    pub fn len(&self) -> usize {
        self.router.len()
    }

    /// `true` when the global window holds no points.
    pub fn is_empty(&self) -> bool {
        self.router.len() == 0
    }

    /// Live global seqs, ascending.
    pub fn window_seqs(&self) -> Vec<u64> {
        self.router.window_seqs()
    }

    /// Latest observed timestamp (−∞ before the first insertion).
    pub fn now(&self) -> f64 {
        self.router.now()
    }

    /// The query parameters (global window vocabulary).
    pub fn params(&self) -> &StreamParams {
        self.router.params()
    }

    /// The metric space points flow through (serving layers read its
    /// shape — e.g. the pinned vector dimension — to validate wire input
    /// before it reaches a shard thread).
    pub fn space(&self) -> &S {
        self.router.space()
    }

    /// The shard configuration.
    pub fn spec(&self) -> &ShardSpec {
        self.router.spec()
    }

    /// Whether pivots have been fixed (the warm-up prefix has been
    /// consumed and replayed through the partition).
    pub fn is_partitioned(&self) -> bool {
        self.router.is_partitioned()
    }

    /// Per-shard `(owned, ghost)` resident counts — the load-balance
    /// picture. All zeros while the warm-up prefix is buffering.
    pub fn occupancy(&self) -> Vec<(usize, usize)> {
        self.shards.iter().map(|s| s.occupancy()).collect()
    }

    /// Total ghost replicas routed so far (the replication overhead that
    /// buys exactness).
    pub fn ghost_routes(&self) -> u64 {
        self.router.ghost_routes()
    }

    /// Ghost replicas routed per `(owner, target)` shard pair
    /// (`matrix[o][t]`; the diagonal is always zero). A persistently hot
    /// pair is the signal that the partition split a neighborhood — the
    /// input a future re-pivoting policy (and the `/metrics` endpoint of
    /// `dod_server`) watches.
    pub fn ghost_pair_counts(&self) -> Vec<Vec<u64>> {
        self.router.ghost_pair_counts()
    }

    /// The ghost matrix together with each shard's lifetime owned-point
    /// count, one self-consistent snapshot — `pairs[o][t] / owned[o]` is
    /// the fraction of shard `o`'s points that replicated into `t` (the
    /// per-owner rate `dod_server` exports as `dod_shard_ghost_rate`).
    pub fn ghost_route_stats(&self) -> crate::GhostRouteStats {
        self.router.ghost_route_stats()
    }

    /// The topology's health document: every shard's occupancy, lifetime
    /// counters, and index-structure snapshot, plus the router's ghost
    /// accounting — the input to the balance gauges
    /// ([`HealthReport::owned_skew`] etc.) that `dod_server` exports.
    pub fn health(&self) -> HealthReport {
        HealthReport {
            shards: self.shards.iter().map(|s| s.health()).collect(),
            routes: self.router.ghost_route_stats(),
        }
    }

    /// Summed lifetime counters across shards. `inserts` counts owned +
    /// ghost insertions, so it exceeds the number of stream points by the
    /// replication overhead.
    pub fn stats(&self) -> StreamStats {
        let mut total = StreamStats::default();
        for s in &self.shards {
            total.absorb(&s.stats());
        }
        total
    }

    /// Approximate heap bytes across all shard state.
    pub fn size_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.size_bytes()).sum()
    }

    /// Oldest live global seq (the next seq to assign when the window is
    /// empty) — the base durable snapshots are keyed on.
    pub(crate) fn front_seq(&self) -> u64 {
        self.router.front_seq()
    }

    /// Restarts the global seq clock for durable-session recovery (see
    /// [`Router::set_seq_origin`]).
    pub(crate) fn set_seq_origin(&mut self, seq: u64) {
        self.router.set_seq_origin(seq);
    }

    pub(crate) fn into_parts(self) -> (Router<S>, Vec<Shard<S>>, Backend) {
        (self.router, self.shards, self.backend)
    }

    pub(crate) fn from_parts(router: Router<S>, shards: Vec<Shard<S>>, backend: Backend) -> Self {
        let buckets = (0..shards.len()).map(|_| Vec::new()).collect();
        ShardedStreamDetector {
            router,
            shards,
            backend,
            buckets,
        }
    }
}

/// Merges per-shard answers into one global [`OutlierReport`]: outlier
/// seqs become positions relative to the global window front, accounting
/// fields are summed.
pub(crate) fn merge_answers(answers: Vec<ShardAnswer>, front: u64) -> OutlierReport {
    let mut merged = OutlierReport::from_outliers(Vec::new(), 0.0);
    merged.verify_secs = 0.0;
    let mut outliers: Vec<u64> = Vec::new();
    for a in answers {
        outliers.extend(a.outliers);
        merged.candidates += a.report.candidates;
        merged.false_positives += a.report.false_positives;
        merged.decided_in_filter += a.report.decided_in_filter;
        merged.filter_secs += a.report.filter_secs;
        merged.verify_secs += a.report.verify_secs;
        merged.cost.absorb(&a.report.cost);
    }
    outliers.sort_unstable();
    merged.outliers = outliers.into_iter().map(|s| (s - front) as u32).collect();
    merged
}
