//! One shard: a `StreamDetector` window plus the local↔global bookkeeping
//! (which local seq is which global point, and which residents are
//! ghosts).

use crate::health::ShardHealth;
use crate::router::ShardOp;
use dod_core::{DodError, OutlierReport};
use dod_stream::{Backend, SlideReport, Space, StreamDetector, StreamParams, StreamStats};
use std::collections::VecDeque;

/// One shard's contribution to a merged report.
pub(crate) struct ShardAnswer {
    /// Global seqs of this shard's *owned* outliers, ascending.
    pub outliers: Vec<u64>,
    /// The shard's filter/verify accounting (summed into the merged
    /// report).
    pub report: OutlierReport,
}

pub(crate) struct Shard<S: Space> {
    det: StreamDetector<S>,
    /// `(global seq, is_ghost)` per live local seq, oldest first;
    /// `meta[0]` describes local seq `meta_front`.
    meta: VecDeque<(u64, bool)>,
    meta_front: u64,
}

impl<S: Space + 'static> Shard<S> {
    pub fn new(space: S, params: StreamParams, backend: Backend) -> Self {
        Shard {
            det: StreamDetector::try_with_backend(space, params, backend)
                .expect("sharded params were validated at open"),
            meta: VecDeque::new(),
            meta_front: 0,
        }
    }

    /// Reconfigures this shard's sampled recall auditor (see
    /// [`StreamDetector::set_audit_params`]).
    pub fn set_audit_params(
        &mut self,
        sample_rate: u64,
        audit_sample: usize,
    ) -> Result<(), DodError> {
        self.det.set_audit_params(sample_rate, audit_sample)
    }

    /// Applies one routed op.
    pub fn apply(&mut self, op: ShardOp<S::Point>) {
        let (rep, global, ghost) = match op {
            ShardOp::Owned {
                global,
                point,
                time,
            } => (self.det.insert_at(point, time), global, false),
            ShardOp::Ghost {
                global,
                point,
                time,
            } => (self.det.insert_ghost_at(point, time), global, true),
        };
        self.note_slide(&rep);
        debug_assert_eq!(rep.seq, self.meta_front + self.meta.len() as u64);
        self.meta.push_back((global, ghost));
    }

    /// Drops meta entries for the local seqs a slide expired.
    fn note_slide(&mut self, rep: &SlideReport) {
        self.note_expired(&rep.expired);
    }

    fn note_expired(&mut self, expired: &[u64]) {
        for &e in expired {
            debug_assert_eq!(e, self.meta_front);
            self.meta.pop_front();
            self.meta_front += 1;
        }
    }

    /// Advances the shard clock (expiring due residents) so a following
    /// report describes the global slide boundary `now`.
    pub fn advance(&mut self, now: f64) {
        let expired = self.det.advance_to(now);
        self.note_expired(&expired);
    }

    /// The shard's owned outliers at its current clock, as global seqs,
    /// plus the accounting of how they were decided.
    pub fn collect(&mut self) -> ShardAnswer {
        let report = self.det.report();
        let outliers = if report.outliers.is_empty() {
            Vec::new()
        } else {
            let view = self.det.window_view();
            report
                .outliers
                .iter()
                .map(|&pos| {
                    let local = view.seq_at(pos as usize);
                    let (global, ghost) = self.meta[(local - self.meta_front) as usize];
                    debug_assert!(!ghost, "ghosts carry no neighbor state");
                    global
                })
                .collect()
        };
        ShardAnswer { outliers, report }
    }

    /// From-scratch recount of this shard's *owned* residents (the
    /// independent cross-check; ghosts are skipped because their local
    /// neighborhood is not their global one).
    pub fn audit_owned(&self) -> Vec<u64> {
        self.det
            .audit()
            .into_iter()
            .filter_map(|local| {
                let (global, ghost) = self.meta[(local - self.meta_front) as usize];
                (!ghost).then_some(global)
            })
            .collect()
    }

    /// `(owned, ghost)` resident counts.
    pub fn occupancy(&self) -> (usize, usize) {
        let ghosts = self.meta.iter().filter(|&&(_, g)| g).count();
        (self.meta.len() - ghosts, ghosts)
    }

    pub fn stats(&self) -> StreamStats {
        self.det.stats()
    }

    /// The shard's health snapshot: occupancy, lifetime counters, and
    /// the discovery index's structure document.
    pub fn health(&self) -> ShardHealth {
        let (owned, ghosts) = self.occupancy();
        ShardHealth {
            owned,
            ghosts,
            stats: self.det.stats(),
            index: self.det.index_health(),
        }
    }

    pub fn size_bytes(&self) -> usize {
        self.det.size_bytes() + self.meta.len() * std::mem::size_of::<(u64, bool)>()
    }
}
