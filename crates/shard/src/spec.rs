//! [`ShardSpec`] — how the window is split and how slides are driven.

use dod_core::DodError;

/// Configuration of a [`ShardedStreamDetector`](crate::ShardedStreamDetector).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Number of per-shard windows (`S ≥ 1`). `1` degenerates to a plain
    /// `StreamDetector` behind the sharded API.
    pub shards: usize,
    /// Length of the warm-up prefix pivots are sampled from. Arrivals are
    /// buffered until this many points have been seen, then replayed
    /// through the chosen partition; queries during warm-up are answered
    /// by brute force over the buffer. Exactness never depends on this —
    /// only load balance.
    pub warmup: usize,
    /// Worker threads the *synchronous* detector fans per-shard slide
    /// work out over (via `dod_core::parallel`). `1` applies shard ops
    /// inline. The asynchronous [`IngestPipeline`](crate::IngestPipeline)
    /// ignores this: there, each shard already owns a pump thread.
    pub slide_threads: usize,
    /// Pivots sampled per shard (≥ 1). Routing is per *pivot cell*;
    /// several cells map onto each shard. More pivots than shards keeps
    /// the ghost band tight — a point's distance to its own pivot stays
    /// at cluster scale even when the data has many more clusters than
    /// there are shards — at the cost of a few more routing distances
    /// per insert.
    pub pivots_per_shard: usize,
}

impl ShardSpec {
    /// A spec for `shards` shards: warm-up of `max(64, 16·shards)`
    /// points, 8 pivots per shard, inline (single-threaded) synchronous
    /// slides.
    pub fn new(shards: usize) -> Self {
        ShardSpec {
            shards,
            warmup: (16 * shards).max(64),
            slide_threads: 1,
            pivots_per_shard: 8,
        }
    }

    /// Overrides the warm-up prefix length (builder style).
    pub fn with_warmup(mut self, warmup: usize) -> Self {
        self.warmup = warmup;
        self
    }

    /// Overrides the synchronous slide fan-out (builder style).
    pub fn with_slide_threads(mut self, threads: usize) -> Self {
        self.slide_threads = threads;
        self
    }

    /// Overrides the pivot oversampling factor (builder style).
    pub fn with_pivots_per_shard(mut self, pivots: usize) -> Self {
        self.pivots_per_shard = pivots;
        self
    }

    /// Total pivot cells the partition will carve.
    pub fn pivot_count(&self) -> usize {
        self.shards * self.pivots_per_shard
    }

    /// Validates the spec, surfacing nonsense as
    /// [`DodError::InvalidShardSpec`].
    pub fn validate(&self) -> Result<(), DodError> {
        if self.shards == 0 {
            return Err(DodError::InvalidShardSpec {
                reason: "need at least one shard".into(),
            });
        }
        if self.shards > 4096 {
            return Err(DodError::InvalidShardSpec {
                reason: format!("{} shards is beyond any plausible core count", self.shards),
            });
        }
        if self.warmup == 0 {
            return Err(DodError::InvalidShardSpec {
                reason: "warm-up prefix must hold at least one point".into(),
            });
        }
        if self.pivots_per_shard == 0 {
            return Err(DodError::InvalidShardSpec {
                reason: "need at least one pivot per shard".into(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_scale_with_shards() {
        let s = ShardSpec::new(8);
        assert_eq!(s.shards, 8);
        assert_eq!(s.warmup, 128);
        assert_eq!(s.slide_threads, 1);
        assert_eq!(s.pivots_per_shard, 8);
        assert_eq!(s.pivot_count(), 64);
        assert!(s.validate().is_ok());
        assert_eq!(ShardSpec::new(1).warmup, 64);
    }

    #[test]
    fn builders_override() {
        let s = ShardSpec::new(2)
            .with_warmup(10)
            .with_slide_threads(4)
            .with_pivots_per_shard(2);
        assert_eq!((s.warmup, s.slide_threads, s.pivot_count()), (10, 4, 4));
        assert!(s.validate().is_ok());
    }

    #[test]
    fn invalid_specs_are_typed_errors() {
        for bad in [
            ShardSpec::new(0),
            ShardSpec::new(5000),
            ShardSpec::new(2).with_warmup(0),
            ShardSpec::new(2).with_pivots_per_shard(0),
        ] {
            assert!(
                matches!(bad.validate(), Err(DodError::InvalidShardSpec { .. })),
                "{bad:?} accepted"
            );
        }
    }
}
