//! Durable sessions: a [`ShardedStreamDetector`] whose accepted
//! operations are written through a [`SessionWal`] before they are
//! acknowledged, and which [`DurableSession::open`] rebuilds from disk to
//! the exact pre-crash state.
//!
//! # Why replay is exact
//!
//! A recovered detector does **not** restore pivots or the cell→shard
//! assignment — it re-runs warm-up over the replayed window and will, in
//! general, choose a different partition. That is deliberate: the crate's
//! exactness argument (see the [crate docs](crate)) holds for *any* fixed
//! partition, so the outlier set over the replayed window is identical no
//! matter how points land on shards. What replay must preserve exactly is
//! the *inputs* the report is a function of: the window's points, their
//! timestamps, their global seqs (hence [`Router::set_seq_origin`] —
//! reports are keyed by seq-derived positions), and the clock. All four
//! travel through the log and the snapshot.
//!
//! # The shadow window
//!
//! Snapshots need the live window's raw points, but after routing those
//! live inside the shards (possibly on other threads). Rather than
//! barrier-collecting them, the durable state maintains a *shadow*: a
//! `(time, point)` deque updated from the same
//! [`Ingestion`](crate::router::Ingestion) records that drive the global
//! occupancy, so it is always byte-equal to the window without touching a
//! shard. Snapshots are therefore synchronous, local, and taken at batch
//! boundaries — which are slide boundaries, hence window-consistent cuts.
//!
//! # Failure policy
//!
//! WAL I/O failure (disk full, permission lost) is **fail-open**: the
//! session keeps serving from memory, appends stop, and
//! `dod_wal_io_errors` counts the degradation for scrapers to alarm on.
//! Refusing ingest would turn a disk hiccup into an outage for a feature
//! whose entire purpose is surviving restarts.

use crate::detector::ShardedStreamDetector;
use crate::spec::ShardSpec;
use dod_core::profile::{enter_opt, Phase, ThreadProfile};
use dod_core::{DodError, OutlierReport, Query};
use dod_stream::{Backend, Space, WindowSpec};
use dod_wal::{Recovered, SessionWal, SnapshotState, SyncPolicy, WalOp, WalPoint, WalTelemetry};
use std::collections::VecDeque;
use std::path::Path;
use std::sync::Arc;

/// How a durable session trades throughput for crash safety.
#[derive(Debug, Clone, Copy)]
pub struct DurabilityPolicy {
    /// When appended frames are forced to disk.
    pub sync: SyncPolicy,
    /// Take a window snapshot (and truncate the log) after this many
    /// logged operations. Smaller = faster recovery, more snapshot I/O.
    pub snapshot_ops: u64,
}

impl Default for DurabilityPolicy {
    fn default() -> Self {
        DurabilityPolicy {
            sync: SyncPolicy::EveryN(32),
            snapshot_ops: 4096,
        }
    }
}

impl DurabilityPolicy {
    /// A policy with the given sync behavior and the default snapshot
    /// cadence.
    pub fn with_sync(sync: SyncPolicy) -> Self {
        DurabilityPolicy {
            sync,
            ..Default::default()
        }
    }
}

/// The reply of an explicit commit barrier
/// ([`crate::IngestPipeline::commit`]): what "everything enqueued before
/// the barrier" now means on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitAck {
    /// The pipeline has no durability configured — nothing to persist,
    /// the barrier only proves the router processed the preceding ops.
    Volatile,
    /// Every operation enqueued before the barrier is appended to the
    /// WAL and synced per the session's [`SyncPolicy`] (under
    /// [`SyncPolicy::Always`], on stable storage).
    Durable,
    /// The WAL failed earlier (disk full, permission lost): the session
    /// still serves from memory, but nothing is being logged anymore.
    Degraded,
}

/// What [`DurableSession::open`] found and replayed.
#[derive(Debug, Clone, Default)]
pub struct RecoveryStats {
    /// Window entries restored from the snapshot.
    pub snapshot_entries: usize,
    /// Post-snapshot operations replayed from the log.
    pub replayed_ops: usize,
    /// Wall time of the replay (building the detector back up).
    pub replay_secs: f64,
    /// Whether a torn log tail was truncated.
    pub truncated_tail: bool,
}

impl RecoveryStats {
    /// `true` when nothing was on disk — a fresh session.
    pub fn is_fresh(&self) -> bool {
        self.snapshot_entries == 0 && self.replayed_ops == 0 && !self.truncated_tail
    }
}

/// The durable bookkeeping that rides next to a detector (on the caller's
/// thread for the synchronous session, on the router thread for a
/// pipeline): the WAL, the un-committed op batch, and the shadow window.
pub(crate) struct DurableState<P: WalPoint> {
    wal: SessionWal<P>,
    policy: DurabilityPolicy,
    /// Ops accepted since the last commit, in order.
    pending: Vec<WalOp<P>>,
    /// `(time, raw point)` mirror of the global window, oldest first.
    shadow: VecDeque<(f64, P)>,
    ops_since_snapshot: u64,
    /// Set on the first WAL I/O failure: the session keeps serving, the
    /// log stops growing (fail-open).
    failed: bool,
    /// The hosting thread's phase publication point, when profiled.
    profile: Option<Arc<ThreadProfile>>,
}

/// The hook `router_loop` drives. A trait (object) so the pipeline stays
/// free of `WalPoint` bounds for spaces whose points are not loggable.
pub(crate) trait DurabilityHook<P>: Send {
    /// An insert was accepted at `time`; `expired` window entries fell
    /// off the front.
    fn note_insert(&mut self, time: f64, point: P, expired: usize);
    /// The clock advanced without inserting; `expired` entries fell off.
    fn note_advance(&mut self, time: f64, expired: usize);
    /// Persist everything accepted so far — the ack barrier. Runs before
    /// any effect of the pending ops becomes observable.
    fn commit(&mut self, now: f64, front_seq: u64);
    /// `false` once a WAL I/O failure latched the session into
    /// fail-open: it keeps serving, but appends have stopped.
    fn healthy(&self) -> bool;
    /// Final commit + snapshot + sync at shutdown.
    fn close(&mut self, now: f64, front_seq: u64);
    /// Gives the hook the hosting thread's profile so it can publish
    /// finer-grained phases (the snapshot's fsync-heavy install) inside
    /// the router's `WalAppend` scope. Default: unprofiled.
    fn attach_profile(&mut self, _profile: Arc<ThreadProfile>) {}
}

impl<P: WalPoint + Send> DurabilityHook<P> for DurableState<P> {
    fn note_insert(&mut self, time: f64, point: P, expired: usize) {
        for _ in 0..expired {
            self.shadow.pop_front();
        }
        self.shadow.push_back((time, point.clone()));
        self.pending.push(WalOp::Insert { time, point });
    }

    fn note_advance(&mut self, time: f64, expired: usize) {
        for _ in 0..expired {
            self.shadow.pop_front();
        }
        self.pending.push(WalOp::Advance { time });
    }

    fn commit(&mut self, now: f64, front_seq: u64) {
        if self.pending.is_empty() {
            return;
        }
        if self.failed {
            self.pending.clear();
            return;
        }
        let n = self.pending.len() as u64;
        match self.wal.append(&self.pending) {
            Ok(()) => {
                self.pending.clear();
                self.ops_since_snapshot += n;
            }
            Err(_) => {
                // io_errors was counted by the WAL; degrade, keep serving.
                self.pending.clear();
                self.failed = true;
                return;
            }
        }
        if self.ops_since_snapshot >= self.policy.snapshot_ops.max(1) {
            self.snapshot(now, front_seq);
        }
    }

    fn healthy(&self) -> bool {
        !self.failed
    }

    fn close(&mut self, now: f64, front_seq: u64) {
        self.commit(now, front_seq);
        if !self.failed {
            self.snapshot(now, front_seq);
        }
    }

    fn attach_profile(&mut self, profile: Arc<ThreadProfile>) {
        self.profile = Some(profile);
    }
}

impl<P: WalPoint> DurableState<P> {
    fn snapshot(&mut self, now: f64, front_seq: u64) {
        // Snapshot installs end in sync_all on the snapshot file, the
        // log, and the directory — the fsync-dominated slice of the
        // router's WalAppend scope.
        let _phase = enter_opt(&self.profile, Phase::Fsync);
        let snap = SnapshotState {
            ops_applied: self.wal.ops_appended(),
            base_seq: front_seq,
            now,
            entries: self.shadow.iter().cloned().collect(),
        };
        if self.wal.install_snapshot(&snap).is_err() {
            self.failed = true;
        } else {
            self.ops_since_snapshot = 0;
        }
    }

    pub(crate) fn telemetry(&self) -> Arc<WalTelemetry> {
        self.wal.telemetry()
    }
}

/// A [`ShardedStreamDetector`] with write-ahead durability: every
/// accepted operation is logged before its effects are acknowledged, and
/// [`open`](DurableSession::open) replays the log to rebuild the exact
/// pre-crash window. Use synchronously, or move onto threads with
/// [`into_pipeline`](DurableSession::into_pipeline) (the WAL rides on the
/// router thread).
pub struct DurableSession<S: Space + Clone + 'static>
where
    S::Point: WalPoint,
{
    det: ShardedStreamDetector<S>,
    state: DurableState<S::Point>,
}

impl<S: Space + Clone + 'static> DurableSession<S>
where
    S::Point: WalPoint + Send,
{
    /// Opens (or recovers) a durable session in `dir`: the detector is
    /// built fresh, the snapshot's window is replayed into it with its
    /// original seqs, surviving log operations are applied on top, and a
    /// fresh snapshot is installed so the next open starts from a clean
    /// cut no matter how this one found the directory.
    pub fn open(
        space: S,
        query: Query,
        window: WindowSpec,
        backend: Backend,
        spec: ShardSpec,
        dir: &Path,
        policy: DurabilityPolicy,
    ) -> Result<(Self, RecoveryStats), DodError> {
        let (wal, recovered): (SessionWal<S::Point>, Recovered<S::Point>) =
            SessionWal::open(dir, policy.sync)?;
        let telemetry = wal.telemetry();
        let t0 = std::time::Instant::now();
        let mut det = ShardedStreamDetector::open(space, query, window, backend, spec)?;
        let mut shadow: VecDeque<(f64, S::Point)> = VecDeque::new();
        let Recovered {
            snapshot,
            ops,
            truncated_at,
        } = recovered;
        let mut stats = RecoveryStats {
            snapshot_entries: snapshot.as_ref().map_or(0, |s| s.entries.len()),
            replayed_ops: ops.len(),
            truncated_tail: truncated_at.is_some(),
            ..Default::default()
        };
        if let Some(snap) = snapshot {
            det.set_seq_origin(snap.base_seq);
            for (time, point) in snap.entries {
                let rep = det.insert_at(point.clone(), time);
                for _ in 0..rep.expired.len() {
                    shadow.pop_front();
                }
                shadow.push_back((time, point));
            }
            if snap.now.is_finite() && snap.now > det.now() {
                let expired = det.advance_to(snap.now);
                for _ in 0..expired.len() {
                    shadow.pop_front();
                }
            }
        }
        for op in ops {
            match op {
                WalOp::Insert { time, point } => {
                    let rep = det.insert_at(point.clone(), time);
                    for _ in 0..rep.expired.len() {
                        shadow.pop_front();
                    }
                    shadow.push_back((time, point));
                }
                WalOp::Advance { time } => {
                    let expired = det.advance_to(time);
                    for _ in 0..expired.len() {
                        shadow.pop_front();
                    }
                }
            }
        }
        stats.replay_secs = t0.elapsed().as_secs_f64();
        telemetry.replay_nanos.add(t0.elapsed().as_nanos() as u64);

        let mut state = DurableState {
            wal,
            policy,
            pending: Vec::new(),
            shadow,
            ops_since_snapshot: 0,
            failed: false,
            profile: None,
        };
        // Normalize: whatever mix of snapshot + log survived, the next
        // open starts from one clean snapshot. Also makes open idempotent
        // (open → crash → open replays the same state).
        state.snapshot(det.now(), det.front_seq());
        Ok((DurableSession { det, state }, stats))
    }

    /// The session's WAL counters (shareable with `/metrics` scrapers).
    pub fn telemetry(&self) -> Arc<WalTelemetry> {
        self.state.telemetry()
    }

    /// The underlying detector, read-only. Mutation must go through the
    /// logged paths ([`insert_at`](Self::insert_at) etc.) or the log
    /// would diverge from the state it claims to reproduce.
    pub fn detector(&self) -> &ShardedStreamDetector<S> {
        &self.det
    }

    /// Reconfigures the sampled recall auditor on every shard (see
    /// [`ShardedStreamDetector::set_audit_params`]). Audit cadence is
    /// *not* logged: it shapes observability, not window state, so a
    /// recovered session re-applies it from its manifest, not the WAL.
    pub fn set_audit_params(
        &mut self,
        sample_rate: u64,
        audit_sample: usize,
    ) -> Result<(), dod_core::DodError> {
        self.det.set_audit_params(sample_rate, audit_sample)
    }

    /// Ingests at the next unit-spaced tick, logged and committed.
    pub fn insert(&mut self, point: S::Point) -> crate::ShardSlideReport {
        let t = self.det.next_tick();
        self.insert_at(point, t)
    }

    /// Ingests at an explicit timestamp, logged and committed before
    /// returning — after this returns, the operation survives a crash
    /// (modulo the sync policy's window).
    ///
    /// # Panics
    /// Panics if `time` regresses.
    pub fn insert_at(&mut self, point: S::Point, time: f64) -> crate::ShardSlideReport {
        let keep = point.clone();
        let rep = self.det.insert_at(point, time);
        self.state.note_insert(time, keep, rep.expired.len());
        self.state.commit(self.det.now(), self.det.front_seq());
        rep
    }

    /// Advances the clock without inserting, logged and committed.
    ///
    /// # Panics
    /// Panics if `time` regresses.
    pub fn advance_to(&mut self, time: f64) -> Vec<u64> {
        let expired = self.det.advance_to(time);
        self.state.note_advance(time, expired.len());
        self.state.commit(self.det.now(), self.det.front_seq());
        expired
    }

    /// The merged report (see [`ShardedStreamDetector::report`]).
    pub fn report(&mut self) -> OutlierReport {
        self.det.report()
    }

    /// Current outliers as global seqs, ascending.
    pub fn outliers(&mut self) -> Vec<u64> {
        self.det.outliers()
    }

    /// Commits pending state and a final snapshot, consuming the session.
    /// Dropping without `close` is crash-equivalent (the log still holds
    /// everything committed; recovery replays it).
    pub fn close(mut self) {
        let (now, front) = (self.det.now(), self.det.front_seq());
        self.state.close(now, front);
    }

    /// Moves the session onto threads: same topology as
    /// [`ShardedStreamDetector::into_pipeline`], with the WAL riding on
    /// the router thread — appends happen at batch boundaries, before
    /// the batch is handed to any pump, and a final commit + snapshot
    /// runs when the pipeline stops. Note that enqueueing alone is *not*
    /// durable: a producer that must promise persistence follows its
    /// inserts with [`IngestPipeline::commit`](crate::IngestPipeline::commit)
    /// and acknowledges only on the barrier's reply.
    pub fn into_pipeline(self, queue: usize) -> crate::IngestPipeline<S> {
        self.det
            .into_pipeline_durable(queue, Box::new(self.state), None)
    }

    /// [`into_pipeline`](Self::into_pipeline) with every thread
    /// publishing its phase into `profile` — the router's WAL work shows
    /// up as `wal_append` (with snapshot installs refined to `fsync`).
    pub fn into_pipeline_profiled(
        self,
        queue: usize,
        profile: crate::PipelineProfile,
    ) -> crate::IngestPipeline<S> {
        self.det
            .into_pipeline_durable(queue, Box::new(self.state), Some(profile))
    }
}
