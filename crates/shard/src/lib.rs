//! Exact **sharded** sliding-window outlier detection.
//!
//! One `dod_stream::StreamDetector` window is one core: every slide scans
//! (or graph-walks) one monolithic window, and one thread owns it. This
//! crate partitions the stream across `S` per-shard detectors — with the
//! partition chosen so the merged answer is *identical* to the single
//! window's, slide for slide — and layers a bounded-queue asynchronous
//! ingestion pipeline on top, so slides on different shards proceed in
//! parallel and producers are decoupled from queries.
//!
//! # Pivot partitioning with ghost replication — why it stays exact
//!
//! Pivots `c_1 … c_P` (several per shard, [`ShardSpec::pivots_per_shard`])
//! are sampled from a warm-up prefix of the stream by greedy
//! farthest-first traversal with outlier trimming
//! ([`dod_datasets::farthest_first`], the k-center heuristic that metric
//! partitioning schemes for low doubling dimension build on). Their
//! Voronoi cells are packed onto the `S` shards geometry-first: cells
//! within `3r` of each other are fused into atomic groups (they would
//! ghost each other's neighborhoods across any boundary), and each group
//! joins the shard of its nearest farthest-first seed under a load cap.
//! Every arriving point `p` is **owned** by the shard holding its nearest
//! pivot's cell, and additionally **ghosted** into every other shard
//! holding some pivot `c_j` with
//!
//! ```text
//! d(p, c_j) ≤ d(p, c_own(p)) + 2r ,
//! ```
//!
//! where `c_own(p)` is `p`'s nearest pivot. A ghost is a full window
//! resident of the foreign shard — discovery finds it, repairs scan it,
//! it expires on schedule — but it is never *reported* from there (it
//! carries no neighbor state of its own; see
//! [`dod_stream::StreamDetector::insert_ghost_at`]).
//!
//! **Claim.** Every shard holds *all* true `r`-neighbors of each point it
//! owns, so per-shard neighbor counts of owned points equal the global
//! window counts, and the union of per-shard outlier sets equals the
//! single-window outlier set.
//!
//! **Proof.** Let `q` be any window point with nearest pivot `c_b`
//! (so `q` is owned by the shard holding `c_b`'s cell), and let `p` with
//! nearest pivot `c_a` be any window point with `d(p, q) ≤ r`.
//! Nearest-pivot choice for `q` gives `d(q, c_b) ≤ d(q, c_a)`, so by the
//! triangle inequality
//!
//! ```text
//! d(p, c_b) ≤ d(p, q) + d(q, c_b)
//!           ≤ r + d(q, c_a)
//!           ≤ r + d(q, p) + d(p, c_a)
//!           ≤ d(p, c_a) + 2r ,
//! ```
//!
//! which is exactly the ghost condition for pivot `c_b`: `p` is present
//! in `q`'s shard (as owner-resident if that shard also holds `c_a`'s
//! cell, as ghost otherwise). Conversely no non-window point is ever
//! present, so counts cannot overshoot. ∎
//!
//! Neither the pivot *choice* nor the cell→shard *assignment* appears in
//! the argument — any fixed partition is exact; both only move load
//! around. That is why sampling pivots from a prefix is safe: the
//! warm-up buffer is replayed through the chosen partition, the
//! partition never changes afterwards, and queries arriving *before* the
//! prefix completes are answered by brute force over the buffer rather
//! than freezing pivots early. Oversampling pivots (several cells per
//! shard) keeps `d(p, c_own)` at cluster scale even when clusters far
//! outnumber shards, which is what keeps the `2r` ghost band — and with
//! it the replication overhead — tight.
//!
//! Expiry is kept globally consistent by driving every shard's window on
//! the *global* clock (for count windows, the global sequence number), so
//! owned points and their ghost replicas leave all shards on the same
//! slide.
//!
//! # The two front doors
//!
//! * [`ShardedStreamDetector`] — the synchronous core: same call shapes as
//!   `StreamDetector` (`insert`, `outliers`, `report`, `audit`), with
//!   per-shard slide work optionally fanned out over scoped threads
//!   ([`ShardSpec::slide_threads`]).
//! * [`IngestPipeline`] / [`IngestHandle`] — the asynchronous path:
//!   [`ShardedStreamDetector::into_pipeline`] moves each shard onto its
//!   own single-writer pump thread behind a bounded queue; producers
//!   `insert` through cloneable handles with backpressure, and
//!   [`IngestPipeline::report`] returns a snapshot-consistent answer at
//!   the current slide boundary. [`IngestPipeline::finish`] reassembles
//!   the synchronous detector.
//!
//! ```
//! use dod_core::Query;
//! use dod_shard::{ShardSpec, ShardedStreamDetector};
//! use dod_stream::{Backend, VectorSpace, WindowSpec};
//! use dod_metrics::L2;
//!
//! let mut det = ShardedStreamDetector::open(
//!     VectorSpace::new(L2, 1),
//!     Query::new(1.5, 2)?,
//!     WindowSpec::Count(64),
//!     Backend::Exhaustive,
//!     ShardSpec::new(4),
//! )?;
//! for i in 0..64 {
//!     det.insert(vec![(i % 8) as f32 * 0.5]);
//! }
//! det.insert(vec![100.0]); // far from everything
//! assert_eq!(det.outliers(), vec![64]);
//! assert_eq!(det.outliers(), det.audit());
//! # Ok::<(), dod_core::DodError>(())
//! ```

mod detector;
mod durable;
mod health;
mod ingest;
mod router;
mod shard;
mod spec;

pub use detector::{ShardSlideReport, ShardedStreamDetector};
pub use durable::{CommitAck, DurabilityPolicy, DurableSession, RecoveryStats};
pub use health::{HealthReport, ShardHealth};
pub use ingest::{IngestHandle, IngestPipeline, PipelineGauges, PipelineProfile};
pub use router::GhostRouteStats;
pub use spec::ShardSpec;
// Durable sessions are configured in the WAL's vocabulary; re-exported so
// callers need not depend on `dod_wal` directly.
pub use dod_wal::{SyncPolicy, WalPoint, WalTelemetry};
