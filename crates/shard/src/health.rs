//! Shard-balance health: the per-shard occupancy, timing, and index
//! structure document behind `GET /v1/debug/health` and the
//! `dod_shard_balance_*` metric family.
//!
//! The derived gauges are the early-warning signals a future
//! re-pivoting policy would act on: a drifting stream concentrates mass
//! in a few Voronoi cells, which shows up here as *owned-point skew*
//! (one shard holds far more of the window than the mean), *slide-time
//! skew* (one pump does far more than its share of the work), and a
//! rising *ghost rate* (the partition keeps splitting neighborhoods, so
//! exactness is being bought with replication).

use crate::router::GhostRouteStats;
use dod_stream::{IndexHealth, StreamStats};

/// One shard's health snapshot: who lives there, what the work cost,
/// and the structural state of its discovery index.
#[derive(Debug, Clone)]
pub struct ShardHealth {
    /// Residents this shard owns (reports them).
    pub owned: usize,
    /// Ghost replicas resident here (discovered against, never
    /// reported).
    pub ghosts: usize,
    /// The shard detector's lifetime counters.
    pub stats: StreamStats,
    /// The shard's index-structure document (recall audits, tombstones,
    /// degree histogram, maintenance counters).
    pub index: IndexHealth,
}

impl ShardHealth {
    /// Ghost fraction of this shard's residents; `0.0` when empty.
    pub fn ghost_rate(&self) -> f64 {
        let total = self.owned + self.ghosts;
        if total == 0 {
            0.0
        } else {
            self.ghosts as f64 / total as f64
        }
    }

    /// Wall time this shard has spent sliding (inserts + expiries), in
    /// nanoseconds — the load measure behind [`HealthReport::slide_skew`].
    pub fn slide_nanos(&self) -> u64 {
        self.stats.insert_nanos + self.stats.expiry_nanos
    }
}

/// The whole topology's health at one slide boundary: every shard's
/// [`ShardHealth`] plus the router's ghost-routing record, collected
/// under the same barrier so the numbers describe one consistent cut.
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Per-shard snapshots, indexed by shard.
    pub shards: Vec<ShardHealth>,
    /// Lifetime owned counts and the `(owner, target)` ghost matrix.
    pub routes: GhostRouteStats,
}

/// `max / mean` of a load distribution: `1.0` is perfect balance, `S`
/// (the shard count) is total collapse onto one shard. Defined as `1.0`
/// for an empty or all-zero distribution — nothing is imbalanced about
/// no load.
fn skew(values: impl Iterator<Item = f64>) -> f64 {
    let (mut max, mut sum, mut n) = (0.0f64, 0.0f64, 0u32);
    for v in values {
        max = max.max(v);
        sum += v;
        n += 1;
    }
    if n == 0 || sum <= 0.0 {
        1.0
    } else {
        max / (sum / f64::from(n))
    }
}

impl HealthReport {
    /// Summed lifetime counters across shards (the same aggregation as
    /// [`crate::ShardedStreamDetector::stats`]).
    pub fn stats(&self) -> StreamStats {
        let mut total = StreamStats::default();
        for s in &self.shards {
            total.absorb(&s.stats);
        }
        total
    }

    /// The absorbed index-structure document: counters summed, degree
    /// histograms merged, `exact` only if *every* shard's backend is.
    pub fn index(&self) -> IndexHealth {
        let mut total = IndexHealth::default();
        for s in &self.shards {
            total.absorb(&s.index);
        }
        total
    }

    /// Owned-resident skew (`max/mean`; `1.0` = balanced). Rises when
    /// stream drift concentrates the window onto few pivot cells.
    pub fn owned_skew(&self) -> f64 {
        skew(self.shards.iter().map(|s| s.owned as f64))
    }

    /// Slide-time skew over per-shard `insert_nanos + expiry_nanos` —
    /// the *work* imbalance, which can diverge from occupancy when one
    /// shard's residents are expensive (dense neighborhoods, many
    /// repairs).
    pub fn slide_skew(&self) -> f64 {
        skew(self.shards.iter().map(|s| s.slide_nanos() as f64))
    }

    /// Per-shard ghost fraction of residents, indexed by shard.
    pub fn ghost_rates(&self) -> Vec<f64> {
        self.shards.iter().map(ShardHealth::ghost_rate).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(owned: usize, ghosts: usize, slide_nanos: u64) -> ShardHealth {
        ShardHealth {
            owned,
            ghosts,
            stats: StreamStats {
                insert_nanos: slide_nanos / 2,
                expiry_nanos: slide_nanos - slide_nanos / 2,
                ..StreamStats::default()
            },
            index: IndexHealth::default(),
        }
    }

    #[test]
    fn skew_is_max_over_mean_and_one_when_unloaded() {
        let report = HealthReport {
            shards: vec![shard(30, 0, 300), shard(10, 0, 100), shard(20, 0, 200)],
            routes: GhostRouteStats::default(),
        };
        // mean owned = 20, max = 30.
        assert!((report.owned_skew() - 1.5).abs() < 1e-12);
        assert!((report.slide_skew() - 1.5).abs() < 1e-12);

        let empty = HealthReport {
            shards: vec![shard(0, 0, 0); 4],
            routes: GhostRouteStats::default(),
        };
        assert_eq!(empty.owned_skew(), 1.0);
        assert_eq!(empty.slide_skew(), 1.0);
        let none = HealthReport {
            shards: Vec::new(),
            routes: GhostRouteStats::default(),
        };
        assert_eq!(none.owned_skew(), 1.0);
    }

    #[test]
    fn ghost_rates_are_per_shard_fractions() {
        let report = HealthReport {
            shards: vec![shard(8, 2, 0), shard(0, 0, 0), shard(5, 5, 0)],
            routes: GhostRouteStats::default(),
        };
        assert_eq!(report.ghost_rates(), vec![0.2, 0.0, 0.5]);
    }

    #[test]
    fn aggregates_absorb_across_shards() {
        let mut a = shard(4, 1, 100);
        a.stats.inserts = 7;
        a.index.live = 4;
        a.index.tombstones = 2;
        let mut b = shard(6, 0, 50);
        b.stats.inserts = 3;
        b.index.live = 6;
        b.index.exact = false;
        let report = HealthReport {
            shards: vec![a, b],
            routes: GhostRouteStats::default(),
        };
        assert_eq!(report.stats().inserts, 10);
        let idx = report.index();
        assert_eq!((idx.live, idx.tombstones), (10, 2));
        assert!(!idx.exact, "one inexact shard makes the union inexact");
    }
}
