//! Asynchronous ingestion: a bounded-queue [`IngestHandle`] feeding a
//! single-writer pump thread per shard.
//!
//! Topology (all channels are bounded `std::sync::mpsc::sync_channel`s,
//! so a slow consumer backpressures producers instead of buffering
//! without limit):
//!
//! ```text
//! IngestHandle ─┐
//! IngestHandle ─┼─▶ router thread ──▶ pump 0 (owns Shard 0)
//! IngestPipeline┘      (routes)   ├─▶ pump 1 (owns Shard 1)
//!                                 └─▶ …
//! ```
//!
//! The router thread owns the routing core (pivot selection, warm-up
//! replay, the global occupancy record); each pump thread owns one shard
//! and is its only writer. Commands are processed strictly in arrival
//! order on every channel, which is what makes
//! [`IngestPipeline::report`] **snapshot-consistent**: the report command
//! reaches each pump *after* every insert enqueued before it, so the
//! merged answer describes exactly the slide boundary at which the
//! report was requested.

use crate::detector::{merge_answers, ShardedStreamDetector};
use crate::durable::{CommitAck, DurabilityHook};
use crate::health::{HealthReport, ShardHealth};
use crate::router::{GhostRouteStats, Router, ShardOp};
use crate::shard::{Shard, ShardAnswer};
use dod_core::profile::{enter_opt, Phase, Profiler, ThreadProfile};
use dod_core::{DodError, OutlierReport};
use dod_stream::{Backend, Space, StreamStats};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

enum RouterCmd<P> {
    /// Insert at the next unit-spaced tick.
    Insert(P),
    /// Insert a run of points at consecutive unit-spaced ticks — one
    /// queue handoff for the whole run (the high-throughput producer
    /// path).
    InsertMany(Vec<P>),
    /// Insert at an explicit timestamp.
    InsertAt(P, f64),
    /// Advance the clock without inserting.
    Advance(f64),
    /// Collect a snapshot-consistent merged report; replies with the
    /// global window front and the merged report.
    Report(Sender<(u64, OutlierReport)>),
    /// Collect summed per-shard lifetime counters.
    Stats(Sender<StreamStats>),
    /// Collect the router's routing telemetry (per-shard owned counts +
    /// per-shard-pair ghost-replication counters).
    GhostStats(Sender<GhostRouteStats>),
    /// Collect the full health document: per-shard occupancy, counters
    /// and index structure, plus the router's ghost accounting, all
    /// under one barrier.
    Health(Sender<HealthReport>),
    /// Commit barrier: replies once every op enqueued before it has
    /// passed through the durability hook's WAL commit (append + sync
    /// per policy). The ack-before-disk gap closes here — a durable
    /// producer that must promise persistence sends this after its
    /// inserts and acknowledges only on the reply.
    Commit(Sender<CommitAck>),
    /// Tear down: drain, stop pumps, return state to `finish`.
    Stop,
}

enum PumpCmd<P> {
    /// Apply a batch of ops in order. The router groups everything it
    /// drained in one scheduling round into one message per shard, so
    /// channel synchronization amortizes over the batch.
    Apply(Vec<ShardOp<P>>),
    /// Advance to the slide boundary and report; replies with the shard
    /// index and its answer.
    Collect(Option<f64>, Sender<(usize, ShardAnswer)>),
    Stats(Sender<StreamStats>),
    Health(Sender<(usize, ShardHealth)>),
}

fn closed() -> DodError {
    DodError::Io(io::Error::new(
        io::ErrorKind::BrokenPipe,
        "ingest pipeline is shut down (a worker panicked or finish() ran)",
    ))
}

/// Live telemetry of a pipeline's bounded command queue, shared (`Arc`)
/// between every handle, the router thread, and scrapers. Relaxed
/// atomics: monitoring signals, not synchronization edges.
#[derive(Debug, Default)]
pub struct PipelineGauges {
    queued: AtomicU64,
    route_nanos: AtomicU64,
}

impl PipelineGauges {
    /// Commands enqueued but not yet taken by the router thread (a
    /// producer blocked on the full channel counts too, so this can read
    /// queue-capacity + 1 under saturation).
    pub fn queue_depth(&self) -> u64 {
        self.queued.load(Ordering::Relaxed)
    }

    /// Cumulative wall time the router thread has spent routing points
    /// (pivot distances, ghost-replication decisions), in nanoseconds.
    pub fn route_nanos(&self) -> u64 {
        self.route_nanos.load(Ordering::Relaxed)
    }
}

/// Where a pipeline's threads publish their phases: the shared
/// [`Profiler`] the server's sampler scrapes, plus the label prefix
/// (typically the session id) that namespaces this pipeline's threads —
/// the router registers as `{prefix}/router`, shard pumps as
/// `{prefix}/pump-{idx}`. Registration is idempotent by name, so a
/// pipeline torn down and rebuilt (`finish` → `into_pipeline`) keeps
/// accumulating into the same counters.
#[derive(Clone)]
pub struct PipelineProfile {
    /// The registry the sampling thread scrapes.
    pub profiler: Arc<Profiler>,
    /// Label prefix for this pipeline's threads.
    pub prefix: String,
}

impl PipelineProfile {
    fn register(&self, role: &str) -> Arc<ThreadProfile> {
        self.profiler.register(&format!("{}/{role}", self.prefix))
    }
}

/// The one enqueue path: counts the command before the (possibly
/// blocking) send so a full queue is visible as nonzero depth, and
/// un-counts on failure so a dead pipeline settles back to its true
/// backlog.
fn send_counted<P>(
    tx: &SyncSender<RouterCmd<P>>,
    gauges: &PipelineGauges,
    cmd: RouterCmd<P>,
) -> Result<(), DodError> {
    gauges.queued.fetch_add(1, Ordering::Relaxed);
    tx.send(cmd).map_err(|_| {
        gauges.queued.fetch_sub(1, Ordering::Relaxed);
        closed()
    })
}

/// A cloneable, bounded-queue producer handle onto an
/// [`IngestPipeline`]. `insert` blocks when the queue is full — that is
/// the backpressure contract — and fails only when the pipeline is gone.
pub struct IngestHandle<P> {
    tx: SyncSender<RouterCmd<P>>,
    gauges: Arc<PipelineGauges>,
}

impl<P> Clone for IngestHandle<P> {
    fn clone(&self) -> Self {
        IngestHandle {
            tx: self.tx.clone(),
            gauges: Arc::clone(&self.gauges),
        }
    }
}

impl<P> IngestHandle<P> {
    /// Enqueues a point for the next unit-spaced tick.
    pub fn insert(&self, point: P) -> Result<(), DodError> {
        send_counted(&self.tx, &self.gauges, RouterCmd::Insert(point))
    }

    /// Enqueues a run of points for consecutive unit-spaced ticks with a
    /// single queue handoff — the path for producers whose throughput
    /// would otherwise be bounded by per-point queue synchronization.
    pub fn insert_many(&self, points: Vec<P>) -> Result<(), DodError> {
        send_counted(&self.tx, &self.gauges, RouterCmd::InsertMany(points))
    }

    /// Enqueues a point at an explicit timestamp. Timestamps must be
    /// non-decreasing *in queue order*: with several handles racing, the
    /// arrival order at the router is the order that counts.
    pub fn insert_at(&self, point: P, time: f64) -> Result<(), DodError> {
        send_counted(&self.tx, &self.gauges, RouterCmd::InsertAt(point, time))
    }

    /// Enqueues a clock advance (time-based windows).
    pub fn advance_to(&self, time: f64) -> Result<(), DodError> {
        send_counted(&self.tx, &self.gauges, RouterCmd::Advance(time))
    }

    /// Commit barrier: blocks until every op this handle (or any other
    /// producer) enqueued before the call is WAL-committed — see
    /// [`IngestPipeline::commit`].
    pub fn commit(&self) -> Result<CommitAck, DodError> {
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        send_counted(&self.tx, &self.gauges, RouterCmd::Commit(reply_tx))?;
        reply_rx.recv().map_err(|_| closed())
    }
}

/// The running asynchronous engine: a router thread plus one pump thread
/// per shard, all fed through bounded queues. Created by
/// [`ShardedStreamDetector::into_pipeline`]; dissolved back into the
/// synchronous detector by [`finish`](IngestPipeline::finish).
pub struct IngestPipeline<S: Space + Clone + 'static> {
    tx: SyncSender<RouterCmd<S::Point>>,
    gauges: Arc<PipelineGauges>,
    router_thread: Option<JoinHandle<Router<S>>>,
    pump_threads: Vec<JoinHandle<Shard<S>>>,
    backend: Backend,
}

impl<S: Space + Clone + 'static> ShardedStreamDetector<S> {
    /// Moves the detector onto threads: each shard gets a single-writer
    /// pump, routing gets its own thread, and the caller keeps a bounded
    /// queue of `queue` pending commands (clamped to ≥ 1).
    ///
    /// The detector may already hold window state — the threads simply
    /// continue from it.
    pub fn into_pipeline(self, queue: usize) -> IngestPipeline<S> {
        self.spawn_pipeline(queue, None, None)
    }

    /// [`into_pipeline`](Self::into_pipeline) with every thread
    /// publishing its current phase into `profile` for the sampling
    /// profiler to observe.
    pub fn into_pipeline_profiled(
        self,
        queue: usize,
        profile: PipelineProfile,
    ) -> IngestPipeline<S> {
        self.spawn_pipeline(queue, None, Some(profile))
    }

    /// The durable variant: the WAL hook rides on the router thread and
    /// commits each batch before it is handed to any pump.
    pub(crate) fn into_pipeline_durable(
        self,
        queue: usize,
        durable: Box<dyn DurabilityHook<S::Point>>,
        profile: Option<PipelineProfile>,
    ) -> IngestPipeline<S> {
        self.spawn_pipeline(queue, Some(durable), profile)
    }

    fn spawn_pipeline(
        self,
        queue: usize,
        durable: Option<Box<dyn DurabilityHook<S::Point>>>,
        profile: Option<PipelineProfile>,
    ) -> IngestPipeline<S> {
        let queue = queue.max(1);
        let (router, shards, backend) = self.into_parts();
        let (tx, rx) = sync_channel::<RouterCmd<S::Point>>(queue);
        let mut pump_txs = Vec::new();
        let mut pump_threads = Vec::new();
        for (idx, mut shard) in shards.into_iter().enumerate() {
            let (ptx, prx) = sync_channel::<PumpCmd<S::Point>>(queue);
            pump_txs.push(ptx);
            let pump_profile = profile.as_ref().map(|p| p.register(&format!("pump-{idx}")));
            pump_threads.push(std::thread::spawn(move || {
                pump_loop(idx, &mut shard, prx, &pump_profile);
                shard
            }));
        }
        let gauges = Arc::new(PipelineGauges::default());
        let router_gauges = Arc::clone(&gauges);
        let router_profile = profile.as_ref().map(|p| p.register("router"));
        let router_thread = std::thread::spawn(move || {
            let mut router = router;
            let mut durable = durable;
            if let (Some(d), Some(p)) = (durable.as_mut(), router_profile.as_ref()) {
                d.attach_profile(Arc::clone(p));
            }
            router_loop(
                &mut router,
                rx,
                pump_txs,
                &router_gauges,
                &mut durable,
                &router_profile,
            );
            router
        });
        IngestPipeline {
            tx,
            gauges,
            router_thread: Some(router_thread),
            pump_threads,
            backend,
        }
    }
}

impl<S: Space + Clone + 'static> IngestPipeline<S> {
    /// A cloneable producer handle sharing this pipeline's bounded queue.
    pub fn handle(&self) -> IngestHandle<S::Point> {
        IngestHandle {
            tx: self.tx.clone(),
            gauges: Arc::clone(&self.gauges),
        }
    }

    /// The pipeline's live queue/routing telemetry, shareable with a
    /// scraper (outlives the pipeline harmlessly — the gauges just stop
    /// moving).
    pub fn gauges(&self) -> Arc<PipelineGauges> {
        Arc::clone(&self.gauges)
    }

    /// Enqueues a point for the next unit-spaced tick (blocking when the
    /// queue is full).
    pub fn insert(&self, point: S::Point) -> Result<(), DodError> {
        send_counted(&self.tx, &self.gauges, RouterCmd::Insert(point))
    }

    /// Enqueues a run of points for consecutive unit-spaced ticks with a
    /// single queue handoff (see [`IngestHandle::insert_many`]).
    pub fn insert_many(&self, points: Vec<S::Point>) -> Result<(), DodError> {
        send_counted(&self.tx, &self.gauges, RouterCmd::InsertMany(points))
    }

    /// Enqueues a point at an explicit timestamp.
    pub fn insert_at(&self, point: S::Point, time: f64) -> Result<(), DodError> {
        send_counted(&self.tx, &self.gauges, RouterCmd::InsertAt(point, time))
    }

    /// Enqueues a clock advance (time-based windows).
    pub fn advance_to(&self, time: f64) -> Result<(), DodError> {
        send_counted(&self.tx, &self.gauges, RouterCmd::Advance(time))
    }

    /// A snapshot-consistent merged [`OutlierReport`] at the current
    /// slide boundary: every insert enqueued before this call is
    /// reflected, none enqueued after it is. Blocks until the queues
    /// have drained up to the request.
    pub fn report(&self) -> Result<OutlierReport, DodError> {
        Ok(self.collect()?.1)
    }

    /// The current outliers as global seqs, ascending (the
    /// [`StreamDetector::outliers`](dod_stream::StreamDetector::outliers)
    /// shape), snapshot-consistent like [`report`](Self::report).
    pub fn outliers(&self) -> Result<Vec<u64>, DodError> {
        let (front, report) = self.collect()?;
        Ok(report
            .outliers
            .iter()
            .map(|&pos| front + u64::from(pos))
            .collect())
    }

    fn collect(&self) -> Result<(u64, OutlierReport), DodError> {
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        send_counted(&self.tx, &self.gauges, RouterCmd::Report(reply_tx))?;
        reply_rx.recv().map_err(|_| closed())
    }

    /// Summed lifetime counters across shards, snapshot-consistent.
    pub fn stats(&self) -> Result<StreamStats, DodError> {
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        send_counted(&self.tx, &self.gauges, RouterCmd::Stats(reply_tx))?;
        reply_rx.recv().map_err(|_| closed())
    }

    /// Ghost replicas routed per `(owner, target)` shard pair
    /// (`matrix[o][t]`), snapshot-consistent with every insert enqueued
    /// before the call — the same accounting as
    /// [`ShardedStreamDetector::ghost_pair_counts`].
    pub fn ghost_pair_counts(&self) -> Result<Vec<Vec<u64>>, DodError> {
        Ok(self.ghost_route_stats()?.pairs)
    }

    /// The ghost matrix plus each shard's lifetime owned-point count in
    /// one snapshot-consistent reply — the same accounting as
    /// [`ShardedStreamDetector::ghost_route_stats`].
    pub fn ghost_route_stats(&self) -> Result<GhostRouteStats, DodError> {
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        send_counted(&self.tx, &self.gauges, RouterCmd::GhostStats(reply_tx))?;
        reply_rx.recv().map_err(|_| closed())
    }

    /// The full health document — per-shard occupancy, lifetime
    /// counters and index structure, plus the router's ghost accounting
    /// — collected under one barrier, so every number describes the
    /// same slide boundary (snapshot-consistent with every insert
    /// enqueued before the call). The same shape as
    /// [`ShardedStreamDetector::health`].
    pub fn health(&self) -> Result<HealthReport, DodError> {
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        send_counted(&self.tx, &self.gauges, RouterCmd::Health(reply_tx))?;
        reply_rx.recv().map_err(|_| closed())
    }

    /// Commit barrier: blocks until every operation enqueued before this
    /// call has passed through the WAL commit on the router thread —
    /// appended and synced per the session's [`dod_wal::SyncPolicy`].
    /// This is the durability ack: a producer that must promise "your
    /// point is on disk" (e.g. an HTTP 200 on a durable session) calls
    /// this after its inserts and answers only on the reply.
    ///
    /// On a pipeline without durability the barrier still drains the
    /// router up to the call and replies [`CommitAck::Volatile`];
    /// [`CommitAck::Degraded`] means a WAL I/O failure latched the
    /// session into fail-open — it keeps serving, but nothing is logged
    /// anymore.
    pub fn commit(&self) -> Result<CommitAck, DodError> {
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        send_counted(&self.tx, &self.gauges, RouterCmd::Commit(reply_tx))?;
        reply_rx.recv().map_err(|_| closed())
    }

    /// Drains the queues, stops every thread and reassembles the
    /// synchronous [`ShardedStreamDetector`] with all its window state —
    /// ready for `audit()`, further synchronous use, or a later
    /// `into_pipeline` again.
    pub fn finish(mut self) -> Result<ShardedStreamDetector<S>, DodError> {
        let _ = send_counted(&self.tx, &self.gauges, RouterCmd::Stop);
        let router = self
            .router_thread
            .take()
            .expect("finish runs once")
            .join()
            .map_err(|_| closed())?;
        let mut shards = Vec::with_capacity(self.pump_threads.len());
        for t in self.pump_threads.drain(..) {
            shards.push(t.join().map_err(|_| closed())?);
        }
        Ok(ShardedStreamDetector::from_parts(
            router,
            shards,
            self.backend.clone(),
        ))
    }
}

impl<S: Space + Clone + 'static> Drop for IngestPipeline<S> {
    fn drop(&mut self) {
        // finish() already detached the threads; otherwise stop and join
        // so no detached worker outlives the pipeline.
        let _ = send_counted(&self.tx, &self.gauges, RouterCmd::Stop);
        if let Some(t) = self.router_thread.take() {
            let _ = t.join();
        }
        for t in self.pump_threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Cap on ops batched into one scheduling round, bounding both the
/// router's memory and the latency before pumps see work.
const MAX_BATCH_OPS: usize = 4096;

/// The router thread: applies commands in arrival order, forwarding
/// per-shard work to the pumps. Data commands are drained greedily and
/// forwarded as one batch per shard per round, so queue synchronization
/// amortizes when producers run hot; control commands (report, stats,
/// stop) act as barriers — the batch in flight is flushed first, which
/// preserves snapshot consistency. Ends on `Stop` or when every sender
/// is gone; dropping the pump senders ends the pumps in turn.
fn router_loop<S: Space>(
    router: &mut Router<S>,
    rx: Receiver<RouterCmd<S::Point>>,
    pump_txs: Vec<SyncSender<PumpCmd<S::Point>>>,
    gauges: &PipelineGauges,
    durable: &mut Option<Box<dyn DurabilityHook<S::Point>>>,
    profile: &Option<Arc<ThreadProfile>>,
) {
    type Hook<P> = Option<Box<dyn DurabilityHook<P>>>;
    let mut batches: Vec<Vec<ShardOp<S::Point>>> =
        (0..pump_txs.len()).map(|_| Vec::new()).collect();
    let batch_up = |router: &mut Router<S>,
                    batches: &mut Vec<Vec<ShardOp<S::Point>>>,
                    durable: &mut Hook<S::Point>,
                    cmd: RouterCmd<S::Point>|
     -> Option<RouterCmd<S::Point>> {
        // Every dequeued command settles the queue-depth gauge here, the
        // single entry point of the loop bodies below.
        gauges.queued.fetch_sub(1, Ordering::Relaxed);
        // Data commands accumulate into the per-shard batches; control
        // commands bounce back to the main loop. Routing work (pivot
        // distances, ghost decisions) is timed into the gauges. A durable
        // hook sees every accepted op (with its resolved timestamp, so
        // replay never depends on auto-tick state) before the batch can
        // be flushed.
        let route = |router: &mut Router<S>,
                     batches: &mut Vec<Vec<ShardOp<S::Point>>>,
                     durable: &mut Hook<S::Point>,
                     p: S::Point,
                     t: f64| {
            let keep = durable.as_ref().map(|_| p.clone());
            let _phase = enter_opt(profile, Phase::Route);
            let t0 = std::time::Instant::now();
            let ing = router.ingest(p, t);
            gauges
                .route_nanos
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            if let (Some(d), Some(keep)) = (durable.as_mut(), keep) {
                d.note_insert(t, keep, ing.expired.len());
            }
            for (s, op) in ing.ops {
                batches[s].push(op);
            }
        };
        match cmd {
            RouterCmd::Insert(p) => {
                let t = router.next_tick();
                route(router, batches, durable, p, t);
                None
            }
            RouterCmd::InsertMany(points) => {
                for p in points {
                    let t = router.next_tick();
                    route(router, batches, durable, p, t);
                }
                None
            }
            RouterCmd::InsertAt(p, t) => {
                route(router, batches, durable, p, t);
                None
            }
            RouterCmd::Advance(t) => {
                let expired = router.advance(t);
                if let Some(d) = durable.as_mut() {
                    d.note_advance(t, expired.len());
                }
                None
            }
            ctrl => Some(ctrl),
        }
    };
    let flush = |router: &Router<S>,
                 batches: &mut Vec<Vec<ShardOp<S::Point>>>,
                 durable: &mut Hook<S::Point>| {
        // Append-before-ack: the WAL commit lands before any pump can
        // make this batch's effects observable. Control barriers (report,
        // stats) flush first, so everything they describe is durable.
        if let Some(d) = durable.as_mut() {
            let _phase = enter_opt(profile, Phase::WalAppend);
            d.commit(router.now(), router.front_seq());
        }
        for (s, batch) in batches.iter_mut().enumerate() {
            if !batch.is_empty() {
                // A dead pump means a pump panicked; the router keeps
                // going so finish() can still harvest healthy shards.
                let _ = pump_txs[s].send(PumpCmd::Apply(std::mem::take(batch)));
            }
        }
    };

    'outer: while let Ok(cmd) = rx.recv() {
        let mut ctrl = batch_up(router, &mut batches, durable, cmd);
        // Greedy drain: keep batching while more data is instantly
        // available and no control command is pending.
        while ctrl.is_none() {
            if batches.iter().map(Vec::len).sum::<usize>() >= MAX_BATCH_OPS {
                break;
            }
            match rx.try_recv() {
                Ok(cmd) => ctrl = batch_up(router, &mut batches, durable, cmd),
                Err(_) => break,
            }
        }
        flush(router, &mut batches, durable);
        match ctrl {
            None => {}
            Some(RouterCmd::Report(reply)) => {
                if let Some(seqs) = router.warmup_outliers() {
                    // Pre-partition: answered straight from the warm-up
                    // buffer, no shard involvement.
                    let front = router.front_seq();
                    let merged = OutlierReport::from_outliers(
                        seqs.into_iter().map(|s| (s - front) as u32).collect(),
                        0.0,
                    );
                    let _ = reply.send((front, merged));
                    continue;
                }
                let (ans_tx, ans_rx) = std::sync::mpsc::channel();
                let now = router.shard_now();
                let mut sent = 0;
                for ptx in &pump_txs {
                    if ptx.send(PumpCmd::Collect(now, ans_tx.clone())).is_ok() {
                        sent += 1;
                    }
                }
                drop(ans_tx);
                let mut answers: Vec<(usize, ShardAnswer)> = ans_rx.iter().collect();
                // A missing answer means a pump died (panicked): its
                // shard's outliers are gone, so a merged report would be
                // silently wrong. Dropping `reply` unanswered surfaces
                // the failure to the caller as a pipeline error instead.
                if sent < pump_txs.len() || answers.len() < sent {
                    continue;
                }
                answers.sort_by_key(|&(idx, _)| idx);
                let front = router.front_seq();
                let merged = merge_answers(answers.into_iter().map(|(_, a)| a).collect(), front);
                let _ = reply.send((front, merged));
            }
            Some(RouterCmd::Stats(reply)) => {
                let (ans_tx, ans_rx) = std::sync::mpsc::channel();
                let mut sent = 0;
                for ptx in &pump_txs {
                    if ptx.send(PumpCmd::Stats(ans_tx.clone())).is_ok() {
                        sent += 1;
                    }
                }
                drop(ans_tx);
                let mut total = StreamStats::default();
                let mut got = 0;
                for st in ans_rx.iter() {
                    total.absorb(&st);
                    got += 1;
                }
                // As for reports: partial stats from dead pumps are not
                // answered, they error out at the caller.
                if sent < pump_txs.len() || got < sent {
                    continue;
                }
                let _ = reply.send(total);
            }
            Some(RouterCmd::GhostStats(reply)) => {
                // Router-local state: no pump involvement, but the flush
                // above keeps it consistent with every preceding insert.
                let _ = reply.send(router.ghost_route_stats());
            }
            Some(RouterCmd::Health(reply)) => {
                let (ans_tx, ans_rx) = std::sync::mpsc::channel();
                let mut sent = 0;
                for ptx in &pump_txs {
                    if ptx.send(PumpCmd::Health(ans_tx.clone())).is_ok() {
                        sent += 1;
                    }
                }
                drop(ans_tx);
                let mut shards: Vec<(usize, ShardHealth)> = ans_rx.iter().collect();
                // Like reports and stats: a dead pump would make the
                // document silently partial, so the caller errors instead.
                if sent < pump_txs.len() || shards.len() < sent {
                    continue;
                }
                shards.sort_by_key(|&(idx, _)| idx);
                let _ = reply.send(HealthReport {
                    shards: shards.into_iter().map(|(_, h)| h).collect(),
                    routes: router.ghost_route_stats(),
                });
            }
            Some(RouterCmd::Commit(reply)) => {
                // The flush above already ran the WAL commit for every
                // op enqueued before this barrier; only the verdict is
                // left to report.
                let _ = reply.send(match durable.as_ref() {
                    None => CommitAck::Volatile,
                    Some(d) if d.healthy() => CommitAck::Durable,
                    Some(_) => CommitAck::Degraded,
                });
            }
            Some(RouterCmd::Stop) => break 'outer,
            Some(_) => unreachable!("data commands never bounce"),
        }
    }
    // A clean stop is not a crash: commit anything still pending, cut a
    // final snapshot, and sync, so the next open replays nothing.
    if let Some(d) = durable.as_mut() {
        d.close(router.now(), router.front_seq());
    }
    // Dropping the pump senders closes the pump channels; the pumps
    // finish their queues and return their shards.
}

/// One shard's single-writer pump: applies its queue in order, answers
/// collects at slide boundaries.
fn pump_loop<S: Space + 'static>(
    idx: usize,
    shard: &mut Shard<S>,
    rx: Receiver<PumpCmd<S::Point>>,
    profile: &Option<Arc<ThreadProfile>>,
) {
    while let Ok(cmd) = rx.recv() {
        match cmd {
            PumpCmd::Apply(ops) => {
                let _phase = enter_opt(profile, Phase::Insert);
                for op in ops {
                    shard.apply(op);
                }
            }
            PumpCmd::Collect(now, reply) => {
                if let Some(now) = now {
                    let _phase = enter_opt(profile, Phase::Expiry);
                    shard.advance(now);
                }
                let _ = reply.send((idx, shard.collect()));
            }
            PumpCmd::Stats(reply) => {
                let _ = reply.send(shard.stats());
            }
            // No phase here: health scrapes must not perturb the
            // profile they report.
            PumpCmd::Health(reply) => {
                let _ = reply.send((idx, shard.health()));
            }
        }
    }
}
