//! The routing core shared by the synchronous detector and the async
//! pipeline: warm-up buffering, pivot selection, per-point shard routing
//! and the global window occupancy record.
//!
//! The router never touches a shard — it only *decides*. Its output is a
//! list of [`ShardOp`]s, applied by whoever owns the shards (inline, via
//! scoped threads, or on per-shard pump threads).

use crate::spec::ShardSpec;
use dod_datasets::farthest_first;
use dod_stream::{Space, StreamParams, WindowSpec};
use std::collections::VecDeque;

/// One unit of per-shard work. Points are pre-prepared
/// ([`Space::prepare`]) by the router, which is why `prepare` must be
/// idempotent.
pub(crate) enum ShardOp<P> {
    /// Insert a point this shard owns (it may be reported from here).
    Owned {
        /// Global sequence number.
        global: u64,
        /// The prepared point.
        point: P,
        /// Shard-clock timestamp (global seq for count windows).
        time: f64,
    },
    /// Insert a boundary replica: counts toward neighbors, never reported.
    Ghost {
        /// Global sequence number.
        global: u64,
        /// The prepared point.
        point: P,
        /// Shard-clock timestamp.
        time: f64,
    },
}

/// What one router ingestion decided.
pub(crate) struct Ingestion<P> {
    /// Global seq assigned to the point.
    pub seq: u64,
    /// Global seqs expired by this slide, oldest first.
    pub expired: Vec<u64>,
    /// Global window size after the slide.
    pub window_len: usize,
    /// Per-shard work, in application order. Contains the whole warm-up
    /// replay when this ingestion triggered pivot selection.
    pub ops: Vec<(usize, ShardOp<P>)>,
    /// `(owner shard, ghost replicas)` of the ingested point, `None`
    /// while the point went to the warm-up buffer.
    pub routed: Option<(usize, usize)>,
}

/// Routing telemetry snapshot: per-shard owned-point counts and the
/// `(owner, target)` ghost-replication matrix, taken together so rates
/// computed from them are self-consistent.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GhostRouteStats {
    /// `owned[s]` counts the points shard `s` has owned (lifetime).
    pub owned: Vec<u64>,
    /// `pairs[o][t]` counts points owned by shard `o` replicated into
    /// shard `t` (the diagonal is always zero).
    pub pairs: Vec<Vec<u64>>,
}

pub(crate) struct Router<S: Space> {
    space: S,
    params: StreamParams,
    spec: ShardSpec,
    /// The pivot cells once selected (`spec.pivot_count()` of them, or
    /// fewer for tiny prefixes); `pivot_shard[c]` is the shard cell `c`
    /// maps onto.
    pivots: Option<Vec<S::Point>>,
    pivot_shard: Vec<usize>,
    /// Warm-up prefix: prepared points and their arrival times, in seq
    /// order starting at seq `next_seq - buffer.len()`.
    buffer: Vec<(S::Point, f64)>,
    next_seq: u64,
    now: f64,
    /// Global window occupancy `(seq, time)`, oldest first.
    live: VecDeque<(u64, f64)>,
    ghost_routes: u64,
    /// Ghost replicas per `(owner, target)` shard pair, flattened
    /// owner-major (`owner * shards + target`). The telemetry a future
    /// re-pivoting policy needs: a hot pair means the partition split a
    /// neighborhood between those two shards.
    ghost_pairs: Vec<u64>,
    /// Points routed to each shard as owner (lifetime) — the per-owner
    /// denominator that turns `ghost_pairs` into rates.
    owned_routes: Vec<u64>,
    /// Per-point routing scratch (pivot distances / shards-hit mask),
    /// reused so the hot path allocates nothing.
    dist_scratch: Vec<f64>,
    hit_scratch: Vec<bool>,
}

impl<S: Space> Router<S> {
    pub fn new(space: S, params: StreamParams, spec: ShardSpec) -> Self {
        Router {
            space,
            params,
            spec,
            pivots: None,
            pivot_shard: Vec::new(),
            buffer: Vec::new(),
            next_seq: 0,
            now: f64::NEG_INFINITY,
            live: VecDeque::new(),
            ghost_routes: 0,
            ghost_pairs: vec![0; spec.shards * spec.shards],
            owned_routes: vec![0; spec.shards],
            dist_scratch: Vec::new(),
            hit_scratch: Vec::new(),
        }
    }

    pub fn params(&self) -> &StreamParams {
        &self.params
    }

    pub fn space(&self) -> &S {
        &self.space
    }

    pub fn spec(&self) -> &ShardSpec {
        &self.spec
    }

    /// Latest observed timestamp (−∞ before the first event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The timestamp [`StreamDetector::insert`] semantics assign to the
    /// next auto-ticked insertion.
    pub fn next_tick(&self) -> f64 {
        if self.now.is_finite() {
            self.now + 1.0
        } else {
            0.0
        }
    }

    /// Global window size.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Oldest live global seq (== next seq for an empty window).
    pub fn front_seq(&self) -> u64 {
        self.live.front().map_or(self.next_seq, |&(s, _)| s)
    }

    /// Live global seqs, ascending.
    pub fn window_seqs(&self) -> Vec<u64> {
        self.live.iter().map(|&(s, _)| s).collect()
    }

    /// Whether pivots have been fixed yet.
    pub fn is_partitioned(&self) -> bool {
        self.pivots.is_some()
    }

    /// Restarts the global seq clock at `seq`, so points replayed by
    /// durable-session recovery reacquire their original seqs (reports
    /// are keyed by global seq; recovery must not renumber the window).
    ///
    /// # Panics
    /// Panics if anything was already ingested — the origin is a
    /// construction-time property.
    pub fn set_seq_origin(&mut self, seq: u64) {
        assert!(
            self.next_seq == 0 && self.live.is_empty() && self.buffer.is_empty(),
            "seq origin must be set before any ingestion"
        );
        self.next_seq = seq;
    }

    /// Total ghost replicas routed so far.
    pub fn ghost_routes(&self) -> u64 {
        self.ghost_routes
    }

    /// Ghost replicas routed per `(owner, target)` shard pair:
    /// `matrix[o][t]` counts points owned by shard `o` that were
    /// replicated into shard `t` (the diagonal is always zero — a point
    /// never ghosts into its own shard).
    pub fn ghost_pair_counts(&self) -> Vec<Vec<u64>> {
        self.ghost_pairs
            .chunks(self.spec.shards.max(1))
            .map(<[u64]>::to_vec)
            .collect()
    }

    /// The full routing-telemetry snapshot: the ghost matrix of
    /// [`ghost_pair_counts`](Self::ghost_pair_counts) plus each shard's
    /// lifetime owned-point count, so `pairs[o][t] / owned[o]` is the
    /// per-owner replication rate.
    pub fn ghost_route_stats(&self) -> GhostRouteStats {
        GhostRouteStats {
            owned: self.owned_routes.clone(),
            pairs: self.ghost_pair_counts(),
        }
    }

    /// The shard clock every per-shard op and report runs on: the global
    /// sequence number for count windows (so "keep the last `w` global
    /// arrivals" becomes a per-shard time horizon of `w`), wall time for
    /// time windows.
    fn shard_time(&self, seq: u64, time: f64) -> f64 {
        match self.params.window {
            WindowSpec::Count(_) => seq as f64,
            WindowSpec::Time(_) => time,
        }
    }

    /// The timestamp shards must be advanced to before a consistent
    /// report; `None` when nothing was ever ingested.
    pub fn shard_now(&self) -> Option<f64> {
        if self.next_seq == 0 {
            return None;
        }
        Some(match self.params.window {
            // The last assigned seq, exactly: advancing a count-mode
            // shard any further would expire residents the global count
            // window still holds.
            WindowSpec::Count(_) => (self.next_seq - 1) as f64,
            WindowSpec::Time(_) => self.now,
        })
    }

    /// The per-shard window spec: count windows become time windows over
    /// the global-seq clock so that ghosts and owners expire on the same
    /// global slide regardless of how many points each shard holds.
    pub fn shard_window(&self) -> WindowSpec {
        match self.params.window {
            WindowSpec::Count(w) => WindowSpec::Time(w as f64),
            WindowSpec::Time(h) => WindowSpec::Time(h),
        }
    }

    fn advance_clock(&mut self, time: f64) {
        WindowSpec::assert_clock_advance(self.now, time);
        self.now = time;
    }

    /// Expires due occupancy entries; `incoming` counts the point about
    /// to be pushed (count windows never exceed capacity). Uses the same
    /// [`WindowSpec::front_due`] predicate as every shard's window, so
    /// the global occupancy and the shards expire on identical slides —
    /// the invariant merged reports depend on.
    fn expire_due(&mut self, incoming: bool) -> Vec<u64> {
        let mut expired = Vec::new();
        while let Some(&(seq, t)) = self.live.front() {
            if !self
                .params
                .window
                .front_due(t, self.live.len(), self.now, incoming)
            {
                break;
            }
            self.live.pop_front();
            expired.push(seq);
        }
        expired
    }

    /// Ingests one point: assigns its seq, slides the global occupancy,
    /// and either routes it (partitioned) or buffers it — triggering
    /// pivot selection and a full replay once the warm-up target is hit.
    ///
    /// # Panics
    /// Panics if `time` regresses.
    pub fn ingest(&mut self, point: S::Point, time: f64) -> Ingestion<S::Point> {
        let point = self.space.prepare(point);
        self.advance_clock(time);
        let expired = self.expire_due(true);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.push_back((seq, time));

        let (ops, routed) = if self.pivots.is_some() {
            let mut ops = Vec::new();
            let routed = self.route_into(seq, point, time, &mut ops);
            (ops, Some(routed))
        } else {
            self.buffer.push((point, time));
            if self.buffer.len() >= self.spec.warmup {
                let (ops, routed) = self.promote();
                (ops, routed)
            } else {
                (Vec::new(), None)
            }
        };
        Ingestion {
            seq,
            expired,
            window_len: self.live.len(),
            ops,
            routed,
        }
    }

    /// Advances the clock without inserting (time windows expire).
    ///
    /// # Panics
    /// Panics if `time` regresses.
    pub fn advance(&mut self, time: f64) -> Vec<u64> {
        self.advance_clock(time);
        self.expire_due(false)
    }

    /// The pre-partition query path: while the warm-up prefix is still
    /// buffering, reports are answered by brute force over the live
    /// window slice of the buffer (it holds every point seen so far), so
    /// an early query never freezes pivots on an unrepresentative
    /// prefix. Returns `None` once the partition exists — the shards
    /// answer from then on.
    pub fn warmup_outliers(&self) -> Option<Vec<u64>> {
        if self.pivots.is_some() {
            return None;
        }
        let (r, k) = (self.params.r, self.params.k);
        let mut out = Vec::new();
        if k == 0 || self.live.is_empty() {
            return Some(out);
        }
        // While warming, nothing has been drained: buffer index 0 is the
        // stream's first point, so seq s lives at buffer[s - base].
        let base = self.next_seq - self.buffer.len() as u64;
        let live: Vec<(u64, &S::Point)> = self
            .live
            .iter()
            .map(|&(s, _)| (s, &self.buffer[(s - base) as usize].0))
            .collect();
        for &(s, p) in &live {
            let mut count = 0;
            for &(s2, q) in &live {
                if s2 != s && self.space.dist(p, q) <= r {
                    count += 1;
                    if count >= k {
                        break;
                    }
                }
            }
            if count < k {
                out.push(s);
            }
        }
        Some(out)
    }

    /// Selects pivots from the buffered prefix, assigns their cells to
    /// shards, and replays the buffer through the fixed partition.
    /// Returns the ops plus the routing of the final (most recent)
    /// buffered point.
    ///
    /// Selection is farthest-first **with outlier trimming**: plain
    /// farthest-first would crown the prefix's outliers as pivots (they
    /// are, by definition, the farthest points), leaving one shard
    /// owning the whole stream. So it over-samples 3× the pivot budget,
    /// then keeps the pivots whose Voronoi cells own the most prefix
    /// points — outlier candidates own almost nothing and are dropped.
    ///
    /// Packing is **geometry-aware**: nearby cells ghost into each other
    /// constantly, so splitting them across shards would replicate whole
    /// neighborhoods. Shard seeds are picked by farthest-first over the
    /// pivots themselves, and each cell (largest first) joins the shard
    /// of its nearest seed — skipping shards already loaded past ~1.5×
    /// the mean, so one dense region cannot swallow a shard. Balance and
    /// ghost volume are all that is at stake: any pivot set and any
    /// cell→shard assignment is exact.
    #[allow(clippy::type_complexity)]
    fn promote(&mut self) -> (Vec<(usize, ShardOp<S::Point>)>, Option<(usize, usize)>) {
        debug_assert!(self.pivots.is_none() && !self.buffer.is_empty());
        let budget = self.spec.pivot_count();
        let (chosen, pivot_shard) = {
            let pts: Vec<&S::Point> = self.buffer.iter().map(|(p, _)| p).collect();
            let dist = |a: &&S::Point, b: &&S::Point| self.space.dist(a, b);
            let mut candidates = farthest_first(&pts, 3 * budget, dist);
            let mut cell_sizes = vec![0usize; candidates.len()];
            for p in &pts {
                let nearest = candidates
                    .iter()
                    .enumerate()
                    .min_by(|a, b| {
                        let da = self.space.dist(p, pts[*a.1]);
                        let db = self.space.dist(p, pts[*b.1]);
                        da.total_cmp(&db).then(a.0.cmp(&b.0))
                    })
                    .expect("candidates are non-empty")
                    .0;
                cell_sizes[nearest] += 1;
            }
            if candidates.len() > budget {
                let mut ranked: Vec<usize> = (0..candidates.len()).collect();
                // Largest cell first; earlier (more central) candidate on
                // ties, so selection stays deterministic.
                ranked.sort_by_key(|&c| (std::cmp::Reverse(cell_sizes[c]), c));
                ranked.truncate(budget);
                ranked.sort_unstable();
                cell_sizes = ranked.iter().map(|&c| cell_sizes[c]).collect();
                candidates = ranked.into_iter().map(|c| candidates[c]).collect();
            }

            // Geometry-aware packing. First, pivots within 3r of each
            // other are fused into atomic groups (union-find): two cells
            // that close ghost each other's neighborhoods across any
            // shard boundary, so splitting them buys parallelism at the
            // price of near-total replication. Groups then join the
            // shard of their nearest farthest-first seed, heaviest group
            // first, under a ~1.5× mean load cap.
            let pivot_pts: Vec<&S::Point> = candidates.iter().map(|&i| pts[i]).collect();
            let np = pivot_pts.len();
            let mut parent: Vec<usize> = (0..np).collect();
            fn find(parent: &mut [usize], mut x: usize) -> usize {
                while parent[x] != x {
                    parent[x] = parent[parent[x]];
                    x = parent[x];
                }
                x
            }
            let tau = 3.0 * self.params.r;
            for i in 0..np {
                for j in (i + 1)..np {
                    if self.space.dist(pivot_pts[i], pivot_pts[j]) <= tau {
                        let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                        if ri != rj {
                            parent[ri.max(rj)] = ri.min(rj);
                        }
                    }
                }
            }
            let mut group_of = vec![0usize; np];
            let mut group_members: Vec<Vec<usize>> = Vec::new();
            let mut root_group: Vec<Option<usize>> = vec![None; np];
            for (c, slot) in group_of.iter_mut().enumerate() {
                let r = find(&mut parent, c);
                let g = *root_group[r].get_or_insert_with(|| {
                    group_members.push(Vec::new());
                    group_members.len() - 1
                });
                *slot = g;
                group_members[g].push(c);
            }
            let group_weight: Vec<usize> = group_members
                .iter()
                .map(|m| m.iter().map(|&c| cell_sizes[c]).sum())
                .collect();
            let seeds = farthest_first(&pivot_pts, self.spec.shards, dist);
            let total: usize = cell_sizes.iter().sum();
            let cap = (total.div_ceil(self.spec.shards) * 3).div_ceil(2).max(1);
            let mut order: Vec<usize> = (0..group_members.len()).collect();
            order.sort_by_key(|&g| (std::cmp::Reverse(group_weight[g]), g));
            let mut load = vec![0usize; self.spec.shards];
            let mut group_shard = vec![0usize; group_members.len()];
            for g in order {
                // Group-to-seed distance: the closest member decides.
                let mut ranked: Vec<usize> = (0..seeds.len()).collect();
                let d_to = |s: usize| {
                    group_members[g]
                        .iter()
                        .map(|&c| self.space.dist(pivot_pts[c], pivot_pts[seeds[s]]))
                        .fold(f64::INFINITY, f64::min)
                };
                ranked.sort_by(|&a, &b| d_to(a).total_cmp(&d_to(b)).then(a.cmp(&b)));
                let target = ranked
                    .iter()
                    .copied()
                    .find(|&s| load[s] + group_weight[g] <= cap)
                    .unwrap_or_else(|| (0..load.len()).min_by_key(|&s| (load[s], s)).expect(">=1"));
                group_shard[g] = target;
                load[target] += group_weight[g];
            }
            let assignment: Vec<usize> = group_of.iter().map(|&g| group_shard[g]).collect();
            (candidates, assignment)
        };
        self.pivots = Some(
            chosen
                .iter()
                .map(|&i| self.buffer[i].0.clone())
                .collect::<Vec<_>>(),
        );
        self.pivot_shard = pivot_shard;

        let buffer = std::mem::take(&mut self.buffer);
        let base = self.next_seq - buffer.len() as u64;
        let mut ops = Vec::with_capacity(buffer.len());
        let mut last_routed = None;
        for (i, (p, t)) in buffer.into_iter().enumerate() {
            last_routed = Some(self.route_into(base + i as u64, p, t, &mut ops));
        }
        (ops, last_routed)
    }

    /// Routes one prepared point: one `Owned` op for the shard holding
    /// its nearest pivot's cell, one `Ghost` op for every *other* shard
    /// holding a pivot within `2r` of beating that distance. Returns
    /// `(owner, ghost count)`.
    fn route_into(
        &mut self,
        seq: u64,
        point: S::Point,
        time: f64,
        ops: &mut Vec<(usize, ShardOp<S::Point>)>,
    ) -> (usize, usize) {
        let pivots = self.pivots.as_ref().expect("routing requires pivots");
        let t = self.shard_time(seq, time);
        if self.spec.shards == 1 || pivots.len() == 1 {
            let owner = self.pivot_shard.first().copied().unwrap_or(0);
            self.owned_routes[owner] += 1;
            ops.push((
                owner,
                ShardOp::Owned {
                    global: seq,
                    point,
                    time: t,
                },
            ));
            return (owner, 0);
        }
        // Reused scratch: routing a point must not allocate.
        let mut dists = std::mem::take(&mut self.dist_scratch);
        dists.clear();
        dists.extend(pivots.iter().map(|c| self.space.dist(&point, c)));
        let mut hit = std::mem::take(&mut self.hit_scratch);
        hit.clear();
        hit.resize(self.spec.shards, false);
        let nearest = dists
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1).then(a.0.cmp(&b.0)))
            .expect("at least one pivot")
            .0;
        let owner = self.pivot_shard[nearest];
        let bound = dists[nearest] + 2.0 * self.params.r;
        let mut ghosts = 0;
        hit[owner] = true;
        for (c, &d) in dists.iter().enumerate() {
            let s = self.pivot_shard[c];
            if hit[s] {
                continue;
            }
            if d <= bound {
                hit[s] = true;
                ghosts += 1;
                self.ghost_pairs[owner * self.spec.shards + s] += 1;
                ops.push((
                    s,
                    ShardOp::Ghost {
                        global: seq,
                        point: point.clone(),
                        time: t,
                    },
                ));
            }
        }
        self.dist_scratch = dists;
        self.hit_scratch = hit;
        self.ghost_routes += ghosts as u64;
        self.owned_routes[owner] += 1;
        ops.push((
            owner,
            ShardOp::Owned {
                global: seq,
                point,
                time: t,
            },
        ));
        (owner, ghosts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dod_metrics::L2;
    use dod_stream::VectorSpace;

    fn router(shards: usize, warmup: usize, r: f64, w: usize) -> Router<VectorSpace<L2>> {
        Router::new(
            VectorSpace::new(L2, 1),
            StreamParams::count(r, 2, w),
            ShardSpec::new(shards).with_warmup(warmup),
        )
    }

    fn op_kind<P>(op: &ShardOp<P>) -> (&'static str, u64) {
        match op {
            ShardOp::Owned { global, .. } => ("owned", *global),
            ShardOp::Ghost { global, .. } => ("ghost", *global),
        }
    }

    #[test]
    fn warmup_buffers_then_replays_everything() {
        let mut r = router(2, 3, 0.1, 8);
        assert!(r.ingest(vec![0.0], 0.0).ops.is_empty());
        assert!(r.ingest(vec![10.0], 1.0).ops.is_empty());
        assert!(!r.is_partitioned());
        let ing = r.ingest(vec![0.2], 2.0);
        assert!(r.is_partitioned());
        // The replay routes all three buffered points, seqs 0, 1, 2.
        let owned: Vec<u64> = ing
            .ops
            .iter()
            .filter(|(_, op)| op_kind(op).0 == "owned")
            .map(|(_, op)| op_kind(op).1)
            .collect();
        assert_eq!(owned, vec![0, 1, 2]);
        assert_eq!(ing.routed.map(|(_, g)| g), Some(0));
    }

    #[test]
    fn each_point_is_owned_exactly_once() {
        let mut r = router(3, 2, 0.5, 16);
        let mut owned_counts = std::collections::HashMap::new();
        for i in 0..20 {
            let ing = r.ingest(vec![(i % 7) as f32], i as f64);
            for (_, op) in &ing.ops {
                let (kind, seq) = op_kind(op);
                if kind == "owned" {
                    *owned_counts.entry(seq).or_insert(0usize) += 1;
                }
            }
        }
        assert_eq!(owned_counts.len(), 20, "every seq routed");
        assert!(owned_counts.values().all(|&c| c == 1));
    }

    #[test]
    fn boundary_points_ghost_and_interior_points_do_not() {
        // Pivots will land on the extremes of [0, 100] after warm-up.
        let mut r = router(2, 2, 1.0, 64);
        r.ingest(vec![0.0], 0.0);
        r.ingest(vec![100.0], 1.0);
        assert!(r.is_partitioned());
        // Interior of a cell: no ghost.
        let ing = r.ingest(vec![3.0], 2.0);
        assert_eq!(ing.routed, Some((0, 0)));
        // Midpoint: within 2r of the tie → ghosted to the other shard.
        let ing = r.ingest(vec![50.5], 3.0);
        let (owner, ghosts) = ing.routed.expect("partitioned");
        assert_eq!(ghosts, 1, "boundary point must replicate");
        assert!(owner < 2);
    }

    #[test]
    fn ghost_pair_counts_track_owner_to_target_replication() {
        // Two far cells; boundary points replicate across the pair.
        let mut r = router(2, 2, 1.0, 64);
        r.ingest(vec![0.0], 0.0);
        r.ingest(vec![100.0], 1.0);
        assert!(r.is_partitioned());
        let before: u64 = r.ghost_pair_counts().iter().flatten().sum();
        let ing = r.ingest(vec![50.5], 2.0);
        let (owner, ghosts) = ing.routed.expect("partitioned");
        assert_eq!(ghosts, 1);
        let pairs = r.ghost_pair_counts();
        assert_eq!(pairs.len(), 2);
        assert!(pairs.iter().enumerate().all(|(o, row)| row[o] == 0));
        let after: u64 = pairs.iter().flatten().sum();
        assert_eq!(after - before, 1);
        assert_eq!(pairs[owner][1 - owner], 1, "{pairs:?}");
        assert_eq!(after, r.ghost_routes());
        // The snapshot pairs owned counts with the matrix: every routed
        // point is owned by exactly one shard, warm-up replay included.
        let stats = r.ghost_route_stats();
        assert_eq!(stats.pairs, pairs);
        assert_eq!(stats.owned.iter().sum::<u64>(), 3);
        assert_eq!(stats.owned[owner], 2, "{stats:?}");
    }

    #[test]
    fn count_occupancy_matches_window_capacity() {
        let mut r = router(1, 1, 0.5, 3);
        for i in 0..5 {
            let ing = r.ingest(vec![i as f32], i as f64);
            assert!(ing.window_len <= 3);
        }
        assert_eq!(r.window_seqs(), vec![2, 3, 4]);
        assert_eq!(r.front_seq(), 2);
    }

    #[test]
    fn time_occupancy_expires_on_advance() {
        let mut r = Router::new(
            VectorSpace::new(L2, 1),
            StreamParams::timed(0.5, 1, 10.0),
            ShardSpec::new(2).with_warmup(1),
        );
        r.ingest(vec![0.0], 0.0);
        r.ingest(vec![1.0], 5.0);
        assert_eq!(r.advance(12.0), vec![0]);
        assert_eq!(r.window_seqs(), vec![1]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn time_regression_is_rejected() {
        let mut r = router(1, 1, 0.5, 4);
        r.ingest(vec![0.0], 5.0);
        r.ingest(vec![1.0], 4.0);
    }
}
