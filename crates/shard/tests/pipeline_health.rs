//! The pipeline's health barrier and the thread-phase profiler: the
//! document must be snapshot-consistent with every preceding insert,
//! agree with the synchronous detector's aggregation, and the profiled
//! pipeline must publish phases the sampler can observe.

use dod_core::profile::{Phase, Profiler, Sampler, PHASES};
use dod_core::Query;
use dod_datasets::StreamScenario;
use dod_metrics::L2;
use dod_shard::{PipelineProfile, ShardSpec, ShardedStreamDetector};
use dod_stream::{Backend, GraphParams, VectorSpace, WindowSpec};
use std::sync::Arc;

const DIM: usize = 2;

fn points(n: usize, seed: u64) -> Vec<Vec<f32>> {
    let scenario = StreamScenario {
        clusters: 3,
        drift: 0.05,
        outlier_rate: 0.08,
        burst_every: 25,
        burst_len: 4,
        burst_rate: 0.5,
        churn_every: 40,
        ..StreamScenario::new(DIM)
    };
    scenario.generate(n, seed)
}

fn open(shards: usize, backend: Backend) -> ShardedStreamDetector<VectorSpace<L2>> {
    ShardedStreamDetector::open(
        VectorSpace::new(L2, DIM),
        Query::new(0.35, 3).expect("valid query"),
        WindowSpec::Count(128),
        backend,
        ShardSpec::new(shards),
    )
    .expect("valid spec")
}

/// The barrier-collected pipeline document equals the synchronous
/// detector's over the same stream state, and its numbers cover the
/// whole window.
#[test]
fn pipeline_health_matches_synchronous_and_covers_the_window() {
    // Audit every slide so a 300-point stream accumulates real samples.
    let gp = GraphParams {
        sample_rate: 1,
        audit_sample: 4,
        ..GraphParams::default()
    };
    let mut det = open(4, Backend::Graph(gp));
    let stream = points(300, 17);
    for p in &stream {
        det.insert(p.clone());
    }
    // Health is a read-only scrape: it never advances shard clocks, so
    // bring every shard to the slide boundary the way a query would.
    let _ = det.outliers();
    let sync_health = det.health();

    let pipeline = det.into_pipeline(64);
    let health = pipeline.health().expect("live pipeline");
    assert_eq!(health.shards.len(), 4);
    // Same per-shard occupancy and counters as the synchronous view —
    // the pipeline changed the threading, not the state.
    for (a, b) in health.shards.iter().zip(sync_health.shards.iter()) {
        assert_eq!((a.owned, a.ghosts), (b.owned, b.ghosts));
        assert_eq!(a.stats.inserts, b.stats.inserts);
        assert_eq!(a.index.live, b.index.live);
    }
    assert_eq!(health.routes, sync_health.routes);

    // The window is fully accounted for: owned residents across shards
    // sum to the global window, and rates/skews are well-formed.
    let owned: usize = health.shards.iter().map(|s| s.owned).sum();
    assert_eq!(owned, 128);
    assert!(health.owned_skew() >= 1.0);
    assert!(health.slide_skew() >= 1.0);
    for rate in health.ghost_rates() {
        assert!((0.0..=1.0).contains(&rate), "ghost rate {rate}");
    }
    // Graph backend everywhere: the absorbed index document is inexact
    // and audited (audit_sample > 0 ran on every shard slide).
    let idx = health.index();
    assert!(!idx.exact);
    assert!(health.stats().recall_audits > 0, "auditors never ran");

    // The barrier sees every insert enqueued before it.
    pipeline.insert_many(stream[..64].to_vec()).expect("live");
    let after = pipeline.health().expect("live pipeline");
    assert_eq!(
        after.stats().inserts,
        health.stats().inserts + 64 + (after.stats().ghost_inserts - health.stats().ghost_inserts)
    );
    drop(pipeline);
}

/// A profiled pipeline registers `{prefix}/router` and
/// `{prefix}/pump-{i}` and publishes non-idle phases the sampler
/// accumulates.
#[test]
fn profiled_pipeline_publishes_phases() {
    let profiler = Arc::new(Profiler::new());
    let det = open(2, Backend::Exhaustive);
    let pipeline = det.into_pipeline_profiled(
        8,
        PipelineProfile {
            profiler: Arc::clone(&profiler),
            prefix: "s1".into(),
        },
    );
    let names: Vec<String> = profiler
        .profiles()
        .iter()
        .map(|p| p.name().to_string())
        .collect();
    assert_eq!(names, ["s1/pump-0", "s1/pump-1", "s1/router"]);

    let sampler = Sampler::start(Arc::clone(&profiler), 1000).expect("valid rate");
    let stream = points(4000, 3);
    for chunk in stream.chunks(256) {
        pipeline.insert_many(chunk.to_vec()).expect("live");
        let _ = pipeline.report().expect("live");
    }
    sampler.shutdown();

    let non_idle: u64 = profiler
        .profiles()
        .iter()
        .flat_map(|p| {
            PHASES
                .iter()
                .filter(|&&ph| ph != Phase::Idle)
                .map(|&ph| p.samples(ph))
                .collect::<Vec<_>>()
        })
        .sum();
    assert!(non_idle > 0, "no worker was ever sampled off idle");
    // Workers settle back to idle once the queues drain.
    let det = pipeline.finish().expect("clean finish");
    for p in profiler.profiles() {
        assert_eq!(p.current(), Phase::Idle, "{} stuck non-idle", p.name());
    }
    drop(det);
}
