//! The sharded engine's defining property: for any shard count, the
//! merged answer after **every** slide equals the single
//! `StreamDetector`'s answer — which is itself pinned to the
//! `nested_loop` batch ground truth over the window snapshot.
//!
//! Streams come from `dod_datasets::StreamScenario` with drift, outlier
//! bursts and cluster churn compressed into short runs, so pivots picked
//! from the warm-up prefix are stale by mid-stream (churn teleports
//! clusters) — exactness must never depend on pivot quality.

use dod_core::{nested_loop, DodError, DodParams, Query};
use dod_datasets::StreamScenario;
use dod_metrics::L2;
use dod_shard::{ShardSpec, ShardedStreamDetector};
use dod_stream::{Backend, GraphParams, StreamDetector, VectorSpace, WindowSpec};
use proptest::prelude::*;

const DIM: usize = 2;

/// A hostile short stream: tight drift/burst/churn cadence.
fn scenario_points(n: usize, seed: u64) -> Vec<Vec<f32>> {
    let scenario = StreamScenario {
        clusters: 3,
        drift: 0.05,
        outlier_rate: 0.08,
        burst_every: 25,
        burst_len: 4,
        burst_rate: 0.6,
        churn_every: 30,
        ..StreamScenario::new(DIM)
    };
    scenario.generate(n, seed)
}

/// Batch ground truth over the single detector's live window, as seqs.
fn batch_outliers(det: &StreamDetector<VectorSpace<L2>>, r: f64, k: usize) -> Vec<u64> {
    let view = det.window_view();
    nested_loop::detect(&view, &DodParams::new(r, k), 3)
        .outliers
        .into_iter()
        .map(|pos| view.seq_at(pos as usize))
        .collect()
}

fn check_sharding(shards: usize, backend: Backend, r: f64, k: usize, w: usize, seed: u64) {
    let query = Query::new(r, k).expect("valid query");
    let mut single = StreamDetector::open(
        VectorSpace::new(L2, DIM),
        query,
        WindowSpec::Count(w),
        backend.clone(),
    )
    .expect("single detector");
    // A short warm-up relative to the stream, so the partitioned regime
    // (and ghost expiry across it) is what the test mostly exercises.
    let spec = ShardSpec::new(shards).with_warmup((w / 2).max(2));
    let mut sharded = ShardedStreamDetector::open(
        VectorSpace::new(L2, DIM),
        query,
        WindowSpec::Count(w),
        backend,
        spec,
    )
    .expect("sharded detector");

    for (i, p) in scenario_points(70, seed).into_iter().enumerate() {
        let s_rep = single.insert(p.clone());
        let sh_rep = sharded.insert(p);
        assert_eq!(s_rep.seq, sh_rep.seq, "seq assignment must agree");
        assert_eq!(s_rep.expired, sh_rep.expired, "expiry must agree at {i}");
        assert_eq!(s_rep.window_len, sh_rep.window_len);

        let want = single.outliers();
        let got = sharded.outliers();
        assert_eq!(
            got, want,
            "S={shards} r={r} k={k} w={w} seed={seed} slide={i}"
        );
        // Ground truth and the independent recount agree too.
        assert_eq!(want, batch_outliers(&single, r, k));
        assert_eq!(got, sharded.audit(), "audit disagrees at slide {i}");
        // The merged report speaks the same positions as the single one.
        assert_eq!(sharded.report().outliers, single.report().outliers);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn sharded_exhaustive_matches_single_after_every_slide(
        shard_pick in 0usize..3, // S ∈ {1, 2, 4}
        r in 0.5f64..4.0,
        k in 1usize..5,
        w in 4usize..40,
        seed in 0u64..10_000,
    ) {
        check_sharding([1, 2, 4][shard_pick], Backend::Exhaustive, r, k, w, seed);
    }

    #[test]
    fn sharded_graph_backend_matches_single_after_every_slide(
        shard_pick in 0usize..2, // S ∈ {2, 4}
        r in 0.5f64..4.0,
        k in 1usize..5,
        w in 4usize..40,
        seed in 0u64..10_000,
    ) {
        check_sharding(
            [2, 4][shard_pick],
            Backend::Graph(GraphParams::default()),
            r,
            k,
            w,
            seed,
        );
    }

    #[test]
    fn parallel_slides_change_nothing(
        r in 0.5f64..3.0,
        k in 1usize..4,
        seed in 0u64..10_000,
    ) {
        // Same stream through slide_threads = 1 and 4: identical output
        // (par_for_each_mut is deterministic, shard work is independent).
        let query = Query::new(r, k).expect("valid");
        let mk = |threads: usize| {
            ShardedStreamDetector::open(
                VectorSpace::new(L2, DIM),
                query,
                WindowSpec::Count(24),
                Backend::Exhaustive,
                ShardSpec::new(4).with_warmup(8).with_slide_threads(threads),
            )
            .expect("open")
        };
        let (mut seq_det, mut par_det) = (mk(1), mk(4));
        for p in scenario_points(60, seed) {
            seq_det.insert(p.clone());
            par_det.insert(p);
            prop_assert_eq!(seq_det.outliers(), par_det.outliers());
        }
    }
}

#[test]
fn ghost_expiry_keeps_boundary_counts_exact() {
    // Two clusters around 0 and 10; the pivots land one per cluster.
    // Boundary points near 5 are ghosted both ways; as the tiny window
    // slides, ghosts expire and the counts they fed must decay exactly.
    let query = Query::new(1.2, 2).expect("valid");
    let mut single = StreamDetector::open(
        VectorSpace::new(L2, 1),
        query,
        WindowSpec::Count(6),
        Backend::Exhaustive,
    )
    .expect("single");
    let mut sharded = ShardedStreamDetector::open(
        VectorSpace::new(L2, 1),
        query,
        WindowSpec::Count(6),
        Backend::Exhaustive,
        ShardSpec::new(2).with_warmup(2),
    )
    .expect("sharded");
    // Alternate cluster points with boundary points at 4.8/5.2/5.0 so
    // ghosts are created and then expired while their neighbors live on.
    let xs: [f32; 16] = [
        0.0, 10.0, 4.8, 5.2, 0.3, 9.7, 5.0, 4.6, 10.2, 0.1, 5.4, 5.1, 9.9, 0.2, 4.9, 5.3,
    ];
    for (i, &x) in xs.iter().enumerate() {
        single.insert(vec![x]);
        sharded.insert(vec![x]);
        assert_eq!(sharded.outliers(), single.outliers(), "slide {i}");
        assert_eq!(sharded.audit(), single.outliers(), "audit at slide {i}");
    }
    assert!(
        sharded.ghost_routes() > 0,
        "the scenario must actually exercise ghosts"
    );
    let stats = sharded.stats();
    assert!(stats.ghost_inserts > 0);
    assert_eq!(stats.ghost_inserts, sharded.ghost_routes());
}

#[test]
fn time_windows_expire_consistently_under_advance() {
    let query = Query::new(1.0, 1).expect("valid");
    let mut single = StreamDetector::open(
        VectorSpace::new(L2, 1),
        query,
        WindowSpec::Time(10.0),
        Backend::Exhaustive,
    )
    .expect("single");
    let mut sharded = ShardedStreamDetector::open(
        VectorSpace::new(L2, 1),
        query,
        WindowSpec::Time(10.0),
        Backend::Exhaustive,
        ShardSpec::new(2).with_warmup(2),
    )
    .expect("sharded");
    let events: [(f32, f64); 6] = [
        (0.0, 0.0),
        (9.0, 2.0),
        (0.2, 5.0),
        (9.1, 8.0),
        (0.4, 11.0), // expires seq 0
        (20.0, 14.0),
    ];
    for &(x, t) in &events {
        single.insert_at(vec![x], t);
        sharded.insert_at(vec![x], t);
        assert_eq!(sharded.outliers(), single.outliers(), "t={t}");
        assert_eq!(sharded.window_seqs(), single.window_seqs(), "t={t}");
    }
    // A quiet stream: pure clock advances expire the same seqs.
    assert_eq!(single.advance_to(20.0), sharded.advance_to(20.0));
    assert_eq!(sharded.outliers(), single.outliers());
    assert_eq!(single.advance_to(100.0), sharded.advance_to(100.0));
    assert!(sharded.is_empty());
    assert!(sharded.outliers().is_empty());
}

#[test]
fn early_reports_answer_from_the_warmup_buffer() {
    let query = Query::new(1.0, 1).expect("valid");
    let mut sharded = ShardedStreamDetector::open(
        VectorSpace::new(L2, 1),
        query,
        WindowSpec::Count(16),
        Backend::Exhaustive,
        ShardSpec::new(4).with_warmup(4),
    )
    .expect("sharded");
    sharded.insert(vec![0.0]);
    assert!(!sharded.is_partitioned());
    // Queries during warm-up are answered by brute force over the
    // buffer — they never freeze the partition on a tiny prefix. One
    // point with k=1: an outlier.
    assert_eq!(sharded.outliers(), vec![0]);
    assert_eq!(sharded.report().outliers, vec![0]);
    assert!(
        !sharded.is_partitioned(),
        "early query must not force pivots"
    );
    sharded.insert(vec![0.1]);
    sharded.insert(vec![50.0]);
    assert_eq!(sharded.outliers(), vec![2]);
    assert_eq!(sharded.audit(), vec![2]);
    // The 4th point completes the warm-up: pivots freeze, shards answer.
    sharded.insert(vec![50.2]);
    assert!(sharded.is_partitioned());
    assert_eq!(sharded.outliers(), Vec::<u64>::new());
    assert_eq!(sharded.audit(), Vec::<u64>::new());
}

#[test]
fn empty_and_k_zero_edge_cases() {
    let mut det = ShardedStreamDetector::open(
        VectorSpace::new(L2, 1),
        Query::new(1.0, 0).expect("k = 0 is legal"),
        WindowSpec::Count(8),
        Backend::Exhaustive,
        ShardSpec::new(2),
    )
    .expect("open");
    assert!(det.outliers().is_empty(), "empty window");
    det.insert(vec![0.0]);
    det.insert(vec![100.0]);
    assert!(det.outliers().is_empty(), "k = 0 flags nothing");
    assert!(det.audit().is_empty());
}

#[test]
fn invalid_specs_surface_as_typed_errors() {
    let query = Query::new(1.0, 1).expect("valid");
    let bad = ShardedStreamDetector::open(
        VectorSpace::new(L2, 1),
        query,
        WindowSpec::Count(8),
        Backend::Exhaustive,
        ShardSpec::new(0),
    );
    assert!(matches!(bad, Err(DodError::InvalidShardSpec { .. })));
    let bad_window = ShardedStreamDetector::open(
        VectorSpace::new(L2, 1),
        query,
        WindowSpec::Count(0),
        Backend::Exhaustive,
        ShardSpec::new(2),
    );
    assert!(matches!(bad_window, Err(DodError::InvalidWindow { .. })));
}

#[test]
fn pipeline_reports_are_snapshot_consistent_and_finish_reassembles() {
    let query = Query::new(1.5, 2).expect("valid");
    let mk = |backend: Backend| {
        ShardedStreamDetector::open(
            VectorSpace::new(L2, DIM),
            query,
            WindowSpec::Count(32),
            backend,
            ShardSpec::new(4).with_warmup(8),
        )
        .expect("open")
    };
    for backend in [Backend::Exhaustive, Backend::Graph(GraphParams::default())] {
        // A synchronous twin consumes the same stream for reference.
        let mut twin = StreamDetector::open(
            VectorSpace::new(L2, DIM),
            query,
            WindowSpec::Count(32),
            backend.clone(),
        )
        .expect("twin");
        let pipeline = mk(backend).into_pipeline(64);
        let handle = pipeline.handle();
        let points = scenario_points(150, 99);
        for (i, p) in points.iter().enumerate() {
            twin.insert(p.clone());
            handle.insert(p.clone()).expect("pipeline alive");
            if i % 37 == 0 {
                // A report enqueued here must reflect exactly i+1 inserts.
                assert_eq!(
                    pipeline.outliers().expect("report"),
                    twin.outliers(),
                    "checkpoint at {i}"
                );
            }
        }
        let report = pipeline.report().expect("final report");
        assert_eq!(report.outliers, twin.report().outliers);
        let stats = pipeline.stats().expect("stats");
        assert!(stats.inserts >= points.len() as u64);

        // finish() hands back the synchronous detector with all state.
        let mut back = pipeline.finish().expect("finish");
        assert_eq!(back.outliers(), twin.outliers());
        assert_eq!(back.audit(), twin.outliers());
        assert_eq!(back.len(), twin.len());
    }
}

#[test]
fn pipeline_handles_are_cloneable_and_fail_after_finish() {
    let det = ShardedStreamDetector::open(
        VectorSpace::new(L2, 1),
        Query::new(1.0, 1).expect("valid"),
        WindowSpec::Count(8),
        Backend::Exhaustive,
        ShardSpec::new(2),
    )
    .expect("open");
    let pipeline = det.into_pipeline(4);
    let h1 = pipeline.handle();
    let h2 = h1.clone();
    h1.insert(vec![0.0]).expect("alive");
    h2.insert(vec![50.0]).expect("alive");
    assert_eq!(pipeline.outliers().expect("report"), vec![0, 1]);
    let _det = pipeline.finish().expect("finish");
    assert!(h1.insert(vec![1.0]).is_err(), "pipeline is gone");
}
