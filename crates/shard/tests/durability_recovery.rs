//! The WAL's defining property: crash anywhere, reopen, and the session
//! is byte-identical to one that never crashed.
//!
//! For random streams, kill points, and shard counts S ∈ {1, 2, 4}, a
//! durable session is killed after `kill` accepted operations (drop
//! without close — exactly a crash at an op boundary under
//! `SyncPolicy::Always`), recovered from disk, fed the rest of the
//! stream, and compared field-by-field against an uninterrupted detector
//! over the same stream. Every deterministic report field must match:
//! outlier positions, candidate/false-positive/filter accounting, window
//! seqs and window length (timing fields are wall-clock and excluded —
//! the wire format never ships them).
//!
//! The recovered partition is generally *different* (pivots are re-warmed
//! over the replayed window) — equality holds because the sharding
//! argument is partition-independent, which is what lets recovery skip
//! persisting routing state.

use dod_core::Query;
use dod_datasets::StreamScenario;
use dod_metrics::L2;
use dod_shard::{
    CommitAck, DurabilityPolicy, DurableSession, ShardSpec, ShardedStreamDetector, SyncPolicy,
};
use dod_stream::{Backend, VectorSpace, WindowSpec};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const DIM: usize = 2;
const R: f64 = 0.35;
const K: usize = 3;

fn scratch() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "dod_durability_{}_{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

fn points(n: usize, seed: u64) -> Vec<Vec<f32>> {
    let scenario = StreamScenario {
        clusters: 3,
        drift: 0.05,
        outlier_rate: 0.1,
        burst_every: 20,
        burst_len: 3,
        burst_rate: 0.5,
        churn_every: 25,
        ..StreamScenario::new(DIM)
    };
    scenario.generate(n, seed)
}

fn spec(shards: usize) -> ShardSpec {
    // Warm-up below every tested window size, so the uninterrupted and
    // the recovered detector are both partitioned by the final report
    // (replay only sees the live window, not the full history).
    ShardSpec::new(shards).with_warmup(4)
}

fn open_durable(
    shards: usize,
    w: usize,
    dir: &std::path::Path,
    policy: DurabilityPolicy,
) -> DurableSession<VectorSpace<L2>> {
    DurableSession::open(
        VectorSpace::new(L2, DIM),
        Query::new(R, K).expect("valid query"),
        WindowSpec::Count(w),
        Backend::Exhaustive,
        spec(shards),
        dir,
        policy,
    )
    .expect("open durable session")
    .0
}

/// Asserts every deterministic field of the two sessions' state matches.
fn assert_state_identical(
    recovered: &mut DurableSession<VectorSpace<L2>>,
    uninterrupted: &mut ShardedStreamDetector<VectorSpace<L2>>,
    ctx: &str,
) {
    let got = recovered.report();
    let want = uninterrupted.report();
    assert_eq!(got.outliers, want.outliers, "outliers: {ctx}");
    assert_eq!(got.candidates, want.candidates, "candidates: {ctx}");
    assert_eq!(
        got.false_positives, want.false_positives,
        "false_positives: {ctx}"
    );
    assert_eq!(
        got.decided_in_filter, want.decided_in_filter,
        "decided_in_filter: {ctx}"
    );
    assert_eq!(
        recovered.detector().window_seqs(),
        uninterrupted.window_seqs(),
        "window seqs: {ctx}"
    );
    assert_eq!(
        recovered.detector().now(),
        uninterrupted.now(),
        "clock: {ctx}"
    );
    assert_eq!(
        recovered.outliers(),
        uninterrupted.outliers(),
        "seqs: {ctx}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn crash_point_recovery_is_byte_identical(
        n in 16usize..96,
        kill_frac in 0.0f64..1.0,
        shards_idx in 0usize..3,
        w in 8usize..32,
        seed in 0u64..1 << 16,
        dense_snapshots in 0usize..2,
    ) {
        let shards = [1, 2, 4][shards_idx];
        let kill = ((n as f64 * kill_frac) as usize).min(n);
        let pts = points(n, seed);
        let dir = scratch();
        // Dense snapshots exercise the snapshot+truncate path mid-stream;
        // sparse ones exercise pure log replay.
        let policy = DurabilityPolicy {
            sync: SyncPolicy::Always,
            snapshot_ops: if dense_snapshots == 1 { 8 } else { 1 << 20 },
        };

        let mut uninterrupted = ShardedStreamDetector::open(
            VectorSpace::new(L2, DIM),
            Query::new(R, K).expect("valid query"),
            WindowSpec::Count(w),
            Backend::Exhaustive,
            spec(shards),
        )
        .expect("open plain detector");

        let mut session = open_durable(shards, w, &dir, policy);
        for p in &pts[..kill] {
            session.insert(p.clone());
        }
        // Crash: drop without close. Every accepted op was synced
        // (SyncPolicy::Always), so nothing acknowledged may be lost.
        drop(session);

        let mut session = open_durable(shards, w, &dir, policy);
        for p in &pts[kill..] {
            session.insert(p.clone());
        }
        for p in &pts {
            uninterrupted.insert(p.clone());
        }

        let ctx = format!("n={n} kill={kill} shards={shards} w={w} seed={seed}");
        assert_state_identical(&mut session, &mut uninterrupted, &ctx);
        drop(session);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn double_crash_recovery_is_byte_identical(
        n in 16usize..64,
        cut_a in 0.0f64..1.0,
        cut_b in 0.0f64..1.0,
        w in 8usize..24,
        seed in 0u64..1 << 16,
    ) {
        // Two crashes at independent points — recovery must be
        // idempotent, not merely correct once.
        let shards = 2;
        let (a, b) = (
            ((n as f64 * cut_a.min(cut_b)) as usize).min(n),
            ((n as f64 * cut_a.max(cut_b)) as usize).min(n),
        );
        let pts = points(n, seed);
        let dir = scratch();
        let policy = DurabilityPolicy {
            sync: SyncPolicy::Always,
            snapshot_ops: 8,
        };

        let mut uninterrupted = ShardedStreamDetector::open(
            VectorSpace::new(L2, DIM),
            Query::new(R, K).expect("valid query"),
            WindowSpec::Count(w),
            Backend::Exhaustive,
            spec(shards),
        )
        .expect("open plain detector");

        let mut session = open_durable(shards, w, &dir, policy);
        for p in &pts[..a] {
            session.insert(p.clone());
        }
        drop(session);
        let mut session = open_durable(shards, w, &dir, policy);
        for p in &pts[a..b] {
            session.insert(p.clone());
        }
        drop(session);
        let mut session = open_durable(shards, w, &dir, policy);
        for p in &pts[b..] {
            session.insert(p.clone());
        }
        for p in &pts {
            uninterrupted.insert(p.clone());
        }

        let ctx = format!("n={n} cuts=({a},{b}) w={w} seed={seed}");
        assert_state_identical(&mut session, &mut uninterrupted, &ctx);
        drop(session);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_after_crash_never_panics(
        n in 16usize..64,
        tear in 0usize..1 << 12,
        seed in 0u64..1 << 16,
    ) {
        // Bit-level damage on top of a crash: recovery must come up with
        // *some* acknowledged prefix of the stream, never panic.
        let (w, shards) = (16, 2);
        let pts = points(n, seed);
        let dir = scratch();
        let policy = DurabilityPolicy {
            sync: SyncPolicy::Always,
            snapshot_ops: 1 << 20,
        };
        let mut session = open_durable(shards, w, &dir, policy);
        for p in &pts {
            session.insert(p.clone());
        }
        drop(session);

        let log_path = dir.join(dod_wal::LOG_FILE);
        let bytes = std::fs::read(&log_path).expect("log exists");
        let cut = bytes.len() - (tear % bytes.len().max(1)).min(bytes.len());
        std::fs::write(&log_path, &bytes[..cut]).expect("tear the log");

        let mut session = open_durable(shards, w, &dir, policy);
        // Whatever survived is a prefix: window seqs are contiguous and
        // the report is internally consistent.
        let report = session.report();
        let len = session.detector().window_seqs().len();
        prop_assert!(report.outliers.iter().all(|&p| (p as usize) < len.max(1)));
        drop(session);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Time-window sessions log `Advance` ops; a crash right after an
/// advance must not resurrect expired points.
#[test]
fn time_window_advances_survive_crashes() {
    let dir = scratch();
    let policy = DurabilityPolicy {
        sync: SyncPolicy::Always,
        snapshot_ops: 1 << 20,
    };
    let open = |dir: &std::path::Path| {
        DurableSession::open(
            VectorSpace::new(L2, DIM),
            Query::new(R, K).expect("valid query"),
            WindowSpec::Time(10.0),
            Backend::Exhaustive,
            ShardSpec::new(2).with_warmup(4),
            dir,
            policy,
        )
        .expect("open")
    };
    let pts = points(12, 7);
    let (mut session, stats) = open(&dir);
    assert!(stats.is_fresh());
    for (i, p) in pts.iter().enumerate() {
        session.insert_at(p.clone(), i as f64);
    }
    // Expire the first half, then crash.
    let expired = session.advance_to(15.0);
    assert!(!expired.is_empty());
    let want_seqs = session.detector().window_seqs();
    let want = session.report();
    drop(session);

    let (mut recovered, stats) = open(&dir);
    assert!(!stats.is_fresh());
    assert_eq!(recovered.detector().window_seqs(), want_seqs);
    assert_eq!(recovered.detector().now(), 15.0);
    let got = recovered.report();
    assert_eq!(got.outliers, want.outliers);
    assert_eq!(got.candidates, want.candidates);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The pipeline path: ops committed at batch boundaries, final snapshot
/// on clean stop, recovery continues the stream.
#[test]
fn pipeline_sessions_recover_after_stop() {
    let dir = scratch();
    let policy = DurabilityPolicy {
        sync: SyncPolicy::EveryN(4),
        snapshot_ops: 64,
    };
    let pts = points(80, 11);
    let (first, rest) = pts.split_at(50);

    let (session, _) = DurableSession::open(
        VectorSpace::new(L2, DIM),
        Query::new(R, K).expect("valid query"),
        WindowSpec::Count(24),
        Backend::Exhaustive,
        ShardSpec::new(2).with_warmup(4),
        &dir,
        policy,
    )
    .expect("open");
    let telemetry = session.telemetry();
    let pipeline = session.into_pipeline(16);
    for chunk in first.chunks(8) {
        pipeline.insert_many(chunk.to_vec()).expect("insert");
    }
    let want = pipeline.report().expect("report");
    drop(pipeline); // clean stop: final commit + snapshot
    assert!(telemetry.appended_records.get() > 0, "pipeline appended");
    assert!(telemetry.snapshots.get() > 0, "stop snapshotted");

    let (mut recovered, stats) = DurableSession::open(
        VectorSpace::new(L2, DIM),
        Query::new(R, K).expect("valid query"),
        WindowSpec::Count(24),
        Backend::Exhaustive,
        ShardSpec::new(2).with_warmup(4),
        &dir,
        policy,
    )
    .expect("reopen");
    assert_eq!(stats.snapshot_entries, 24, "final snapshot held the window");
    let got = recovered.report();
    assert_eq!(got.outliers, want.outliers, "report survives the stop");

    // The stream continues where it left off, against an uninterrupted
    // reference fed the same 80 points.
    let mut uninterrupted = ShardedStreamDetector::open(
        VectorSpace::new(L2, DIM),
        Query::new(R, K).expect("valid query"),
        WindowSpec::Count(24),
        Backend::Exhaustive,
        ShardSpec::new(2).with_warmup(4),
    )
    .expect("open plain");
    for p in &pts {
        uninterrupted.insert(p.clone());
    }
    for p in rest {
        recovered.insert(p.clone());
    }
    assert_state_identical(&mut recovered, &mut uninterrupted, "pipeline continuation");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The ack-is-durability contract: a batch followed by a commit barrier
/// survives a kill with *no* clean stop. `mem::forget` leaks the
/// pipeline — no `Stop`, no final flush, no exit snapshot — so the only
/// persistence is what the barrier already promised when it returned
/// [`CommitAck::Durable`]. (The leaked router and pump threads idle
/// until the process exits; acceptable in a test.)
#[test]
fn commit_barrier_makes_acked_points_survive_a_router_kill() {
    let dir = scratch();
    let policy = DurabilityPolicy {
        sync: SyncPolicy::Always,
        snapshot_ops: 1 << 20, // pure log replay: no snapshot ever helps
    };
    let pts = points(40, 13);

    let (session, _) = DurableSession::open(
        VectorSpace::new(L2, DIM),
        Query::new(R, K).expect("valid query"),
        WindowSpec::Count(24),
        Backend::Exhaustive,
        ShardSpec::new(2).with_warmup(4),
        &dir,
        policy,
    )
    .expect("open");
    let pipeline = session.into_pipeline(16);
    for chunk in pts.chunks(8) {
        pipeline.insert_many(chunk.to_vec()).expect("insert");
    }
    let ack = pipeline.commit().expect("commit barrier");
    assert_eq!(ack, CommitAck::Durable, "healthy WAL acks durable");
    std::mem::forget(pipeline);

    let (mut recovered, stats) = DurableSession::open(
        VectorSpace::new(L2, DIM),
        Query::new(R, K).expect("valid query"),
        WindowSpec::Count(24),
        Backend::Exhaustive,
        ShardSpec::new(2).with_warmup(4),
        &dir,
        policy,
    )
    .expect("reopen");
    assert!(!stats.is_fresh(), "recovery found the acked batches");
    let mut uninterrupted = ShardedStreamDetector::open(
        VectorSpace::new(L2, DIM),
        Query::new(R, K).expect("valid query"),
        WindowSpec::Count(24),
        Backend::Exhaustive,
        ShardSpec::new(2).with_warmup(4),
    )
    .expect("open plain");
    for p in &pts {
        uninterrupted.insert(p.clone());
    }
    assert_state_identical(&mut recovered, &mut uninterrupted, "acked batch after kill");
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Once the WAL latches into fail-open, the barrier must say so: the
/// server turns [`CommitAck::Degraded`] into `"durable": false` on the
/// ingest ack, which is the client's only honest signal.
#[test]
fn commit_barrier_reports_degraded_after_wal_failure() {
    let dir = scratch();
    let policy = DurabilityPolicy {
        sync: SyncPolicy::Always,
        snapshot_ops: 1, // snapshot on the first commit
    };
    let (session, _) = DurableSession::open(
        VectorSpace::new(L2, DIM),
        Query::new(R, K).expect("valid query"),
        WindowSpec::Count(24),
        Backend::Exhaustive,
        ShardSpec::new(2).with_warmup(4),
        &dir,
        policy,
    )
    .expect("open");
    let telemetry = session.telemetry();
    let pipeline = session.into_pipeline(16);
    // Sabotage the snapshot commit path: its tmp file path is now a
    // directory, so `File::create` fails even when running as root (a
    // chmod-based trick would not: root bypasses permission bits).
    std::fs::create_dir(dir.join("snapshot.tmp")).expect("plant tmp dir");

    pipeline.insert_many(points(8, 17)).expect("insert");
    let ack = pipeline.commit().expect("commit barrier");
    assert_eq!(ack, CommitAck::Degraded, "latched WAL must not ack durable");
    assert!(telemetry.io_errors.get() > 0, "failure was counted");
    drop(pipeline);
    let _ = std::fs::remove_dir_all(&dir);
}
