//! Synthetic *stream* scenarios for the sliding-window engine.
//!
//! A static Gaussian mixture (see [`crate::gaussian`]) models one snapshot;
//! a stream's difficulty comes from how the snapshot *changes under your
//! feet*. [`StreamScenario`] generates an arrival-ordered point sequence
//! with the three behaviors a windowed detector has to survive:
//!
//! * **concentration drift** — cluster centers random-walk, so the inlier
//!   region the window learned slowly stops being where the data is;
//! * **outlier bursts** — short spans where the far-tail rate spikes (the
//!   "anomaly storm" a monitoring deployment exists to catch);
//! * **churn** — every so often a whole cluster teleports, instantly
//!   invalidating part of the learned neighborhood structure.

use crate::gaussian::gauss;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One generated arrival, with provenance for reporting.
#[derive(Debug, Clone)]
pub struct StreamEvent {
    /// The point, in arrival order.
    pub point: Vec<f32>,
    /// Whether it was drawn from the far tail (a *planted* outlier — the
    /// detector's exact answer depends on the window, not on this label).
    pub planted_outlier: bool,
    /// Whether it arrived during an outlier burst.
    pub in_burst: bool,
}

/// Configurable drift/burst/churn stream generator. Build with
/// struct-update syntax from [`StreamScenario::new`], then call
/// [`events`](Self::events) or [`generate`](Self::generate).
#[derive(Debug, Clone)]
pub struct StreamScenario {
    /// Point dimensionality.
    pub dim: usize,
    /// Number of drifting clusters.
    pub clusters: usize,
    /// Scale of initial cluster-center coordinates.
    pub spread: f64,
    /// Per-coordinate standard deviation within a cluster.
    pub cluster_std: f64,
    /// Per-event random-walk step of each center coordinate (concentration
    /// drift; `0` freezes the clusters).
    pub drift: f64,
    /// Baseline probability that an event is a far-tail point.
    pub outlier_rate: f64,
    /// Burst period in events (`0` disables bursts).
    pub burst_every: usize,
    /// Burst length in events.
    pub burst_len: usize,
    /// Far-tail probability during a burst.
    pub burst_rate: f64,
    /// Churn period: every this many events one cluster teleports to a
    /// fresh random location (`0` disables churn).
    pub churn_every: usize,
    /// How far out tail points land, as a multiple of `spread`.
    pub tail_distance: f64,
}

impl StreamScenario {
    /// A scenario with moderate drift, 1% baseline outliers, a short burst
    /// every 400 events and a cluster teleport every 700.
    pub fn new(dim: usize) -> Self {
        StreamScenario {
            dim,
            clusters: 4,
            spread: 10.0,
            cluster_std: 1.0,
            drift: 0.02,
            outlier_rate: 0.01,
            burst_every: 400,
            burst_len: 12,
            burst_rate: 0.5,
            churn_every: 700,
            tail_distance: 8.0,
        }
    }

    /// Generates `n` events in arrival order, deterministically per seed.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `clusters == 0` while `n > 0`.
    pub fn events(&self, n: usize, seed: u64) -> Vec<StreamEvent> {
        assert!(self.dim > 0, "dim must be positive");
        assert!(n == 0 || self.clusters > 0, "need at least one cluster");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut centers: Vec<Vec<f64>> = (0..self.clusters)
            .map(|_| {
                (0..self.dim)
                    .map(|_| rng.gen_range(-self.spread..self.spread))
                    .collect()
            })
            .collect();
        let mut events = Vec::with_capacity(n);
        let mut churned = 0usize;
        for i in 0..n {
            // Concentration drift: every center takes a small step.
            if self.drift > 0.0 {
                for c in &mut centers {
                    for x in c.iter_mut() {
                        *x += self.drift * gauss(&mut rng);
                    }
                }
            }
            // Churn: a whole cluster teleports.
            if self.churn_every > 0 && i > 0 && i % self.churn_every == 0 {
                let c = churned % self.clusters;
                churned += 1;
                for x in &mut centers[c] {
                    *x = rng.gen_range(-self.spread..self.spread);
                }
            }
            let in_burst = self.burst_every > 0
                && i % self.burst_every < self.burst_len
                && i >= self.burst_len;
            let rate = if in_burst {
                self.burst_rate
            } else {
                self.outlier_rate
            };
            let planted_outlier = rng.gen_bool(rate.clamp(0.0, 1.0));
            let point: Vec<f32> = if planted_outlier {
                // Far tail: a random direction at several spreads out.
                let dir: Vec<f64> = (0..self.dim).map(|_| gauss(&mut rng)).collect();
                let norm = dir.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-9);
                let radius = self.spread * self.tail_distance * rng.gen_range(1.0..2.0);
                dir.iter().map(|x| (x / norm * radius) as f32).collect()
            } else {
                let c = &centers[rng.gen_range(0..self.clusters)];
                c.iter()
                    .map(|&x| (x + self.cluster_std * gauss(&mut rng)) as f32)
                    .collect()
            };
            events.push(StreamEvent {
                point,
                planted_outlier,
                in_burst,
            });
        }
        events
    }

    /// Just the points of [`events`](Self::events), in arrival order.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<Vec<f32>> {
        self.events(n, seed).into_iter().map(|e| e.point).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let s = StreamScenario::new(4);
        let a = s.generate(200, 9);
        let b = s.generate(200, 9);
        assert_eq!(a, b);
        let c = s.generate(200, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn events_have_the_requested_shape() {
        let s = StreamScenario::new(3);
        let events = s.events(500, 1);
        assert_eq!(events.len(), 500);
        assert!(events.iter().all(|e| e.point.len() == 3));
    }

    #[test]
    fn planted_outliers_are_genuinely_far() {
        let s = StreamScenario::new(2);
        let events = s.events(2000, 3);
        let planted: Vec<&StreamEvent> = events.iter().filter(|e| e.planted_outlier).collect();
        assert!(!planted.is_empty());
        for e in planted {
            let norm: f64 = e
                .point
                .iter()
                .map(|&x| (x as f64).powi(2))
                .sum::<f64>()
                .sqrt();
            // Tail radius starts at spread * tail_distance = 80; clusters
            // live within a few spreads of the origin.
            assert!(norm > 40.0, "planted outlier too close: {norm}");
        }
    }

    #[test]
    fn bursts_concentrate_outliers() {
        let s = StreamScenario {
            outlier_rate: 0.0,
            burst_rate: 1.0,
            ..StreamScenario::new(2)
        };
        let events = s.events(1200, 5);
        for e in &events {
            assert_eq!(e.planted_outlier, e.in_burst);
        }
        assert!(events.iter().any(|e| e.in_burst));
    }

    #[test]
    fn drift_moves_the_clusters() {
        let s = StreamScenario {
            drift: 0.5,
            outlier_rate: 0.0,
            burst_every: 0,
            churn_every: 0,
            clusters: 1,
            cluster_std: 0.01,
            ..StreamScenario::new(2)
        };
        let points = s.generate(3000, 7);
        let first = &points[0];
        let last = &points[2999];
        let moved: f64 = first
            .iter()
            .zip(last)
            .map(|(&a, &b)| (a as f64 - b as f64).powi(2))
            .sum::<f64>()
            .sqrt();
        // A 0.5-step random walk over 3000 events drifts ~0.5·√3000 ≈ 27
        // per coordinate; even unlucky seeds travel far beyond the 0.01
        // cluster noise.
        assert!(moved > 2.0, "clusters did not drift: {moved}");
    }

    #[test]
    fn zero_events_is_fine() {
        let s = StreamScenario::new(2);
        assert!(s.events(0, 0).is_empty());
    }
}
