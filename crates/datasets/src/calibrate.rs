//! Radius calibration: pick `r` so that a target fraction of objects are
//! outliers for a given `k`.
//!
//! The paper chose Table 2's `(r, k)` per dataset "so that the outlier
//! ratio is small … or clear outliers are identified". An object is an
//! outlier iff its `k`-NN distance exceeds `r`, so the `(1 − ratio)`
//! quantile of the `k`-NN distance distribution is exactly the radius that
//! yields `ratio` outliers. We estimate that quantile from a sample.

use dod_metrics::{Dataset, OrdF64};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BinaryHeap;

/// Exact distance from object `i` to its `k`-th nearest neighbor
/// (excluding itself), by linear scan.
///
/// # Panics
/// Panics if `k == 0` or `k >= data.len()` (no such neighbor exists).
pub fn exact_knn_distance<D: Dataset + ?Sized>(data: &D, i: usize, k: usize) -> f64 {
    assert!(k >= 1, "k must be at least 1");
    assert!(
        k < data.len(),
        "k = {k} but only {} other objects exist",
        data.len().saturating_sub(1)
    );
    let mut heap: BinaryHeap<OrdF64> = BinaryHeap::with_capacity(k + 1);
    for j in 0..data.len() {
        if j == i {
            continue;
        }
        let d = data.dist(i, j);
        if heap.len() < k {
            heap.push(OrdF64(d));
        } else if d < heap.peek().expect("heap is non-empty").0 {
            heap.pop();
            heap.push(OrdF64(d));
        }
    }
    heap.peek().expect("k >= 1 guarantees an entry").0
}

/// `k`-NN distances of `samples` randomly chosen objects (ascending).
pub fn sample_knn_distances<D: Dataset + ?Sized>(
    data: &D,
    k: usize,
    samples: usize,
    seed: u64,
) -> Vec<f64> {
    let n = data.len();
    let mut ids: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    ids.shuffle(&mut rng);
    ids.truncate(samples.min(n));
    let mut dists: Vec<f64> = ids
        .iter()
        .map(|&i| exact_knn_distance(data, i, k))
        .collect();
    dists.sort_by(f64::total_cmp);
    dists
}

/// Estimates the radius `r` for which about `target_ratio` of the objects
/// are `(r, k)`-outliers, from a random sample of `samples` objects.
///
/// A raw `(1 − ratio)` quantile is fragile when the `k`-NN distance
/// distribution is bimodal (dense inliers vs a far sparse tail): Poisson
/// noise in the sample can push the quantile index one slot into the tail
/// mode, inflating `r` by an order of magnitude. We instead take the
/// `(1 − 1.5·ratio)` quantile: the extra half-ratio of margin keeps the
/// index safely inside the inlier mode (the planted tail holds only
/// `0.8·ratio` of the mass), while staying on that mode's upper slope so
/// that *borderline* objects exist on both sides of `r` — those are the
/// objects that become filtering false positives, the paper's Table 7
/// population. The realized outlier ratio lands in `[0.8, 2]×ratio`.
///
/// # Panics
/// Panics if `target_ratio` is outside `(0, 1)`, or `k`/`samples` are
/// infeasible for the dataset size.
pub fn calibrate_r<D: Dataset + ?Sized>(
    data: &D,
    k: usize,
    target_ratio: f64,
    samples: usize,
    seed: u64,
) -> f64 {
    assert!(
        target_ratio > 0.0 && target_ratio < 1.0,
        "target_ratio must be in (0, 1), got {target_ratio}"
    );
    assert!(samples > 0, "need at least one sample");
    let dists = sample_knn_distances(data, k, samples, seed);
    let len = dists.len();
    let q = 1.0 - (1.5 * target_ratio).min(0.9);
    let idx = ((len as f64) * q).floor() as usize;
    dists[idx.min(len - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dod_metrics::{VectorSet, L2};

    fn line(points: &[f32]) -> VectorSet<dod_metrics::L2> {
        VectorSet::from_rows(&points.iter().map(|&p| vec![p]).collect::<Vec<_>>(), L2)
    }

    #[test]
    fn knn_distance_on_a_line() {
        let d = line(&[0.0, 1.0, 2.0, 10.0]);
        assert_eq!(exact_knn_distance(&d, 0, 1), 1.0);
        assert_eq!(exact_knn_distance(&d, 0, 2), 2.0);
        assert_eq!(exact_knn_distance(&d, 3, 1), 8.0);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn knn_rejects_k_zero() {
        let d = line(&[0.0, 1.0]);
        let _ = exact_knn_distance(&d, 0, 0);
    }

    #[test]
    #[should_panic(expected = "other objects exist")]
    fn knn_rejects_k_too_large() {
        let d = line(&[0.0, 1.0]);
        let _ = exact_knn_distance(&d, 0, 2);
    }

    #[test]
    fn sampled_distances_are_sorted() {
        let d = line(&[5.0, 1.0, 9.0, 3.0, 2.0, 8.0]);
        let s = sample_knn_distances(&d, 2, 6, 0);
        assert_eq!(s.len(), 6);
        assert!(s.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn calibrated_r_hits_target_ratio() {
        // 90 clustered points + 10 points far away: ratio 0.1 should give an
        // r separating the cluster (kNN dist tiny) from the tail.
        let mut pts: Vec<f32> = (0..90).map(|i| (i as f32) * 0.01).collect();
        // Quadratically growing gaps keep each tail point's 3-NN distance
        // large and distinct, so the quantile cut is unambiguous.
        pts.extend((0..10).map(|i: i32| 10_000.0 * ((i + 1) * (i + 1)) as f32));
        let d = line(&pts);
        let r = calibrate_r(&d, 3, 0.1, 100, 1);
        // The (1 - 1.5·ratio) quantile sits on the cluster mode's upper
        // slope: r is a cluster-scale value (f32 grid points make the exact
        // boundary value fuzzy), far below the 30 000+ tail.
        assert!((0.015..1000.0).contains(&r), "r = {r}");
        let outliers = (0..100)
            .filter(|&i| exact_knn_distance(&d, i, 3) > r)
            .count();
        assert!(
            (5..=15).contains(&outliers),
            "expected ~10 outliers, got {outliers}"
        );
    }

    #[test]
    #[should_panic(expected = "target_ratio must be in (0, 1)")]
    fn calibrate_rejects_bad_ratio() {
        let d = line(&[0.0, 1.0, 2.0]);
        let _ = calibrate_r(&d, 1, 1.5, 2, 0);
    }
}
