//! Synthetic workload generators mirroring the SIGMOD'21 DOD evaluation.
//!
//! The paper evaluates on seven real datasets (Table 1). This crate builds
//! *synthetic equivalents* with the same dimensionality and distance
//! function, Gaussian / Gaussian-mixture distance distributions (which the
//! paper observes for the real data), power-law neighbor-count distributions
//! (ditto), and a planted sparse tail so that reasonable `(r, k)` settings
//! yield the small outlier ratios of Table 2. See DESIGN.md §3 for why this
//! substitution preserves the evaluation's shape.
//!
//! Entry points:
//! * [`Family`] — the seven dataset families (`deep`, `glove`, …, `words`).
//! * [`Family::generate`] — build a dataset at a given cardinality and seed.
//! * [`calibrate_r`] — pick a radius `r` that hits a target outlier ratio
//!   for a given `k`, the way the paper's authors chose Table 2 parameters.
//! * [`StreamScenario`] — arrival-ordered streams with concentration
//!   drift, outlier bursts and cluster churn, for the sliding-window
//!   engine.
//! * [`farthest_first`] — greedy k-center pivot sampling, used by the
//!   sharded streaming engine to partition a metric stream.

pub mod calibrate;
pub mod families;
pub mod gaussian;
pub mod pivots;
pub mod spec;
pub mod stream;
pub mod words;

pub use calibrate::{calibrate_r, exact_knn_distance, sample_knn_distances};
pub use families::{AnyDataset, AnyEngine, Family, FamilyMismatch, Generated};
pub use gaussian::{ClusterGeometry, GaussianMixture, MixtureShape};
pub use pivots::farthest_first;
pub use spec::EngineSpec;
pub use stream::{StreamEvent, StreamScenario};
pub use words::WordGenerator;
