//! [`EngineSpec`] — a declarative recipe for a resident [`AnyEngine`].
//!
//! A serving layer that keeps *many* engines resident needs a value it
//! can parse off a wire, hash into a listing, and turn into a built
//! engine: which family of data, how many objects, which seed, which
//! index. This is that value. It deliberately speaks the same canonical
//! spellings the rest of the wire does — [`Family::name`] for the data
//! and the [`IndexSpec`] `Display`/`FromStr` round-trip for the index —
//! so a `PUT /v1/engines/{name}` body and a `GET /v1/engines` listing
//! entry are the same text.

use crate::families::{AnyEngine, Family};
use dod_core::{DodError, IndexSpec};
use std::io::Read;

/// A recipe for building (or re-loading) a named [`AnyEngine`]: the
/// dataset coordinates plus the index to serve it from.
#[derive(Debug, Clone)]
pub struct EngineSpec {
    /// Dataset family (fixes dimensionality and metric).
    pub family: Family,
    /// Number of objects to generate.
    pub n: usize,
    /// Generation seed — datasets are deterministic per `(family, n,
    /// seed)`, which is what makes a spec a complete engine identity.
    pub seed: u64,
    /// The index to build over the data.
    pub index: IndexSpec,
}

impl EngineSpec {
    /// Generates the dataset and builds the index — the expensive,
    /// build-once step the registry amortizes.
    pub fn build(&self) -> Result<AnyEngine, DodError> {
        self.index.validate()?;
        let data = self.family.generate(self.n, self.seed).data;
        data.into_engine().index(self.index.clone()).build()
    }

    /// Re-generates the dataset and restores a persisted index from `r`
    /// (an [`AnyEngine::save`] payload). The payload's dataset digest is
    /// checked against the regenerated data, so a spec that does not
    /// match the saved engine is refused with [`DodError::Corrupt`].
    pub fn load<R: Read>(&self, r: R) -> Result<AnyEngine, DodError> {
        let data = self.family.generate(self.n, self.seed).data;
        AnyEngine::load(data, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dod_core::Query;

    #[test]
    fn build_matches_a_hand_built_engine() {
        let spec = EngineSpec {
            family: Family::Sift,
            n: 200,
            seed: 5,
            index: "vptree".parse().expect("spec"),
        };
        let engine = spec.build().expect("build");
        let twin = Family::Sift
            .generate(200, 5)
            .data
            .into_engine()
            .index(IndexSpec::VpTree)
            .build()
            .expect("twin");
        let q = Query::new(80.0, 40).expect("query");
        assert_eq!(
            engine.query(q).expect("query").outliers,
            twin.query(q).expect("query").outliers
        );
    }

    #[test]
    fn load_round_trips_and_rejects_a_wrong_spec() {
        let spec = EngineSpec {
            family: Family::Glove,
            n: 150,
            seed: 3,
            index: "vptree".parse().expect("spec"),
        };
        let engine = spec.build().expect("build");
        let mut bytes = Vec::new();
        engine.save(&mut bytes).expect("save");
        let reloaded = spec.load(&bytes[..]).expect("load");
        let q = Query::new(0.5, 20).expect("query");
        assert_eq!(
            reloaded.query(q).expect("query").outliers,
            engine.query(q).expect("query").outliers
        );
        // A different seed regenerates different points: the digest check
        // refuses to marry the saved index to them.
        let wrong = EngineSpec { seed: 4, ..spec };
        assert!(matches!(
            wrong.load(&bytes[..]),
            Err(DodError::Corrupt { .. })
        ));
    }

    #[test]
    fn invalid_index_is_rejected_before_generation() {
        let spec = EngineSpec {
            family: Family::Sift,
            n: 100,
            seed: 1,
            index: IndexSpec::Nsw { degree: 0 },
        };
        assert!(matches!(spec.build(), Err(DodError::InvalidSpec { .. })));
    }
}
