//! String workload generator for the edit-distance family (Words dataset).
//!
//! The paper's Words dataset holds 466k English words of length 1–45 whose
//! outliers are long, rare words (§6.2 notes outliers "have large
//! dimensionality", i.e. long strings). We emulate that: a vocabulary of
//! root words, inliers derived from roots by at most a couple of random
//! edits (so each root forms a dense edit-distance cluster), and a tail of
//! long uniformly random strings that no root resembles.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator for edit-distance workloads.
#[derive(Debug, Clone)]
pub struct WordGenerator {
    /// Number of strings to generate.
    pub n: usize,
    /// Number of root words (dense clusters).
    pub roots: usize,
    /// Minimum root length.
    pub min_len: usize,
    /// Maximum root length for the dense part.
    pub max_len: usize,
    /// Maximum number of random edits applied to a root per inlier.
    pub max_edits: usize,
    /// Fraction of long random strings planted as the sparse tail.
    pub tail_fraction: f64,
    /// Length range of tail strings (long → far from all roots).
    pub tail_len: (usize, usize),
}

impl WordGenerator {
    /// Paper-like defaults: lengths 3–12 for the dense part, tail strings of
    /// length 20–45.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            roots: (n / 40).max(1),
            min_len: 3,
            max_len: 12,
            max_edits: 2,
            tail_fraction: 0.02,
            tail_len: (20, 45),
        }
    }

    /// Generates the strings, deterministically for a given seed.
    pub fn generate(&self, seed: u64) -> Vec<String> {
        let mut rng = StdRng::seed_from_u64(seed);
        let roots: Vec<String> = (0..self.roots)
            .map(|_| random_word(&mut rng, self.min_len, self.max_len))
            .collect();

        let n_tail = (self.n as f64 * self.tail_fraction).round() as usize;
        let mut out = Vec::with_capacity(self.n);
        for i in 0..self.n {
            if i < self.n - n_tail {
                let root = &roots[rng.gen_range(0..roots.len())];
                out.push(perturb(root, rng.gen_range(0..=self.max_edits), &mut rng));
            } else {
                out.push(random_word(&mut rng, self.tail_len.0, self.tail_len.1));
            }
        }
        out
    }
}

fn random_word<R: Rng>(rng: &mut R, min_len: usize, max_len: usize) -> String {
    let len = rng.gen_range(min_len..=max_len);
    (0..len)
        .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
        .collect()
}

/// Applies `edits` random single-character insertions, deletions or
/// substitutions to `word`.
fn perturb<R: Rng>(word: &str, edits: usize, rng: &mut R) -> String {
    let mut chars: Vec<u8> = word.as_bytes().to_vec();
    for _ in 0..edits {
        let c = b'a' + rng.gen_range(0..26u8);
        match rng.gen_range(0..3u8) {
            0 if !chars.is_empty() => {
                // substitution
                let i = rng.gen_range(0..chars.len());
                chars[i] = c;
            }
            1 if !chars.is_empty() => {
                // deletion
                let i = rng.gen_range(0..chars.len());
                chars.remove(i);
            }
            _ => {
                // insertion
                let i = rng.gen_range(0..=chars.len());
                chars.insert(i, c);
            }
        }
    }
    String::from_utf8(chars).expect("ASCII edits preserve UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dod_metrics::edit_distance;

    #[test]
    fn generates_requested_count() {
        let words = WordGenerator::new(500).generate(1);
        assert_eq!(words.len(), 500);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = WordGenerator::new(100);
        assert_eq!(g.generate(11), g.generate(11));
    }

    #[test]
    fn inliers_stay_near_some_root() {
        let g = WordGenerator::new(300);
        let words = g.generate(3);
        let n_tail = (300.0 * g.tail_fraction).round() as usize;
        // Every inlier must be within max_edits of at least one other string
        // in its cluster region — spot-check that the dense part's strings
        // have short lengths (roots are at most max_len, +max_edits inserts).
        for w in &words[..300 - n_tail] {
            assert!(
                w.len() <= g.max_len + g.max_edits,
                "dense-part word too long: {w}"
            );
        }
    }

    #[test]
    fn tail_words_are_far_from_dense_part() {
        let g = WordGenerator::new(400);
        let words = g.generate(7);
        let n_tail = (400.0 * g.tail_fraction).round() as usize;
        let (dense, tail) = words.split_at(400 - n_tail);
        for t in tail {
            let nearest = dense
                .iter()
                .map(|d| edit_distance(t.as_bytes(), d.as_bytes()))
                .min()
                .unwrap();
            // Tail length ≥ 20, dense length ≤ 14 → distance ≥ 6 by the
            // length-difference lower bound.
            assert!(nearest >= 6, "tail word {t} too close ({nearest})");
        }
    }

    #[test]
    fn perturb_respects_edit_budget() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let w = random_word(&mut rng, 4, 10);
            let e = rng.gen_range(0..3usize);
            let p = perturb(&w, e, &mut rng);
            assert!(
                edit_distance(w.as_bytes(), p.as_bytes()) <= e as u32,
                "edit distance exceeded budget"
            );
        }
    }

    #[test]
    fn words_are_lowercase_ascii() {
        let words = WordGenerator::new(200).generate(9);
        assert!(words
            .iter()
            .all(|w| w.bytes().all(|b| b.is_ascii_lowercase())));
    }
}
