//! Pivot sampling for metric-space partitioning.
//!
//! The sharded streaming engine (`dod_shard`) splits a window across
//! shards by assigning every point to its nearest *pivot*. Pivot quality
//! never affects exactness (boundary points are replicated), only load
//! balance — the goal is pivots that carve the space into roughly equal,
//! well-separated cells. The classic greedy **farthest-first traversal**
//! (Gonzalez' 2-approximate k-center) does exactly that, and for data of
//! low doubling dimension — the regime metric partitioning provably helps
//! in, cf. metric DBSCAN via pivot partitioning (arXiv:2002.11933) — its
//! cells have near-optimal diameter.

/// Picks `count` pivot indices from `points` by greedy farthest-first
/// traversal: start at `points[0]`, then repeatedly take the point
/// farthest from every pivot chosen so far (ties broken by lowest index,
/// so the selection is deterministic).
///
/// Returns fewer than `count` indices when `points` has fewer points; an
/// empty slice yields no pivots. `O(count · points.len())` distance
/// evaluations.
pub fn farthest_first<P>(points: &[P], count: usize, dist: impl Fn(&P, &P) -> f64) -> Vec<usize> {
    let n = points.len();
    let want = count.min(n);
    if want == 0 {
        return Vec::new();
    }
    let mut chosen = Vec::with_capacity(want);
    chosen.push(0);
    // min_dist[i] = distance from points[i] to its nearest chosen pivot.
    let mut min_dist: Vec<f64> = points.iter().map(|p| dist(&points[0], p)).collect();
    while chosen.len() < want {
        let (far, &d) = min_dist
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))
            .expect("points is non-empty");
        if d <= 0.0 {
            // Every remaining point coincides with a pivot; more pivots
            // would be duplicates. Callers pad if they need exactly
            // `count`.
            break;
        }
        chosen.push(far);
        for (i, p) in points.iter().enumerate() {
            let d = dist(&points[far], p);
            if d < min_dist[i] {
                min_dist[i] = d;
            }
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d1(a: &f64, b: &f64) -> f64 {
        (a - b).abs()
    }

    #[test]
    fn spreads_pivots_across_clusters() {
        // Three separated 1-d clusters: one pivot should land in each.
        let pts: Vec<f64> = vec![0.0, 0.1, 0.2, 10.0, 10.1, 10.2, 20.0, 20.1, 20.2];
        let pivots = farthest_first(&pts, 3, d1);
        assert_eq!(pivots.len(), 3);
        let mut regions: Vec<usize> = pivots
            .iter()
            .map(|&i| (pts[i] / 10.0).round() as usize)
            .collect();
        regions.sort_unstable();
        assert_eq!(regions, vec![0, 1, 2], "pivots {pivots:?} missed a cluster");
    }

    #[test]
    fn deterministic_and_starts_at_zero() {
        let pts: Vec<f64> = vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let a = farthest_first(&pts, 4, d1);
        let b = farthest_first(&pts, 4, d1);
        assert_eq!(a, b);
        assert_eq!(a[0], 0);
    }

    #[test]
    fn fewer_points_than_pivots() {
        let pts: Vec<f64> = vec![1.0, 2.0];
        assert_eq!(farthest_first(&pts, 5, d1).len(), 2);
        assert!(farthest_first(&Vec::<f64>::new(), 3, d1).is_empty());
    }

    #[test]
    fn duplicates_stop_early() {
        let pts: Vec<f64> = vec![7.0; 6];
        // All points coincide: one pivot covers everything.
        assert_eq!(farthest_first(&pts, 3, d1), vec![0]);
    }
}
