//! Gaussian-mixture vector generator with planted sparse tail.
//!
//! All vector families in the paper's evaluation have Gaussian or
//! Gaussian-mixture distance distributions (§6 "Datasets"). We reproduce
//! that with a mixture of spherical Gaussians whose component weights follow
//! a power law — dense clusters hold most points (inliers with many
//! neighbors), light clusters give inliers in sparse areas (the objects the
//! paper blames for MRPG's residual false positives), and a small uniform
//! "tail" fraction lands far from every cluster (the planted outliers).
//!
//! Sizing rule: families pick `clusters` and `weight_exponent` so that the
//! lightest cluster still holds a few times `k` members. Then every
//! inlier's k-NN distance stays at *cluster* scale, the calibrated `r`
//! lands between the inlier and tail modes of the k-NN distance
//! distribution, and a query ball captures only a small fraction of `P` —
//! the regime the paper's real datasets are in (and the one where the
//! O(n²) baselines actually hurt).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Post-processing applied per generated coordinate, emulating the value
/// domains of the paper's datasets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MixtureShape {
    /// Raw Gaussian coordinates (Deep-, Glove-, HEPMASS-like).
    Plain,
    /// Clamp to `[0, hi]` and zero out coordinates outside a per-cluster
    /// active mask (MNIST-like sparse images, SIFT-like histograms).
    SparseNonNegative {
        /// Upper clamp of the value domain (255 for images, 218 for SIFT).
        hi: f32,
        /// Fraction of dimensions active per cluster (rest forced to zero).
        density: f64,
    },
    /// Clamp to `[0, hi]` (PAMAP2-like normalized sensor readings).
    NonNegative {
        /// Upper clamp of the value domain (1e5 for PAMAP2's normalization).
        hi: f32,
    },
}

/// Shape of a single mixture component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClusterGeometry {
    /// Spherical Gaussian ball (classic mixture).
    Ball,
    /// A smooth random curve (sum of a few harmonics per dimension) with
    /// Gaussian noise around it: a 1-d manifold embedded in the ambient
    /// space.
    ///
    /// This is what real evaluation data looks like locally — PAMAP2 *is*
    /// sensor trajectories, deep/SIFT features live on low-dimensional
    /// manifolds — and it is what creates scale separation at laptop
    /// cardinalities: the k-NN distance of an inlier is set by the spacing
    /// *along* the curve, which is orders of magnitude below the curve's
    /// extent, so a calibrated `r`-ball captures only a small fraction of
    /// `P` (the regime where the paper's O(n²) baselines actually lose).
    Curve {
        /// Amplitude of the harmonics in units of `cluster_std`.
        extent: f64,
        /// Number of harmonics per dimension (controls curliness).
        harmonics: usize,
    },
}

/// Configurable Gaussian-mixture generator. Build with struct-update syntax
/// from [`GaussianMixture::new`], then call [`generate`](Self::generate).
#[derive(Debug, Clone)]
pub struct GaussianMixture {
    /// Number of objects to generate.
    pub n: usize,
    /// Dimensionality of every object.
    pub dim: usize,
    /// Number of mixture components.
    pub clusters: usize,
    /// Scale of cluster-center coordinates (centers uniform in
    /// `center_offset ± spread`).
    pub spread: f64,
    /// Additive offset of cluster-center coordinates; lets bounded domains
    /// (e.g. `[0, 255]` images) keep their clusters interior instead of
    /// clamped onto the boundary.
    pub center_offset: f64,
    /// Per-coordinate standard deviation within a cluster.
    pub cluster_std: f64,
    /// Exponent of the power-law component weights (0 = uniform; larger
    /// values concentrate mass in the first clusters).
    pub weight_exponent: f64,
    /// Fraction of objects drawn from the far-away uniform tail.
    pub tail_fraction: f64,
    /// How many `cluster_std`s beyond the cluster shell tail points start.
    pub tail_distance: f64,
    /// Degrees of freedom of the per-point radial scale: each inlier's
    /// noise is multiplied by `sqrt(dof / chi²_dof)`, turning the Gaussian
    /// ball into a Student-t-like cloud with a dense core and a diffuse
    /// halo. `0` disables the halo (pure Gaussian).
    ///
    /// Real datasets have exactly this multi-scale density: it produces
    /// "inliers in sparse areas" (the objects the paper blames for residual
    /// false positives, §6.2) and keeps r/2-ball clusterings (SNIF) from
    /// swallowing whole clusters.
    pub halo_dof: usize,
    /// Geometry of each component.
    pub geometry: ClusterGeometry,
    /// Value-domain post-processing.
    pub shape: MixtureShape,
}

impl GaussianMixture {
    /// A mixture with paper-like defaults: 20 clusters, power-law weights,
    /// 0.8% far tail.
    pub fn new(n: usize, dim: usize) -> Self {
        Self {
            n,
            dim,
            clusters: 20,
            spread: 10.0,
            center_offset: 0.0,
            cluster_std: 1.0,
            weight_exponent: 1.0,
            tail_fraction: 0.008,
            tail_distance: 12.0,
            halo_dof: 0,
            geometry: ClusterGeometry::Ball,
            shape: MixtureShape::Plain,
        }
    }

    /// Generates the flat row-major `n × dim` buffer, deterministically for
    /// a given seed.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `clusters == 0` while `n > 0`.
    pub fn generate(&self, seed: u64) -> Vec<f32> {
        assert!(self.dim > 0, "dim must be positive");
        assert!(
            self.n == 0 || self.clusters > 0,
            "need at least one cluster"
        );
        let mut rng = StdRng::seed_from_u64(seed);

        // Cluster centers and power-law weights.
        let centers: Vec<Vec<f64>> = (0..self.clusters)
            .map(|_| {
                (0..self.dim)
                    .map(|_| self.center_offset + rng.gen_range(-self.spread..self.spread))
                    .collect()
            })
            .collect();
        let weights: Vec<f64> = (1..=self.clusters)
            .map(|i| (i as f64).powf(-self.weight_exponent))
            .collect();
        let total_weight: f64 = weights.iter().sum();

        // Curve parameters per cluster: amplitudes and phases of each
        // harmonic in each dimension.
        let curves: Option<Vec<Vec<(f64, f64)>>> = match self.geometry {
            ClusterGeometry::Curve { extent, harmonics } => Some(
                (0..self.clusters)
                    .map(|_| {
                        (0..self.dim * harmonics)
                            .map(|i| {
                                let m = (i % harmonics + 1) as f64;
                                let amp = self.cluster_std * extent / m * gauss(&mut rng);
                                let phase = rng.gen_range(0.0..std::f64::consts::TAU);
                                (amp, phase)
                            })
                            .collect()
                    })
                    .collect(),
            ),
            ClusterGeometry::Ball => None,
        };

        // Per-cluster active-dimension masks for sparse shapes.
        let masks: Option<Vec<Vec<bool>>> = match self.shape {
            MixtureShape::SparseNonNegative { density, .. } => Some(
                (0..self.clusters)
                    .map(|_| (0..self.dim).map(|_| rng.gen_bool(density)).collect())
                    .collect(),
            ),
            _ => None,
        };

        let mut data = Vec::with_capacity(self.n * self.dim);
        let n_tail = (self.n as f64 * self.tail_fraction).round() as usize;
        for i in 0..self.n {
            if i < self.n - n_tail {
                // Inlier: pick a cluster by weight, jitter around its center.
                let mut pick = rng.gen_range(0.0..total_weight);
                let mut c = 0;
                for (ci, w) in weights.iter().enumerate() {
                    if pick < *w {
                        c = ci;
                        break;
                    }
                    pick -= w;
                }
                // Heavy-tailed radial scale: most points sit in the core
                // (s ≈ 1), a minority form the sparse halo (s up to ~10).
                let s = if self.halo_dof == 0 {
                    1.0
                } else {
                    let chi2: f64 = (0..self.halo_dof).map(|_| gauss(&mut rng).powi(2)).sum();
                    (self.halo_dof as f64 / chi2.max(1e-9)).sqrt().min(16.0)
                };
                // Position along the curve (curve geometry only).
                let t = rng.gen_range(0.0..std::f64::consts::TAU);
                for d in 0..self.dim {
                    let masked = masks.as_ref().is_some_and(|m| !m[c][d]);
                    let v = if masked {
                        0.0
                    } else {
                        let on_manifold = match (self.geometry, curves.as_ref()) {
                            (ClusterGeometry::Curve { harmonics, .. }, Some(cs)) => {
                                let params = &cs[c][d * harmonics..(d + 1) * harmonics];
                                centers[c][d]
                                    + params
                                        .iter()
                                        .enumerate()
                                        .map(|(m, &(amp, phase))| {
                                            amp * ((m + 1) as f64 * t + phase).sin()
                                        })
                                        .sum::<f64>()
                            }
                            _ => centers[c][d],
                        };
                        on_manifold + gauss(&mut rng) * self.cluster_std * s
                    };
                    data.push(self.clip(v));
                }
            } else {
                // Tail point: a random direction pushed far outside the
                // cluster shells (distance grows with the sqrt of dim the
                // same way the within-cluster distances do, so the planted
                // tail stays "far" in every dimensionality).
                let c = rng.gen_range(0..self.clusters);
                let shift = self.cluster_std * self.tail_distance * rng.gen_range(1.0..2.0);
                let dir: Vec<f64> = (0..self.dim).map(|_| gauss(&mut rng)).collect();
                let norm = dir.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
                for d in 0..self.dim {
                    let v = centers[c][d]
                        + dir[d] / norm * shift * (self.dim as f64).sqrt()
                        + gauss(&mut rng) * self.cluster_std * 0.2;
                    data.push(self.clip(v));
                }
            }
        }
        data
    }

    fn clip(&self, v: f64) -> f32 {
        match self.shape {
            MixtureShape::Plain => v as f32,
            MixtureShape::SparseNonNegative { hi, .. } | MixtureShape::NonNegative { hi } => {
                v.clamp(0.0, hi as f64) as f32
            }
        }
    }
}

/// One standard normal sample (Box–Muller; two uniforms per call keeps the
/// generator branch-free and deterministic).
/// Standard normal via Box-Muller (shared with the stream scenarios).
pub(crate) fn gauss<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let g = GaussianMixture::new(100, 8);
        let data = g.generate(7);
        assert_eq!(data.len(), 800);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = GaussianMixture::new(50, 4);
        assert_eq!(g.generate(42), g.generate(42));
    }

    #[test]
    fn different_seeds_differ() {
        let g = GaussianMixture::new(50, 4);
        assert_ne!(g.generate(1), g.generate(2));
    }

    #[test]
    fn nonnegative_shape_clamps() {
        let g = GaussianMixture {
            shape: MixtureShape::NonNegative { hi: 3.0 },
            ..GaussianMixture::new(200, 6)
        };
        let data = g.generate(5);
        assert!(data.iter().all(|&v| (0.0..=3.0).contains(&v)));
    }

    #[test]
    fn sparse_shape_zeroes_masked_dims() {
        let g = GaussianMixture {
            clusters: 2,
            shape: MixtureShape::SparseNonNegative {
                hi: 255.0,
                density: 0.2,
            },
            tail_fraction: 0.0,
            ..GaussianMixture::new(300, 50)
        };
        let data = g.generate(9);
        let zeros = data.iter().filter(|&&v| v == 0.0).count();
        // ~80% masked plus clamped negatives: well over half must be zero.
        assert!(
            zeros as f64 > data.len() as f64 * 0.5,
            "only {zeros}/{} zeros",
            data.len()
        );
    }

    #[test]
    fn tail_points_are_far_from_cluster_points() {
        let g = GaussianMixture {
            clusters: 3,
            tail_fraction: 0.1,
            ..GaussianMixture::new(100, 8)
        };
        let data = g.generate(3);
        let n_tail = 10;
        let dim = 8;
        // Mean pairwise distance between the first 20 inliers.
        let dist = |a: usize, b: usize| -> f64 {
            (0..dim)
                .map(|d| (data[a * dim + d] as f64 - data[b * dim + d] as f64).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        let tail_start = 100 - n_tail;
        // Every tail point's nearest inlier must be farther than the typical
        // within-cluster distance (cluster_std * sqrt(2 * dim) ≈ 4).
        for t in tail_start..100 {
            let nearest = (0..tail_start)
                .map(|i| dist(t, i))
                .fold(f64::INFINITY, f64::min);
            assert!(nearest > 4.0, "tail point {t} too close: {nearest}");
        }
    }

    #[test]
    fn zero_n_is_ok() {
        let g = GaussianMixture::new(0, 4);
        assert!(g.generate(1).is_empty());
    }
}
