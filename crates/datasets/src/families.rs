//! The seven dataset families of the paper's evaluation (Table 1) and their
//! synthetic equivalents.

use crate::gaussian::{ClusterGeometry, GaussianMixture, MixtureShape};
use crate::words::WordGenerator;
use dod_metrics::{Angular, Dataset, MetricKind, StringSet, VectorSet, L1, L2, L4};
use serde::{Deserialize, Serialize};

/// A dataset family, named after the real dataset it emulates.
///
/// Dimensionality and distance function match the paper's Table 1; the
/// default `k`, graph degree `K` and target outlier ratio match Table 2 and
/// §6 "Algorithms".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Family {
    /// Deep1B descriptors: 96-d, L2 (paper: 10M objects).
    Deep,
    /// GloVe word embeddings: 25-d, angular distance (paper: 1.19M).
    Glove,
    /// HEPMASS physics events: 27-d, L1 (paper: 7M).
    Hepmass,
    /// MNIST images: 784-d, L4 (paper: 3M sampled).
    Mnist,
    /// PAMAP2 activity monitoring: 51-d, L2, domain `[0, 1e5]` (paper: 2.8M).
    Pamap2,
    /// SIFT descriptors: 128-d, L2 (paper: 1M).
    Sift,
    /// English words: strings of length 1–45, edit distance (paper: 466k).
    Words,
}

impl Family {
    /// All families, in the paper's table order.
    pub const ALL: [Family; 7] = [
        Family::Deep,
        Family::Glove,
        Family::Hepmass,
        Family::Mnist,
        Family::Pamap2,
        Family::Sift,
        Family::Words,
    ];

    /// Lower-case name used on the command line and in reports.
    pub fn name(self) -> &'static str {
        match self {
            Family::Deep => "deep",
            Family::Glove => "glove",
            Family::Hepmass => "hepmass",
            Family::Mnist => "mnist",
            Family::Pamap2 => "pamap2",
            Family::Sift => "sift",
            Family::Words => "words",
        }
    }

    /// Parses a family from its lower-case [`name`](Family::name).
    pub fn parse(s: &str) -> Option<Family> {
        Family::ALL.into_iter().find(|f| f.name() == s)
    }

    /// Distance function of this family (paper Table 1).
    pub fn metric(self) -> MetricKind {
        match self {
            Family::Deep | Family::Pamap2 | Family::Sift => MetricKind::L2,
            Family::Glove => MetricKind::Angular,
            Family::Hepmass => MetricKind::L1,
            Family::Mnist => MetricKind::L4,
            Family::Words => MetricKind::Edit,
        }
    }

    /// Vector dimensionality (paper Table 1); 0 for the string family.
    pub fn dim(self) -> usize {
        match self {
            Family::Deep => 96,
            Family::Glove => 25,
            Family::Hepmass => 27,
            Family::Mnist => 784,
            Family::Pamap2 => 51,
            Family::Sift => 128,
            Family::Words => 0,
        }
    }

    /// Default count threshold `k` (paper Table 2).
    pub fn default_k(self) -> usize {
        match self {
            Family::Deep | Family::Hepmass | Family::Mnist => 50,
            Family::Glove => 20,
            Family::Pamap2 => 100,
            Family::Sift => 40,
            Family::Words => 15,
        }
    }

    /// Outlier ratio the default parameters target (paper Table 2).
    pub fn target_outlier_ratio(self) -> f64 {
        match self {
            Family::Deep => 0.0062,
            Family::Glove => 0.0055,
            Family::Hepmass => 0.0065,
            Family::Mnist => 0.0034,
            Family::Pamap2 => 0.0061,
            Family::Sift => 0.0104,
            Family::Words => 0.0416,
        }
    }

    /// Proximity-graph degree `K` (paper §6: 40 for PAMAP2, 25 otherwise).
    pub fn graph_degree(self) -> usize {
        match self {
            Family::Pamap2 => 40,
            _ => 25,
        }
    }

    /// Default cardinality used by the experiment harness at scale 1.0.
    ///
    /// The paper runs 0.47M–10M objects on a 48-thread Xeon; these defaults
    /// keep each full-table experiment in minutes on a 2-core laptop while
    /// preserving every relative comparison. Heavier metrics (784-d L4,
    /// quadratic edit distance) get smaller defaults, mirroring how the
    /// paper's per-dataset wall-clock budget was balanced.
    pub fn default_n(self) -> usize {
        match self {
            Family::Deep => 12_000,
            Family::Glove => 12_000,
            Family::Hepmass => 12_000,
            Family::Mnist => 2_500,
            Family::Pamap2 => 10_000,
            Family::Sift => 8_000,
            Family::Words => 6_000,
        }
    }

    /// Generates the synthetic equivalent with `n` objects.
    pub fn generate(self, n: usize, seed: u64) -> Generated {
        let ratio = self.target_outlier_ratio();
        let data = match self {
            Family::Deep => {
                // Sparser than the rest (the paper observes Deep's usable r
                // sits far from its distance-distribution mean): more, more
                // lightly-populated clusters.
                let g = GaussianMixture {
                    clusters: 6,
                    weight_exponent: 0.5,
                    geometry: ClusterGeometry::Curve {
                        extent: 20.0,
                        harmonics: 3,
                    },
                    tail_distance: 60.0,
                    tail_fraction: ratio * 0.8,
                    ..GaussianMixture::new(n, self.dim())
                };
                AnyDataset::L2(VectorSet::from_flat(g.generate(seed), self.dim(), L2))
            }
            Family::Glove => {
                // Directional clusters; normalization happens in the metric.
                let g = GaussianMixture {
                    clusters: 4,
                    weight_exponent: 0.4,
                    geometry: ClusterGeometry::Curve {
                        extent: 20.0,
                        harmonics: 3,
                    },
                    tail_distance: 60.0,
                    spread: 10.0,
                    cluster_std: 1.0,
                    tail_fraction: ratio * 0.8,
                    ..GaussianMixture::new(n, self.dim())
                };
                AnyDataset::Angular(VectorSet::from_flat(g.generate(seed), self.dim(), Angular))
            }
            Family::Hepmass => {
                let g = GaussianMixture {
                    clusters: 6,
                    weight_exponent: 0.5,
                    geometry: ClusterGeometry::Curve {
                        extent: 20.0,
                        harmonics: 3,
                    },
                    tail_distance: 60.0,
                    tail_fraction: ratio * 0.8,
                    ..GaussianMixture::new(n, self.dim())
                };
                AnyDataset::L1(VectorSet::from_flat(g.generate(seed), self.dim(), L1))
            }
            Family::Mnist => {
                let g = GaussianMixture {
                    clusters: 8,
                    weight_exponent: 0.5,
                    geometry: ClusterGeometry::Curve {
                        extent: 20.0,
                        harmonics: 3,
                    },
                    tail_distance: 60.0,
                    spread: 60.0,
                    center_offset: 128.0,
                    cluster_std: 20.0,
                    tail_fraction: ratio * 0.8,
                    shape: MixtureShape::SparseNonNegative {
                        hi: 255.0,
                        density: 0.25,
                    },
                    ..GaussianMixture::new(n, self.dim())
                };
                AnyDataset::L4(VectorSet::from_flat(g.generate(seed), self.dim(), L4))
            }
            Family::Pamap2 => {
                let g = GaussianMixture {
                    clusters: 5,
                    weight_exponent: 0.4,
                    geometry: ClusterGeometry::Curve {
                        extent: 20.0,
                        harmonics: 3,
                    },
                    tail_distance: 60.0,
                    spread: 25_000.0,
                    center_offset: 50_000.0,
                    cluster_std: 1_500.0,
                    tail_fraction: ratio * 0.8,
                    shape: MixtureShape::NonNegative { hi: 100_000.0 },
                    ..GaussianMixture::new(n, self.dim())
                };
                AnyDataset::L2(VectorSet::from_flat(g.generate(seed), self.dim(), L2))
            }
            Family::Sift => {
                let g = GaussianMixture {
                    clusters: 6,
                    weight_exponent: 0.5,
                    geometry: ClusterGeometry::Curve {
                        extent: 20.0,
                        harmonics: 3,
                    },
                    tail_distance: 60.0,
                    spread: 40.0,
                    center_offset: 60.0,
                    cluster_std: 12.0,
                    tail_fraction: ratio * 0.8,
                    shape: MixtureShape::SparseNonNegative {
                        hi: 218.0,
                        density: 0.9,
                    },
                    ..GaussianMixture::new(n, self.dim())
                };
                AnyDataset::L2(VectorSet::from_flat(g.generate(seed), self.dim(), L2))
            }
            Family::Words => {
                let g = WordGenerator {
                    tail_fraction: ratio * 0.8,
                    ..WordGenerator::new(n)
                };
                AnyDataset::Strings(StringSet::new(g.generate(seed)))
            }
        };
        Generated {
            family: self,
            data,
            seed,
        }
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete dataset of any supported space, dispatching [`Dataset`] calls
/// to the underlying typed set.
pub enum AnyDataset {
    /// Vectors under the L1 norm.
    L1(VectorSet<L1>),
    /// Vectors under the L2 norm.
    L2(VectorSet<L2>),
    /// Vectors under the L4 norm.
    L4(VectorSet<L4>),
    /// Unit vectors under angular distance.
    Angular(VectorSet<Angular>),
    /// Strings under edit distance.
    Strings(StringSet),
}

/// A typed-access request hit a dataset of a different space — e.g. asking
/// for the L2 vectors of the angular `glove` family.
///
/// Returned instead of panicking so library consumers can surface the
/// mismatch at their own boundary (`?` it up, or `expect` it where a
/// family's space is an invariant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FamilyMismatch {
    /// The space the caller asked for.
    pub expected: &'static str,
    /// The space the dataset actually is.
    pub found: &'static str,
}

impl std::fmt::Display for FamilyMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "expected a {} dataset, found a {} dataset",
            self.expected, self.found
        )
    }
}

impl std::error::Error for FamilyMismatch {}

/// A mismatch is absorbed into the workspace-wide error enum, so service
/// code handling a typed-dataset request can `?` it straight into the same
/// `Result<_, DodError>` its engine calls return.
impl From<FamilyMismatch> for dod_core::DodError {
    fn from(m: FamilyMismatch) -> Self {
        dod_core::DodError::FamilyMismatch {
            expected: m.expected,
            found: m.found,
        }
    }
}

/// An [`Engine`](dod_core::Engine) serving a dataset-erased
/// [`AnyDataset`] — the type a service holds when the metric family is
/// decided by configuration (or by the request) rather than at compile
/// time.
///
/// This is the *typed* replacement for the ad-hoc
/// `Engine<Box<dyn Dataset>>` pattern: `AnyDataset` is itself a
/// [`Dataset`] (a 5-way enum dispatch, no allocation, no vtable), so the
/// erased engine keeps the concrete engine's whole API — including
/// [`save`](dod_core::Engine::save)/[`load`](dod_core::Engine::load),
/// whose dataset checksum sees straight through the erasure.
///
/// ```
/// use dod_core::{IndexSpec, Query};
/// use dod_datasets::{AnyEngine, Family};
///
/// let gen = Family::Sift.generate(400, 7);
/// let r = gen.calibrate_default_r(100); // ~1% outliers at the family's k
/// let engine: AnyEngine = gen.data.into_engine().index(IndexSpec::VpTree).build()?;
/// let report = engine.query(Query::new(r, 40)?)?;
/// assert!(!report.outliers.is_empty() && report.outliers.len() < 40);
/// # Ok::<(), dod_core::DodError>(())
/// ```
pub type AnyEngine = dod_core::Engine<AnyDataset>;

impl AnyDataset {
    /// Starts configuring an [`AnyEngine`] over this dataset — the typed
    /// constructor for a dataset-erased engine
    /// (`Engine::builder(any_dataset)` spelled at the place that owns the
    /// erasure).
    pub fn into_engine(self) -> dod_core::EngineBuilder<AnyDataset> {
        dod_core::Engine::builder(self)
    }

    /// The space this dataset lives in, as a short name.
    pub fn kind_name(&self) -> &'static str {
        match self {
            AnyDataset::L1(_) => "L1",
            AnyDataset::L2(_) => "L2",
            AnyDataset::L4(_) => "L4",
            AnyDataset::Angular(_) => "angular",
            AnyDataset::Strings(_) => "string",
        }
    }

    /// The L2 vector set, or a typed error describing the mismatch.
    pub fn as_l2(&self) -> Result<&VectorSet<L2>, FamilyMismatch> {
        match self {
            AnyDataset::L2(s) => Ok(s),
            other => Err(FamilyMismatch {
                expected: "L2",
                found: other.kind_name(),
            }),
        }
    }

    /// The L1 vector set, or a typed error describing the mismatch.
    pub fn as_l1(&self) -> Result<&VectorSet<L1>, FamilyMismatch> {
        match self {
            AnyDataset::L1(s) => Ok(s),
            other => Err(FamilyMismatch {
                expected: "L1",
                found: other.kind_name(),
            }),
        }
    }

    /// The L4 vector set, or a typed error describing the mismatch.
    pub fn as_l4(&self) -> Result<&VectorSet<L4>, FamilyMismatch> {
        match self {
            AnyDataset::L4(s) => Ok(s),
            other => Err(FamilyMismatch {
                expected: "L4",
                found: other.kind_name(),
            }),
        }
    }

    /// The angular vector set, or a typed error describing the mismatch.
    pub fn as_angular(&self) -> Result<&VectorSet<Angular>, FamilyMismatch> {
        match self {
            AnyDataset::Angular(s) => Ok(s),
            other => Err(FamilyMismatch {
                expected: "angular",
                found: other.kind_name(),
            }),
        }
    }

    /// The string set, or a typed error describing the mismatch.
    pub fn as_strings(&self) -> Result<&StringSet, FamilyMismatch> {
        match self {
            AnyDataset::Strings(s) => Ok(s),
            other => Err(FamilyMismatch {
                expected: "string",
                found: other.kind_name(),
            }),
        }
    }

    /// Bytes of raw object storage (for the index-size experiment).
    pub fn data_bytes(&self) -> usize {
        match self {
            AnyDataset::L1(s) => s.data_bytes(),
            AnyDataset::L2(s) => s.data_bytes(),
            AnyDataset::L4(s) => s.data_bytes(),
            AnyDataset::Angular(s) => s.data_bytes(),
            AnyDataset::Strings(s) => s.data_bytes(),
        }
    }
}

impl Dataset for AnyDataset {
    fn len(&self) -> usize {
        match self {
            AnyDataset::L1(s) => s.len(),
            AnyDataset::L2(s) => s.len(),
            AnyDataset::L4(s) => s.len(),
            AnyDataset::Angular(s) => s.len(),
            AnyDataset::Strings(s) => s.len(),
        }
    }

    #[inline]
    fn dist(&self, i: usize, j: usize) -> f64 {
        match self {
            AnyDataset::L1(s) => s.dist(i, j),
            AnyDataset::L2(s) => s.dist(i, j),
            AnyDataset::L4(s) => s.dist(i, j),
            AnyDataset::Angular(s) => s.dist(i, j),
            AnyDataset::Strings(s) => s.dist(i, j),
        }
    }
}

/// A generated dataset together with its provenance.
pub struct Generated {
    /// The family this dataset was generated from.
    pub family: Family,
    /// The objects.
    pub data: AnyDataset,
    /// Seed used for generation (datasets are deterministic per seed).
    pub seed: u64,
}

impl Generated {
    /// Calibrates the default radius for this dataset: the `r` that makes
    /// about [`Family::target_outlier_ratio`] of objects outliers at the
    /// family's default `k`. Deterministic given the dataset.
    pub fn calibrate_default_r(&self, samples: usize) -> f64 {
        crate::calibrate::calibrate_r(
            &self.data,
            self.family.default_k(),
            self.family.target_outlier_ratio(),
            samples,
            self.seed ^ 0x5eed_ca1b,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for f in Family::ALL {
            assert_eq!(Family::parse(f.name()), Some(f));
        }
        assert_eq!(Family::parse("nope"), None);
    }

    #[test]
    fn dimensions_match_table1() {
        assert_eq!(Family::Deep.dim(), 96);
        assert_eq!(Family::Glove.dim(), 25);
        assert_eq!(Family::Hepmass.dim(), 27);
        assert_eq!(Family::Mnist.dim(), 784);
        assert_eq!(Family::Pamap2.dim(), 51);
        assert_eq!(Family::Sift.dim(), 128);
    }

    #[test]
    fn metrics_match_table1() {
        assert_eq!(Family::Deep.metric(), MetricKind::L2);
        assert_eq!(Family::Glove.metric(), MetricKind::Angular);
        assert_eq!(Family::Hepmass.metric(), MetricKind::L1);
        assert_eq!(Family::Mnist.metric(), MetricKind::L4);
        assert_eq!(Family::Words.metric(), MetricKind::Edit);
    }

    #[test]
    fn k_defaults_match_table2() {
        assert_eq!(Family::Deep.default_k(), 50);
        assert_eq!(Family::Glove.default_k(), 20);
        assert_eq!(Family::Pamap2.default_k(), 100);
        assert_eq!(Family::Words.default_k(), 15);
    }

    #[test]
    fn graph_degree_matches_paper() {
        assert_eq!(Family::Pamap2.graph_degree(), 40);
        assert_eq!(Family::Sift.graph_degree(), 25);
    }

    #[test]
    fn every_family_generates() {
        for f in Family::ALL {
            let g = f.generate(200, 3);
            assert_eq!(g.data.len(), 200, "{f}");
            // Distances must be finite, non-negative and symmetric.
            let d01 = g.data.dist(0, 1);
            assert!(d01.is_finite() && d01 >= 0.0, "{f}");
            assert_eq!(d01, g.data.dist(1, 0), "{f}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for f in [Family::Glove, Family::Words] {
            let a = f.generate(100, 9);
            let b = f.generate(100, 9);
            for i in 0..10 {
                assert_eq!(a.data.dist(i, 99 - i), b.data.dist(i, 99 - i));
            }
        }
    }

    #[test]
    fn glove_is_normalized_angular() {
        let g = Family::Glove.generate(50, 4);
        // Angular distances live in [0, π].
        for i in 0..50 {
            let d = g.data.dist(0, i);
            assert!((0.0..=std::f64::consts::PI + 1e-9).contains(&d));
        }
    }

    #[test]
    fn pamap2_is_clamped_to_domain() {
        let g = Family::Pamap2.generate(100, 6);
        let s = g.data.as_l2().expect("pamap2 should be an L2 vector set");
        for i in 0..100 {
            assert!(s.row(i).iter().all(|&v| (0.0..=100_000.0).contains(&v)));
        }
    }

    #[test]
    fn typed_access_reports_mismatches_without_panicking() {
        let glove = Family::Glove.generate(10, 1);
        let err = glove.data.as_l2().err().expect("glove is not L2");
        assert_eq!(
            err,
            FamilyMismatch {
                expected: "L2",
                found: "angular"
            }
        );
        assert_eq!(
            err.to_string(),
            "expected a L2 dataset, found a angular dataset"
        );
        assert!(glove.data.as_angular().is_ok());
        assert!(glove.data.as_strings().is_err());
        let words = Family::Words.generate(10, 1);
        assert!(words.data.as_strings().is_ok());
        assert!(words.data.as_l1().is_err());
        assert!(words.data.as_l4().is_err());
        assert_eq!(words.data.kind_name(), "string");
    }

    #[test]
    fn mismatches_absorb_into_the_workspace_error() {
        let glove = Family::Glove.generate(10, 1);
        let err: dod_core::DodError = glove.data.as_l2().err().expect("glove is not L2").into();
        assert!(matches!(
            err,
            dod_core::DodError::FamilyMismatch {
                expected: "L2",
                found: "angular"
            }
        ));
        // `?` works against a DodError-returning service boundary.
        fn typed(d: &AnyDataset) -> Result<usize, dod_core::DodError> {
            Ok(d.as_strings()?.len())
        }
        assert!(typed(&glove.data).is_err());
        let words = Family::Words.generate(10, 1);
        assert_eq!(typed(&words.data).unwrap(), 10);
    }

    #[test]
    fn any_engine_serves_and_round_trips_any_family() {
        use dod_core::{IndexSpec, Query};
        for f in [Family::Sift, Family::Words] {
            let gen = f.generate(250, 3);
            let r = gen.calibrate_default_r(100);
            let truth = dod_core::nested_loop::detect(
                &gen.data,
                &dod_core::DodParams::new(r, f.default_k()),
                0,
            )
            .outliers;
            let engine: AnyEngine = f
                .generate(250, 3)
                .data
                .into_engine()
                .index(IndexSpec::VpTree)
                .build()
                .expect("build");
            let query = Query::new(r, f.default_k()).expect("query");
            assert_eq!(engine.query(query).expect("query").outliers, truth, "{f}");
            // Persistence sees through the erasure: the digest check
            // rejects a different family, the round trip answers the same.
            let mut bytes = Vec::new();
            engine.save(&mut bytes).expect("save");
            let reloaded = AnyEngine::load(f.generate(250, 3).data, &bytes[..]).expect("load");
            assert_eq!(reloaded.query(query).expect("query").outliers, truth);
            let other = Family::Glove.generate(250, 3).data;
            assert!(AnyEngine::load(other, &bytes[..]).is_err());
        }
    }

    #[test]
    fn calibration_separates_planted_tail() {
        let g = Family::Sift.generate(800, 5);
        let r = g.calibrate_default_r(200);
        assert!(r.is_finite() && r > 0.0);
    }
}
