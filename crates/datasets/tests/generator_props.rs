//! Property tests on the workload generators: arbitrary parameter
//! combinations must produce well-formed datasets (right count, finite
//! distances, metric sanity) — the experiment harness sweeps these knobs.

use dod_datasets::{ClusterGeometry, GaussianMixture, MixtureShape, WordGenerator};
use dod_metrics::{Dataset, StringSet, VectorSet, L2};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn mixture_always_produces_finite_vectors(
        n in 0usize..400,
        dim in 1usize..24,
        clusters in 1usize..8,
        exponent in 0.0f64..2.0,
        tail in 0.0f64..0.1,
        seed in 0u64..1000,
    ) {
        let g = GaussianMixture {
            clusters,
            weight_exponent: exponent,
            tail_fraction: tail,
            ..GaussianMixture::new(n, dim)
        };
        let data = g.generate(seed);
        prop_assert_eq!(data.len(), n * dim);
        prop_assert!(data.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn curve_geometry_is_well_formed(
        n in 2usize..300,
        dim in 1usize..16,
        extent in 1.0f64..30.0,
        harmonics in 1usize..5,
        seed in 0u64..500,
    ) {
        let g = GaussianMixture {
            clusters: 3,
            geometry: ClusterGeometry::Curve { extent, harmonics },
            ..GaussianMixture::new(n, dim)
        };
        let set = VectorSet::from_flat(g.generate(seed), dim, L2);
        prop_assert_eq!(set.len(), n);
        // Distances finite and symmetric on a few probes.
        for i in 0..n.min(5) {
            let d = set.dist(i, n - 1 - i);
            prop_assert!(d.is_finite() && d >= 0.0);
            prop_assert_eq!(d, set.dist(n - 1 - i, i));
        }
    }

    #[test]
    fn clamped_shapes_respect_their_domain(
        n in 1usize..200,
        hi in 1.0f32..1000.0,
        density in 0.05f64..1.0,
        seed in 0u64..500,
    ) {
        let g = GaussianMixture {
            shape: MixtureShape::SparseNonNegative { hi, density },
            center_offset: hi as f64 / 2.0,
            spread: hi as f64 / 4.0,
            ..GaussianMixture::new(n, 8)
        };
        let data = g.generate(seed);
        prop_assert!(data.iter().all(|&v| (0.0..=hi).contains(&v)));
    }

    #[test]
    fn word_generator_respects_length_bounds(
        n in 1usize..300,
        seed in 0u64..500,
    ) {
        let g = WordGenerator::new(n);
        let words = g.generate(seed);
        prop_assert_eq!(words.len(), n);
        let max_possible = g.tail_len.1.max(g.max_len + g.max_edits);
        for w in &words {
            prop_assert!(!w.is_empty() || g.min_len == 0 || g.max_edits > 0);
            prop_assert!(w.len() <= max_possible, "{} exceeds {}", w.len(), max_possible);
        }
        let set = StringSet::new(words.iter().map(String::as_str));
        prop_assert!(set.dist(0, n - 1).is_finite());
    }

    #[test]
    fn halo_keeps_data_finite(
        n in 1usize..200,
        dof in 1usize..8,
        seed in 0u64..200,
    ) {
        let g = GaussianMixture {
            halo_dof: dof,
            ..GaussianMixture::new(n, 6)
        };
        let data = g.generate(seed);
        prop_assert!(data.iter().all(|v| v.is_finite()));
    }
}
