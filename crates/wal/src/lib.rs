//! Durable streaming sessions: a write-ahead log of accepted ingest
//! operations plus periodic window snapshots, so a sliding-window
//! detector can be rebuilt to its exact pre-crash state by replay.
//!
//! A session's window is irreplaceable stream state (that is why the
//! serving layer refuses new sessions at capacity instead of evicting).
//! This crate makes it survive the process: every accepted operation is
//! appended to `wal.log` *before* it is acknowledged, and every so often
//! the live window is written as `snapshot.bin`, after which the log
//! tail is truncated — the compaction discipline of LSM write-ahead
//! logs, shrunk to a single bounded window.
//!
//! # On-disk layout
//!
//! Both files use the length-prefixed little-endian framing of the graph
//! codec (`dod_graph::serialize`) with the FNV-1a digest discipline of
//! `Engine::save`:
//!
//! ```text
//! wal.log       magic "DODL" | version u8 |
//!               frames: (payload_len u32 | fnv1a u64 | payload)…
//!   payload     ops_before u64 | op_count u32 | ops…
//!   op          tag u8 (0 insert, 1 advance) | time f64 | [point]
//!
//! snapshot.bin  magic "DODS" | version u8 | ops_applied u64 |
//!               base_seq u64 | now f64 | entry_count u64 |
//!               entries: (time f64 | point)… | fnv1a u64 (whole prefix)
//! ```
//!
//! `ops_before` counts every operation in the session's history before
//! the frame, and the snapshot records `ops_applied`, the history prefix
//! it covers. Snapshots commit atomically (`snapshot.tmp` → fsync →
//! rename) *before* the log is truncated, so a crash between the two
//! leaves stale frames in the log — recovery skips any frame with
//! `ops_before < ops_applied`, which is always a whole-frame skip
//! because snapshots only ever cut at frame boundaries.
//!
//! # Recovery semantics
//!
//! [`SessionWal::open`] never panics on a damaged log. A torn tail —
//! truncation or bit rot anywhere after the last intact frame — is cut
//! off (the file is truncated back to the last frame whose checksum
//! verifies) and recovery proceeds with what survived, exactly the
//! contract of the LevelDB log reader. Only structural impossibilities
//! (wrong magic, unsupported version, a checksummed frame whose payload
//! is malformed, a snapshot failing its digest) surface as
//! [`DodError::Corrupt`] with the byte offset — those mean the wrong
//! file or real corruption, not a crashed writer.

use dod_core::telemetry::Counter;
use dod_core::DodError;
use dod_metrics::Fnv1a;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::marker::PhantomData;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const LOG_MAGIC: &[u8; 4] = b"DODL";
const SNAP_MAGIC: &[u8; 4] = b"DODS";
const VERSION: u8 = 1;
/// Bytes of the log's magic + version header (everything before the
/// first frame).
pub const LOG_HEADER_LEN: u64 = 5;
/// Upper bound on one frame's payload: a frame is at most one scheduling
/// round of batched ops, far below this; anything larger is garbage from
/// a torn length prefix.
const MAX_FRAME_BYTES: u32 = 1 << 28;

/// The log file's name inside a session directory.
pub const LOG_FILE: &str = "wal.log";
/// The snapshot file's name inside a session directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";

/// When appended frames are forced to stable storage.
///
/// The policy trades ingest throughput against the tail of acknowledged
/// operations an OS crash (not a process crash — the page cache survives
/// those) can lose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fdatasync` after every appended frame: no acknowledged operation
    /// is ever lost, at the cost of one disk round-trip per batch.
    Always,
    /// `fdatasync` every `n` appended frames (clamped to ≥ 1): bounded
    /// loss window, amortized sync cost.
    EveryN(u32),
    /// Never sync on append (the OS flushes on its own schedule);
    /// snapshots and shutdown still sync. Fastest, widest loss window.
    Never,
}

/// Lifetime counters of one session's WAL, shared (`Arc`) with scrapers
/// so `/metrics` can export `dod_wal_*` without touching the log.
#[derive(Debug, Default)]
pub struct WalTelemetry {
    /// Frames appended to the log.
    pub appended_records: Counter,
    /// Total bytes appended (framing included).
    pub appended_bytes: Counter,
    /// Operations appended across all frames.
    pub appended_ops: Counter,
    /// `fsync`/`fdatasync` calls issued.
    pub fsyncs: Counter,
    /// Snapshots committed.
    pub snapshots: Counter,
    /// Wall time spent writing snapshots, nanoseconds.
    pub snapshot_nanos: Counter,
    /// Frames replayed by the last `open`.
    pub replayed_records: Counter,
    /// Operations replayed by the last `open`.
    pub replayed_ops: Counter,
    /// Wall time the caller spent replaying recovered state, nanoseconds
    /// (recorded by the detector layer, not by this crate).
    pub replay_nanos: Counter,
    /// Torn tails truncated by `open`.
    pub torn_tails: Counter,
    /// Append/sync failures (the session keeps serving; durability is
    /// degraded and this counter is the alarm).
    pub io_errors: Counter,
}

/// A point type that can travel through the log. Implemented for the
/// vector and string points the stream detectors serve; the encoding
/// must be self-delimiting (the frame checksum covers it, the cursor
/// bounds-checks it).
pub trait WalPoint: Sized + Clone {
    /// Appends the encoded point to `buf`.
    fn encode_into(&self, buf: &mut Vec<u8>);
    /// Decodes one point, consuming exactly what `encode_into` produced.
    fn decode_from(cur: &mut Cursor<'_>) -> Result<Self, DodError>;
}

impl WalPoint for Vec<f32> {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(self.len() as u32).to_le_bytes());
        for v in self {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn decode_from(cur: &mut Cursor<'_>) -> Result<Self, DodError> {
        let n = cur.u32("truncated point length")? as usize;
        let bytes = cur.take(n * 4, "truncated point data")?;
        Ok(bytes
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes(b.try_into().expect("4 bytes")))
            .collect())
    }
}

impl WalPoint for String {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(self.len() as u32).to_le_bytes());
        buf.extend_from_slice(self.as_bytes());
    }

    fn decode_from(cur: &mut Cursor<'_>) -> Result<Self, DodError> {
        let n = cur.u32("truncated string length")? as usize;
        let at = cur.offset();
        let bytes = cur.take(n, "truncated string data")?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DodError::Corrupt {
            offset: at,
            reason: "logged string is not UTF-8",
        })
    }
}

/// One logged operation — the full vocabulary a detector's window state
/// is a function of. Insertion times are normalized to the explicitly
/// assigned timestamp (auto-ticked inserts log the tick they received),
/// so replay is `insert_at`/`advance_to` all the way down.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp<P> {
    /// A point accepted at `time`.
    Insert {
        /// Assigned (possibly auto-ticked) timestamp.
        time: f64,
        /// The raw (unprepared) point.
        point: P,
    },
    /// A clock advance without insertion (time windows expire).
    Advance {
        /// Advanced-to timestamp.
        time: f64,
    },
}

/// A window-consistent cut of the detector's state: everything replay
/// needs to rebuild the global window *without* the pre-window history.
///
/// Deliberately absent: pivots and the cell→shard assignment. Any fixed
/// partition answers exactly (see `dod_shard`'s proof), so recovery
/// re-partitions from the replayed window instead of persisting routing
/// state that only affects load balance.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotState<P> {
    /// History operations this snapshot covers; log frames below this
    /// are stale.
    pub ops_applied: u64,
    /// Global seq of the oldest window entry (the next seq to assign
    /// when the window is empty) — recovery restarts the seq clock here.
    pub base_seq: u64,
    /// Latest observed timestamp (may exceed the last entry's time after
    /// a trailing advance; `-inf` when nothing was ever ingested).
    pub now: f64,
    /// Window entries `(time, point)`, oldest first, seqs contiguous
    /// from `base_seq`.
    pub entries: Vec<(f64, P)>,
}

/// What [`SessionWal::open`] found on disk.
#[derive(Debug)]
pub struct Recovered<P> {
    /// The committed snapshot, if one exists.
    pub snapshot: Option<SnapshotState<P>>,
    /// Post-snapshot operations that survived in the log, in append
    /// order.
    pub ops: Vec<WalOp<P>>,
    /// Byte offset the log was truncated back to when a torn tail was
    /// found (`None` for a clean log).
    pub truncated_at: Option<u64>,
}

impl<P> Recovered<P> {
    /// `true` when nothing was on disk — a fresh session, not a
    /// recovery.
    pub fn is_empty(&self) -> bool {
        self.snapshot.is_none() && self.ops.is_empty()
    }
}

/// One session's write-ahead log: an append handle positioned at the
/// log's tail, plus the snapshot installer. Created (and recovered) by
/// [`open`](SessionWal::open).
#[derive(Debug)]
pub struct SessionWal<P: WalPoint> {
    dir: PathBuf,
    log: File,
    sync: SyncPolicy,
    appends_since_sync: u32,
    /// Total history operations appended (snapshot-covered + logged).
    ops_appended: u64,
    telemetry: Arc<WalTelemetry>,
    scratch: Vec<u8>,
    _point: PhantomData<fn() -> P>,
}

impl<P: WalPoint> SessionWal<P> {
    /// Opens (or creates) the session directory, recovers whatever
    /// snapshot and log frames survive, truncates any torn tail, and
    /// returns the WAL positioned for appending plus the recovered
    /// state.
    pub fn open(dir: &Path, sync: SyncPolicy) -> Result<(Self, Recovered<P>), DodError> {
        fs::create_dir_all(dir)?;
        let telemetry = Arc::new(WalTelemetry::default());

        // An orphaned snapshot.tmp is an uncommitted snapshot from a
        // crashed writer; the committed snapshot.bin (if any) wins.
        let tmp = dir.join("snapshot.tmp");
        if tmp.exists() {
            let _ = fs::remove_file(&tmp);
        }
        let snap_path = dir.join(SNAPSHOT_FILE);
        let snapshot: Option<SnapshotState<P>> = if snap_path.exists() {
            Some(decode_snapshot(&fs::read(&snap_path)?)?)
        } else {
            None
        };
        let ops_applied = snapshot.as_ref().map_or(0, |s| s.ops_applied);

        let mut log = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(dir.join(LOG_FILE))?;
        let mut bytes = Vec::new();
        log.read_to_end(&mut bytes)?;

        let mut ops: Vec<WalOp<P>> = Vec::new();
        let mut truncated_at = None;
        let mut ops_appended = ops_applied;
        if bytes.is_empty() {
            log.write_all(LOG_MAGIC)?;
            log.write_all(&[VERSION])?;
        } else if bytes.len() < LOG_HEADER_LEN as usize {
            // Crash during creation: the header itself is torn. Nothing
            // was ever framed, so reset to a fresh header. (set_len does
            // not move the write position — seek back explicitly.)
            log.set_len(0)?;
            log.seek(SeekFrom::Start(0))?;
            log.write_all(LOG_MAGIC)?;
            log.write_all(&[VERSION])?;
            truncated_at = Some(0);
            telemetry.torn_tails.inc();
        } else if &bytes[..4] != LOG_MAGIC {
            return Err(DodError::Corrupt {
                offset: 0,
                reason: "bad log magic",
            });
        } else if bytes[4] != VERSION {
            return Err(DodError::Corrupt {
                offset: 4,
                reason: "unsupported log version",
            });
        } else {
            let mut at = LOG_HEADER_LEN as usize;
            let mut torn = false;
            while at < bytes.len() {
                match read_frame::<P>(&bytes, at)? {
                    Frame::Torn => {
                        torn = true;
                        break;
                    }
                    Frame::Record {
                        ops_before,
                        ops: frame_ops,
                        end,
                    } => {
                        if ops_before + frame_ops.len() as u64 <= ops_applied {
                            // Stale pre-snapshot frame (crash between
                            // snapshot commit and log truncation).
                            at = end;
                            continue;
                        }
                        if ops_before < ops_applied || ops_before != ops_appended {
                            // A frame straddling the snapshot cut or out
                            // of sequence: snapshots only cut at frame
                            // boundaries and appends never skip, so the
                            // log stops making sense here. Stop cleanly
                            // at the last frame that did.
                            torn = true;
                            break;
                        }
                        ops_appended += frame_ops.len() as u64;
                        telemetry.replayed_records.inc();
                        telemetry.replayed_ops.add(frame_ops.len() as u64);
                        ops.extend(frame_ops);
                        at = end;
                    }
                }
            }
            if torn {
                log.set_len(at as u64)?;
                truncated_at = Some(at as u64);
                telemetry.torn_tails.inc();
            }
        }
        log.seek(SeekFrom::End(0))?;

        Ok((
            SessionWal {
                dir: dir.to_path_buf(),
                log,
                sync,
                appends_since_sync: 0,
                ops_appended,
                telemetry,
                scratch: Vec::new(),
                _point: PhantomData,
            },
            Recovered {
                snapshot,
                ops,
                truncated_at,
            },
        ))
    }

    /// The session directory this WAL lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The shared lifetime counters.
    pub fn telemetry(&self) -> Arc<WalTelemetry> {
        Arc::clone(&self.telemetry)
    }

    /// Total history operations appended (snapshot-covered + logged).
    pub fn ops_appended(&self) -> u64 {
        self.ops_appended
    }

    /// Appends one frame of operations and applies the sync policy. Must
    /// run *before* the operations' effects are acknowledged — that
    /// ordering is the whole durability contract.
    pub fn append(&mut self, ops: &[WalOp<P>]) -> Result<(), DodError> {
        if ops.is_empty() {
            return Ok(());
        }
        let mut payload = std::mem::take(&mut self.scratch);
        payload.clear();
        payload.extend_from_slice(&self.ops_appended.to_le_bytes());
        payload.extend_from_slice(&(ops.len() as u32).to_le_bytes());
        for op in ops {
            match op {
                WalOp::Insert { time, point } => {
                    payload.push(0);
                    payload.extend_from_slice(&time.to_le_bytes());
                    point.encode_into(&mut payload);
                }
                WalOp::Advance { time } => {
                    payload.push(1);
                    payload.extend_from_slice(&time.to_le_bytes());
                }
            }
        }
        let digest = Fnv1a::new().write(&payload).finish();
        let frame_len = 12 + payload.len() as u64;
        let write = (|| -> std::io::Result<()> {
            self.log.write_all(&(payload.len() as u32).to_le_bytes())?;
            self.log.write_all(&digest.to_le_bytes())?;
            self.log.write_all(&payload)?;
            match self.sync {
                SyncPolicy::Always => {
                    self.log.sync_data()?;
                    self.telemetry.fsyncs.inc();
                }
                SyncPolicy::EveryN(n) => {
                    self.appends_since_sync += 1;
                    if self.appends_since_sync >= n.max(1) {
                        self.log.sync_data()?;
                        self.telemetry.fsyncs.inc();
                        self.appends_since_sync = 0;
                    }
                }
                SyncPolicy::Never => {}
            }
            Ok(())
        })();
        self.scratch = payload;
        match write {
            Ok(()) => {
                self.ops_appended += ops.len() as u64;
                self.telemetry.appended_records.inc();
                self.telemetry.appended_ops.add(ops.len() as u64);
                self.telemetry.appended_bytes.add(frame_len);
                Ok(())
            }
            Err(e) => {
                self.telemetry.io_errors.inc();
                Err(DodError::Io(e))
            }
        }
    }

    /// Forces everything appended so far to stable storage.
    pub fn sync(&mut self) -> Result<(), DodError> {
        self.log.sync_data().map_err(|e| {
            self.telemetry.io_errors.inc();
            DodError::Io(e)
        })?;
        self.telemetry.fsyncs.inc();
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Commits a window snapshot atomically (`snapshot.tmp` → fsync →
    /// rename), then truncates the log back to its header. The snapshot
    /// must cut exactly at the current append boundary
    /// (`snap.ops_applied == self.ops_appended()`), which is what makes
    /// every log frame either fully covered or fully post-snapshot.
    pub fn install_snapshot(&mut self, snap: &SnapshotState<P>) -> Result<(), DodError> {
        assert_eq!(
            snap.ops_applied, self.ops_appended,
            "snapshot must cut at the append boundary"
        );
        let t0 = std::time::Instant::now();
        let mut buf = Vec::with_capacity(64 + snap.entries.len() * 16);
        buf.extend_from_slice(SNAP_MAGIC);
        buf.push(VERSION);
        buf.extend_from_slice(&snap.ops_applied.to_le_bytes());
        buf.extend_from_slice(&snap.base_seq.to_le_bytes());
        buf.extend_from_slice(&snap.now.to_le_bytes());
        buf.extend_from_slice(&(snap.entries.len() as u64).to_le_bytes());
        for (time, point) in &snap.entries {
            buf.extend_from_slice(&time.to_le_bytes());
            point.encode_into(&mut buf);
        }
        let digest = Fnv1a::new().write(&buf).finish();
        buf.extend_from_slice(&digest.to_le_bytes());

        let tmp = self.dir.join("snapshot.tmp");
        let commit = (|| -> std::io::Result<()> {
            let mut f = File::create(&tmp)?;
            f.write_all(&buf)?;
            f.sync_all()?;
            fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))?;
            // Make the rename itself durable (best-effort: directory
            // handles are not syncable on every platform).
            if let Ok(d) = File::open(&self.dir) {
                let _ = d.sync_all();
            }
            // Only now is the log tail redundant.
            self.log.set_len(LOG_HEADER_LEN)?;
            self.log.seek(SeekFrom::Start(LOG_HEADER_LEN))?;
            self.log.sync_all()?;
            Ok(())
        })();
        match commit {
            Ok(()) => {
                self.appends_since_sync = 0;
                self.telemetry.fsyncs.add(2);
                self.telemetry.snapshots.inc();
                self.telemetry
                    .snapshot_nanos
                    .add(t0.elapsed().as_nanos() as u64);
                Ok(())
            }
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                self.telemetry.io_errors.inc();
                Err(DodError::Io(e))
            }
        }
    }
}

impl<P: WalPoint> Drop for SessionWal<P> {
    fn drop(&mut self) {
        // Best-effort: a clean shutdown leaves nothing in the page cache
        // regardless of the append policy.
        let _ = self.log.sync_all();
    }
}

/// Removes a session's durable files (log, snapshot, any orphaned tmp)
/// and the directory itself. Used by `DELETE /v1/sessions/{id}`.
///
/// Two outcomes are *not* errors: a file or directory already gone
/// (`NotFound` — deletion is idempotent), and a directory still holding
/// files this module does not own (`DirectoryNotEmpty` — e.g. a
/// manifest the caller removes separately). Everything else — a
/// permission failure, `wal.log` somehow being a directory — propagates:
/// a delete that leaves recoverable state on disk must not report
/// success.
pub fn remove_session_dir(dir: &Path) -> std::io::Result<()> {
    use std::io::ErrorKind;
    for f in [LOG_FILE, SNAPSHOT_FILE, "snapshot.tmp"] {
        match fs::remove_file(dir.join(f)) {
            Ok(()) => {}
            Err(e) if e.kind() == ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
    }
    match fs::remove_dir(dir) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == ErrorKind::NotFound || e.kind() == ErrorKind::DirectoryNotEmpty => {
            Ok(())
        }
        Err(e) => Err(e),
    }
}

enum Frame<P> {
    /// A frame whose checksum verified.
    Record {
        ops_before: u64,
        ops: Vec<WalOp<P>>,
        end: usize,
    },
    /// The bytes at `at` are not an intact frame: torn tail.
    Torn,
}

/// Reads one frame at `at`. Checksum or length failures are `Torn`
/// (recovery stops cleanly); a payload that passes its checksum but does
/// not parse is `Corrupt` (that is structural damage, not a torn write).
fn read_frame<P: WalPoint>(bytes: &[u8], at: usize) -> Result<Frame<P>, DodError> {
    let rem = &bytes[at..];
    if rem.len() < 12 {
        return Ok(Frame::Torn);
    }
    let len = u32::from_le_bytes(rem[0..4].try_into().expect("4 bytes"));
    if len == 0 || len > MAX_FRAME_BYTES || rem.len() < 12 + len as usize {
        return Ok(Frame::Torn);
    }
    let stored = u64::from_le_bytes(rem[4..12].try_into().expect("8 bytes"));
    let payload = &rem[12..12 + len as usize];
    if Fnv1a::new().write(payload).finish() != stored {
        return Ok(Frame::Torn);
    }
    let mut cur = Cursor::new(payload, at + 12);
    let ops_before = cur.u64("truncated ops_before")?;
    let count = cur.u32("truncated op count")?;
    let mut ops = Vec::with_capacity(count.min(65_536) as usize);
    for _ in 0..count {
        let tag = cur.u8("truncated op tag")?;
        let time = cur.f64("truncated op time")?;
        ops.push(match tag {
            0 => WalOp::Insert {
                time,
                point: P::decode_from(&mut cur)?,
            },
            1 => WalOp::Advance { time },
            _ => {
                return Err(DodError::Corrupt {
                    offset: cur.offset() - 9,
                    reason: "unknown op tag",
                })
            }
        });
    }
    if !cur.is_empty() {
        return Err(DodError::Corrupt {
            offset: cur.offset(),
            reason: "trailing bytes inside a checksummed frame",
        });
    }
    Ok(Frame::Record {
        ops_before,
        ops,
        end: at + 12 + len as usize,
    })
}

fn decode_snapshot<P: WalPoint>(bytes: &[u8]) -> Result<SnapshotState<P>, DodError> {
    if bytes.len() < 8 {
        return Err(DodError::Corrupt {
            offset: bytes.len(),
            reason: "snapshot too short for its digest",
        });
    }
    let body = &bytes[..bytes.len() - 8];
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
    if Fnv1a::new().write(body).finish() != stored {
        return Err(DodError::Corrupt {
            offset: bytes.len() - 8,
            reason: "snapshot digest mismatch",
        });
    }
    let mut cur = Cursor::new(body, 0);
    if cur.take(4, "truncated snapshot magic")? != SNAP_MAGIC {
        return Err(DodError::Corrupt {
            offset: 0,
            reason: "bad snapshot magic",
        });
    }
    if cur.u8("truncated snapshot version")? != VERSION {
        return Err(DodError::Corrupt {
            offset: 4,
            reason: "unsupported snapshot version",
        });
    }
    let ops_applied = cur.u64("truncated ops_applied")?;
    let base_seq = cur.u64("truncated base_seq")?;
    let now = cur.f64("truncated now")?;
    let count = cur.u64("truncated entry count")? as usize;
    let mut entries = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let time = cur.f64("truncated entry time")?;
        entries.push((time, P::decode_from(&mut cur)?));
    }
    if !cur.is_empty() {
        return Err(DodError::Corrupt {
            offset: cur.offset(),
            reason: "trailing bytes after snapshot entries",
        });
    }
    Ok(SnapshotState {
        ops_applied,
        base_seq,
        now,
        entries,
    })
}

/// Bounds-checked little-endian reader reporting absolute file offsets
/// on failure (the `base` is where its slice starts in the file) —
/// the graph codec's cursor, offset-adjusted for framed payloads.
pub struct Cursor<'a> {
    data: &'a [u8],
    total: usize,
    base: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8], base: usize) -> Self {
        Cursor {
            data,
            total: data.len(),
            base,
        }
    }

    /// Absolute file offset of the next unread byte.
    pub fn offset(&self) -> usize {
        self.base + (self.total - self.data.len())
    }

    fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Consumes `n` bytes or fails with a `Corrupt` at the current
    /// offset.
    pub fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], DodError> {
        if self.data.len() < n {
            return Err(DodError::Corrupt {
                offset: self.offset(),
                reason: what,
            });
        }
        let (head, tail) = self.data.split_at(n);
        self.data = tail;
        Ok(head)
    }

    /// One byte.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, DodError> {
        Ok(self.take(1, what)?[0])
    }

    /// A little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, DodError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// A little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, DodError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// A little-endian `f64`.
    pub fn f64(&mut self, what: &'static str) -> Result<f64, DodError> {
        let b = self.take(8, what)?;
        Ok(f64::from_le_bytes(b.try_into().expect("8 bytes")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dod_wal_test_{}_{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn ins(time: f64, x: f32) -> WalOp<Vec<f32>> {
        WalOp::Insert {
            time,
            point: vec![x],
        }
    }

    #[test]
    fn fresh_open_append_reopen_round_trips() {
        let dir = tmp_dir("round_trip");
        let (mut wal, rec) = SessionWal::<Vec<f32>>::open(&dir, SyncPolicy::Always).unwrap();
        assert!(rec.is_empty());
        wal.append(&[ins(0.0, 1.0), ins(1.0, 2.0)]).unwrap();
        wal.append(&[WalOp::Advance { time: 5.0 }]).unwrap();
        assert_eq!(wal.ops_appended(), 3);
        let t = wal.telemetry();
        assert_eq!(t.appended_records.get(), 2);
        assert_eq!(t.appended_ops.get(), 3);
        assert!(t.fsyncs.get() >= 2);
        drop(wal);

        let (wal, rec) = SessionWal::<Vec<f32>>::open(&dir, SyncPolicy::Always).unwrap();
        assert!(rec.snapshot.is_none());
        assert_eq!(rec.truncated_at, None);
        assert_eq!(
            rec.ops,
            vec![ins(0.0, 1.0), ins(1.0, 2.0), WalOp::Advance { time: 5.0 }]
        );
        assert_eq!(wal.ops_appended(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn remove_session_dir_is_idempotent_and_leaves_foreign_files() {
        let dir = tmp_dir("remove");
        let (wal, _) = SessionWal::<Vec<f32>>::open(&dir, SyncPolicy::Never).unwrap();
        drop(wal);
        fs::write(dir.join("manifest.json"), b"{}").unwrap();

        // WAL files go; the foreign file — and therefore the directory —
        // stay, and neither is an error.
        remove_session_dir(&dir).unwrap();
        assert!(!dir.join(LOG_FILE).exists(), "log removed");
        assert!(dir.join("manifest.json").exists(), "foreign file kept");

        fs::remove_file(dir.join("manifest.json")).unwrap();
        remove_session_dir(&dir).unwrap();
        assert!(!dir.exists(), "empty directory removed");
        // Already gone is success too: deletion is idempotent.
        remove_session_dir(&dir).unwrap();
    }

    #[test]
    fn remove_session_dir_propagates_real_failures() {
        // `wal.log` as a *directory* cannot be `remove_file`d — a real
        // failure that must surface, not be swallowed as success. (A
        // permission-bit trick would not work here: tests may run as
        // root, which bypasses DAC checks.)
        let dir = tmp_dir("remove_fail");
        fs::create_dir_all(dir.join(LOG_FILE)).unwrap();
        let err = remove_session_dir(&dir).expect_err("undeletable log must error");
        assert_ne!(err.kind(), std::io::ErrorKind::NotFound);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_truncates_log_and_survives_reopen() {
        let dir = tmp_dir("snapshot");
        let (mut wal, _) = SessionWal::<Vec<f32>>::open(&dir, SyncPolicy::Never).unwrap();
        wal.append(&[ins(0.0, 1.0), ins(1.0, 2.0)]).unwrap();
        let snap = SnapshotState {
            ops_applied: 2,
            base_seq: 1,
            now: 1.0,
            entries: vec![(1.0, vec![2.0f32])],
        };
        wal.install_snapshot(&snap).unwrap();
        assert_eq!(
            fs::metadata(dir.join(LOG_FILE)).unwrap().len(),
            LOG_HEADER_LEN,
            "log truncated to its header"
        );
        wal.append(&[ins(2.0, 3.0)]).unwrap();
        drop(wal);

        let (wal, rec) = SessionWal::<Vec<f32>>::open(&dir, SyncPolicy::Never).unwrap();
        assert_eq!(rec.snapshot, Some(snap));
        assert_eq!(rec.ops, vec![ins(2.0, 3.0)]);
        assert_eq!(wal.ops_appended(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_frames_below_the_snapshot_are_skipped() {
        // Simulates a crash between snapshot commit and log truncation:
        // the log still holds pre-snapshot frames.
        let dir = tmp_dir("stale");
        let (mut wal, _) = SessionWal::<Vec<f32>>::open(&dir, SyncPolicy::Never).unwrap();
        wal.append(&[ins(0.0, 1.0), ins(1.0, 2.0)]).unwrap();
        drop(wal);
        let log_with_stale = fs::read(dir.join(LOG_FILE)).unwrap();

        let (mut wal, _) = SessionWal::<Vec<f32>>::open(&dir, SyncPolicy::Never).unwrap();
        wal.install_snapshot(&SnapshotState {
            ops_applied: 2,
            base_seq: 0,
            now: 1.0,
            entries: vec![(0.0, vec![1.0f32]), (1.0, vec![2.0f32])],
        })
        .unwrap();
        drop(wal);
        // Undo the truncation: put the stale frames back.
        fs::write(dir.join(LOG_FILE), &log_with_stale).unwrap();

        let (mut wal, rec) = SessionWal::<Vec<f32>>::open(&dir, SyncPolicy::Never).unwrap();
        assert_eq!(rec.ops, Vec::new(), "stale frames are not replayed");
        assert!(rec.snapshot.is_some());
        assert_eq!(wal.ops_appended(), 2);
        // Appending continues from the snapshot boundary; the stale
        // prefix stays skippable on the next open.
        wal.append(&[ins(2.0, 3.0)]).unwrap();
        drop(wal);
        let (_, rec) = SessionWal::<Vec<f32>>::open(&dir, SyncPolicy::Never).unwrap();
        assert_eq!(rec.ops, vec![ins(2.0, 3.0)]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_to_the_last_intact_frame() {
        let dir = tmp_dir("torn");
        let (mut wal, _) = SessionWal::<Vec<f32>>::open(&dir, SyncPolicy::Never).unwrap();
        wal.append(&[ins(0.0, 1.0)]).unwrap();
        wal.append(&[ins(1.0, 2.0)]).unwrap();
        drop(wal);
        let bytes = fs::read(dir.join(LOG_FILE)).unwrap();
        // Chop mid-way through the second frame.
        fs::write(dir.join(LOG_FILE), &bytes[..bytes.len() - 3]).unwrap();

        let (wal, rec) = SessionWal::<Vec<f32>>::open(&dir, SyncPolicy::Never).unwrap();
        assert_eq!(rec.ops, vec![ins(0.0, 1.0)]);
        let cut = rec.truncated_at.expect("tail was torn");
        assert_eq!(
            fs::metadata(dir.join(LOG_FILE)).unwrap().len(),
            cut,
            "file truncated back to the last intact frame"
        );
        assert_eq!(wal.telemetry().torn_tails.get(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_magic_is_a_typed_corrupt() {
        let dir = tmp_dir("magic");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(LOG_FILE), b"NOPE\x01").unwrap();
        match SessionWal::<Vec<f32>>::open(&dir, SyncPolicy::Never) {
            Err(DodError::Corrupt { offset: 0, .. }) => {}
            other => panic!("expected Corrupt at 0, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_snapshot_digest_is_a_typed_corrupt() {
        let dir = tmp_dir("snapdigest");
        let (mut wal, _) = SessionWal::<Vec<f32>>::open(&dir, SyncPolicy::Never).unwrap();
        wal.append(&[ins(0.0, 1.0)]).unwrap();
        wal.install_snapshot(&SnapshotState {
            ops_applied: 1,
            base_seq: 0,
            now: 0.0,
            entries: vec![(0.0, vec![1.0f32])],
        })
        .unwrap();
        drop(wal);
        let mut bytes = fs::read(dir.join(SNAPSHOT_FILE)).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(dir.join(SNAPSHOT_FILE), &bytes).unwrap();
        match SessionWal::<Vec<f32>>::open(&dir, SyncPolicy::Never) {
            Err(DodError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_n_policy_syncs_on_schedule() {
        let dir = tmp_dir("everyn");
        let (mut wal, _) = SessionWal::<Vec<f32>>::open(&dir, SyncPolicy::EveryN(3)).unwrap();
        for i in 0..7 {
            wal.append(&[ins(i as f64, i as f32)]).unwrap();
        }
        assert_eq!(wal.telemetry().fsyncs.get(), 2, "7 appends / every 3");
        wal.sync().unwrap();
        assert_eq!(wal.telemetry().fsyncs.get(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn string_points_round_trip() {
        let dir = tmp_dir("strings");
        let (mut wal, _) = SessionWal::<String>::open(&dir, SyncPolicy::Never).unwrap();
        wal.append(&[WalOp::Insert {
            time: 0.0,
            point: "näive".to_string(),
        }])
        .unwrap();
        drop(wal);
        let (_, rec) = SessionWal::<String>::open(&dir, SyncPolicy::Never).unwrap();
        assert_eq!(
            rec.ops,
            vec![WalOp::Insert {
                time: 0.0,
                point: "näive".to_string()
            }]
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
