//! Fuzz-style property tests for log recovery: arbitrary truncations and
//! byte flips of the on-disk files must either recover cleanly (stopping
//! at the last intact frame) or surface as typed `Corrupt { offset }`
//! errors — never a panic, and never replayed garbage that the
//! checksums should have caught.
//!
//! Mirrors `crates/graph/tests/serialize_props.rs`, but for a file that
//! is *expected* to be torn: unlike the graph blob, a truncated log is a
//! normal crash artifact, so truncation must be an `Ok` with a prefix of
//! the original operations.

use dod_core::DodError;
use dod_wal::{
    SessionWal, SnapshotState, SyncPolicy, WalOp, LOG_FILE, LOG_HEADER_LEN, SNAPSHOT_FILE,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// A fresh scratch directory per case (cases run concurrently).
fn scratch() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dod_wal_props_{}_{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sample_ops() -> Vec<WalOp<Vec<f32>>> {
    let mut rng = StdRng::seed_from_u64(23);
    (0..200)
        .map(|i| {
            if i % 17 == 16 {
                WalOp::Advance {
                    time: i as f64 + 0.5,
                }
            } else {
                WalOp::Insert {
                    time: i as f64,
                    point: vec![rng.gen_range(-1.0f32..1.0), rng.gen_range(-1.0f32..1.0)],
                }
            }
        })
        .collect()
}

/// `(wal.log bytes, snapshot.bin bytes, ops logged after the snapshot)`
/// from a session that snapshotted mid-stream — every section of both
/// formats is present.
type SampleFiles = (Vec<u8>, Vec<u8>, Vec<WalOp<Vec<f32>>>);

fn sample_files() -> &'static SampleFiles {
    static FILES: OnceLock<SampleFiles> = OnceLock::new();
    FILES.get_or_init(|| {
        let dir = scratch();
        let (mut wal, _) = SessionWal::<Vec<f32>>::open(&dir, SyncPolicy::Never).unwrap();
        let ops = sample_ops();
        let (before, after) = ops.split_at(80);
        for chunk in before.chunks(7) {
            wal.append(chunk).unwrap();
        }
        wal.install_snapshot(&SnapshotState {
            ops_applied: before.len() as u64,
            base_seq: 40,
            now: 79.0,
            entries: before
                .iter()
                .skip(40)
                .filter_map(|op| match op {
                    WalOp::Insert { time, point } => Some((*time, point.clone())),
                    WalOp::Advance { .. } => None,
                })
                .collect(),
        })
        .unwrap();
        for chunk in after.chunks(7) {
            wal.append(chunk).unwrap();
        }
        drop(wal);
        let log = std::fs::read(dir.join(LOG_FILE)).unwrap();
        let snap = std::fs::read(dir.join(SNAPSHOT_FILE)).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        (log, snap, after.to_vec())
    })
}

/// Writes the sample files (optionally mutated) into a fresh dir and
/// opens it.
type Opened = Result<(SessionWal<Vec<f32>>, dod_wal::Recovered<Vec<f32>>), DodError>;

fn open_with(log: &[u8], snap: Option<&[u8]>) -> (PathBuf, Opened) {
    let dir = scratch();
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join(LOG_FILE), log).unwrap();
    if let Some(snap) = snap {
        std::fs::write(dir.join(SNAPSHOT_FILE), snap).unwrap();
    }
    let result = SessionWal::<Vec<f32>>::open(&dir, SyncPolicy::Never);
    (dir, result)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn truncated_log_recovers_a_prefix(frac in 0.0f64..1.0) {
        let (log, snap, after) = sample_files();
        let cut = (log.len() as f64 * frac) as usize;
        let (dir, result) = open_with(&log[..cut], Some(snap));
        // A torn tail is a normal crash artifact: recovery must succeed
        // and replay a prefix of what was appended after the snapshot.
        let (wal, rec) = result.expect("truncation must recover, not error");
        prop_assert!(rec.ops.len() <= after.len());
        prop_assert_eq!(&rec.ops[..], &after[..rec.ops.len()], "replayed ops must be a prefix");
        match rec.truncated_at {
            Some(kept) => {
                prop_assert!(kept <= cut as u64, "kept {} beyond cut {}", kept, cut);
                // A cut inside the 5-byte header resets the file to a
                // fresh header; otherwise it is truncated to the last
                // intact frame.
                prop_assert_eq!(
                    std::fs::metadata(dir.join(LOG_FILE)).unwrap().len(),
                    kept.max(LOG_HEADER_LEN),
                    "file must be truncated back to the last intact frame"
                );
            }
            // A cut landing exactly on a frame boundary is a valid,
            // shorter log: nothing to tear.
            None => prop_assert_eq!(
                std::fs::metadata(dir.join(LOG_FILE)).unwrap().len(),
                cut as u64
            ),
        }
        drop(wal);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn log_byte_flips_never_panic(pos in 0usize..1 << 20, xor in 0u8..255) {
        let (log, snap, after) = sample_files();
        let mut log = log.clone();
        let pos = pos % log.len();
        log[pos] ^= xor.wrapping_add(1); // never a no-op flip
        let (dir, result) = open_with(&log, Some(snap));
        match result {
            // The flip landed in a frame body (checksum catches it →
            // clean stop) or in framing bytes (ditto). Whatever
            // survived must still be a prefix of the real stream.
            Ok((_, rec)) => {
                prop_assert!(rec.ops.len() <= after.len());
                prop_assert_eq!(&rec.ops[..], &after[..rec.ops.len()]);
            }
            // Header damage (magic/version) is structural.
            Err(DodError::Corrupt { offset, .. }) => prop_assert!(offset < log.len()),
            Err(other) => prop_assert!(false, "unexpected error kind: {other}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_byte_flips_never_panic(pos in 0usize..1 << 20, xor in 0u8..255) {
        let (log, snap, _) = sample_files();
        let mut snap = snap.clone();
        let pos = pos % snap.len();
        snap[pos] ^= xor.wrapping_add(1);
        let (dir, result) = open_with(log, Some(&snap));
        // Unlike the log, the snapshot has no torn-tail excuse: it was
        // committed atomically, so any damage is real corruption and
        // must surface as a typed error with an in-bounds offset.
        match result {
            Err(DodError::Corrupt { offset, .. }) => prop_assert!(offset <= snap.len()),
            Err(other) => prop_assert!(false, "unexpected error kind: {other}"),
            Ok(_) => prop_assert!(false, "a flipped snapshot must not pass its digest"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_snapshot_never_panics(frac in 0.0f64..1.0) {
        let (log, snap, _) = sample_files();
        let cut = (snap.len() as f64 * frac) as usize;
        let (dir, result) = open_with(log, Some(&snap[..cut]));
        match result {
            Err(DodError::Corrupt { offset, .. }) => prop_assert!(offset <= cut),
            Err(other) => prop_assert!(false, "unexpected error kind: {other}"),
            Ok(_) => prop_assert!(false, "a truncated snapshot must not pass its digest"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
