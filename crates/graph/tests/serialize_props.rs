//! Fuzz-style property tests for the binary graph codec: arbitrary
//! truncations and byte flips must surface as typed `Corrupt { offset }`
//! errors (or, for benign flips, a decoded graph) — never a panic, an
//! abort, or an out-of-payload offset.

use dod_graph::serialize::{from_bytes, to_bytes, DecodeError};
use dod_graph::{mrpg, MrpgParams};
use dod_metrics::{VectorSet, L2};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::OnceLock;

/// One serialized MRPG (with exact prefixes and pivots, so every section
/// of the format is present), built once for all cases.
fn sample_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(11);
        let rows: Vec<Vec<f32>> = (0..120)
            .map(|_| vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)])
            .collect();
        let data = VectorSet::from_rows(&rows, L2);
        let mut p = MrpgParams::new(5);
        p.exact_m = Some(12);
        let (g, _) = mrpg::build(&data, &p);
        to_bytes(&g).to_vec()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn truncation_always_errors_with_in_bounds_offset(frac in 0.0f64..1.0) {
        let bytes = sample_bytes();
        // frac < 1.0, so cut < len: a strict prefix, which can never be a
        // complete graph blob.
        let cut = (bytes.len() as f64 * frac) as usize;
        match from_bytes(&bytes[..cut]) {
            Err(DecodeError::Corrupt { offset, reason }) => {
                prop_assert!(offset <= cut, "offset {} beyond cut {} ({})", offset, cut, reason);
            }
            Err(other) => prop_assert!(false, "unexpected error kind: {}", other),
            Ok(_) => prop_assert!(false, "decoded a truncated payload (cut {})", cut),
        }
    }

    #[test]
    fn byte_flips_never_panic(pos in 0usize..1 << 20, xor in 0u8..255) {
        let mut bytes = sample_bytes().to_vec();
        let pos = pos % bytes.len();
        bytes[pos] ^= xor.wrapping_add(1); // never a no-op flip
        // A flip may still decode (e.g. a pivot bit or a stored distance);
        // what it must never do is panic or report an offset past the end.
        if let Err(DecodeError::Corrupt { offset, .. }) = from_bytes(&bytes) {
            prop_assert!(offset <= bytes.len());
        }
    }

    #[test]
    fn tail_garbage_after_a_valid_blob_is_ignored(extra in 0usize..64) {
        // The codec is length-driven: decoding consumes exactly one blob,
        // so trailing bytes (as in a concatenated file) are not an error.
        let mut bytes = sample_bytes().to_vec();
        bytes.extend(std::iter::repeat_n(0xAB, extra));
        prop_assert!(from_bytes(&bytes).is_ok());
    }
}
