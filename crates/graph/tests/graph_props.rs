//! Property tests on the graph-construction pipeline: structural
//! invariants, connectivity, exact-prefix integrity and the MSG oracle on
//! arbitrary inputs.

use dod_graph::detours::DetourParams;
use dod_graph::msg::{bounded_reach_count, make_monotonic};
use dod_graph::{mrpg, GraphKind, MrpgParams, NnDescentParams, ProximityGraph};
use dod_metrics::{Dataset, VectorSet, L2};
use proptest::prelude::*;

fn points(min_n: usize, max_n: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(
        (-10.0f32..10.0, -10.0f32..10.0).prop_map(|(x, y)| vec![x, y]),
        min_n..max_n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn mrpg_structural_invariants_hold(rows in points(10, 120), seed in 0u64..50) {
        let data = VectorSet::from_rows(&rows, L2);
        let mut p = MrpgParams::new(5);
        p.seed = seed;
        let (g, _) = mrpg::build(&data, &p);
        g.assert_invariants();
        prop_assert_eq!(g.connected_components(), 1);
        prop_assert_eq!(g.node_count(), data.len());
    }

    #[test]
    fn exact_prefixes_are_true_nearest_neighbors(rows in points(20, 100)) {
        let data = VectorSet::from_rows(&rows, L2);
        let mut p = MrpgParams::new(4);
        p.exact_m = Some(5);
        let (g, _) = mrpg::build(&data, &p);
        for (&v, e) in &g.exact {
            // The k'-th stored distance equals the true k'-th NN distance.
            let mut all: Vec<f64> = (0..data.len())
                .filter(|&q| q != v as usize)
                .map(|q| data.dist(v as usize, q))
                .collect();
            all.sort_by(f64::total_cmp);
            for (i, &d) in e.dists.iter().enumerate() {
                prop_assert!((d - all[i]).abs() < 1e-9, "node {} rank {}", v, i);
            }
        }
    }

    #[test]
    fn kgraph_lists_are_plausible_aknn(rows in points(30, 150)) {
        let data = VectorSet::from_rows(&rows, L2);
        let g = mrpg::build_kgraph(&data, 5, 1, 7);
        // Every adjacency entry must be closer than a random baseline:
        // check mean link distance < mean all-pairs distance.
        let n = data.len();
        let mut link = (0.0, 0usize);
        for u in 0..n {
            for &v in &g.adj[u] {
                link = (link.0 + data.dist(u, v as usize), link.1 + 1);
            }
        }
        let mut all = (0.0, 0usize);
        for u in (0..n).step_by(3) {
            for v in (1..n).step_by(7) {
                if u != v {
                    all = (all.0 + data.dist(u, v), all.1 + 1);
                }
            }
        }
        if link.1 > 0 && all.1 > 0 {
            let link_mean = link.0 / link.1 as f64;
            let all_mean = all.0 / all.1 as f64;
            prop_assert!(link_mean <= all_mean + 1e-9,
                "links are not local: {} vs {}", link_mean, all_mean);
        }
    }

    #[test]
    fn msg_oracle_reaches_every_neighbor(rows in points(10, 60), r in 0.5f64..15.0) {
        // On a monotonic search graph, bounded-reach counting is exact for
        // every object — the defining property of Theorem 3's construction.
        let data = VectorSet::from_rows(&rows, L2);
        let aknn = dod_graph::nndescent::build(&data, &NnDescentParams::kgraph(3));
        let mut g = ProximityGraph::new(data.len(), GraphKind::KGraph);
        for (p, l) in aknn.knn.iter().enumerate() {
            for &(_, q) in l {
                g.add_undirected(p as u32, q);
            }
        }
        make_monotonic(&mut g, &data);
        for p in 0..data.len() {
            let truth = (0..data.len())
                .filter(|&j| j != p && data.dist(p, j) <= r)
                .count();
            prop_assert_eq!(bounded_reach_count(&g, &data, p, r), truth, "p={}", p);
        }
    }

    #[test]
    fn remove_detours_only_adds_links(rows in points(10, 100)) {
        let data = VectorSet::from_rows(&rows, L2);
        let aknn = dod_graph::nndescent::build(&data, &NnDescentParams::kgraph(4));
        let mut g = ProximityGraph::new(data.len(), GraphKind::Mrpg);
        for (p, l) in aknn.knn.iter().enumerate() {
            for &(_, q) in l {
                g.add_undirected(p as u32, q);
            }
        }
        let before: Vec<Vec<u32>> = g.adj.clone();
        dod_graph::detours::remove_detours(&mut g, &data, 4, &DetourParams::for_degree(4));
        for (v, old) in before.iter().enumerate() {
            for w in old {
                prop_assert!(g.adj[v].contains(w), "lost link {} -> {}", v, w);
            }
        }
    }

    #[test]
    fn remove_links_never_disconnects(rows in points(10, 100), seed in 0u64..20) {
        let data = VectorSet::from_rows(&rows, L2);
        let mut p = MrpgParams::new(4);
        p.seed = seed;
        p.enable_remove_links = false;
        let (mut g, _) = mrpg::build(&data, &p);
        prop_assert_eq!(g.connected_components(), 1);
        dod_graph::prune::remove_links(&mut g);
        prop_assert_eq!(g.connected_components(), 1);
        g.assert_invariants();
    }

    #[test]
    fn nsw_is_always_connected(rows in points(2, 120), seed in 0u64..20) {
        let data = VectorSet::from_rows(&rows, L2);
        let g = mrpg::build_nsw(&data, 4, seed);
        prop_assert_eq!(g.connected_components(), 1);
        g.assert_invariants();
    }
}
