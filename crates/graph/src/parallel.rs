//! Minimal deterministic data-parallel helpers built on scoped threads.
//!
//! The paper's builders and detectors are "parallel-friendly" (§4): every
//! unit of work reads shared immutable state and writes only its own output
//! slot. These helpers encode exactly that pattern, so results are
//! *identical* for any thread count — the tests rely on it.

/// Runs `f(i, &mut out[i])` for every index, splitting `out` into contiguous
/// chunks across `threads` OS threads.
///
/// `f` must only read shared state; each invocation gets exclusive access to
/// its own output element, which is what makes this safe and deterministic.
pub fn par_for_each_mut<T: Send, F>(out: &mut [T], threads: usize, f: F)
where
    F: Fn(usize, &mut T) + Sync,
{
    let threads = threads.max(1);
    if threads == 1 || out.len() < 2 {
        for (i, slot) in out.iter_mut().enumerate() {
            f(i, slot);
        }
        return;
    }
    let chunk = out.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, slice) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (off, slot) in slice.iter_mut().enumerate() {
                    f(t * chunk + off, slot);
                }
            });
        }
    });
}

/// Maps `f` over `0..n` in parallel and collects the results in index order.
pub fn par_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send + Default + Clone,
    F: Fn(usize) -> T + Sync,
{
    let mut out = vec![T::default(); n];
    par_for_each_mut(&mut out, threads, |i, slot| *slot = f(i));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_results() {
        let seq = par_map(1000, 1, |i| i * i);
        let par = par_map(1000, 4, |i| i * i);
        assert_eq!(seq, par);
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        assert_eq!(par_map(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(1, 4, |i| i + 7), vec![7]);
    }

    #[test]
    fn thread_count_larger_than_items() {
        assert_eq!(par_map(3, 64, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn for_each_mut_writes_every_slot() {
        let mut v = vec![0u64; 257];
        par_for_each_mut(&mut v, 3, |i, s| *s = i as u64 + 1);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 + 1));
    }
}
