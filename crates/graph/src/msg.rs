//! Exact monotonic search graph (MSG) construction — the Ω(n²) reference
//! point of the paper's Theorem 3.
//!
//! For every object `p`, a full BFS finds all vertices without a witnessed
//! monotonic path from `p` (plus any vertices unreachable from `p`); those
//! are chain-linked in ascending distance order, which manufactures a
//! monotonic path from `p` through all of them. The result guarantees:
//! *a traversal from `p` that expands every vertex within distance `r`
//! reaches every neighbor of `p`*, i.e. Greedy-Counting becomes exact
//! (zero false positives) — the property the tests verify.
//!
//! This is intentionally impractical for large `n` (Theorem 3:
//! `O(n²(K + log n))`); MRPG exists to approximate it in `O(nK² log K)`.

use crate::graph::ProximityGraph;
use dod_metrics::Dataset;
use std::collections::VecDeque;

/// Upgrades `g` into a monotonic search graph in place.
pub fn make_monotonic<D: Dataset + ?Sized>(g: &mut ProximityGraph, data: &D) {
    let n = g.node_count();
    let mut dist_to_p = vec![0.0f64; n];
    let mut seen = vec![false; n];
    let mut queue: VecDeque<u32> = VecDeque::new();
    for p in 0..n {
        // Distances from p to everything (needed for flags and chains).
        for (w, slot) in dist_to_p.iter_mut().enumerate() {
            *slot = data.dist(p, w);
        }
        seen.iter_mut().for_each(|s| *s = false);
        seen[p] = true;
        queue.push_back(p as u32);
        let mut non_monotonic: Vec<(f64, u32)> = Vec::new();
        while let Some(v) = queue.pop_front() {
            let v_d = dist_to_p[v as usize];
            for &w in &g.adj[v as usize] {
                if seen[w as usize] {
                    continue;
                }
                seen[w as usize] = true;
                if v_d > dist_to_p[w as usize] {
                    non_monotonic.push((dist_to_p[w as usize], w));
                }
                queue.push_back(w);
            }
        }
        // Unreachable vertices need paths too (a disconnected graph cannot
        // be an MSG).
        for w in 0..n {
            if !seen[w] {
                non_monotonic.push((dist_to_p[w], w as u32));
            }
        }
        non_monotonic.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut prev = p as u32;
        for (_, w) in non_monotonic {
            if w != prev {
                g.add_undirected(prev, w);
                prev = w;
            }
        }
    }
}

/// Test oracle: counts neighbors of `p` reachable by expanding only
/// vertices within distance `r` (Greedy-Counting without early
/// termination or pivot rules). On an MSG this equals the true neighbor
/// count for every `p` and `r`.
pub fn bounded_reach_count<D: Dataset + ?Sized>(
    g: &ProximityGraph,
    data: &D,
    p: usize,
    r: f64,
) -> usize {
    let n = g.node_count();
    let mut seen = vec![false; n];
    seen[p] = true;
    let mut queue: VecDeque<u32> = VecDeque::new();
    queue.push_back(p as u32);
    let mut count = 0;
    while let Some(v) = queue.pop_front() {
        for &w in &g.adj[v as usize] {
            if seen[w as usize] {
                continue;
            }
            seen[w as usize] = true;
            if data.dist(p, w as usize) <= r {
                count += 1;
                queue.push_back(w);
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphKind;
    use dod_metrics::{VectorSet, L2};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, dim: usize, seed: u64) -> VectorSet<L2> {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        VectorSet::from_rows(&rows, L2)
    }

    fn true_count(data: &impl Dataset, p: usize, r: f64) -> usize {
        (0..data.len())
            .filter(|&j| j != p && data.dist(p, j) <= r)
            .count()
    }

    #[test]
    fn msg_makes_bounded_reach_exact() {
        let data = random_points(80, 2, 1);
        // Start from a sparse AKNN graph (likely full of detours).
        let aknn = crate::nndescent::build(&data, &crate::nndescent::NnDescentParams::kgraph(3));
        let mut g = ProximityGraph::new(80, GraphKind::KGraph);
        for (p, l) in aknn.knn.iter().enumerate() {
            for &(_, q) in l {
                g.add_undirected(p as u32, q);
            }
        }
        make_monotonic(&mut g, &data);
        for p in 0..80 {
            for r in [0.2, 0.5, 1.0] {
                assert_eq!(
                    bounded_reach_count(&g, &data, p, r),
                    true_count(&data, p, r),
                    "p={p} r={r}"
                );
            }
        }
    }

    #[test]
    fn msg_connects_disconnected_graphs() {
        let data = random_points(30, 2, 3);
        let mut g = ProximityGraph::new(30, GraphKind::KGraph);
        // No edges at all.
        make_monotonic(&mut g, &data);
        assert_eq!(g.connected_components(), 1);
        for p in 0..30 {
            assert_eq!(
                bounded_reach_count(&g, &data, p, 0.8),
                true_count(&data, p, 0.8),
                "p={p}"
            );
        }
    }

    #[test]
    fn already_monotonic_graph_is_unchanged() {
        // A complete graph is trivially monotonic (1-hop paths).
        let data = random_points(12, 2, 5);
        let mut g = ProximityGraph::new(12, GraphKind::KGraph);
        for i in 0..12u32 {
            for j in (i + 1)..12 {
                g.add_undirected(i, j);
            }
        }
        let links = g.link_count();
        make_monotonic(&mut g, &data);
        assert_eq!(g.link_count(), links);
    }

    #[test]
    fn empty_graph_is_fine() {
        let data = random_points(0, 2, 0);
        let mut g = ProximityGraph::new(0, GraphKind::KGraph);
        make_monotonic(&mut g, &data);
        assert_eq!(g.node_count(), 0);
    }
}
