//! NSW — navigable small-world proximity graph \[Malkov et al., Inf. Syst.
//! 2014\], the strongest pre-existing metric proximity graph the paper
//! compares against.
//!
//! Built by incremental insertion: each new object runs a beam search over
//! the graph built so far (restarted from a few random entry points) and
//! links bidirectionally to the `m` nearest objects found. Insertion order
//! dependence makes the build inherently sequential — the paper highlights
//! exactly this as NSW's scalability weakness (Table 3's NA rows).

use crate::graph::{GraphKind, ProximityGraph};
use dod_metrics::{Dataset, OrdF64};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Parameters for [`build`].
#[derive(Debug, Clone)]
pub struct NswParams {
    /// Links created per inserted object. The paper sizes NSW "so that its
    /// memory is almost the same as that of KGraph", i.e. `m = K`.
    pub m: usize,
    /// Beam width of the insertion-time search (candidate pool size).
    pub ef: usize,
    /// Independent search restarts per insertion.
    pub restarts: usize,
    /// RNG seed.
    pub seed: u64,
}

impl NswParams {
    /// Memory-matched to a KGraph of degree `k` (see paper §6): each
    /// insertion adds `k/2` undirected links, i.e. ~`k` adjacency entries
    /// per object, and runs the original algorithm's multi-restart greedy
    /// search (`w` restarts) to find them.
    pub fn matching_kgraph(k: usize) -> Self {
        NswParams {
            m: (k / 2).max(3),
            ef: k.max(8),
            restarts: 16,
            seed: 0,
        }
    }
}

/// Beam search over the partial graph: returns up to `ef` nearest
/// discovered nodes as `(dist, id)` ascending.
fn beam_search<D: Dataset + ?Sized>(
    g: &ProximityGraph,
    data: &D,
    query: usize,
    starts: &[u32],
    ef: usize,
    visited: &mut [u32],
    epoch: u32,
) -> Vec<(f64, u32)> {
    // `candidates`: min-heap of nodes to expand; `found`: max-heap of the
    // best `ef` nodes seen (top = worst kept).
    let mut candidates: BinaryHeap<(Reverse<OrdF64>, u32)> = BinaryHeap::new();
    let mut found: BinaryHeap<(OrdF64, u32)> = BinaryHeap::with_capacity(ef + 1);
    for &s in starts {
        if visited[s as usize] == epoch {
            continue;
        }
        visited[s as usize] = epoch;
        let d = data.dist(query, s as usize);
        candidates.push((Reverse(OrdF64(d)), s));
        found.push((OrdF64(d), s));
        if found.len() > ef {
            found.pop();
        }
    }
    while let Some((Reverse(OrdF64(d)), v)) = candidates.pop() {
        if found.len() == ef && d > found.peek().expect("non-empty").0 .0 {
            break;
        }
        for &w in &g.adj[v as usize] {
            if visited[w as usize] == epoch {
                continue;
            }
            visited[w as usize] = epoch;
            let dw = data.dist(query, w as usize);
            if found.len() < ef || dw < found.peek().expect("non-empty").0 .0 {
                candidates.push((Reverse(OrdF64(dw)), w));
                found.push((OrdF64(dw), w));
                if found.len() > ef {
                    found.pop();
                }
            }
        }
    }
    let mut out: Vec<(f64, u32)> = found.into_iter().map(|(OrdF64(d), v)| (d, v)).collect();
    out.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    out
}

/// Builds an NSW graph over all objects of `data`.
pub fn build<D: Dataset + ?Sized>(data: &D, params: &NswParams) -> ProximityGraph {
    let n = data.len();
    let mut g = ProximityGraph::new(n, GraphKind::Nsw);
    if n == 0 {
        return g;
    }
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut visited = vec![0u32; n];
    let mut epoch = 0u32;
    let ef = params.ef.max(params.m);
    let mut found: Vec<(f64, u32)> = Vec::new();
    for i in 1..n {
        // The original algorithm runs `w` independent searches from random
        // entry points and merges their result sets; independence is what
        // lets it escape local minima of a partially-built graph (and is
        // the cost that makes NSW construction the slowest of the compared
        // graphs, paper Table 3).
        found.clear();
        for _ in 0..params.restarts.max(1) {
            let start = rng.gen_range(0..i) as u32;
            epoch += 1;
            found.extend(beam_search(&g, data, i, &[start], ef, &mut visited, epoch));
        }
        found.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        found.dedup_by_key(|e| e.1);
        for &(_, v) in found.iter().take(params.m) {
            g.add_undirected(i as u32, v);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use dod_metrics::{VectorSet, L2};

    fn random_points(n: usize, dim: usize, seed: u64) -> VectorSet<L2> {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        VectorSet::from_rows(&rows, L2)
    }

    #[test]
    fn build_produces_connected_undirected_graph() {
        let data = random_points(300, 3, 1);
        let g = build(&data, &NswParams::matching_kgraph(8));
        g.assert_invariants();
        // Incremental insertion always links into the existing component.
        assert_eq!(g.connected_components(), 1);
        // Undirected by construction.
        for u in 0..300u32 {
            for &v in &g.adj[u as usize] {
                assert!(g.has_link(v, u), "asymmetric link {u} <-> {v}");
            }
        }
    }

    #[test]
    fn links_point_to_nearby_objects() {
        let data = random_points(400, 2, 3);
        let g = build(&data, &NswParams::matching_kgraph(6));
        // Mean link distance must beat the mean pairwise distance by a lot.
        let mut link_sum = 0.0;
        let mut link_cnt = 0usize;
        for u in 0..400 {
            for &v in &g.adj[u] {
                link_sum += data.dist(u, v as usize);
                link_cnt += 1;
            }
        }
        let mut all_sum = 0.0;
        let mut all_cnt = 0usize;
        for u in (0..400).step_by(7) {
            for v in (1..400).step_by(11) {
                if u != v {
                    all_sum += data.dist(u, v);
                    all_cnt += 1;
                }
            }
        }
        let link_mean = link_sum / link_cnt as f64;
        let all_mean = all_sum / all_cnt as f64;
        assert!(
            link_mean < all_mean * 0.5,
            "links not local: {link_mean} vs {all_mean}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let data = random_points(150, 2, 5);
        let p = NswParams::matching_kgraph(5);
        let a = build(&data, &p);
        let b = build(&data, &p);
        assert_eq!(a.adj, b.adj);
    }

    #[test]
    fn degree_is_bounded_by_insertion_math() {
        let data = random_points(200, 2, 7);
        let g = build(&data, &NswParams::matching_kgraph(4));
        let (_, mean, _) = g.degree_stats();
        // Each insertion adds at most m undirected edges: mean degree <= 2m.
        assert!(mean <= 8.0 + 1e-9, "mean degree {mean}");
    }

    #[test]
    fn tiny_inputs() {
        let data = random_points(1, 2, 0);
        let g = build(&data, &NswParams::matching_kgraph(4));
        assert_eq!(g.node_count(), 1);
        let data = random_points(2, 2, 0);
        let g = build(&data, &NswParams::matching_kgraph(4));
        assert!(g.has_link(0, 1) && g.has_link(1, 0));
    }
}
