//! Remove-Detours (paper Algorithm 5): approximate monotonic paths.
//!
//! A path `p → … → w` is a *detour* if the distance to `p` ever decreases
//! along it: Greedy-Counting, which only expands vertices within `r`, can
//! then miss `w` even though `dist(p, w) ≤ r`. Building a full monotonic
//! search graph costs Ω(n²) (Theorem 3, see [`crate::msg`]), so the paper
//! uses a heuristic: for a sample of targets (weighted toward pivots), run
//! hop-bounded BFS, collect vertices whose BFS path is non-monotonic, and
//! chain-link them in ascending distance order — which *is* a monotonic
//! path from the target through all of them.

use crate::graph::ProximityGraph;
use crate::parallel::par_map;
use dod_metrics::{Dataset, OrdF64};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

/// Tuning knobs for [`remove_detours`].
#[derive(Debug, Clone)]
pub struct DetourParams {
    /// Number of target objects `|P'|`; `0` means the paper's `n / K`.
    pub targets: usize,
    /// Pivots examined per target (`|P_piv|`). The paper allows `O(K)`;
    /// the default trades a little reachability for build time — the
    /// ablation bench (`experiments ablation`) quantifies the effect.
    pub pivots_per_target: usize,
    /// Cap on a target's non-monotonic list `|A|` (paper: `O(K²)`).
    pub max_list: usize,
    /// Node-visit budget of the 3-hop BFS (paper cost model: `O(K³)`).
    pub visit_cap3: usize,
    /// Node-visit budget of each 2-hop BFS (paper cost model: `O(K²)`).
    pub visit_cap2: usize,
    /// Worker threads.
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
}

impl DetourParams {
    /// Paper-shaped defaults for degree `k`.
    pub fn for_degree(k: usize) -> Self {
        let k = k.max(2);
        DetourParams {
            targets: 0,
            pivots_per_target: 6,
            max_list: k * k,
            visit_cap3: (k * k * k).min(50_000),
            visit_cap2: k * k,
            threads: 1,
            seed: 0,
        }
    }
}

/// Hop- and visit-bounded BFS from `start` that reports vertices whose BFS
/// path is non-monotonic w.r.t. the distance to `anchor`
/// (`Get-Non-Monotonic` in the paper, with the Algorithm 5 hop constraint).
///
/// Returns `(dist_to_anchor, vertex)` pairs, at most `max_list`, keeping
/// those closest to the anchor.
pub fn get_non_monotonic<D: Dataset + ?Sized>(
    g: &ProximityGraph,
    data: &D,
    anchor: usize,
    start: u32,
    max_hops: usize,
    visit_cap: usize,
    max_list: usize,
) -> Vec<(f64, u32)> {
    // (vertex, its distance to anchor, hop count)
    let mut queue: VecDeque<(u32, f64, usize)> = VecDeque::new();
    let mut seen: Vec<u32> = Vec::with_capacity(visit_cap.min(4096));
    let start_d = if start as usize == anchor {
        0.0
    } else {
        data.dist(anchor, start as usize)
    };
    queue.push_back((start, start_d, 0));
    seen.push(start);
    // Max-heap keeps the `max_list` smallest anchor distances.
    let mut worst: BinaryHeap<(OrdF64, u32)> = BinaryHeap::with_capacity(max_list + 1);
    let mut visits = 0usize;
    while let Some((v, v_d, hops)) = queue.pop_front() {
        if hops == max_hops {
            continue;
        }
        for &w in &g.adj[v as usize] {
            if w as usize == anchor || seen.contains(&w) {
                continue;
            }
            visits += 1;
            if visits > visit_cap {
                break;
            }
            seen.push(w);
            let w_d = data.dist(anchor, w as usize);
            if v_d > w_d && max_list > 0 {
                // The BFS path reached w through a vertex farther from the
                // anchor than w itself: no monotonic path witnessed.
                if worst.len() < max_list {
                    worst.push((OrdF64(w_d), w));
                } else if w_d < worst.peek().expect("non-empty").0 .0 {
                    worst.pop();
                    worst.push((OrdF64(w_d), w));
                }
            }
            queue.push_back((w, w_d, hops + 1));
        }
        if visits > visit_cap {
            break;
        }
    }
    let mut out: Vec<(f64, u32)> = worst.into_iter().map(|(OrdF64(d), w)| (d, w)).collect();
    out.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    out
}

/// Pivots encountered within `max_hops` of `target`, ascending by distance,
/// excluding 1-hop neighbors, exact-`K'` nodes and the target itself
/// (Algorithm 5's pivot sampling rule).
fn nearby_pivots<D: Dataset + ?Sized>(
    g: &ProximityGraph,
    data: &D,
    target: usize,
    max_hops: usize,
    visit_cap: usize,
    want: usize,
) -> Vec<u32> {
    let mut queue: VecDeque<(u32, usize)> = VecDeque::new();
    let mut seen: Vec<u32> = vec![target as u32];
    queue.push_back((target as u32, 0));
    let one_hop = &g.adj[target];
    let mut found: Vec<(f64, u32)> = Vec::new();
    let mut visits = 0usize;
    'outer: while let Some((v, hops)) = queue.pop_front() {
        if hops == max_hops {
            continue;
        }
        for &w in &g.adj[v as usize] {
            if seen.contains(&w) {
                continue;
            }
            visits += 1;
            if visits > visit_cap {
                break 'outer;
            }
            seen.push(w);
            if g.pivot[w as usize] && !one_hop.contains(&w) && !g.exact.contains_key(&w) {
                found.push((data.dist(target, w as usize), w));
            }
            queue.push_back((w, hops + 1));
        }
    }
    found.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    found.truncate(want);
    found.into_iter().map(|(_, w)| w).collect()
}

/// Runs Algorithm 5 in place: samples targets, finds vertices with no
/// witnessed monotonic path, and adds ascending chain links for them.
pub fn remove_detours<D: Dataset + ?Sized>(
    g: &mut ProximityGraph,
    data: &D,
    k: usize,
    params: &DetourParams,
) {
    let n = g.node_count();
    if n < 3 {
        return;
    }
    let want_targets = if params.targets == 0 {
        (n / k.max(1)).max(1)
    } else {
        params.targets
    };

    // Target sample: pivots first (Greedy-Counting traverses them), then
    // random objects; exact-K' nodes are excluded (their lists are final).
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0xdead_beef);
    let mut targets: Vec<u32> = g
        .pivot_ids()
        .into_iter()
        .filter(|p| !g.exact.contains_key(p))
        .collect();
    targets.shuffle(&mut rng);
    targets.truncate(want_targets);
    if targets.len() < want_targets {
        let mut rest: Vec<u32> = (0..n as u32)
            .filter(|v| !g.pivot[*v as usize] && !g.exact.contains_key(v))
            .collect();
        rest.shuffle(&mut rng);
        targets.extend(rest.into_iter().take(want_targets - targets.len()));
    }

    // Collect every target's non-monotonic list in parallel (read-only on
    // the graph), then apply the chain links sequentially.
    let g_ref: &ProximityGraph = g;
    let lists: Vec<Vec<(f64, u32)>> = par_map(targets.len(), params.threads, |ti| {
        let p = targets[ti] as usize;
        let mut a = get_non_monotonic(
            g_ref,
            data,
            p,
            p as u32,
            3,
            params.visit_cap3,
            params.max_list,
        );
        for piv in nearby_pivots(
            g_ref,
            data,
            p,
            3,
            params.visit_cap3,
            params.pivots_per_target,
        ) {
            a.extend(get_non_monotonic(
                g_ref,
                data,
                p,
                piv,
                2,
                params.visit_cap2,
                params.max_list,
            ));
        }
        // Merge, dedup by vertex, keep closest `max_list`.
        a.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)));
        a.dedup_by_key(|e| e.1);
        a.truncate(params.max_list);
        a
    });

    for (ti, list) in lists.into_iter().enumerate() {
        let mut prev = targets[ti];
        for (_, w) in list {
            if w != prev {
                g.add_undirected(prev, w);
                prev = w;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphKind;
    use dod_metrics::{VectorSet, L2};

    /// A deliberate detour: p=0 at origin, w=2 nearby, but the only path
    /// runs through far-away node 1.
    fn detour_triangle() -> (VectorSet<L2>, ProximityGraph) {
        let data = VectorSet::from_rows(
            &[
                vec![0.0, 0.0],  // 0 = p
                vec![10.0, 0.0], // 1 = far relay
                vec![1.0, 0.0],  // 2 = near p, only reachable via 1
                vec![0.5, 0.5],  // 3 = filler linked to p
            ],
            L2,
        );
        let mut g = ProximityGraph::new(4, GraphKind::Mrpg);
        g.add_undirected(0, 1);
        g.add_undirected(1, 2);
        g.add_undirected(0, 3);
        (data, g)
    }

    #[test]
    fn detects_the_detour() {
        let (data, g) = detour_triangle();
        let non_mono = get_non_monotonic(&g, &data, 0, 0, 3, 1000, 100);
        let ids: Vec<u32> = non_mono.iter().map(|&(_, w)| w).collect();
        assert!(ids.contains(&2), "vertex 2 should be flagged: {ids:?}");
        assert!(!ids.contains(&1), "vertex 1 is reached monotonically");
    }

    #[test]
    fn remove_detours_adds_the_shortcut() {
        let (data, mut g) = detour_triangle();
        g.pivot[0] = true; // make node 0 a sampled target
        let mut params = DetourParams::for_degree(2);
        params.targets = 4;
        remove_detours(&mut g, &data, 2, &params);
        // After the chain links, 0 must reach 2 without going through 1:
        // specifically the 0 -> 3 -> 2 or direct 0 -> 2 link must exist.
        let direct = g.has_link(0, 2) || (g.has_link(0, 3) && g.has_link(3, 2));
        assert!(direct, "no monotonic shortcut added: {:?}", g.adj);
        g.assert_invariants();
    }

    #[test]
    fn respects_the_list_cap() {
        let (data, g) = detour_triangle();
        let non_mono = get_non_monotonic(&g, &data, 0, 0, 3, 1000, 0);
        assert!(non_mono.is_empty());
    }

    #[test]
    fn hop_bound_limits_reach() {
        // Chain 0-1-2-3-4 where distances decrease after 1 (detours at 2+).
        let data = VectorSet::from_rows(
            &[vec![0.0], vec![10.0], vec![9.0], vec![8.0], vec![7.0]],
            L2,
        );
        let mut g = ProximityGraph::new(5, GraphKind::Mrpg);
        for i in 0..4u32 {
            g.add_undirected(i, i + 1);
        }
        let hop1 = get_non_monotonic(&g, &data, 0, 0, 1, 1000, 100);
        assert!(hop1.is_empty(), "1 hop sees only vertex 1 (monotone)");
        let hop2 = get_non_monotonic(&g, &data, 0, 0, 2, 1000, 100);
        assert_eq!(hop2.iter().map(|&(_, w)| w).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn nearby_pivots_excludes_one_hop_and_exact() {
        let data =
            VectorSet::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0], vec![4.0]], L2);
        let mut g = ProximityGraph::new(5, GraphKind::Mrpg);
        for i in 0..4u32 {
            g.add_undirected(i, i + 1);
        }
        g.pivot = vec![false, true, true, true, false];
        g.exact.insert(3, crate::graph::ExactNn { dists: vec![] });
        let piv = nearby_pivots(&g, &data, 0, 4, 1000, 10);
        // 1 is one-hop (excluded), 3 is exact (excluded) => only 2.
        assert_eq!(piv, vec![2]);
    }

    #[test]
    fn noop_on_tiny_graphs() {
        let data = VectorSet::from_rows(&[vec![0.0], vec![1.0]], L2);
        let mut g = ProximityGraph::new(2, GraphKind::Mrpg);
        g.add_undirected(0, 1);
        remove_detours(&mut g, &data, 5, &DetourParams::for_degree(5));
        assert_eq!(g.link_count(), 2);
    }

    #[test]
    fn deterministic_across_threads() {
        let mut rng = StdRng::seed_from_u64(3);
        use rand::Rng;
        let rows: Vec<Vec<f32>> = (0..120)
            .map(|_| vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)])
            .collect();
        let data = VectorSet::from_rows(&rows, L2);
        let base = crate::nndescent::build(&data, &crate::nndescent::NnDescentParams::kgraph(5));
        let make = |threads: usize| {
            let mut g = ProximityGraph::new(120, GraphKind::Mrpg);
            for (p, l) in base.knn.iter().enumerate() {
                for &(_, q) in l {
                    g.add_undirected(p as u32, q);
                }
            }
            g.pivot = (0..120).map(|i| i % 10 == 0).collect();
            let mut params = DetourParams::for_degree(5);
            params.threads = threads;
            remove_detours(&mut g, &data, 5, &params);
            g.adj
        };
        assert_eq!(make(1), make(4));
    }
}
