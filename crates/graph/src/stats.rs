//! Graph quality diagnostics, centered on the paper's key concept:
//! **reachability of neighbors** (§5 — "neighbors of an arbitrary object p
//! should be reachable from p for Greedy-Counting").
//!
//! [`neighbor_reachability`] measures exactly that: for sampled objects,
//! the fraction of their true `r`-neighbors that a bounded traversal
//! (expanding only vertices within `r`, plus pivots when the graph asks)
//! actually reaches. `f`, the false-positive count of Table 7, is the
//! downstream consequence of this number being below 1; measuring it
//! directly lets tests and ablations reason about *why* a graph filters
//! poorly, not just that it does.

use crate::graph::ProximityGraph;
use dod_metrics::Dataset;
use std::collections::VecDeque;

/// Degree distribution summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Minimum node degree.
    pub min: usize,
    /// Mean node degree.
    pub mean: f64,
    /// Maximum node degree.
    pub max: usize,
    /// Fraction of nodes flagged as pivots.
    pub pivot_fraction: f64,
}

/// Computes the degree summary of a graph.
pub fn degree_stats(g: &ProximityGraph) -> DegreeStats {
    let (min, mean, max) = g.degree_stats();
    let pivots = g.pivot.iter().filter(|&&p| p).count();
    DegreeStats {
        min,
        mean,
        max,
        pivot_fraction: if g.node_count() == 0 {
            0.0
        } else {
            pivots as f64 / g.node_count() as f64
        },
    }
}

/// Result of [`neighbor_reachability`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reachability {
    /// Mean over sampled objects of (reached neighbors / true neighbors);
    /// objects with no neighbors are skipped. 1.0 = perfect (an MSG).
    pub mean_recall: f64,
    /// Number of sampled objects whose recall was below 1 (the potential
    /// false positives of the filtering phase).
    pub deficient_objects: usize,
    /// Objects actually sampled (those with ≥ 1 true neighbor).
    pub sampled: usize,
}

/// Measures how many of each sampled object's true `r`-neighbors the
/// Greedy-Counting traversal can reach (without the early `k` cutoff).
///
/// Honors the graph's pivot-expansion rule, so MRPG is measured the way
/// the detector actually walks it. Cost: `O(sample · n)` distances for the
/// ground truth plus the traversals.
pub fn neighbor_reachability<D: Dataset + ?Sized>(
    g: &ProximityGraph,
    data: &D,
    r: f64,
    sample: usize,
) -> Reachability {
    let n = g.node_count();
    if n == 0 {
        return Reachability {
            mean_recall: 1.0,
            deficient_objects: 0,
            sampled: 0,
        };
    }
    let step = (n / sample.max(1)).max(1);
    let mut seen = vec![false; n];
    let mut queue: VecDeque<u32> = VecDeque::new();
    let mut total_recall = 0.0;
    let mut sampled = 0usize;
    let mut deficient = 0usize;
    let mut p = 0;
    while p < n {
        let truth = (0..n).filter(|&j| j != p && data.dist(p, j) <= r).count();
        if truth > 0 {
            // Bounded traversal (Greedy-Counting without the k cutoff).
            seen.iter_mut().for_each(|s| *s = false);
            seen[p] = true;
            queue.clear();
            queue.push_back(p as u32);
            let mut reached = 0usize;
            while let Some(v) = queue.pop_front() {
                for &w in &g.adj[v as usize] {
                    if seen[w as usize] {
                        continue;
                    }
                    seen[w as usize] = true;
                    if data.dist(p, w as usize) <= r {
                        reached += 1;
                        queue.push_back(w);
                    } else if g.expand_pivots && g.pivot[w as usize] {
                        queue.push_back(w);
                    }
                }
            }
            let recall = reached as f64 / truth as f64;
            total_recall += recall;
            if reached < truth {
                deficient += 1;
            }
            sampled += 1;
        }
        p += step;
    }
    Reachability {
        mean_recall: if sampled == 0 {
            1.0
        } else {
            total_recall / sampled as f64
        },
        deficient_objects: deficient,
        sampled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphKind;
    use crate::mrpg::{self, MrpgParams};
    use crate::msg;
    use dod_metrics::{VectorSet, L2};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> VectorSet<L2> {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|_| vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)])
            .collect();
        VectorSet::from_rows(&rows, L2)
    }

    #[test]
    fn msg_has_perfect_reachability() {
        let data = random_points(60, 1);
        let mut g = ProximityGraph::new(60, GraphKind::KGraph);
        msg::make_monotonic(&mut g, &data);
        let r = neighbor_reachability(&g, &data, 0.5, 60);
        assert_eq!(r.mean_recall, 1.0);
        assert_eq!(r.deficient_objects, 0);
    }

    #[test]
    fn edgeless_graph_has_zero_reachability() {
        let data = random_points(40, 2);
        let g = ProximityGraph::new(40, GraphKind::KGraph);
        let r = neighbor_reachability(&g, &data, 0.5, 40);
        assert_eq!(r.mean_recall, 0.0);
        assert_eq!(r.deficient_objects, r.sampled);
    }

    #[test]
    fn mrpg_reaches_at_least_as_much_as_its_aknn_core() {
        let data = random_points(300, 3);
        let mut p = MrpgParams::new(5);
        p.enable_connect = false;
        p.enable_detours = false;
        p.enable_remove_links = false;
        let (bare, _) = mrpg::build(&data, &p);
        let (full, _) = mrpg::build(&data, &MrpgParams::new(5));
        let r = 0.3;
        let bare_reach = neighbor_reachability(&bare, &data, r, 100);
        let full_reach = neighbor_reachability(&full, &data, r, 100);
        assert!(
            full_reach.mean_recall >= bare_reach.mean_recall - 1e-9,
            "full {} < bare {}",
            full_reach.mean_recall,
            bare_reach.mean_recall
        );
    }

    #[test]
    fn degree_stats_counts_pivots() {
        let mut g = ProximityGraph::new(4, GraphKind::Mrpg);
        g.add_undirected(0, 1);
        g.pivot[2] = true;
        let s = degree_stats(&g);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1);
        assert!((s.pivot_fraction - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_stats_are_sane() {
        let g = ProximityGraph::new(0, GraphKind::KGraph);
        let s = degree_stats(&g);
        assert_eq!(s.pivot_fraction, 0.0);
        let data = random_points(0, 0);
        let r = neighbor_reachability(&g, &data, 1.0, 10);
        assert_eq!(r.sampled, 0);
    }
}
