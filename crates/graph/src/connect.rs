//! Connect-SubGraphs (paper Algorithm 4): make the AKNN graph strongly
//! connected.
//!
//! Phase 1 converts the directed AKNN graph into an undirected one by
//! adding every reverse link (reverse AKNNs are usually similar objects, so
//! this also helps reachability). Phase 2 runs BFS from a random object; if
//! unvisited objects remain, it picks a random *pivot* among them, finds an
//! approximate nearest neighbor inside the visited part with a greedy,
//! hop-bounded ANN search (the \[26\] routine) restarted from a few random
//! visited pivots, links the two, and resumes BFS — until every object is
//! reached. Pivots are spread across subspaces by ball partitioning, so
//! these patch links connect genuinely close regions rather than arbitrary
//! nodes.

use crate::graph::ProximityGraph;
use dod_metrics::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::VecDeque;

/// Greedy ANN descent from `start` toward `query` (the algorithm of \[26\]):
/// repeatedly move to the neighbor closest to `query` while it improves,
/// for at most `max_hops` moves. Returns `(best_id, best_dist)`.
pub fn greedy_ann_search<D: Dataset + ?Sized>(
    g: &ProximityGraph,
    data: &D,
    query: usize,
    start: u32,
    max_hops: usize,
) -> (u32, f64) {
    let mut cur = start;
    let mut cur_d = data.dist(query, cur as usize);
    for _ in 0..max_hops {
        let mut best = cur;
        let mut best_d = cur_d;
        for &w in &g.adj[cur as usize] {
            let d = data.dist(query, w as usize);
            if d < best_d {
                best_d = d;
                best = w;
            }
        }
        if best == cur {
            break; // local minimum
        }
        cur = best;
        cur_d = best_d;
    }
    (cur, cur_d)
}

/// Number of random visited pivots used as ANN starting points
/// (`|V_piv|` in Algorithm 4 — a small constant).
const V_PIV: usize = 3;

/// Maximum hops of each ANN search (paper: "10 in our implementation").
const MAX_HOPS: usize = 10;

/// Runs both phases of Algorithm 4 in place. After this the graph is
/// undirected and has exactly one connected component (for `n > 0`).
pub fn connect_subgraphs<D: Dataset + ?Sized>(g: &mut ProximityGraph, data: &D, seed: u64) {
    let n = g.node_count();
    if n == 0 {
        return;
    }

    // ---- Phase 1: reverse AKNN links (undirection) -----------------------
    for u in 0..n as u32 {
        // Snapshot to avoid holding a borrow while mutating other lists.
        let links = g.adj[u as usize].clone();
        for v in links {
            if !g.has_link(v, u) {
                g.adj[v as usize].push(u);
            }
        }
    }

    // ---- Phase 2: BFS + greedy-ANN patch links ---------------------------
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(&mut rng);
    let mut pivot_order: Vec<u32> = g.pivot_ids();
    pivot_order.shuffle(&mut rng);

    let mut visited = vec![false; n];
    let mut queue: VecDeque<u32> = VecDeque::new();
    let mut bfs = |from: u32, visited: &mut Vec<bool>, g: &ProximityGraph| {
        if visited[from as usize] {
            return;
        }
        visited[from as usize] = true;
        queue.push_back(from);
        while let Some(v) = queue.pop_front() {
            for &w in &g.adj[v as usize] {
                if !visited[w as usize] {
                    visited[w as usize] = true;
                    queue.push_back(w);
                }
            }
        }
    };

    bfs(order[0], &mut visited, g);
    let mut cursor = 0usize; // over `order`, to find unvisited nodes
    let mut pivot_cursor = 0usize; // over `pivot_order`
    loop {
        // Find an unvisited object (P' non-empty check).
        while cursor < n && visited[order[cursor] as usize] {
            cursor += 1;
        }
        if cursor == n {
            break; // all reached
        }
        // v'_piv: a random unvisited pivot, falling back to the unvisited
        // object itself when no pivot remains outside.
        while pivot_cursor < pivot_order.len() && visited[pivot_order[pivot_cursor] as usize] {
            pivot_cursor += 1;
        }
        let vp = if pivot_cursor < pivot_order.len() {
            pivot_order[pivot_cursor]
        } else {
            order[cursor]
        };

        // V_piv: random visited pivots (ANN entry points); fall back to any
        // visited object if the pivot pool is exhausted.
        let mut starts: Vec<u32> = pivot_order
            .iter()
            .copied()
            .filter(|&p| visited[p as usize])
            .take(V_PIV)
            .collect();
        if starts.is_empty() {
            starts.push(
                order[..cursor + 1]
                    .iter()
                    .copied()
                    .find(|&v| visited[v as usize])
                    .unwrap_or(order[0]),
            );
        }

        let mut best = starts[0];
        let mut best_d = f64::INFINITY;
        for &s in &starts {
            let (cand, d) = greedy_ann_search(g, data, vp as usize, s, MAX_HOPS);
            if d < best_d {
                best_d = d;
                best = cand;
            }
        }
        g.add_undirected(vp, best);
        // Resume BFS from the newly attached region.
        bfs(vp, &mut visited, g);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphKind;
    use dod_metrics::{VectorSet, L2};
    use rand::Rng;

    fn random_points(n: usize, dim: usize, seed: u64) -> VectorSet<L2> {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        VectorSet::from_rows(&rows, L2)
    }

    /// Two well-separated clusters with intra-cluster links only.
    fn two_islands(data: &VectorSet<L2>) -> ProximityGraph {
        let n = data.len();
        let half = n / 2;
        let mut g = ProximityGraph::new(n, GraphKind::Mrpg);
        for i in 0..half - 1 {
            g.add_undirected(i as u32, (i + 1) as u32);
        }
        for i in half..n - 1 {
            g.add_undirected(i as u32, (i + 1) as u32);
        }
        g
    }

    #[test]
    fn connects_disjoint_subgraphs() {
        let data = random_points(100, 3, 1);
        let mut g = two_islands(&data);
        assert_eq!(g.connected_components(), 2);
        connect_subgraphs(&mut g, &data, 7);
        assert_eq!(g.connected_components(), 1);
        g.assert_invariants();
    }

    #[test]
    fn makes_directed_graphs_undirected() {
        let data = random_points(50, 2, 2);
        let mut g = ProximityGraph::new(50, GraphKind::Mrpg);
        // Purely directed chain.
        for i in 0..49u32 {
            g.adj[i as usize].push(i + 1);
        }
        connect_subgraphs(&mut g, &data, 3);
        for u in 0..50u32 {
            for &v in &g.adj[u as usize] {
                assert!(g.has_link(v, u), "missing reverse of {u} -> {v}");
            }
        }
    }

    #[test]
    fn connects_many_singletons() {
        // Worst case: n isolated nodes, no pivots at all.
        let data = random_points(40, 2, 4);
        let mut g = ProximityGraph::new(40, GraphKind::Mrpg);
        connect_subgraphs(&mut g, &data, 5);
        assert_eq!(g.connected_components(), 1);
    }

    #[test]
    fn patch_links_prefer_nearby_nodes() {
        // Two 1-d clusters; the patch link should join the cluster faces,
        // not far ends. With pivots at cluster edges, greedy ANN walks there.
        let rows: Vec<Vec<f32>> = (0..20)
            .map(|i| {
                if i < 10 {
                    vec![i as f32]
                } else {
                    vec![100.0 + i as f32]
                }
            })
            .collect();
        let data = VectorSet::from_rows(&rows, L2);
        let mut g = two_islands(&data);
        g.pivot = vec![true; 20]; // every node a pivot: ANN explores freely
        connect_subgraphs(&mut g, &data, 11);
        assert_eq!(g.connected_components(), 1);
    }

    #[test]
    fn greedy_search_descends_to_local_minimum() {
        let rows: Vec<Vec<f32>> = (0..30).map(|i| vec![i as f32]).collect();
        let data = VectorSet::from_rows(&rows, L2);
        let mut g = ProximityGraph::new(30, GraphKind::Mrpg);
        for i in 0..29u32 {
            g.add_undirected(i, i + 1);
        }
        // Query object 29, start at 0: the chain is monotone, so greedy
        // reaches within max_hops of the query.
        let (best, d) = greedy_ann_search(&g, &data, 29, 0, 100);
        assert_eq!(best, 29);
        assert_eq!(d, 0.0);
        // Hop-bounded search stops early.
        let (best, _) = greedy_ann_search(&g, &data, 29, 0, 5);
        assert_eq!(best, 5);
    }

    #[test]
    fn empty_graph_is_a_noop() {
        let data = random_points(0, 2, 0);
        let mut g = ProximityGraph::new(0, GraphKind::Mrpg);
        connect_subgraphs(&mut g, &data, 0);
        assert_eq!(g.connected_components(), 0);
    }

    #[test]
    fn already_connected_graph_gains_no_patch_links() {
        let data = random_points(60, 2, 9);
        let mut g = ProximityGraph::new(60, GraphKind::Mrpg);
        for i in 0..59u32 {
            g.add_undirected(i, i + 1);
        }
        let links_before = g.link_count();
        connect_subgraphs(&mut g, &data, 13);
        // Phase 1 adds nothing (already undirected); phase 2 adds nothing
        // (single component).
        assert_eq!(g.link_count(), links_before);
    }
}
