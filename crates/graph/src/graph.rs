//! The shared proximity-graph representation all builders produce and the
//! DOD algorithm consumes.

use std::collections::HashMap;

/// Which construction produced a graph. Greedy-Counting behaves identically
/// on all kinds except that the MRPG kinds enable the pivot-expansion rule
/// (Algorithm 2 lines 13–14), which compensates for the links removed by
/// `Remove-Links` (§5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphKind {
    /// Navigable small world (incremental insertion).
    Nsw,
    /// Approximate K-NN graph from NNDescent.
    KGraph,
    /// MRPG with `K' = K` exact lists (paper's MRPG-basic).
    MrpgBasic,
    /// Full MRPG with `K' = 4K` exact lists.
    Mrpg,
}

impl GraphKind {
    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            GraphKind::Nsw => "NSW",
            GraphKind::KGraph => "KGraph",
            GraphKind::MrpgBasic => "MRPG-basic",
            GraphKind::Mrpg => "MRPG",
        }
    }
}

impl std::fmt::Display for GraphKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Exact nearest-neighbor annotation for a node: the node's adjacency list
/// starts with these neighbors, ascending by distance, and `dists[i]` is the
/// exact distance to adjacency entry `i`.
///
/// The §5.5 optimization reads this to decide suspected outliers in
/// `O(log K')` with zero distance evaluations.
#[derive(Debug, Clone)]
pub struct ExactNn {
    /// Ascending distances to the protected adjacency prefix.
    pub dists: Vec<f64>,
}

/// An undirected (after construction) proximity graph over object ids
/// `0..n`, with pivot flags and optional exact-NN prefixes.
pub struct ProximityGraph {
    /// Adjacency lists. For a node present in [`ProximityGraph::exact`],
    /// the first `exact[v].dists.len()` entries are its exact nearest
    /// neighbors in ascending distance order and are *protected*: no
    /// construction step may remove or reorder them.
    pub adj: Vec<Vec<u32>>,
    /// Pivot flags (ball-partition vantage points, §5.1).
    pub pivot: Vec<bool>,
    /// Exact-NN prefixes for suspected outliers (§5.1 "Exact K'-NN
    /// Retrieval" / §5.5).
    pub exact: HashMap<u32, ExactNn>,
    /// Whether Greedy-Counting should enqueue pivots that lie beyond `r`
    /// (Algorithm 2 lines 13–14) — true for the MRPG kinds.
    pub expand_pivots: bool,
    /// Whether the DOD algorithm may decide exact-`K'` nodes without
    /// verification (§5.5). True only for full MRPG: MRPG-basic keeps its
    /// exact `K`-NN links but runs the unoptimized verification, which is
    /// precisely the comparison the paper's Table 5 makes.
    pub use_exact_shortcut: bool,
    /// Provenance.
    pub kind: GraphKind,
}

impl ProximityGraph {
    /// An edgeless graph over `n` nodes.
    pub fn new(n: usize, kind: GraphKind) -> Self {
        ProximityGraph {
            adj: vec![Vec::new(); n],
            pivot: vec![false; n],
            exact: HashMap::new(),
            expand_pivots: matches!(kind, GraphKind::Mrpg | GraphKind::MrpgBasic),
            use_exact_shortcut: kind == GraphKind::Mrpg,
            kind,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of directed adjacency entries (an undirected edge counts
    /// twice).
    pub fn link_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Length of the protected exact-NN prefix of `v` (0 for normal nodes).
    pub fn protected_len(&self, v: u32) -> usize {
        self.exact.get(&v).map_or(0, |e| e.dists.len())
    }

    /// `true` if `u`'s adjacency list contains `v`.
    pub fn has_link(&self, u: u32, v: u32) -> bool {
        self.adj[u as usize].contains(&v)
    }

    /// Adds the undirected edge `{u, v}` unless present; returns whether
    /// anything was added. Self-loops are ignored.
    pub fn add_undirected(&mut self, u: u32, v: u32) -> bool {
        if u == v {
            return false;
        }
        let mut added = false;
        if !self.has_link(u, v) {
            self.adj[u as usize].push(v);
            added = true;
        }
        if !self.has_link(v, u) {
            self.adj[v as usize].push(u);
            added = true;
        }
        added
    }

    /// Ids of all pivot nodes.
    pub fn pivot_ids(&self) -> Vec<u32> {
        (0..self.node_count() as u32)
            .filter(|&v| self.pivot[v as usize])
            .collect()
    }

    /// Number of connected components, treating every link as undirected
    /// (after `Connect-SubGraphs` this must be 1 — or 0 for an empty graph).
    pub fn connected_components(&self) -> usize {
        let n = self.node_count();
        let mut seen = vec![false; n];
        let mut components = 0;
        let mut stack = Vec::new();
        for s in 0..n {
            if seen[s] {
                continue;
            }
            components += 1;
            seen[s] = true;
            stack.push(s as u32);
            while let Some(v) = stack.pop() {
                for &w in &self.adj[v as usize] {
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        stack.push(w);
                    }
                }
            }
        }
        components
    }

    /// (min, mean, max) node degree.
    pub fn degree_stats(&self) -> (usize, f64, usize) {
        if self.adj.is_empty() {
            return (0, 0.0, 0);
        }
        let mut min = usize::MAX;
        let mut max = 0;
        let mut sum = 0usize;
        for l in &self.adj {
            min = min.min(l.len());
            max = max.max(l.len());
            sum += l.len();
        }
        (min, sum as f64 / self.adj.len() as f64, max)
    }

    /// Heap footprint of the index in bytes: adjacency ids, pivot flags and
    /// exact-NN distance arrays (paper Table 6).
    pub fn size_bytes(&self) -> usize {
        let adj: usize = self
            .adj
            .iter()
            .map(|l| l.len() * std::mem::size_of::<u32>() + std::mem::size_of::<Vec<u32>>())
            .sum();
        let exact: usize = self
            .exact
            .values()
            .map(|e| e.dists.len() * std::mem::size_of::<f64>() + 16)
            .sum();
        adj + self.pivot.len() + exact
    }

    /// Checks the structural invariants the builders must maintain:
    /// no self-loops, no duplicate adjacency entries, in-bounds ids, and
    /// exact prefixes ascending with matching lengths. Panics on violation;
    /// meant for tests and debug assertions.
    pub fn assert_invariants(&self) {
        let n = self.node_count() as u32;
        for (v, l) in self.adj.iter().enumerate() {
            let v = v as u32;
            let mut seen = std::collections::HashSet::with_capacity(l.len());
            for &w in l {
                assert!(w < n, "node {v} links out-of-bounds {w}");
                assert_ne!(w, v, "self-loop at {v}");
                assert!(seen.insert(w), "duplicate link {v} -> {w}");
            }
        }
        for (&v, e) in &self.exact {
            assert!(
                e.dists.len() <= self.adj[v as usize].len(),
                "exact prefix of {v} longer than its adjacency"
            );
            assert!(
                e.dists.windows(2).all(|w| w[0] <= w[1]),
                "exact prefix of {v} not ascending"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_undirected_is_idempotent() {
        let mut g = ProximityGraph::new(4, GraphKind::KGraph);
        assert!(g.add_undirected(0, 1));
        assert!(!g.add_undirected(0, 1));
        assert!(!g.add_undirected(1, 0));
        assert_eq!(g.link_count(), 2);
    }

    #[test]
    fn self_loops_are_rejected() {
        let mut g = ProximityGraph::new(2, GraphKind::KGraph);
        assert!(!g.add_undirected(1, 1));
        assert_eq!(g.link_count(), 0);
    }

    #[test]
    fn components_counts_islands() {
        let mut g = ProximityGraph::new(5, GraphKind::KGraph);
        g.add_undirected(0, 1);
        g.add_undirected(2, 3);
        assert_eq!(g.connected_components(), 3); // {0,1} {2,3} {4}
        g.add_undirected(1, 2);
        g.add_undirected(3, 4);
        assert_eq!(g.connected_components(), 1);
    }

    #[test]
    fn empty_graph_has_zero_components() {
        let g = ProximityGraph::new(0, GraphKind::Mrpg);
        assert_eq!(g.connected_components(), 0);
    }

    #[test]
    fn mrpg_kinds_expand_pivots() {
        assert!(ProximityGraph::new(1, GraphKind::Mrpg).expand_pivots);
        assert!(ProximityGraph::new(1, GraphKind::MrpgBasic).expand_pivots);
        assert!(!ProximityGraph::new(1, GraphKind::KGraph).expand_pivots);
        assert!(!ProximityGraph::new(1, GraphKind::Nsw).expand_pivots);
    }

    #[test]
    fn degree_stats_reports_min_mean_max() {
        let mut g = ProximityGraph::new(3, GraphKind::KGraph);
        g.add_undirected(0, 1);
        g.add_undirected(0, 2);
        let (min, mean, max) = g.degree_stats();
        assert_eq!((min, max), (1, 2));
        assert!((mean - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn invariants_catch_duplicates() {
        let mut g = ProximityGraph::new(2, GraphKind::KGraph);
        g.adj[0] = vec![1, 1];
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| g.assert_invariants()));
        assert!(r.is_err());
    }

    #[test]
    fn size_bytes_grows_with_links() {
        let mut g = ProximityGraph::new(10, GraphKind::KGraph);
        let before = g.size_bytes();
        g.add_undirected(0, 1);
        assert!(g.size_bytes() > before);
    }

    #[test]
    fn protected_len_defaults_to_zero() {
        let mut g = ProximityGraph::new(3, GraphKind::Mrpg);
        assert_eq!(g.protected_len(0), 0);
        g.adj[1] = vec![0, 2];
        g.exact.insert(
            1,
            ExactNn {
                dists: vec![0.5, 1.0],
            },
        );
        assert_eq!(g.protected_len(1), 2);
        g.assert_invariants();
    }
}
