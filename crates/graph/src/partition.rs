//! VP-tree-style ball partitioning (paper Algorithm 3): the initialization
//! of NNDescent+ and the source of MRPG's pivots.
//!
//! The object set is recursively split by the *mean* distance to a random
//! vantage object. When the inner ("left") side fits the capacity `c =
//! O(K)`, it forms a tight ball: its members receive their within-ball
//! `K`-NNs as initial approximate K-NNs, and the vantage object becomes a
//! **pivot**. Because every subspace of the data produces balls, pivots end
//! up spread across sparse and dense regions alike — the property
//! `Connect-SubGraphs` and `Remove-Detours` later rely on (§5 "how to
//! choose pivots").
//!
//! Partitioning is repeated a constant number of `rounds` so objects that
//! land in right-side leaves of one round usually get covered by another.

use dod_metrics::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Output of the partitioning rounds.
pub struct PartitionOutcome {
    /// Per object: initial approximate K-NNs (ascending by distance), or
    /// empty if no round covered the object.
    pub initial: Vec<Vec<(f64, u32)>>,
    /// Pivot flags.
    pub pivots: Vec<bool>,
}

/// Runs `rounds` rounds of ball partitioning and returns initial AKNN lists
/// plus pivot flags.
///
/// `capacity` is the leaf capacity `c` (the paper sets `c = O(K)`).
pub fn partition_initialize<D: Dataset + ?Sized>(
    data: &D,
    k: usize,
    capacity: usize,
    rounds: usize,
    seed: u64,
) -> PartitionOutcome {
    let n = data.len();
    let mut out = PartitionOutcome {
        initial: vec![Vec::new(); n],
        pivots: vec![false; n],
    };
    let capacity = capacity.max(k + 1).max(2);
    for round in 0..rounds {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(round as u64));
        let mut ids: Vec<u32> = (0..n as u32).collect();
        recurse(data, &mut ids[..], k, capacity, &mut rng, &mut out);
    }
    out
}

fn recurse<D: Dataset + ?Sized>(
    data: &D,
    ids: &mut [u32],
    k: usize,
    capacity: usize,
    rng: &mut StdRng,
    out: &mut PartitionOutcome,
) {
    if ids.len() <= capacity {
        // A set this small can only be reached as the right side of a
        // split (left leaves are absorbed below); the paper assigns initial
        // AKNNs only through left leaves, so nothing to do here.
        return;
    }
    // Random vantage object.
    let pick = rng.gen_range(0..ids.len());
    ids.swap(0, pick);
    let vp = ids[0];
    let mut dists: Vec<(f64, u32)> = ids[1..]
        .iter()
        .map(|&id| (data.dist(vp as usize, id as usize), id))
        .collect();
    let mean = dists.iter().map(|p| p.0).sum::<f64>() / dists.len() as f64;
    let mut left: Vec<u32> = Vec::new();
    let mut right: Vec<u32> = Vec::new();
    for &(d, id) in &dists {
        if d <= mean {
            left.push(id);
        } else {
            right.push(id);
        }
    }
    if left.is_empty() || right.is_empty() {
        // Degenerate split (e.g. all distances equal): fall back to a
        // positional median split so recursion always makes progress.
        let mid = dists.len() / 2;
        dists.select_nth_unstable_by(mid, |a, b| a.0.total_cmp(&b.0));
        left = dists[..mid].iter().map(|p| p.1).collect();
        right = dists[mid..].iter().map(|p| p.1).collect();
        if left.is_empty() {
            // Two-object degenerate case: treat as a leaf ball.
            assign_ball(data, vp, &right, k, out);
            out.pivots[vp as usize] = true;
            return;
        }
    }
    if left.len() < capacity {
        // Left leaf: a tight ball around the vantage object.
        out.pivots[vp as usize] = true;
        assign_ball(data, vp, &left, k, out);
    } else {
        // Keep the vantage object with its inner ball.
        left.push(vp);
        recurse(data, &mut left[..], k, capacity, rng, out);
    }
    recurse(data, &mut right[..], k, capacity, rng, out);
}

/// Gives every not-yet-covered member of the ball `{vp} ∪ members` its
/// within-ball K-NNs as initial AKNNs.
fn assign_ball<D: Dataset + ?Sized>(
    data: &D,
    vp: u32,
    members: &[u32],
    k: usize,
    out: &mut PartitionOutcome,
) {
    let mut ball: Vec<u32> = Vec::with_capacity(members.len() + 1);
    ball.push(vp);
    ball.extend_from_slice(members);
    for &p in &ball {
        if !out.initial[p as usize].is_empty() {
            continue; // covered by an earlier round
        }
        let mut nbrs: Vec<(f64, u32)> = ball
            .iter()
            .filter(|&&q| q != p)
            .map(|&q| (data.dist(p as usize, q as usize), q))
            .collect();
        nbrs.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        nbrs.truncate(k);
        out.initial[p as usize] = nbrs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dod_metrics::{VectorSet, L2};
    use rand::Rng;

    fn random_points(n: usize, dim: usize, seed: u64) -> VectorSet<L2> {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        VectorSet::from_rows(&rows, L2)
    }

    #[test]
    fn covers_most_objects_with_initial_knn() {
        let data = random_points(600, 4, 1);
        let out = partition_initialize(&data, 8, 16, 3, 7);
        let covered = out.initial.iter().filter(|l| !l.is_empty()).count();
        assert!(covered > 400, "only {covered}/600 covered");
    }

    #[test]
    fn initial_lists_are_sorted_and_self_free() {
        let data = random_points(300, 3, 2);
        let out = partition_initialize(&data, 5, 12, 2, 3);
        for (p, l) in out.initial.iter().enumerate() {
            assert!(l.len() <= 5);
            assert!(l.windows(2).all(|w| w[0].0 <= w[1].0), "unsorted at {p}");
            assert!(l.iter().all(|&(_, q)| q as usize != p), "self-link at {p}");
            for &(d, q) in l {
                assert_eq!(d, data.dist(p, q as usize), "stale distance at {p}");
            }
        }
    }

    #[test]
    fn produces_a_sublinear_pivot_set() {
        let data = random_points(1000, 4, 5);
        let out = partition_initialize(&data, 8, 16, 2, 11);
        let pivots = out.pivots.iter().filter(|&&b| b).count();
        assert!(pivots > 0, "no pivots at all");
        assert!(pivots < 500, "pivots not sublinear: {pivots}");
    }

    #[test]
    fn handles_duplicate_objects_without_hanging() {
        let data = VectorSet::from_rows(&vec![vec![0.5f32, 0.5]; 200], L2);
        let out = partition_initialize(&data, 4, 8, 2, 0);
        // All distances are zero; every covered list holds 4 neighbors at 0.
        let covered = out.initial.iter().filter(|l| !l.is_empty()).count();
        assert!(covered > 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let data = random_points(400, 3, 9);
        let a = partition_initialize(&data, 6, 12, 2, 42);
        let b = partition_initialize(&data, 6, 12, 2, 42);
        assert_eq!(a.pivots, b.pivots);
        for i in 0..400 {
            assert_eq!(a.initial[i], b.initial[i]);
        }
    }

    #[test]
    fn tiny_datasets_do_not_panic() {
        let data = random_points(3, 2, 0);
        let out = partition_initialize(&data, 2, 4, 2, 1);
        assert_eq!(out.initial.len(), 3);
    }
}
