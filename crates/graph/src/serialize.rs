//! Binary persistence for proximity graphs.
//!
//! MRPG construction is the expensive offline step (paper Table 3); a real
//! deployment builds once and reuses the index across process restarts.
//! The format is a simple length-prefixed little-endian layout with a magic
//! header and version byte — no self-describing schema, because the graph
//! is rebuilt rather than migrated when the format changes.
//!
//! ```text
//! magic "DODG" | version u8 | kind u8 | flags u8 |
//! n u64 | adjacency: n × (len u32, ids u32…) |
//! pivots: bitset (n bits, padded to bytes) |
//! exact: count u64 × (id u32, len u32, dists f64…)
//! ```

use crate::graph::{ExactNn, GraphKind, ProximityGraph};
use bytes::{BufMut, Bytes, BytesMut};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"DODG";
const VERSION: u8 = 1;

fn kind_to_u8(kind: GraphKind) -> u8 {
    match kind {
        GraphKind::Nsw => 0,
        GraphKind::KGraph => 1,
        GraphKind::MrpgBasic => 2,
        GraphKind::Mrpg => 3,
    }
}

fn kind_from_u8(v: u8) -> Option<GraphKind> {
    Some(match v {
        0 => GraphKind::Nsw,
        1 => GraphKind::KGraph,
        2 => GraphKind::MrpgBasic,
        3 => GraphKind::Mrpg,
        _ => return None,
    })
}

/// Serializes the graph into an owned byte buffer.
pub fn to_bytes(g: &ProximityGraph) -> Bytes {
    let mut buf =
        BytesMut::with_capacity(16 + g.link_count() * 4 + g.node_count() / 8 + g.exact.len() * 64);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(kind_to_u8(g.kind));
    let flags = u8::from(g.expand_pivots) | (u8::from(g.use_exact_shortcut) << 1);
    buf.put_u8(flags);
    buf.put_u64_le(g.node_count() as u64);
    for l in &g.adj {
        buf.put_u32_le(l.len() as u32);
        for &v in l {
            buf.put_u32_le(v);
        }
    }
    // Pivot bitset.
    let mut byte = 0u8;
    for (i, &p) in g.pivot.iter().enumerate() {
        if p {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            buf.put_u8(byte);
            byte = 0;
        }
    }
    if !g.pivot.len().is_multiple_of(8) {
        buf.put_u8(byte);
    }
    // Exact prefixes, sorted by id for deterministic output.
    let mut ids: Vec<u32> = g.exact.keys().copied().collect();
    ids.sort_unstable();
    buf.put_u64_le(ids.len() as u64);
    for id in ids {
        let e = &g.exact[&id];
        buf.put_u32_le(id);
        buf.put_u32_le(e.dists.len() as u32);
        for &d in &e.dists {
            buf.put_f64_le(d);
        }
    }
    buf.freeze()
}

/// Error type for [`from_bytes`] / [`read_from`].
#[derive(Debug)]
pub enum DecodeError {
    /// The payload is truncated or structurally invalid at `offset` bytes
    /// from the start of the graph blob.
    Corrupt {
        /// Byte offset where decoding failed.
        offset: usize,
        /// What was wrong, in words.
        reason: &'static str,
    },
    /// Underlying IO failure.
    Io(io::Error),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Corrupt { offset, reason } => {
                write!(f, "corrupt graph file at offset {offset}: {reason}")
            }
            DecodeError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<io::Error> for DecodeError {
    fn from(e: io::Error) -> Self {
        DecodeError::Io(e)
    }
}

/// Bounds-checked little-endian cursor that remembers how far it got, so
/// every decode failure can report the exact byte offset.
struct Cursor<'a> {
    data: &'a [u8],
    total: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Cursor {
            data,
            total: data.len(),
        }
    }

    fn offset(&self) -> usize {
        self.total - self.data.len()
    }

    fn corrupt<T>(&self, reason: &'static str) -> Result<T, DecodeError> {
        Err(DecodeError::Corrupt {
            offset: self.offset(),
            reason,
        })
    }

    fn need(&self, n: usize, what: &'static str) -> Result<(), DecodeError> {
        if self.data.len() < n {
            self.corrupt(what)
        } else {
            Ok(())
        }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], DecodeError> {
        self.need(n, what)?;
        let (head, tail) = self.data.split_at(n);
        self.data = tail;
        Ok(head)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, DecodeError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, DecodeError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, DecodeError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn f64(&mut self, what: &'static str) -> Result<f64, DecodeError> {
        let b = self.take(8, what)?;
        Ok(f64::from_le_bytes(b.try_into().expect("8 bytes")))
    }
}

/// Deserializes a graph from bytes produced by [`to_bytes`].
pub fn from_bytes(data: &[u8]) -> Result<ProximityGraph, DecodeError> {
    let mut c = Cursor::new(data);
    if c.take(4, "truncated magic")? != MAGIC {
        // The magic starts at offset 0 no matter how far `take` advanced.
        return Err(DecodeError::Corrupt {
            offset: 0,
            reason: "bad magic",
        });
    }
    if c.u8("truncated version")? != VERSION {
        return c.corrupt("unsupported version");
    }
    let kind = match kind_from_u8(c.u8("truncated graph kind")?) {
        Some(kind) => kind,
        None => return c.corrupt("bad graph kind"),
    };
    let flags = c.u8("truncated flags")?;
    let n = c.u64("truncated node count")? as usize;
    // An adjacency list costs at least 4 bytes per node; reject absurd
    // counts before allocating `n` vectors.
    if n > c.data.len() / 4 + 1 {
        return c.corrupt("node count exceeds payload size");
    }

    let mut g = ProximityGraph::new(n, kind);
    g.expand_pivots = flags & 1 != 0;
    g.use_exact_shortcut = flags & 2 != 0;
    for i in 0..n {
        let len = c.u32("truncated adjacency length")? as usize;
        let bytes = c.take(len * 4, "truncated adjacency list")?;
        let mut l = Vec::with_capacity(len);
        for chunk in bytes.chunks_exact(4) {
            let v = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
            if v as usize >= n {
                return c.corrupt("adjacency id out of bounds");
            }
            l.push(v);
        }
        g.adj[i] = l;
    }
    let pivots = c.take(n.div_ceil(8), "truncated pivot bitset")?;
    for i in 0..n {
        g.pivot[i] = pivots[i / 8] & (1 << (i % 8)) != 0;
    }
    let exact_count = c.u64("truncated exact count")? as usize;
    if exact_count > n {
        return c.corrupt("exact entry count exceeds node count");
    }
    for _ in 0..exact_count {
        let id = c.u32("truncated exact entry id")?;
        if id as usize >= n {
            return c.corrupt("exact id out of bounds");
        }
        let len = c.u32("truncated exact entry length")? as usize;
        if len > g.adj[id as usize].len() {
            return c.corrupt("exact prefix longer than adjacency");
        }
        let mut dists = Vec::with_capacity(len);
        for _ in 0..len {
            dists.push(c.f64("truncated exact distances")?);
        }
        g.exact.insert(id, ExactNn { dists });
    }
    Ok(g)
}

/// Writes the graph to any [`Write`] sink (e.g. a file).
pub fn write_to<W: Write>(g: &ProximityGraph, mut w: W) -> io::Result<()> {
    w.write_all(&to_bytes(g))
}

/// Reads a graph from any [`Read`] source.
pub fn read_from<R: Read>(mut r: R) -> Result<ProximityGraph, DecodeError> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    from_bytes(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mrpg::{self, MrpgParams};
    use dod_metrics::{VectorSet, L2};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sample_graph() -> ProximityGraph {
        let mut rng = StdRng::seed_from_u64(3);
        let rows: Vec<Vec<f32>> = (0..150)
            .map(|_| vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)])
            .collect();
        let data = VectorSet::from_rows(&rows, L2);
        let mut p = MrpgParams::new(6);
        p.exact_m = Some(10);
        mrpg::build(&data, &p).0
    }

    fn assert_graphs_equal(a: &ProximityGraph, b: &ProximityGraph) {
        assert_eq!(a.adj, b.adj);
        assert_eq!(a.pivot, b.pivot);
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.expand_pivots, b.expand_pivots);
        assert_eq!(a.use_exact_shortcut, b.use_exact_shortcut);
        assert_eq!(a.exact.len(), b.exact.len());
        for (id, e) in &a.exact {
            assert_eq!(e.dists, b.exact[id].dists);
        }
    }

    #[test]
    fn round_trips_an_mrpg() {
        let g = sample_graph();
        let bytes = to_bytes(&g);
        let g2 = from_bytes(&bytes).expect("decode");
        assert_graphs_equal(&g, &g2);
        g2.assert_invariants();
    }

    #[test]
    fn round_trips_through_io() {
        let g = sample_graph();
        let mut buf = Vec::new();
        write_to(&g, &mut buf).expect("write");
        let g2 = read_from(&buf[..]).expect("read");
        assert_graphs_equal(&g, &g2);
    }

    #[test]
    fn round_trips_empty_graph() {
        let g = ProximityGraph::new(0, GraphKind::KGraph);
        let g2 = from_bytes(&to_bytes(&g)).expect("decode");
        assert_eq!(g2.node_count(), 0);
        assert_eq!(g2.kind, GraphKind::KGraph);
    }

    #[test]
    fn rejects_corruption() {
        let g = sample_graph();
        let bytes = to_bytes(&g).to_vec();
        // Bad magic reports offset 0.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            from_bytes(&bad),
            Err(DecodeError::Corrupt {
                offset: 0,
                reason: "bad magic"
            })
        ));
        // Bad version reports the byte after the 4-byte magic.
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(matches!(
            from_bytes(&bad),
            Err(DecodeError::Corrupt {
                offset: 5,
                reason: "unsupported version"
            })
        ));
        // Truncations at every prefix length must error, not panic, and
        // the reported offset can never exceed the payload we handed in.
        for cut in [0, 3, 10, 20, bytes.len() / 2, bytes.len() - 1] {
            match from_bytes(&bytes[..cut]) {
                Err(DecodeError::Corrupt { offset, .. }) => {
                    assert!(offset <= cut, "offset {offset} beyond cut {cut}")
                }
                Err(e) => panic!("cut at {cut}: unexpected error kind {e}"),
                Ok(_) => panic!("cut at {cut} accepted"),
            }
        }
    }

    #[test]
    fn rejects_out_of_bounds_ids() {
        let mut g = ProximityGraph::new(2, GraphKind::KGraph);
        g.add_undirected(0, 1);
        let mut bytes = to_bytes(&g).to_vec();
        // The first adjacency id lives right after the 4-byte list length
        // that follows the 15-byte header; overwrite it with a huge id.
        bytes[19..23].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn output_is_deterministic() {
        let g = sample_graph();
        assert_eq!(to_bytes(&g), to_bytes(&g));
    }
}
