//! NNDescent and NNDescent+ — approximate K-NN graph construction (§5.1).
//!
//! NNDescent \[Dong et al., WWW'11\] refines random initial neighbor lists
//! by the rule "my neighbors' neighbors are probably my neighbors". The
//! paper's **NNDescent+** adds three things:
//!
//! 1. **Ball-partitioning initialization** ([`crate::partition`]): objects
//!    start with near-correct lists, cutting the number of iterations, and
//!    the partition's vantage objects become MRPG's pivots.
//! 2. **Update-status skipping**: a node's similar-object list is only
//!    examined if that list changed in the previous iteration.
//! 3. **Exact `K'`-NN retrieval** for the `m` objects with the largest AKNN
//!    distance sums (the suspected outliers), enabling the §5.5 shortcut.
//!
//! The iteration is double-buffered: every node's new list is computed from
//! the previous iteration's lists only, so the parallel build is
//! deterministic for any thread count.

use crate::parallel::par_map;
use crate::partition::partition_initialize;
use dod_metrics::{Dataset, OrdF64};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BinaryHeap, HashMap};

/// Parameters for [`build`]; see module docs.
#[derive(Debug, Clone)]
pub struct NnDescentParams {
    /// Graph degree `K` (paper: 40 for PAMAP2, 25 otherwise).
    pub k: usize,
    /// Iteration cap (the loop stops earlier once no list changes).
    pub max_iters: usize,
    /// Enable the NNDescent+ extensions (partition init + skipping +
    /// exact refinement). `false` reproduces plain NNDescent / KGraph.
    pub plus: bool,
    /// Ball-partitioning rounds (plus only).
    pub partition_rounds: usize,
    /// Leaf capacity `c` of the partitioning; `0` means `2K` (plus only).
    pub capacity: usize,
    /// Number of suspected outliers refined with exact lists (plus only).
    pub exact_m: usize,
    /// Exact list length `K' >= K` (plus only; MRPG uses `4K`,
    /// MRPG-basic uses `K`).
    pub k_prime: usize,
    /// Worker threads.
    pub threads: usize,
    /// RNG seed (builds are deterministic per seed and thread count).
    pub seed: u64,
}

impl NnDescentParams {
    /// Plain NNDescent, the KGraph construction.
    pub fn kgraph(k: usize) -> Self {
        NnDescentParams {
            k,
            max_iters: 15,
            plus: false,
            partition_rounds: 0,
            capacity: 0,
            exact_m: 0,
            k_prime: k,
            threads: 1,
            seed: 0,
        }
    }

    /// NNDescent+ as used for MRPG (`K' = 4K`) or MRPG-basic (`K' = K`).
    pub fn plus(k: usize, k_prime: usize, exact_m: usize) -> Self {
        assert!(k_prime >= k, "K' must be at least K");
        NnDescentParams {
            k,
            max_iters: 15,
            plus: true,
            partition_rounds: 2,
            capacity: 0,
            exact_m,
            k_prime,
            threads: 1,
            seed: 0,
        }
    }
}

/// An approximate K-NN graph: per node an ascending `(distance, id)` list.
pub struct AknnGraph {
    /// Per node: approximate (or exact, see [`AknnGraph::exact_len`])
    /// nearest neighbors, ascending by distance.
    pub knn: Vec<Vec<(f64, u32)>>,
    /// Ball-partitioning pivots (empty/false for plain NNDescent).
    pub pivots: Vec<bool>,
    /// Nodes whose whole list is exact, with the list length `K'`.
    pub exact_len: HashMap<u32, usize>,
    /// Number of refinement iterations executed.
    pub iterations: usize,
}

impl AknnGraph {
    /// Average of the stored neighbor distances — a cheap quality signal
    /// used by tests (lower is better for a fixed dataset and K).
    pub fn mean_neighbor_distance(&self) -> f64 {
        let (mut sum, mut cnt) = (0.0, 0usize);
        for l in &self.knn {
            for &(d, _) in l {
                sum += d;
                cnt += 1;
            }
        }
        if cnt == 0 {
            0.0
        } else {
            sum / cnt as f64
        }
    }
}

/// Inserts `(d, id)` into an ascending list capped at `k`. Returns `true`
/// if the list changed. Callers guarantee `id` is not already present.
fn insert_capped(list: &mut Vec<(f64, u32)>, d: f64, id: u32, k: usize) -> bool {
    if list.len() == k && d >= list[k - 1].0 {
        return false;
    }
    let pos = list.partition_point(|&(ld, _)| ld <= d);
    list.insert(pos, (d, id));
    if list.len() > k {
        list.pop();
    }
    true
}

/// Builds the AKNN graph. See module docs for the algorithm.
pub fn build<D: Dataset + ?Sized>(data: &D, params: &NnDescentParams) -> AknnGraph {
    let n = data.len();
    let k = params.k.min(n.saturating_sub(1));
    if n == 0 || k == 0 {
        return AknnGraph {
            knn: vec![Vec::new(); n],
            pivots: vec![false; n],
            exact_len: HashMap::new(),
            iterations: 0,
        };
    }

    // ---- Initialization -------------------------------------------------
    let mut pivots = vec![false; n];
    let mut knn: Vec<Vec<(f64, u32)>> = vec![Vec::new(); n];
    if params.plus {
        let capacity = if params.capacity == 0 {
            2 * params.k
        } else {
            params.capacity
        };
        let part = partition_initialize(data, k, capacity, params.partition_rounds, params.seed);
        pivots = part.pivots;
        knn = part.initial;
    }
    // Fill uncovered nodes with distinct random neighbors (both the plain
    // initialization and the plus fallback for objects no round covered).
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x9e37_79b9);
    for (p, list) in knn.iter_mut().enumerate() {
        if !list.is_empty() {
            continue;
        }
        if n - 1 <= k {
            for q in 0..n {
                if q != p {
                    insert_capped(list, data.dist(p, q), q as u32, k);
                }
            }
            continue;
        }
        while list.len() < k {
            let q = rng.gen_range(0..n);
            if q != p && !list.iter().any(|&(_, id)| id as usize == q) {
                insert_capped(list, data.dist(p, q), q as u32, k);
            }
        }
    }

    // ---- Refinement iterations ------------------------------------------
    let mut updated = vec![true; n];
    let mut iterations = 0;
    for _ in 0..params.max_iters {
        iterations += 1;
        // Reverse AKNN lists, capped at K deterministic entries (the first
        // K in node order — the paper caps the similar-object list at O(K)).
        let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (u, list) in knn.iter().enumerate() {
            for &(_, v) in list {
                let rl = &mut rev[v as usize];
                if rl.len() < k {
                    rl.push(u as u32);
                }
            }
        }

        let results: Vec<(Vec<(f64, u32)>, bool)> = par_map(n, params.threads, |p| {
            let mut list = knn[p].clone();
            // Sorted ids of the incoming list for O(log K) membership tests;
            // insertions during this pass are tracked separately.
            let mut member_ids: Vec<u32> = list.iter().map(|&(_, id)| id).collect();
            member_ids.sort_unstable();
            let mut fresh_ids: Vec<u32> = Vec::new();
            let mut changed = false;

            // Similar-object list of p: its AKNNs and reverse AKNNs.
            let mut sim: Vec<u32> = Vec::with_capacity(2 * k);
            sim.extend(knn[p].iter().map(|&(_, id)| id));
            sim.extend(rev[p].iter().copied());
            sim.sort_unstable();
            sim.dedup();

            // Candidates: members of the similar lists of p's similar
            // objects (skipping lists that did not change last iteration —
            // the NNDescent+ "no updates" optimization).
            let mut candidates: Vec<u32> = Vec::with_capacity(4 * k * k);
            for &q in &sim {
                candidates.push(q);
                if params.plus && !updated[q as usize] {
                    continue;
                }
                candidates.extend(knn[q as usize].iter().map(|&(_, id)| id));
                candidates.extend(rev[q as usize].iter().copied());
            }
            candidates.sort_unstable();
            candidates.dedup();

            for &x in &candidates {
                if x as usize == p || member_ids.binary_search(&x).is_ok() || fresh_ids.contains(&x)
                {
                    continue;
                }
                let d = data.dist(p, x as usize);
                if insert_capped(&mut list, d, x, k) {
                    fresh_ids.push(x);
                    changed = true;
                }
            }
            (list, changed)
        });

        let mut any = false;
        for (p, (list, changed)) in results.into_iter().enumerate() {
            knn[p] = list;
            updated[p] = changed;
            any |= changed;
        }
        if !any {
            break;
        }
    }

    // ---- Exact K'-NN retrieval for suspected outliers (plus only) -------
    let mut exact_len = HashMap::new();
    if params.plus && params.exact_m > 0 && n > 1 {
        let k_prime = params.k_prime.max(k).min(n - 1);
        // Suspicion score: sum of distances to the current AKNNs (short
        // lists are maximally suspicious). Descending, ties by id for
        // determinism.
        let mut scored: Vec<(f64, u32)> = knn
            .iter()
            .enumerate()
            .map(|(p, l)| {
                let s = if l.len() < k {
                    f64::INFINITY
                } else {
                    l.iter().map(|&(d, _)| d).sum()
                };
                (s, p as u32)
            })
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let chosen: Vec<u32> = scored
            .into_iter()
            .take(params.exact_m.min(n))
            .map(|(_, p)| p)
            .collect();
        let exact_lists: Vec<Vec<(f64, u32)>> = par_map(chosen.len(), params.threads, |ci| {
            let p = chosen[ci] as usize;
            // Linear-scan K'-NN with a capped max-heap.
            let mut heap: BinaryHeap<(OrdF64, u32)> = BinaryHeap::with_capacity(k_prime + 1);
            for q in 0..n {
                if q == p {
                    continue;
                }
                let d = data.dist(p, q);
                if heap.len() < k_prime {
                    heap.push((OrdF64(d), q as u32));
                } else if d < heap.peek().expect("non-empty").0 .0 {
                    heap.pop();
                    heap.push((OrdF64(d), q as u32));
                }
            }
            let mut l: Vec<(f64, u32)> = heap.into_iter().map(|(OrdF64(d), q)| (d, q)).collect();
            l.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            l
        });
        for (ci, &p) in chosen.iter().enumerate() {
            knn[p as usize] = exact_lists[ci].clone();
            exact_len.insert(p, exact_lists[ci].len());
        }
    }

    AknnGraph {
        knn,
        pivots,
        exact_len,
        iterations,
    }
}

/// Recall of the AKNN lists against brute-force K-NN, over a sample of
/// nodes. Test/diagnostic helper — O(sample · n) distance evaluations.
pub fn knn_recall<D: Dataset + ?Sized>(data: &D, g: &AknnGraph, k: usize, sample: usize) -> f64 {
    let n = data.len();
    if n < 2 {
        return 1.0;
    }
    let step = (n / sample.max(1)).max(1);
    let (mut hit, mut total) = (0usize, 0usize);
    for p in (0..n).step_by(step) {
        let mut all: Vec<(f64, u32)> = (0..n)
            .filter(|&q| q != p)
            .map(|q| (data.dist(p, q), q as u32))
            .collect();
        all.sort_by(|a, b| a.0.total_cmp(&b.0));
        let kk = k.min(all.len());
        // Compare by distance (ties make id comparison unfair).
        let true_kth = all[kk - 1].0;
        for &(d, _) in g.knn[p].iter().take(kk) {
            if d <= true_kth + 1e-12 {
                hit += 1;
            }
        }
        total += kk;
    }
    hit as f64 / total.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dod_metrics::{VectorSet, L2};

    fn random_points(n: usize, dim: usize, seed: u64) -> VectorSet<L2> {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        VectorSet::from_rows(&rows, L2)
    }

    #[test]
    fn insert_capped_keeps_ascending_order() {
        let mut l = Vec::new();
        assert!(insert_capped(&mut l, 2.0, 1, 3));
        assert!(insert_capped(&mut l, 1.0, 2, 3));
        assert!(insert_capped(&mut l, 3.0, 3, 3));
        assert!(!insert_capped(&mut l, 5.0, 4, 3)); // full, too far
        assert!(insert_capped(&mut l, 0.5, 5, 3));
        let ids: Vec<u32> = l.iter().map(|&(_, id)| id).collect();
        assert_eq!(ids, vec![5, 2, 1]);
    }

    #[test]
    fn kgraph_reaches_high_recall() {
        let data = random_points(400, 4, 3);
        let g = build(&data, &NnDescentParams::kgraph(10));
        let recall = knn_recall(&data, &g, 10, 50);
        assert!(recall > 0.90, "recall = {recall}");
    }

    #[test]
    fn plus_is_cheaper_than_plain_on_clustered_data() {
        // The paper's claim (§5.1): partition initialization plus
        // update-skipping makes NNDescent+ empirically cheaper. Distance
        // evaluations are the cost model, so count them on data where
        // clustering exists to be exploited.
        let mut rng = StdRng::seed_from_u64(17);
        let rows: Vec<Vec<f32>> = (0..500)
            .map(|i| {
                let c = (i % 5) as f32 * 20.0;
                (0..4).map(|_| c + rng.gen_range(-1.0f32..1.0)).collect()
            })
            .collect();
        let data = VectorSet::from_rows(&rows, L2);

        let counted = dod_metrics::DistanceCounter::new(&data);
        let plain = build(&counted, &NnDescentParams::kgraph(10));
        let plain_calls = counted.calls();
        counted.reset();
        let plus = build(
            &counted,
            &NnDescentParams {
                seed: 0,
                ..NnDescentParams::plus(10, 10, 0)
            },
        );
        let plus_calls = counted.calls();

        let plain_recall = knn_recall(&data, &plain, 10, 50);
        let plus_recall = knn_recall(&data, &plus, 10, 50);
        assert!(plus_recall > 0.90, "recall = {plus_recall}");
        assert!(plain_recall > 0.90, "recall = {plain_recall}");
        assert!(
            plus_calls < plain_calls,
            "plus used {plus_calls} distance calls, plain {plain_calls}"
        );
    }

    #[test]
    fn lists_are_sorted_unique_and_self_free() {
        let data = random_points(200, 3, 1);
        let g = build(&data, &NnDescentParams::kgraph(8));
        for (p, l) in g.knn.iter().enumerate() {
            assert_eq!(l.len(), 8);
            assert!(l.windows(2).all(|w| w[0].0 <= w[1].0));
            let mut ids: Vec<u32> = l.iter().map(|&(_, id)| id).collect();
            assert!(!ids.contains(&(p as u32)));
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 8, "duplicate ids at {p}");
        }
    }

    #[test]
    fn exact_refinement_produces_true_knn() {
        let data = random_points(250, 3, 5);
        let g = build(
            &data,
            &NnDescentParams {
                threads: 2,
                ..NnDescentParams::plus(6, 12, 10)
            },
        );
        assert_eq!(g.exact_len.len(), 10);
        for (&p, &len) in &g.exact_len {
            assert_eq!(len, 12);
            let list = &g.knn[p as usize];
            assert_eq!(list.len(), 12);
            // Compare against brute force.
            let mut all: Vec<(f64, u32)> = (0..250)
                .filter(|&q| q != p as usize)
                .map(|q| (data.dist(p as usize, q), q as u32))
                .collect();
            all.sort_by(|a, b| a.0.total_cmp(&b.0));
            for (i, &(d, _)) in list.iter().enumerate() {
                assert!((d - all[i].0).abs() < 1e-12, "node {p} rank {i}");
            }
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let data = random_points(300, 3, 8);
        let mut p1 = NnDescentParams::plus(8, 16, 5);
        p1.threads = 1;
        let mut p4 = p1.clone();
        p4.threads = 4;
        let a = build(&data, &p1);
        let b = build(&data, &p4);
        assert_eq!(a.iterations, b.iterations);
        for p in 0..300 {
            assert_eq!(a.knn[p], b.knn[p], "node {p} differs");
        }
    }

    #[test]
    fn small_datasets_get_complete_graphs() {
        let data = random_points(5, 2, 0);
        let g = build(&data, &NnDescentParams::kgraph(10));
        for (p, l) in g.knn.iter().enumerate() {
            assert_eq!(l.len(), 4, "node {p} should link all others");
        }
    }

    #[test]
    fn empty_dataset_is_fine() {
        let data = random_points(0, 2, 0);
        let g = build(&data, &NnDescentParams::kgraph(5));
        assert!(g.knn.is_empty());
    }

    #[test]
    fn k_prime_below_k_is_rejected() {
        let r = std::panic::catch_unwind(|| NnDescentParams::plus(10, 5, 3));
        assert!(r.is_err());
    }
}
