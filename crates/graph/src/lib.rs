//! Metric proximity graphs for distance-based outlier detection.
//!
//! This crate builds the three graph families compared in the paper's
//! evaluation, all from scratch:
//!
//! * **KGraph** — an approximate K-NN graph built by NNDescent
//!   \[Dong et al., WWW'11\] ([`nndescent`]).
//! * **NSW** — a navigable small-world graph built by incremental insertion
//!   \[Malkov et al., 2014\] ([`nsw`]).
//! * **MRPG / MRPG-basic** — the paper's contribution (§5): NNDescent+
//!   ([`nndescent`] with [`NnDescentParams::plus`]), then
//!   [`connect`]`::connect_subgraphs` (Algorithm 4), then
//!   [`detours`]`::remove_detours` (Algorithm 5), then
//!   [`prune`]`::remove_links` (§5.4). Assembled by [`mrpg`]`::build`.
//!
//! An exact monotonic-search-graph builder ([`msg`]) is included as the
//! Ω(n²) reference point of Theorem 3 (used in tests and ablations only),
//! along with an [`hnsw`] extension (the paper's §3 argues DOD cannot
//! benefit from HNSW's hierarchy; we include it so the claim is testable),
//! binary index persistence ([`serialize`]) and reachability diagnostics
//! ([`stats`]).
//!
//! All builders are deterministic for a fixed seed, including the
//! multi-threaded ones (they double-buffer instead of sharing state).

pub mod connect;
pub mod detours;
pub mod graph;
pub mod hnsw;
pub mod mrpg;
pub mod msg;
pub mod nndescent;
pub mod nsw;
pub mod parallel;
pub mod partition;
pub mod prune;
pub mod serialize;
pub mod stats;

pub use graph::{GraphKind, ProximityGraph};
pub use mrpg::{BuildBreakdown, MrpgParams};
pub use nndescent::{AknnGraph, NnDescentParams};
pub use nsw::NswParams;
