//! Remove-Links (paper §5.4): drop redundant links between non-pivots that
//! share a pivot.
//!
//! If non-pivots `p` and `w` are both linked to pivot `q`, Greedy-Counting
//! launched anywhere near them will reach both through `q` anyway, so the
//! direct link `{p, w}` only causes repeated visits. Removing it is safe
//! *because* Algorithm 2 lines 13–14 expand pivots even when they lie
//! beyond `r` — the pivot stays a bridge. Exact-`K'` prefixes are never
//! touched (the §5.5 shortcut needs them intact).

use crate::graph::ProximityGraph;
use std::collections::HashSet;

/// Statistics returned by [`remove_links`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PruneStats {
    /// Undirected edges removed.
    pub removed_edges: usize,
}

/// Runs the link removal in place and reports how many edges went away.
pub fn remove_links(g: &mut ProximityGraph) -> PruneStats {
    let n = g.node_count();
    let mut removed = 0usize;
    for p in 0..n as u32 {
        if g.pivot[p as usize] {
            continue;
        }
        let prot_p = g.protected_len(p);
        // Pivot neighbors of p.
        let pivot_nbrs: Vec<u32> = g.adj[p as usize]
            .iter()
            .copied()
            .filter(|&q| g.pivot[q as usize])
            .collect();
        if pivot_nbrs.is_empty() {
            continue;
        }
        // Removable side of p's list: non-pivot, outside the exact prefix.
        let removable: HashSet<u32> = g.adj[p as usize][prot_p..]
            .iter()
            .copied()
            .filter(|&w| !g.pivot[w as usize])
            .collect();
        if removable.is_empty() {
            continue;
        }
        let mut to_remove: HashSet<u32> = HashSet::new();
        for &q in &pivot_nbrs {
            for &w in &g.adj[q as usize] {
                if w == p || !removable.contains(&w) || to_remove.contains(&w) {
                    continue;
                }
                // The link must also be outside w's protected prefix.
                let prot_w = g.protected_len(w);
                let pos = g.adj[w as usize].iter().position(|&x| x == p);
                if let Some(pos) = pos {
                    if pos >= prot_w {
                        to_remove.insert(w);
                    }
                }
            }
        }
        if to_remove.is_empty() {
            continue;
        }
        // Drop {p, w} on both sides, preserving protected prefixes.
        let adj_p = &mut g.adj[p as usize];
        let mut i = prot_p;
        while i < adj_p.len() {
            if to_remove.contains(&adj_p[i]) {
                adj_p.swap_remove(i);
            } else {
                i += 1;
            }
        }
        for &w in &to_remove {
            let prot_w = g.protected_len(w);
            let adj_w = &mut g.adj[w as usize];
            if let Some(pos) = adj_w.iter().position(|&x| x == p) {
                debug_assert!(pos >= prot_w, "checked before inserting into to_remove");
                adj_w.swap_remove(pos.max(prot_w));
            }
            removed += 1;
        }
    }
    PruneStats {
        removed_edges: removed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ExactNn, GraphKind};

    /// The paper's Figure 5 scenario: p1, p2 non-pivots sharing pivot p3.
    fn figure5() -> ProximityGraph {
        let mut g = ProximityGraph::new(3, GraphKind::Mrpg);
        g.add_undirected(0, 2); // p1 - pivot
        g.add_undirected(1, 2); // p2 - pivot
        g.add_undirected(0, 1); // p1 - p2 (redundant)
        g.pivot[2] = true;
        g
    }

    #[test]
    fn removes_the_redundant_link() {
        let mut g = figure5();
        let stats = remove_links(&mut g);
        assert_eq!(stats.removed_edges, 1);
        assert!(!g.has_link(0, 1) && !g.has_link(1, 0));
        assert!(g.has_link(0, 2) && g.has_link(1, 2));
        g.assert_invariants();
    }

    #[test]
    fn keeps_links_between_pivots() {
        let mut g = figure5();
        g.pivot[0] = true; // p1 is now a pivot too
        let stats = remove_links(&mut g);
        // Only non-pivot pairs are pruned; p1 is a pivot so nothing at p1,
        // and p2's link to pivot p1 is also out of scope.
        assert_eq!(stats.removed_edges, 0);
        assert!(g.has_link(0, 1));
    }

    #[test]
    fn protects_exact_prefixes() {
        let mut g = figure5();
        // Pretend node 0's list starts with its exact 2-NN (2 then 1): the
        // (0,1) entry is protected on 0's side.
        g.adj[0] = vec![2, 1];
        g.adj[1] = vec![2, 0];
        g.exact.insert(
            0,
            ExactNn {
                dists: vec![1.0, 2.0],
            },
        );
        let stats = remove_links(&mut g);
        assert_eq!(stats.removed_edges, 0);
        assert!(g.has_link(0, 1) && g.has_link(1, 0));
    }

    #[test]
    fn connectivity_is_preserved_via_pivots() {
        // A clique of 5 non-pivots around one pivot: pruning removes all
        // non-pivot pairs but the pivot keeps everything connected.
        let mut g = ProximityGraph::new(6, GraphKind::Mrpg);
        for i in 0..5u32 {
            g.add_undirected(i, 5);
            for j in (i + 1)..5 {
                g.add_undirected(i, j);
            }
        }
        g.pivot[5] = true;
        assert_eq!(g.connected_components(), 1);
        let stats = remove_links(&mut g);
        assert_eq!(stats.removed_edges, 10); // all C(5,2) pairs
        assert_eq!(g.connected_components(), 1);
        for i in 0..5 {
            assert_eq!(g.adj[i], vec![5]);
        }
    }

    #[test]
    fn no_pivots_means_no_removal() {
        let mut g = ProximityGraph::new(4, GraphKind::Mrpg);
        g.add_undirected(0, 1);
        g.add_undirected(1, 2);
        g.add_undirected(2, 3);
        let stats = remove_links(&mut g);
        assert_eq!(stats.removed_edges, 0);
        assert_eq!(g.link_count(), 6);
    }
}
