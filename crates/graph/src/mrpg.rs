//! MRPG assembly (paper §5): NNDescent+ → Connect-SubGraphs →
//! Remove-Detours → Remove-Links, with per-phase timing (paper Table 4).
//!
//! Also provides the KGraph and NSW entry points used by the evaluation, so
//! the bench harness builds every compared graph through one module.

use crate::connect::connect_subgraphs;
use crate::detours::{remove_detours, DetourParams};
use crate::graph::{ExactNn, GraphKind, ProximityGraph};
use crate::nndescent::{self, NnDescentParams};
use crate::nsw::{self, NswParams};
use crate::prune::remove_links;
use dod_metrics::Dataset;
use std::time::Instant;

/// Parameters for [`build`].
#[derive(Debug, Clone)]
pub struct MrpgParams {
    /// Graph degree `K`.
    pub k: usize,
    /// Exact list length `K'` (paper default `4K`; MRPG-basic uses `K`).
    pub k_prime: usize,
    /// How many suspected outliers receive exact `K'`-NN lists
    /// (the paper's constant `m`). `None` = `max(32, n/50)`.
    pub exact_m: Option<usize>,
    /// Ball-partitioning rounds for the NNDescent+ initialization.
    pub partition_rounds: usize,
    /// NNDescent+ iteration cap.
    pub max_iters: usize,
    /// Worker threads for every parallel phase.
    pub threads: usize,
    /// RNG seed (the whole pipeline is deterministic per seed).
    pub seed: u64,
    /// `false` builds MRPG-basic (`K' = K`, verification not shortcut).
    pub full: bool,
    /// Ablation toggle: run Connect-SubGraphs (§6.2 studies disabling it).
    pub enable_connect: bool,
    /// Ablation toggle: run Remove-Detours.
    pub enable_detours: bool,
    /// Ablation toggle: run Remove-Links.
    pub enable_remove_links: bool,
    /// Remove-Detours tuning.
    pub detours: DetourParams,
}

impl MrpgParams {
    /// Full MRPG with the paper's defaults for degree `k` (`K' = 4K`).
    pub fn new(k: usize) -> Self {
        MrpgParams {
            k,
            k_prime: 4 * k,
            exact_m: None,
            partition_rounds: 2,
            max_iters: 15,
            threads: 1,
            seed: 0,
            full: true,
            enable_connect: true,
            enable_detours: true,
            enable_remove_links: true,
            detours: DetourParams::for_degree(k),
        }
    }

    /// MRPG-basic: exact lists of length `K` and no verification shortcut.
    pub fn basic(k: usize) -> Self {
        MrpgParams {
            k_prime: k,
            full: false,
            ..MrpgParams::new(k)
        }
    }
}

/// Wall-clock time of each construction phase (paper Table 4).
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildBreakdown {
    /// NNDescent+ (including initialization and exact refinement).
    pub nndescent_secs: f64,
    /// Connect-SubGraphs.
    pub connect_secs: f64,
    /// Remove-Detours.
    pub detours_secs: f64,
    /// Remove-Links.
    pub remove_links_secs: f64,
}

impl BuildBreakdown {
    /// Total build time.
    pub fn total_secs(&self) -> f64 {
        self.nndescent_secs + self.connect_secs + self.detours_secs + self.remove_links_secs
    }
}

/// Builds an MRPG (or MRPG-basic) over `data`.
pub fn build<D: Dataset + ?Sized>(
    data: &D,
    params: &MrpgParams,
) -> (ProximityGraph, BuildBreakdown) {
    let n = data.len();
    let kind = if params.full {
        GraphKind::Mrpg
    } else {
        GraphKind::MrpgBasic
    };
    let exact_m = params.exact_m.unwrap_or_else(|| (n / 50).max(32));

    // ---- Step 1: NNDescent+ ---------------------------------------------
    let t = Instant::now();
    let nd_params = NnDescentParams {
        k: params.k,
        max_iters: params.max_iters,
        plus: true,
        partition_rounds: params.partition_rounds,
        capacity: 0,
        exact_m,
        k_prime: params.k_prime.max(params.k),
        threads: params.threads,
        seed: params.seed,
    };
    let aknn = nndescent::build(data, &nd_params);
    let mut g = ProximityGraph::new(n, kind);
    g.pivot = aknn.pivots.clone();
    for (p, list) in aknn.knn.iter().enumerate() {
        g.adj[p] = list.iter().map(|&(_, id)| id).collect();
    }
    for (&p, &len) in &aknn.exact_len {
        g.exact.insert(
            p,
            ExactNn {
                dists: aknn.knn[p as usize][..len]
                    .iter()
                    .map(|&(d, _)| d)
                    .collect(),
            },
        );
    }
    let mut breakdown = BuildBreakdown {
        nndescent_secs: t.elapsed().as_secs_f64(),
        ..Default::default()
    };

    // ---- Step 2: Connect-SubGraphs ---------------------------------------
    if params.enable_connect {
        let t = Instant::now();
        connect_subgraphs(&mut g, data, params.seed ^ 0xc0ffee);
        breakdown.connect_secs = t.elapsed().as_secs_f64();
    }

    // ---- Step 3: Remove-Detours -------------------------------------------
    if params.enable_detours {
        let t = Instant::now();
        let mut dp = params.detours.clone();
        dp.threads = params.threads;
        dp.seed = params.seed ^ 0xde7042;
        remove_detours(&mut g, data, params.k, &dp);
        breakdown.detours_secs = t.elapsed().as_secs_f64();
    }

    // ---- Step 4: Remove-Links ----------------------------------------------
    if params.enable_remove_links {
        let t = Instant::now();
        remove_links(&mut g);
        breakdown.remove_links_secs = t.elapsed().as_secs_f64();
    }

    (g, breakdown)
}

/// Builds a KGraph: the directed AKNN graph of plain NNDescent
/// (no pivots, no exact lists, no pivot-expansion rule).
pub fn build_kgraph<D: Dataset + ?Sized>(
    data: &D,
    k: usize,
    threads: usize,
    seed: u64,
) -> ProximityGraph {
    let mut params = NnDescentParams::kgraph(k);
    params.threads = threads;
    params.seed = seed;
    let aknn = nndescent::build(data, &params);
    let mut g = ProximityGraph::new(data.len(), GraphKind::KGraph);
    for (p, list) in aknn.knn.iter().enumerate() {
        g.adj[p] = list.iter().map(|&(_, id)| id).collect();
    }
    g
}

/// Builds an NSW sized to match a KGraph of degree `k` (paper §6).
pub fn build_nsw<D: Dataset + ?Sized>(data: &D, k: usize, seed: u64) -> ProximityGraph {
    let mut params = NswParams::matching_kgraph(k);
    params.seed = seed;
    nsw::build(data, &params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dod_metrics::{VectorSet, L2};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, dim: usize, seed: u64) -> VectorSet<L2> {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        VectorSet::from_rows(&rows, L2)
    }

    #[test]
    fn mrpg_is_connected_and_well_formed() {
        let data = random_points(400, 3, 1);
        let mut p = MrpgParams::new(8);
        p.threads = 2;
        let (g, breakdown) = build(&data, &p);
        g.assert_invariants();
        assert_eq!(g.connected_components(), 1);
        assert_eq!(g.kind, GraphKind::Mrpg);
        assert!(g.expand_pivots && g.use_exact_shortcut);
        assert!(breakdown.total_secs() > 0.0);
        assert!(!g.exact.is_empty());
    }

    #[test]
    fn exact_prefixes_survive_all_phases() {
        let data = random_points(300, 3, 2);
        let mut p = MrpgParams::new(6);
        p.exact_m = Some(12);
        let (g, _) = build(&data, &p);
        assert_eq!(g.exact.len(), 12);
        for (&v, e) in &g.exact {
            let adj = &g.adj[v as usize];
            assert!(adj.len() >= e.dists.len());
            for (i, &d) in e.dists.iter().enumerate() {
                let actual = data.dist(v as usize, adj[i] as usize);
                assert!(
                    (actual - d).abs() < 1e-12,
                    "prefix {i} of node {v} corrupted"
                );
            }
            // Prefix must be the true K'-NNs: compare the last stored
            // distance against brute force.
            let mut all: Vec<f64> = (0..300)
                .filter(|&q| q != v as usize)
                .map(|q| data.dist(v as usize, q))
                .collect();
            all.sort_by(f64::total_cmp);
            let kth = all[e.dists.len() - 1];
            assert!((e.dists.last().unwrap() - kth).abs() < 1e-12);
        }
    }

    #[test]
    fn basic_variant_disables_the_shortcut() {
        let data = random_points(150, 2, 3);
        let (g, _) = build(&data, &MrpgParams::basic(5));
        assert_eq!(g.kind, GraphKind::MrpgBasic);
        assert!(g.expand_pivots);
        assert!(!g.use_exact_shortcut);
        // Exact lists exist but have length K.
        for e in g.exact.values() {
            assert_eq!(e.dists.len(), 5);
        }
    }

    #[test]
    fn ablation_toggles_skip_phases() {
        let data = random_points(200, 2, 4);
        let mut p = MrpgParams::new(5);
        p.enable_connect = false;
        p.enable_detours = false;
        p.enable_remove_links = false;
        let (_, b) = build(&data, &p);
        assert_eq!(b.connect_secs, 0.0);
        assert_eq!(b.detours_secs, 0.0);
        assert_eq!(b.remove_links_secs, 0.0);
        assert!(b.nndescent_secs > 0.0);
    }

    #[test]
    fn kgraph_is_directed_aknn() {
        let data = random_points(200, 2, 5);
        let g = build_kgraph(&data, 6, 1, 0);
        g.assert_invariants();
        assert_eq!(g.kind, GraphKind::KGraph);
        assert!(!g.expand_pivots && !g.use_exact_shortcut);
        for l in &g.adj {
            assert_eq!(l.len(), 6);
        }
    }

    #[test]
    fn deterministic_per_seed_and_threads() {
        let data = random_points(250, 2, 6);
        let mut p1 = MrpgParams::new(5);
        p1.seed = 9;
        p1.threads = 1;
        let mut p2 = p1.clone();
        p2.threads = 3;
        let (a, _) = build(&data, &p1);
        let (b, _) = build(&data, &p2);
        assert_eq!(a.adj, b.adj);
        assert_eq!(a.pivot, b.pivot);
    }

    #[test]
    fn empty_dataset_builds_empty_graph() {
        let data = random_points(0, 2, 0);
        let (g, _) = build(&data, &MrpgParams::new(5));
        assert_eq!(g.node_count(), 0);
    }
}
