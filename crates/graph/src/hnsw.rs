//! HNSW — hierarchical navigable small world \[Malkov & Yashunin, TPAMI'20\].
//!
//! The paper deliberately *excludes* HNSW from its evaluation (§3): the
//! hierarchy exists to route a query from a random entry point toward its
//! neighborhood, but in the DOD problem the query *is* a dataset object, so
//! every traversal already starts inside its own neighborhood and the upper
//! layers are dead weight. We implement HNSW anyway as an extension, so the
//! claim can be verified empirically (`experiments hnsw` and the tests
//! below): Algorithm 1 on HNSW's bottom layer performs like NSW while the
//! hierarchy adds build time and memory.

use crate::graph::{GraphKind, ProximityGraph};
use dod_metrics::{Dataset, OrdF64};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Parameters for [`build`].
#[derive(Debug, Clone)]
pub struct HnswParams {
    /// Links per node on upper layers (`M`); the bottom layer allows `2M`.
    pub m: usize,
    /// Beam width during construction (`efConstruction`).
    pub ef_construction: usize,
    /// RNG seed.
    pub seed: u64,
}

impl HnswParams {
    /// Memory-matched (at layer 0) to a KGraph of degree `k`.
    pub fn matching_kgraph(k: usize) -> Self {
        HnswParams {
            m: (k / 2).max(3),
            ef_construction: k.max(16),
            seed: 0,
        }
    }
}

/// The hierarchical index: per layer, adjacency lists over the node subset
/// present at that layer (index by global node id; absent nodes are empty).
pub struct Hnsw {
    /// `layers[l][node]` = neighbors of `node` at layer `l`.
    pub layers: Vec<Vec<Vec<u32>>>,
    /// Highest layer of each node.
    pub levels: Vec<u8>,
    /// Entry point (a node on the top layer).
    pub entry: u32,
}

impl Hnsw {
    /// Bytes held by all layers (for the memory comparison).
    pub fn size_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|layer| {
                layer
                    .iter()
                    .map(|l| l.len() * 4 + std::mem::size_of::<Vec<u32>>())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Extracts the bottom layer as a flat proximity graph usable by the
    /// DOD algorithm (kind `Nsw`: no pivots, no exact lists).
    pub fn bottom_layer_graph(&self) -> ProximityGraph {
        let n = self.levels.len();
        let mut g = ProximityGraph::new(n, GraphKind::Nsw);
        g.adj = self.layers[0].clone();
        g
    }
}

/// Beam search over one layer. Returns up to `ef` `(dist, id)` ascending.
fn search_layer<D: Dataset + ?Sized>(
    layer: &[Vec<u32>],
    data: &D,
    query: usize,
    entry: u32,
    ef: usize,
    visited: &mut [u32],
    epoch: u32,
) -> Vec<(f64, u32)> {
    let mut candidates: BinaryHeap<(Reverse<OrdF64>, u32)> = BinaryHeap::new();
    let mut found: BinaryHeap<(OrdF64, u32)> = BinaryHeap::with_capacity(ef + 1);
    visited[entry as usize] = epoch;
    let d0 = data.dist(query, entry as usize);
    candidates.push((Reverse(OrdF64(d0)), entry));
    found.push((OrdF64(d0), entry));
    while let Some((Reverse(OrdF64(d)), v)) = candidates.pop() {
        if found.len() == ef && d > found.peek().expect("non-empty").0 .0 {
            break;
        }
        for &w in &layer[v as usize] {
            if visited[w as usize] == epoch {
                continue;
            }
            visited[w as usize] = epoch;
            let dw = data.dist(query, w as usize);
            if found.len() < ef || dw < found.peek().expect("non-empty").0 .0 {
                candidates.push((Reverse(OrdF64(dw)), w));
                found.push((OrdF64(dw), w));
                if found.len() > ef {
                    found.pop();
                }
            }
        }
    }
    let mut out: Vec<(f64, u32)> = found.into_iter().map(|(OrdF64(d), v)| (d, v)).collect();
    out.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    out
}

/// Builds the hierarchical index by incremental insertion.
pub fn build<D: Dataset + ?Sized>(data: &D, params: &HnswParams) -> Hnsw {
    let n = data.len();
    let mut hnsw = Hnsw {
        layers: vec![vec![Vec::new(); n]],
        levels: vec![0; n],
        entry: 0,
    };
    if n == 0 {
        return hnsw;
    }
    let mut rng = StdRng::seed_from_u64(params.seed);
    let ml = 1.0 / (params.m.max(2) as f64).ln();
    let mut visited = vec![0u32; n];
    let mut epoch = 0u32;

    for i in 1..n {
        let level = ((-rng.gen_range(f64::EPSILON..1.0f64).ln()) * ml).floor() as usize;
        hnsw.levels[i] = level.min(31) as u8;
        while hnsw.layers.len() <= level {
            hnsw.layers.push(vec![Vec::new(); n]);
        }
        let top = hnsw.layers.len() - 1;
        let entry_level = hnsw.levels[hnsw.entry as usize] as usize;
        let mut cur = hnsw.entry;
        // Greedy descent through layers above the insertion level.
        for l in ((level + 1)..=entry_level.min(top)).rev() {
            epoch += 1;
            let best = search_layer(&hnsw.layers[l], data, i, cur, 1, &mut visited, epoch);
            if let Some(&(_, v)) = best.first() {
                cur = v;
            }
        }
        // Insert with beam search on each layer from min(level, entry) down.
        for l in (0..=level.min(entry_level)).rev() {
            epoch += 1;
            let found = search_layer(
                &hnsw.layers[l],
                data,
                i,
                cur,
                params.ef_construction,
                &mut visited,
                epoch,
            );
            let max_links = if l == 0 { params.m * 2 } else { params.m };
            for &(_, v) in found.iter().take(max_links) {
                let layer = &mut hnsw.layers[l];
                if !layer[i].contains(&v) {
                    layer[i].push(v);
                }
                if !layer[v as usize].contains(&(i as u32)) {
                    layer[v as usize].push(i as u32);
                    // Shrink over-full neighbor lists, keeping the closest.
                    if layer[v as usize].len() > max_links * 2 {
                        let mut with_d: Vec<(f64, u32)> = layer[v as usize]
                            .iter()
                            .map(|&w| (data.dist(v as usize, w as usize), w))
                            .collect();
                        with_d.sort_by(|a, b| a.0.total_cmp(&b.0));
                        layer[v as usize] =
                            with_d.into_iter().take(max_links).map(|(_, w)| w).collect();
                    }
                }
            }
            if let Some(&(_, v)) = found.first() {
                cur = v;
            }
        }
        if level > entry_level {
            hnsw.entry = i as u32;
        }
    }
    hnsw
}

#[cfg(test)]
mod tests {
    use super::*;
    use dod_metrics::{VectorSet, L2};

    fn random_points(n: usize, seed: u64) -> VectorSet<L2> {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|_| vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)])
            .collect();
        VectorSet::from_rows(&rows, L2)
    }

    #[test]
    fn builds_a_connected_bottom_layer() {
        let data = random_points(300, 1);
        let h = build(&data, &HnswParams::matching_kgraph(8));
        let g = h.bottom_layer_graph();
        g.assert_invariants();
        assert_eq!(g.connected_components(), 1);
    }

    #[test]
    fn upper_layers_are_sparser() {
        let data = random_points(800, 2);
        let h = build(&data, &HnswParams::matching_kgraph(8));
        assert!(h.layers.len() > 1, "no hierarchy emerged at n=800");
        let occupancy = |l: usize| h.layers[l].iter().filter(|adj| !adj.is_empty()).count();
        for l in 1..h.layers.len() {
            assert!(
                occupancy(l) < occupancy(l - 1).max(1),
                "layer {l} not sparser"
            );
        }
    }

    #[test]
    fn hierarchy_costs_memory_over_flat_bottom_layer() {
        let data = random_points(600, 3);
        let h = build(&data, &HnswParams::matching_kgraph(8));
        let flat = h.bottom_layer_graph();
        assert!(h.size_bytes() > flat.size_bytes());
    }

    #[test]
    fn links_are_local() {
        let data = random_points(400, 4);
        let h = build(&data, &HnswParams::matching_kgraph(6));
        let g = h.bottom_layer_graph();
        let mut link = (0.0, 0usize);
        for u in 0..400 {
            for &v in &g.adj[u] {
                link = (link.0 + data.dist(u, v as usize), link.1 + 1);
            }
        }
        let link_mean = link.0 / link.1 as f64;
        // Mean pairwise distance of uniform points in [-1,1]^2 is ~1.03.
        assert!(link_mean < 0.5, "links not local: {link_mean}");
    }

    #[test]
    fn deterministic_per_seed() {
        let data = random_points(200, 5);
        let p = HnswParams::matching_kgraph(6);
        let a = build(&data, &p);
        let b = build(&data, &p);
        assert_eq!(a.layers[0], b.layers[0]);
        assert_eq!(a.levels, b.levels);
    }

    #[test]
    fn tiny_inputs() {
        let data = random_points(0, 0);
        let h = build(&data, &HnswParams::matching_kgraph(4));
        assert_eq!(h.levels.len(), 0);
        let data = random_points(2, 0);
        let h = build(&data, &HnswParams::matching_kgraph(4));
        assert!(h.layers[0][0].contains(&1));
    }
}
