//! End-to-end tests for the index-health surface: the
//! `GET /v1/debug/health` document (recall audits, index structure,
//! shard balance, thread-phase profile), its strict query validation,
//! its byte-stability across idle scrapes, the `dod_graph_*` /
//! `dod_shard_balance_*` / `dod_profile_*` metric families, and the
//! audit knobs' journey through session creation and recovery.

use dod_server::DodServer;
use dod_wire::JsonValue;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(60))).ok();
    let raw = format!(
        "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    conn.write_all(raw.as_bytes()).expect("send");
    let mut r = BufReader::new(conn);
    let mut line = String::new();
    r.read_line(&mut line).expect("status line");
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {line:?}"));
    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        r.read_line(&mut h).expect("header line");
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some(v) = h.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("content-length value");
        }
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf8 body"))
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    request(addr, "GET", path, "")
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    request(addr, "POST", path, body)
}

fn scratch(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dod_health_e2e_{tag}_{}_{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn parse(body: &str) -> JsonValue {
    dod_wire::parse_json(body).unwrap_or_else(|e| panic!("not JSON ({e}): {body}"))
}

fn assert_envelope(body: &str, kind: &str) {
    let doc = parse(body);
    let envelope =
        dod_wire::shapes::ErrorEnvelope::from_json(&doc).unwrap_or_else(|| panic!("{body}"));
    assert_eq!(envelope.kind, kind, "{body}");
}

/// A session spec that audits every insert against brute force, so a
/// short stream still accumulates a meaningful audit count.
const AUDITED: &str = r#"{"metric":"l2","dim":2,"r":0.5,"k":2,"window":{"count":32},"shards":2,"warmup":4,"sample_rate":1,"audit_sample":4}"#;

fn ingest_grid(addr: SocketAddr, path: &str, n: usize) {
    let rows: Vec<String> = (0..n)
        .map(|i| format!("[{},{}]", (i % 7) as f64 * 0.1, (i % 5) as f64 * 0.1))
        .collect();
    let (status, body) = post(addr, path, &format!("{{\"points\":[{}]}}", rows.join(",")));
    assert_eq!(status, 200, "{body}");
}

#[test]
fn health_reports_recall_audits_index_structure_and_balance() {
    let handle = DodServer::builder()
        .workers(2)
        .bind("127.0.0.1:0")
        .expect("bind")
        .start();
    let addr = handle.addr();
    let (status, body) = post(addr, "/v1/sessions", AUDITED);
    assert_eq!(status, 201, "{body}");
    ingest_grid(addr, "/v1/sessions/s1/ingest", 24);
    let (status, body) = get(addr, "/v1/debug/health");
    assert_eq!(status, 200, "{body}");
    let doc = parse(&body);
    let sessions = doc
        .get("sessions")
        .and_then(JsonValue::as_arr)
        .expect("sessions");
    assert_eq!(sessions.len(), 1);
    let s = &sessions[0];
    assert_eq!(s.get("id").and_then(JsonValue::as_str), Some("s1"));
    assert_eq!(s.get("alive").and_then(JsonValue::as_bool), Some(true));
    let recall = s.get("recall").expect("recall section");
    let audits = recall.get("audits").and_then(JsonValue::as_usize).unwrap();
    assert!(audits > 0, "sample_rate=1 must audit: {body}");
    // Wire sessions run the exhaustive backend: discovery *is* the
    // brute-force scan, so the audited recall is exactly 1.
    assert_eq!(
        recall.get("estimate").and_then(JsonValue::as_f64),
        Some(1.0)
    );
    let index = s.get("index").expect("index section");
    assert_eq!(index.get("exact").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(
        index.get("tombstone_ratio").and_then(JsonValue::as_f64),
        Some(0.0),
        "exhaustive backends carry no tombstones"
    );
    let hist = index
        .get("degree_hist")
        .and_then(JsonValue::as_arr)
        .unwrap();
    assert_eq!(hist.len(), 9, "bucket count is pinned");
    let balance = s.get("balance").expect("balance section");
    assert_eq!(
        balance
            .get("shards")
            .and_then(JsonValue::as_arr)
            .map(<[JsonValue]>::len),
        Some(2)
    );
    let owned = balance.get("owned").and_then(JsonValue::as_usize).unwrap();
    assert!(owned > 0 && owned <= 24, "{body}");
    assert!(
        balance
            .get("owned_skew")
            .and_then(JsonValue::as_f64)
            .unwrap()
            >= 1.0,
        "skew is max/mean"
    );
    // The profile covers the HTTP workers and the session's pipeline
    // threads, and phase sample objects never report idle time.
    let profile = doc.get("profile").expect("profile section");
    assert_eq!(profile.get("hz").and_then(JsonValue::as_usize), Some(97));
    let threads: Vec<&str> = profile
        .get("threads")
        .and_then(JsonValue::as_arr)
        .unwrap()
        .iter()
        .filter_map(|t| t.get("thread").and_then(JsonValue::as_str))
        .collect();
    for want in ["http-0", "http-1", "s1/router", "s1/pump-0", "s1/pump-1"] {
        assert!(threads.contains(&want), "missing {want}: {threads:?}");
    }
    assert!(
        !body.contains("\"idle\":"),
        "idle tallies are never rendered: {body}"
    );
    handle.shutdown();
}

#[test]
fn health_filters_are_strict_and_name_their_mistakes() {
    let handle = DodServer::builder()
        .workers(2)
        .bind("127.0.0.1:0")
        .expect("bind")
        .start();
    let addr = handle.addr();
    let (status, body) = post(addr, "/v1/sessions", AUDITED);
    assert_eq!(status, 201, "{body}");
    // A matching filter narrows the document to that resource.
    let (status, body) = get(addr, "/v1/debug/health?session=s1");
    assert_eq!(status, 200, "{body}");
    let doc = parse(&body);
    assert_eq!(
        doc.get("sessions")
            .and_then(JsonValue::as_arr)
            .map(<[JsonValue]>::len),
        Some(1)
    );
    // A well-formed id that matches nothing is a 404, not an empty 200.
    let (status, body) = get(addr, "/v1/debug/health?session=s99");
    assert_eq!(status, 404, "{body}");
    assert_envelope(&body, "not_found");
    let (status, body) = get(addr, "/v1/debug/health?engine=nope");
    assert_eq!(status, 404, "{body}");
    assert_envelope(&body, "not_found");
    // Unknown keys and malformed names are named 400s.
    let (status, body) = get(addr, "/v1/debug/health?sesion=s1");
    assert_eq!(status, 400, "{body}");
    assert_envelope(&body, "bad_request");
    assert!(body.contains("sesion"), "{body}");
    let (status, body) = get(addr, "/v1/debug/health?session=bad%20name");
    assert_eq!(status, 400, "{body}");
    assert_envelope(&body, "bad_request");
    // Wrong method.
    let (status, body) = post(addr, "/v1/debug/health", "{}");
    assert_eq!(status, 405, "{body}");
    handle.shutdown();
}

/// The acceptance bar for the whole document: with no intervening
/// ingest, two scrapes answer *identical bytes* — even while the
/// sampling profiler keeps ticking in between. Everything rendered is
/// ingest-driven (counters, balance) or idle-invariant (non-idle phase
/// tallies; serving the scrape itself publishes no phase).
#[test]
fn health_is_byte_stable_across_idle_scrapes() {
    let data_dir = scratch("stable");
    let handle = DodServer::builder()
        .workers(2)
        .data_dir(&data_dir)
        .bind("127.0.0.1:0")
        .expect("bind")
        .start();
    let addr = handle.addr();
    let create = r#"{"metric":"l2","dim":2,"r":0.5,"k":2,"window":{"count":32},"shards":2,"warmup":4,"durable":true,"sample_rate":1,"audit_sample":4}"#;
    let (status, body) = post(addr, "/v1/sessions", create);
    assert_eq!(status, 201, "{body}");
    ingest_grid(addr, "/v1/sessions/s1/ingest", 24);
    let (status, first) = get(addr, "/v1/debug/health");
    assert_eq!(status, 200, "{first}");
    // Several sampler periods at the default 97 Hz: if scraping or
    // sampling perturbed the document, this window would catch it.
    std::thread::sleep(Duration::from_millis(120));
    let (status, second) = get(addr, "/v1/debug/health");
    assert_eq!(status, 200);
    assert_eq!(first, second, "idle scrapes must be byte-identical");
    // Ingest is what moves the document.
    ingest_grid(addr, "/v1/sessions/s1/ingest", 4);
    let (_, third) = get(addr, "/v1/debug/health");
    assert_ne!(second, third, "ingest must move the document");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&data_dir);
}

#[test]
fn audit_knobs_are_validated_and_survive_recovery() {
    let data_dir = scratch("knobs");
    let handle = DodServer::builder()
        .workers(2)
        .data_dir(&data_dir)
        .bind("127.0.0.1:0")
        .expect("bind")
        .start();
    let addr = handle.addr();
    // sample_rate=0 is a typed 400 at creation, not a silent clamp —
    // and no session slot is consumed by the refusal.
    let zero =
        r#"{"metric":"l2","dim":2,"r":0.5,"k":2,"window":{"count":32},"shards":1,"sample_rate":0}"#;
    let (status, body) = post(addr, "/v1/sessions", zero);
    assert_eq!(status, 400, "{body}");
    assert_envelope(&body, "invalid_spec");
    assert!(
        body.contains("audit_sample"),
        "hints the off switch: {body}"
    );
    // A durable session's audit cadence lives in its manifest…
    let create = r#"{"metric":"l2","dim":2,"r":0.5,"k":2,"window":{"count":32},"shards":2,"warmup":4,"durable":true,"sample_rate":1,"audit_sample":4}"#;
    let (status, body) = post(addr, "/v1/sessions", create);
    assert_eq!(status, 201, "{body}");
    ingest_grid(addr, "/v1/sessions/s1/ingest", 16);
    let audits_of = |body: &str| {
        parse(body)
            .get("sessions")
            .and_then(JsonValue::as_arr)
            .and_then(|s| s.first()?.get("recall")?.get("audits")?.as_usize())
            .unwrap_or_else(|| panic!("no audit count in {body}"))
    };
    let (_, body) = get(addr, "/v1/debug/health?session=s1");
    assert!(audits_of(&body) > 0, "{body}");
    handle.shutdown();
    // …so recovery re-applies it: the replayed window plus fresh ingest
    // keep auditing without the client re-sending the knobs.
    let handle = DodServer::builder()
        .workers(2)
        .data_dir(&data_dir)
        .bind("127.0.0.1:0")
        .expect("rebind")
        .start();
    let addr = handle.addr();
    let (_, before) = get(addr, "/v1/debug/health?session=s1");
    ingest_grid(addr, "/v1/sessions/s1/ingest", 8);
    let (_, after) = get(addr, "/v1/debug/health?session=s1");
    assert!(
        audits_of(&after) > audits_of(&before),
        "recovered session keeps auditing: {before} -> {after}"
    );
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&data_dir);
}

#[test]
fn metrics_carry_graph_balance_and_profile_series() {
    let handle = DodServer::builder()
        .workers(2)
        .bind("127.0.0.1:0")
        .expect("bind")
        .start();
    let addr = handle.addr();
    let (status, body) = post(addr, "/v1/sessions", AUDITED);
    assert_eq!(status, 201, "{body}");
    ingest_grid(addr, "/v1/sessions/s1/ingest", 24);
    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    for series in [
        "dod_graph_recall_estimate{session=\"s1\"} 1",
        "dod_graph_recall_audits_total{session=\"s1\"}",
        "dod_graph_tombstone_ratio{session=\"s1\"} 0",
        "dod_graph_live_nodes{session=\"s1\"}",
        "dod_graph_degree_nodes{session=\"s1\",le=\"+Inf\"}",
        "dod_shard_balance_owned_skew{session=\"s1\"}",
        "dod_shard_balance_slide_skew{session=\"s1\"}",
        "dod_shard_balance_ghost_rate{session=\"s1\",shard=\"0\"}",
        "dod_shard_balance_ghost_rate{session=\"s1\",shard=\"1\"}",
        "dod_profile_samples_total{thread=\"http-0\",phase=\"idle\"}",
        "dod_profile_samples_total{thread=\"s1/router\",phase=\"route\"}",
        "dod_profile_hz 97",
    ] {
        assert!(metrics.contains(series), "missing {series}");
    }
    // Deleting the session retires its thread-profile family: labels
    // stay bounded however many sessions come and go.
    let (status, _) = request(addr, "DELETE", "/v1/sessions/s1", "");
    assert_eq!(status, 200);
    let (_, metrics) = get(addr, "/metrics");
    assert!(
        !metrics.contains("thread=\"s1/"),
        "deleted session's threads must leave /metrics"
    );
    assert!(
        metrics.contains("thread=\"http-0\""),
        "worker threads remain"
    );
    handle.shutdown();
}

#[test]
fn profile_hz_is_validated_at_bind() {
    for hz in [0u32, 1001] {
        match DodServer::builder().profile_hz(hz).bind("127.0.0.1:0") {
            Err(dod_core::DodError::InvalidSpec { reason }) => {
                assert!(reason.contains("profile_hz"), "{reason}");
            }
            Err(other) => panic!("hz={hz}: wrong error {other}"),
            Ok(_) => panic!("hz={hz} must refuse the bind"),
        }
    }
    // The boundary rates bind fine.
    for hz in [1u32, 1000] {
        let handle = DodServer::builder()
            .profile_hz(hz)
            .bind("127.0.0.1:0")
            .expect("valid rate")
            .start();
        handle.shutdown();
    }
}
