//! End-to-end tests for the resource-oriented `/v1` API over real
//! sockets: named engines (create, list, query, LRU-evict, delete),
//! concurrent ingest sessions (isolation, capacity, lifecycle), and the
//! compat shim that keeps the legacy singleton routes byte-identical to
//! their pre-redesign behavior.

use dod_core::{IndexSpec, Query};
use dod_datasets::{EngineSpec, Family};
use dod_metrics::L2;
use dod_server::{encode, DodServer, ServerHandle};
use dod_shard::{ShardSpec, ShardedStreamDetector};
use dod_stream::{Backend, VectorSpace, WindowSpec};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

// ---- minimal test client -------------------------------------------------

fn read_response<R: BufRead>(r: &mut R) -> (u16, String) {
    let mut line = String::new();
    r.read_line(&mut line).expect("status line");
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {line:?}"));
    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        r.read_line(&mut h).expect("header line");
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some(v) = h.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("content-length value");
        }
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf8 body"))
}

/// One-shot exchange on a fresh connection.
fn exchange(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(60))).ok();
    let body = body.unwrap_or("");
    let raw = format!(
        "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    conn.write_all(raw.as_bytes()).expect("send");
    read_response(&mut BufReader::new(conn))
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    exchange(addr, "GET", path, None)
}

fn put(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    exchange(addr, "PUT", path, Some(body))
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    exchange(addr, "POST", path, Some(body))
}

fn delete(addr: SocketAddr, path: &str) -> (u16, String) {
    exchange(addr, "DELETE", path, None)
}

fn assert_envelope(body: &str, kind: &str) {
    let doc = dod_wire::parse_json(body).unwrap_or_else(|e| panic!("not JSON ({e}): {body}"));
    let envelope =
        dod_wire::shapes::ErrorEnvelope::from_json(&doc).unwrap_or_else(|| panic!("{body}"));
    assert_eq!(envelope.kind, kind, "{body}");
    assert!(!envelope.message.is_empty(), "{body}");
}

fn bare_server() -> ServerHandle {
    DodServer::builder()
        .workers(2)
        .bind("127.0.0.1:0")
        .expect("bind")
        .start()
}

fn points_body(points: &[Vec<f32>]) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            let cs: Vec<String> = p.iter().map(|c| format!("{c}")).collect();
            format!("[{}]", cs.join(","))
        })
        .collect();
    format!("{{\"points\":[{}]}}", rows.join(","))
}

// ---- named engines -------------------------------------------------------

#[test]
fn named_engines_create_list_query_and_delete() {
    let handle = bare_server();
    let addr = handle.addr();

    // An empty registry lists empty — and the legacy alias has nothing
    // to serve.
    let (status, body) = get(addr, "/v1/engines");
    assert_eq!(status, 200);
    assert_eq!(body, r#"{"engines":[],"capacity":8}"#);

    // Create two engines with different families and indexes.
    let (status, body) = put(
        addr,
        "/v1/engines/prod",
        r#"{"family":"sift","n":300,"seed":7,"index":"mrpg:6"}"#,
    );
    assert_eq!(status, 201, "{body}");
    assert!(body.contains("\"created\":true"), "{body}");
    assert!(body.contains("\"evicted\":[]"), "{body}");
    assert!(body.contains("\"index\":\"mrpg:6\""), "{body}");
    assert!(body.contains("\"points\":300"), "{body}");
    let (status, body) = put(
        addr,
        "/v1/engines/glove-exp",
        r#"{"family":"glove","n":200,"seed":3,"index":"vptree"}"#,
    );
    assert_eq!(status, 201, "{body}");

    // The listing carries both, name-sorted, each with its spec and a
    // positive memory estimate.
    let (status, body) = get(addr, "/v1/engines");
    assert_eq!(status, 200);
    let doc = dod_wire::parse_json(&body).expect("json");
    let engines = doc
        .get("engines")
        .and_then(dod_wire::JsonValue::as_arr)
        .expect("engines array");
    let summaries: Vec<_> = engines
        .iter()
        .map(|e| dod_wire::shapes::EngineSummary::from_json(e).expect("summary"))
        .collect();
    assert_eq!(summaries.len(), 2);
    assert_eq!(summaries[0].name, "glove-exp");
    assert_eq!(summaries[1].name, "prod");
    assert_eq!(summaries[1].index, "mrpg:6");
    assert!(summaries.iter().all(|s| s.index_bytes > 0), "{body}");

    // Querying each named engine answers the exact bytes of an
    // identically-specified in-process engine.
    let prod_twin = EngineSpec {
        family: Family::Sift,
        n: 300,
        seed: 7,
        index: "mrpg:6".parse().expect("spec"),
    }
    .build()
    .expect("twin");
    let queries = [
        Query::new(60.0, 40).unwrap(),
        Query::new(120.0, 40).unwrap(),
    ];
    let (status, body) = post(
        addr,
        "/v1/engines/prod/query",
        r#"{"queries":[{"r":60,"k":40},{"r":120,"k":40}]}"#,
    );
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        body,
        encode::query_response(&prod_twin.query_many(&queries).expect("in-process")),
        "named-engine answers must be byte-identical to in-process"
    );
    let glove_twin = EngineSpec {
        family: Family::Glove,
        n: 200,
        seed: 3,
        index: IndexSpec::VpTree,
    }
    .build()
    .expect("twin");
    let gq = [Query::new(0.5, 20).unwrap()];
    let (status, body) = post(
        addr,
        "/v1/engines/glove-exp/query",
        r#"{"queries":[{"r":0.5,"k":20}]}"#,
    );
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        body,
        encode::query_response(&glove_twin.query_many(&gq).expect("in-process"))
    );

    // GET one engine's summary; DELETE it; then every route 404s with
    // the envelope.
    let (status, body) = get(addr, "/v1/engines/prod");
    assert_eq!(status, 200);
    let summary =
        dod_wire::shapes::EngineSummary::from_json(&dod_wire::parse_json(&body).expect("json"))
            .expect("summary");
    assert_eq!((summary.name.as_str(), summary.points), ("prod", 300));
    let (status, body) = delete(addr, "/v1/engines/prod");
    assert_eq!(status, 200);
    assert_eq!(body, r#"{"deleted":"prod"}"#);
    for (s, b) in [
        get(addr, "/v1/engines/prod"),
        delete(addr, "/v1/engines/prod"),
        post(addr, "/v1/engines/prod/query", r#"{"queries":[]}"#),
    ] {
        assert_eq!(s, 404, "{b}");
        assert_envelope(&b, "not_found");
    }
    let (_, body) = get(addr, "/v1/engines");
    assert!(!body.contains("\"prod\""), "{body}");

    // Replacing an existing engine answers 200, not 201.
    let (status, body) = put(
        addr,
        "/v1/engines/glove-exp",
        r#"{"family":"glove","n":100,"index":"vptree"}"#,
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"created\":false"), "{body}");
    assert!(body.contains("\"points\":100"), "{body}");
    handle.shutdown();
}

#[test]
fn engine_creation_is_validated_and_save_load_round_trips() {
    let handle = bare_server();
    let addr = handle.addr();

    // Unknown family, malformed index, zero n, oversized n, bad body.
    let (status, body) = put(addr, "/v1/engines/e", r#"{"family":"netflix","n":10}"#);
    assert_eq!(status, 400);
    assert_envelope(&body, "invalid_spec");
    let (status, body) = put(
        addr,
        "/v1/engines/e",
        r#"{"family":"sift","n":10,"index":"hnsw:16"}"#,
    );
    assert_eq!(status, 400);
    assert_envelope(&body, "invalid_spec");
    let (status, body) = put(addr, "/v1/engines/e", r#"{"family":"sift","n":0}"#);
    assert_eq!(status, 400);
    assert_envelope(&body, "bad_request");
    let (status, body) = put(addr, "/v1/engines/e", r#"{"family":"sift","n":99000000}"#);
    assert_eq!(status, 400);
    assert_envelope(&body, "bad_request");
    let (status, body) = put(addr, "/v1/engines/e", r#"{"n":10}"#);
    assert_eq!(status, 400);
    assert_envelope(&body, "bad_request");
    // None of that created anything.
    let (_, body) = get(addr, "/v1/engines");
    assert_eq!(body, r#"{"engines":[],"capacity":8}"#);

    // Save an engine in-process, then create the resident engine from
    // the payload: answers must match a freshly built twin exactly.
    let spec = EngineSpec {
        family: Family::Sift,
        n: 250,
        seed: 9,
        index: IndexSpec::VpTree,
    };
    let engine = spec.build().expect("build");
    let dir = std::env::temp_dir().join(format!("dod_server_load_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("sift250.dod");
    let mut file = std::fs::File::create(&path).expect("create");
    engine.save(&mut file).expect("save");
    drop(file);
    let body = format!(
        r#"{{"family":"sift","n":250,"seed":9,"index":"vptree","load":{}}}"#,
        dod_wire::JsonValue::from(path.to_str().expect("utf8 path")).render()
    );
    let (status, resp) = put(addr, "/v1/engines/restored", &body);
    assert_eq!(status, 201, "{resp}");
    let q = [Query::new(80.0, 40).unwrap()];
    let (status, http_body) = post(
        addr,
        "/v1/engines/restored/query",
        r#"{"queries":[{"r":80,"k":40}]}"#,
    );
    assert_eq!(status, 200, "{http_body}");
    assert_eq!(
        http_body,
        encode::query_response(&engine.query_many(&q).expect("in-process"))
    );

    // A load path that does not exist is the server's I/O failure (503),
    // not a client error.
    let (status, body) = put(
        addr,
        "/v1/engines/ghost",
        r#"{"family":"sift","n":250,"seed":9,"load":"/nonexistent/nope.dod"}"#,
    );
    assert_eq!(status, 503, "{body}");
    assert_envelope(&body, "io");
    std::fs::remove_dir_all(&dir).ok();
    handle.shutdown();
}

#[test]
fn engine_registry_evicts_least_recently_used_at_capacity() {
    let handle = DodServer::builder()
        .max_engines(2)
        .workers(2)
        .bind("127.0.0.1:0")
        .expect("bind")
        .start();
    let addr = handle.addr();
    for name in ["a", "b"] {
        let (status, body) = put(
            addr,
            &format!("/v1/engines/{name}"),
            r#"{"family":"sift","n":120,"index":"vptree"}"#,
        );
        assert_eq!(status, 201, "{body}");
    }
    // Touch "a" with a query: "b" becomes the least recently used.
    let (status, _) = post(
        addr,
        "/v1/engines/a/query",
        r#"{"queries":[{"r":80,"k":10}]}"#,
    );
    assert_eq!(status, 200);
    // A third engine must evict exactly "b" — and say so.
    let (status, body) = put(
        addr,
        "/v1/engines/c",
        r#"{"family":"sift","n":120,"index":"vptree"}"#,
    );
    assert_eq!(status, 201, "{body}");
    assert!(body.contains(r#""evicted":["b"]"#), "{body}");
    let (_, listing) = get(addr, "/v1/engines");
    assert!(
        listing.contains("\"a\"") && listing.contains("\"c\""),
        "{listing}"
    );
    assert!(!listing.contains("\"b\""), "{listing}");
    // The evicted engine is gone: queries against it are a 404 envelope.
    let (status, body) = post(
        addr,
        "/v1/engines/b/query",
        r#"{"queries":[{"r":80,"k":10}]}"#,
    );
    assert_eq!(status, 404);
    assert_envelope(&body, "not_found");
    // GET info must NOT count as use. "a" was last *used* (queried)
    // before "c" was created, so "a" is now the coldest entry; if the
    // two inspections below refreshed its clock, the next insert would
    // evict "c" instead. The eviction naming "a" is the proof that
    // inspection leaves the LRU order alone.
    let (_, _) = get(addr, "/v1/engines/a");
    let (_, _) = get(addr, "/v1/engines/a");
    let (status, body) = put(
        addr,
        "/v1/engines/d",
        r#"{"family":"sift","n":120,"index":"vptree"}"#,
    );
    assert_eq!(status, 201, "{body}");
    assert!(
        body.contains(r#""evicted":["a"]"#),
        "GET info must not refresh the LRU clock: {body}"
    );
    handle.shutdown();
}

// ---- sessions ------------------------------------------------------------

#[test]
fn concurrent_sessions_are_isolated() {
    let handle = bare_server();
    let addr = handle.addr();

    // Two sessions with different spaces: 1-d vectors at r=1 and 2-d
    // vectors at r=0.8, different shard counts.
    let (status, body) = post(
        addr,
        "/v1/sessions",
        r#"{"metric":"l2","dim":1,"r":1,"k":2,"window":{"count":64},"shards":2,"warmup":4,"pivots_per_shard":1}"#,
    );
    assert_eq!(status, 201, "{body}");
    let s1 =
        dod_wire::shapes::SessionSummary::from_json(&dod_wire::parse_json(&body).expect("json"))
            .expect("summary");
    assert_eq!((s1.id.as_str(), s1.metric.as_str()), ("s1", "l2"));
    assert_eq!((s1.dim, s1.shards, s1.ingested), (1, 2, 0));
    let (status, body) = post(
        addr,
        "/v1/sessions",
        r#"{"metric":"l2","dim":2,"r":0.8,"k":2,"window":{"count":32},"shards":3,"warmup":8}"#,
    );
    assert_eq!(status, 201, "{body}");
    let s2 =
        dod_wire::shapes::SessionSummary::from_json(&dod_wire::parse_json(&body).expect("json"))
            .expect("summary");
    assert_eq!((s2.id.as_str(), s2.dim, s2.shards), ("s2", 2, 3));

    // In-process twins, opened with the same parameters.
    let mut twin1 = ShardedStreamDetector::open(
        VectorSpace::new(L2, 1),
        Query::new(1.0, 2).expect("query"),
        WindowSpec::Count(64),
        Backend::Exhaustive,
        ShardSpec::new(2).with_warmup(4).with_pivots_per_shard(1),
    )
    .expect("twin");
    let mut twin2 = ShardedStreamDetector::open(
        VectorSpace::new(L2, 2),
        Query::new(0.8, 2).expect("query"),
        WindowSpec::Count(32),
        Backend::Exhaustive,
        ShardSpec::new(3).with_warmup(8),
    )
    .expect("twin");

    // Clustered 1-d stream with one isolated point; clustered 2-d stream
    // from the scenario generator.
    let mut pts1: Vec<Vec<f32>> = Vec::new();
    for i in 0..50 {
        pts1.push(vec![if i % 2 == 0 {
            (i % 7) as f32 * 0.2
        } else {
            40.0 + (i % 7) as f32 * 0.2
        }]);
    }
    pts1.push(vec![-300.0]);
    let pts2 = dod_datasets::StreamScenario {
        clusters: 2,
        outlier_rate: 0.1,
        ..dod_datasets::StreamScenario::new(2)
    }
    .generate(60, 17);

    // Ingest both sessions concurrently, interleaved in chunks from two
    // client threads — isolation means neither stream contaminates the
    // other's window.
    fn ingest_chunks(addr: SocketAddr, id: &str, pts: &[Vec<f32>]) {
        for chunk in pts.chunks(10) {
            let (status, body) = post(
                addr,
                &format!("/v1/sessions/{id}/ingest"),
                &points_body(chunk),
            );
            assert_eq!(status, 200, "{body}");
            assert_eq!(body, encode::ingest_response(chunk.len()));
        }
    }
    std::thread::scope(|scope| {
        scope.spawn(|| ingest_chunks(addr, "s1", &pts1));
        scope.spawn(|| ingest_chunks(addr, "s2", &pts2));
    });
    for p in &pts1 {
        twin1.insert(p.clone());
    }
    for p in &pts2 {
        twin2.insert(p.clone());
    }

    // Each session's report matches its own twin, byte for byte.
    let (status, report1) = get(addr, "/v1/sessions/s1/report");
    assert_eq!(status, 200, "{report1}");
    assert_eq!(report1, encode::stream_report_response(&twin1.outliers()));
    let (status, report2) = get(addr, "/v1/sessions/s2/report");
    assert_eq!(status, 200, "{report2}");
    assert_eq!(report2, encode::stream_report_response(&twin2.outliers()));
    // s1's planted isolated point is reported — and only by s1.
    let isolated_seq = (pts1.len() - 1).to_string();
    assert!(report1.contains(&isolated_seq), "{report1}");

    // The listing counts every ingested point per session.
    let (_, listing) = get(addr, "/v1/sessions");
    let doc = dod_wire::parse_json(&listing).expect("json");
    let sessions = doc
        .get("sessions")
        .and_then(dod_wire::JsonValue::as_arr)
        .expect("sessions array");
    let summaries: Vec<_> = sessions
        .iter()
        .map(|s| dod_wire::shapes::SessionSummary::from_json(s).expect("summary"))
        .collect();
    assert_eq!(summaries.len(), 2);
    assert_eq!(summaries[0].ingested, pts1.len() as u64, "{listing}");
    assert_eq!(summaries[1].ingested, pts2.len() as u64, "{listing}");

    // Unknown ids are 404 envelopes on every session route.
    for (s, b) in [
        get(addr, "/v1/sessions/s99"),
        get(addr, "/v1/sessions/s99/report"),
        post(addr, "/v1/sessions/s99/ingest", r#"{"points":[[1]]}"#),
        delete(addr, "/v1/sessions/s99"),
    ] {
        assert_eq!(s, 404, "{b}");
        assert_envelope(&b, "not_found");
    }

    // Deleting s1 leaves s2 serving.
    let (status, body) = delete(addr, "/v1/sessions/s1");
    assert_eq!(status, 200);
    assert_eq!(body, r#"{"deleted":"s1"}"#);
    let (status, body) = get(addr, "/v1/sessions/s1/report");
    assert_eq!(status, 404, "{body}");
    let (status, report2_again) = get(addr, "/v1/sessions/s2/report");
    assert_eq!(status, 200);
    assert_eq!(
        report2_again, report2,
        "s2 must be untouched by s1's delete"
    );
    handle.shutdown();
}

#[test]
fn sessions_are_refused_at_capacity_and_validated() {
    let handle = DodServer::builder()
        .max_sessions(1)
        .bind("127.0.0.1:0")
        .expect("bind")
        .start();
    let addr = handle.addr();
    let open_body = r#"{"metric":"l2","dim":2,"r":1,"k":2,"window":{"count":16},"shards":1}"#;
    let (status, body) = post(addr, "/v1/sessions", open_body);
    assert_eq!(status, 201, "{body}");
    // At capacity: refused with a 429 envelope, never evicted.
    let (status, body) = post(addr, "/v1/sessions", open_body);
    assert_eq!(status, 429, "{body}");
    assert_envelope(&body, "too_many_requests");
    // The resident session still works.
    let (status, _) = post(addr, "/v1/sessions/s1/ingest", r#"{"points":[[0,0]]}"#);
    assert_eq!(status, 200);
    // Freeing the slot lets the next open through, under a fresh id.
    let (status, _) = delete(addr, "/v1/sessions/s1");
    assert_eq!(status, 200);
    let (status, body) = post(addr, "/v1/sessions", open_body);
    assert_eq!(status, 201, "{body}");
    assert!(
        body.contains("\"id\":\"s2\""),
        "ids are never reused: {body}"
    );

    // Validation: unknown metric, unservable metric, bad window, bad
    // radius, zero dim — each a typed envelope.
    for (req, kind) in [
        (
            r#"{"metric":"cosine","dim":2,"r":1,"k":2,"window":{"count":16}}"#,
            "invalid_spec",
        ),
        (
            r#"{"metric":"edit","dim":2,"r":1,"k":2,"window":{"count":16}}"#,
            "invalid_spec",
        ),
        (
            r#"{"metric":"l2","dim":2,"r":1,"k":2,"window":{}}"#,
            "bad_request",
        ),
        (
            r#"{"metric":"l2","dim":2,"r":-3,"k":2,"window":{"count":16}}"#,
            "invalid_radius",
        ),
        (
            r#"{"metric":"l2","dim":2,"r":1,"k":2,"window":{"count":0}}"#,
            "invalid_window",
        ),
        (
            r#"{"metric":"l2","dim":0,"r":1,"k":2,"window":{"count":16}}"#,
            "invalid_spec",
        ),
        (
            r#"{"metric":"l2","dim":2,"r":1,"k":2,"window":{"count":16},"shards":0}"#,
            "invalid_shard_spec",
        ),
    ] {
        let (status, body) = post(addr, "/v1/sessions", req);
        assert!((400..=429).contains(&status), "{req} -> {status} {body}");
        assert_envelope(&body, kind);
    }
    handle.shutdown();
}

// ---- compat shim ---------------------------------------------------------

/// The legacy singleton routes must keep answering the exact bytes they
/// answered before the resource API existed — for present *and* missing
/// resources — and must be interchangeable with the `default`-named
/// routes.
#[test]
fn legacy_routes_alias_the_default_resources_byte_for_byte() {
    // A server with neither resource: the legacy routes answer the
    // pre-redesign 503 ("started without"), not the resource API's 404.
    let handle = bare_server();
    let addr = handle.addr();
    let legacy_unavailable = [
        post(addr, "/v1/query", r#"{"queries":[{"r":1,"k":1}]}"#),
        post(addr, "/v1/ingest", r#"{"points":[[1]]}"#),
        get(addr, "/v1/report"),
    ];
    for (status, body) in legacy_unavailable {
        assert_eq!(status, 503, "{body}");
        assert!(body.contains("this server was started without"), "{body}");
        assert_envelope(&body, "unavailable");
    }
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(
        body,
        r#"{"status":"ok","engine":false,"stream":false,"engines":0,"sessions":0}"#
    );
    handle.shutdown();

    // A server with builder-mounted resources: they surface as the
    // "default" engine and session, and both route spellings answer
    // identical bytes.
    let build = || {
        Family::Sift
            .generate(300, 7)
            .data
            .into_engine()
            .index(IndexSpec::VpTree)
            .build()
            .expect("engine")
    };
    let open = || {
        ShardedStreamDetector::open(
            VectorSpace::new(L2, 1),
            Query::new(1.0, 2).expect("query"),
            WindowSpec::Count(64),
            Backend::Exhaustive,
            ShardSpec::new(2).with_warmup(4).with_pivots_per_shard(1),
        )
        .expect("detector")
    };
    let handle = DodServer::builder()
        .engine(build())
        .stream(open())
        .workers(2)
        .bind("127.0.0.1:0")
        .expect("bind")
        .start();
    let addr = handle.addr();

    let (_, listing) = get(addr, "/v1/engines");
    assert!(listing.contains(r#""name":"default""#), "{listing}");
    assert!(listing.contains(r#""index":"vptree""#), "{listing}");
    let (_, listing) = get(addr, "/v1/sessions");
    assert!(listing.contains(r#""id":"default""#), "{listing}");

    // Query: legacy and named answers are the same bytes, equal to the
    // in-process twin's encoding (the pre-redesign contract).
    let twin = build();
    let qbody = r#"{"queries":[{"r":60,"k":40},{"r":120,"k":40}]}"#;
    let queries = [
        Query::new(60.0, 40).unwrap(),
        Query::new(120.0, 40).unwrap(),
    ];
    let (status, legacy) = post(addr, "/v1/query", qbody);
    assert_eq!(status, 200, "{legacy}");
    let (_, named) = post(addr, "/v1/engines/default/query", qbody);
    let expected = encode::query_response(&twin.query_many(&queries).expect("in-process"));
    assert_eq!(legacy, expected, "legacy bytes must be pre-redesign");
    assert_eq!(named, expected, "both spellings serve one engine");

    // Ingest + report: legacy routes drive the default session; the
    // named report sees exactly what the legacy ingest fed.
    let mut twin_stream = open();
    let points: Vec<Vec<f32>> = (0..30)
        .map(|i| {
            vec![if i % 2 == 0 {
                0.1 * (i % 5) as f32
            } else {
                60.0
            }]
        })
        .chain([vec![-200.0]])
        .collect();
    for p in &points {
        twin_stream.insert(p.clone());
    }
    let (status, body) = post(addr, "/v1/ingest", &points_body(&points));
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, encode::ingest_response(points.len()));
    let expected_report = encode::stream_report_response(&twin_stream.outliers());
    let (status, legacy_report) = get(addr, "/v1/report");
    assert_eq!(status, 200);
    assert_eq!(legacy_report, expected_report, "legacy report bytes");
    let (_, named_report) = get(addr, "/v1/sessions/default/report");
    assert_eq!(named_report, expected_report, "one session, two spellings");

    // Deleting the default session through the resource API switches the
    // legacy routes to their "missing resource" answer.
    let (status, _) = delete(addr, "/v1/sessions/default");
    assert_eq!(status, 200);
    let (status, body) = get(addr, "/v1/report");
    assert_eq!(status, 503, "{body}");
    assert_envelope(&body, "unavailable");
    handle.shutdown();
}
