//! End-to-end tests over real sockets: a server on an ephemeral port,
//! driven with hand-written HTTP/1.1, pinned byte-for-byte against the
//! in-process engines it fronts.

use dod_core::{IndexSpec, Query};
use dod_datasets::Family;
use dod_metrics::L2;
use dod_server::{encode, DodServer, ServerHandle};
use dod_shard::{ShardSpec, ShardedStreamDetector};
use dod_stream::{Backend, VectorSpace, WindowSpec};
use dod_wire::JsonValue;
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A minimal test client: one HTTP/1.1 exchange on an existing
/// connection, returning `(status, body)`.
fn roundtrip(conn: &mut TcpStream, raw: &str) -> (u16, String) {
    conn.write_all(raw.as_bytes()).expect("send");
    read_response(&mut BufReader::new(conn.try_clone().expect("clone")))
}

fn read_response<R: BufRead>(r: &mut R) -> (u16, String) {
    let mut line = String::new();
    r.read_line(&mut line).expect("status line");
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {line:?}"));
    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        r.read_line(&mut h).expect("header line");
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some(v) = h.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("content-length value");
        }
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf8 body"))
}

/// One-shot request on a fresh connection.
fn request(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(30))).ok();
    roundtrip(&mut conn, raw)
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    request(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    request(
        addr,
        &format!("GET {path} HTTP/1.1\r\nconnection: close\r\n\r\n"),
    )
}

/// An engine-backed server plus an identically-built in-process twin.
fn engine_server() -> (ServerHandle, dod_datasets::AnyEngine) {
    let build = || {
        Family::Sift
            .generate(400, 11)
            .data
            .into_engine()
            .index(IndexSpec::Mrpg(dod_graph::MrpgParams::new(6)))
            .build()
            .expect("engine")
    };
    let handle = DodServer::builder()
        .engine(build())
        .workers(2)
        .bind("127.0.0.1:0")
        .expect("bind")
        .start();
    (handle, build())
}

fn stream_detector() -> ShardedStreamDetector<VectorSpace<L2>> {
    ShardedStreamDetector::open(
        VectorSpace::new(L2, 1),
        Query::new(1.0, 2).expect("query"),
        WindowSpec::Count(64),
        Backend::Exhaustive,
        ShardSpec::new(2).with_warmup(4).with_pivots_per_shard(1),
    )
    .expect("detector")
}

/// Two far clusters plus boundary points, so a 2-shard partition must
/// ghost across the pair, and isolated points are outliers.
fn stream_points() -> Vec<Vec<f32>> {
    let mut pts = Vec::new();
    for i in 0..40 {
        pts.push(vec![if i % 2 == 0 {
            (i % 5) as f32 * 0.3
        } else {
            100.0 + (i % 5) as f32 * 0.3
        }]);
        if i % 10 == 9 {
            pts.push(vec![50.0 + (i % 3) as f32 * 0.1]); // boundary drifter
        }
    }
    pts.push(vec![-500.0]); // isolated: a certain outlier
    pts
}

fn points_body(points: &[Vec<f32>]) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            let cs: Vec<String> = p.iter().map(|c| format!("{c}")).collect();
            format!("[{}]", cs.join(","))
        })
        .collect();
    format!("{{\"points\":[{}]}}", rows.join(","))
}

#[test]
fn query_route_is_byte_identical_to_in_process_query_many() {
    let (handle, twin) = engine_server();
    let queries = [
        Query::new(60.0, 40).unwrap(),
        Query::new(120.0, 40).unwrap(),
        Query::new(60.0, 40).unwrap(), // duplicate: exercises batch dedupe
    ];
    let body = r#"{"queries":[{"r":60,"k":40},{"r":120,"k":40},{"r":60,"k":40}]}"#;
    let (status, http_body) = post(handle.addr(), "/v1/query", body);
    assert_eq!(status, 200, "{http_body}");
    let expected = encode::query_response(&twin.query_many(&queries).expect("in-process"));
    assert_eq!(http_body, expected, "HTTP answer must be byte-identical");
    // The answer is meaningful, not vacuous: some outliers exist at the
    // tighter radius.
    assert!(http_body.contains("\"outliers\":["), "{http_body}");
    handle.shutdown();
}

/// EXPLAIN is additive and opt-in: `"explain": false` answers the exact
/// legacy bytes (the absent-key case is pinned above), `"explain": true`
/// appends a deterministic `"cost"` plan to every result.
#[test]
fn explain_adds_a_cost_plan_and_off_stays_byte_identical() {
    let (handle, twin) = engine_server();
    let addr = handle.addr();
    let queries = [
        Query::new(80.0, 30).unwrap(),
        Query::new(120.0, 10).unwrap(),
    ];
    let reports = twin.query_many(&queries).expect("in-process");

    let body = r#"{"queries":[{"r":80,"k":30},{"r":120,"k":10}],"explain":false}"#;
    let (status, plain) = post(addr, "/v1/query", body);
    assert_eq!(status, 200, "{plain}");
    assert_eq!(
        plain,
        encode::query_response(&reports),
        "explain: false answers the pre-EXPLAIN bytes"
    );

    let body = r#"{"queries":[{"r":80,"k":30},{"r":120,"k":10}],"explain":true}"#;
    let (status, explained) = post(addr, "/v1/engines/default/query", body);
    assert_eq!(status, 200, "{explained}");
    assert_eq!(
        explained,
        encode::query_response_explained(&reports, twin.len()),
        "the explained body is deterministic too"
    );
    let doc = dod_wire::parse_json(&explained).expect("json");
    let results = doc
        .get("results")
        .and_then(JsonValue::as_arr)
        .expect("results");
    assert_eq!(results.len(), 2);
    for (res, rep) in results.iter().zip(&reports) {
        let cost = res.get("cost").expect("each result carries its plan");
        let evals = |key: &str| {
            cost.get(key)
                .and_then(JsonValue::as_usize)
                .unwrap_or_else(|| panic!("missing {key}: {explained}")) as u64
        };
        assert_eq!(evals("filter_dist_evals"), rep.cost.filter_dist_evals);
        assert_eq!(evals("verify_dist_evals"), rep.cost.verify_dist_evals);
        assert_eq!(
            evals("total_dist_evals"),
            rep.cost.filter_dist_evals + rep.cost.verify_dist_evals
        );
        assert_eq!(evals("hops"), rep.cost.hops);
        assert!(
            evals("total_dist_evals") > 0,
            "a real query burns distances"
        );
        let power = cost
            .get("pruning_power")
            .and_then(JsonValue::as_f64)
            .expect("pruning_power");
        assert!((0.0..=1.0).contains(&power), "{power}");
    }
    handle.shutdown();
}

/// Typos anywhere in a query body are named 400s, not silent no-ops: a
/// client that misspells `"explain"` must not get an answer without the
/// plan it asked for.
#[test]
fn unknown_query_body_keys_answer_400_envelopes() {
    let (handle, _twin) = engine_server();
    let addr = handle.addr();
    for (body, needle) in [
        (r#"{"queries":[{"r":60,"k":40}],"explian":true}"#, "explian"),
        (r#"{"queries":[{"r":60,"k":40,"radius":2}]}"#, "radius"),
        (
            r#"{"queries":[{"r":60,"k":40}],"explain":"yes"}"#,
            "explain",
        ),
    ] {
        let (status, resp) = post(addr, "/v1/query", body);
        assert_eq!(status, 400, "{body} -> {resp}");
        let doc = dod_wire::parse_json(&resp).expect("json");
        let env = dod_wire::shapes::ErrorEnvelope::from_json(&doc).expect("envelope");
        assert_eq!(env.kind, "bad_request");
        assert!(env.message.contains(needle), "{}", env.message);
    }
    // After the rejections, valid queries still answer.
    let (status, _) = post(addr, "/v1/query", r#"{"queries":[{"r":60,"k":40}]}"#);
    assert_eq!(status, 200);
    handle.shutdown();
}

/// The `/metrics` cost series agree with the in-process twin's reports:
/// cumulative distance evaluations by phase, hops, filter effectiveness,
/// and a live pruning-power gauge.
#[test]
fn metrics_expose_cost_series_matching_the_twin() {
    let (handle, twin) = engine_server();
    let addr = handle.addr();
    let queries = [
        Query::new(60.0, 40).unwrap(),
        Query::new(120.0, 40).unwrap(),
    ];
    let reports = twin.query_many(&queries).expect("in-process");
    let (status, _) = post(
        addr,
        "/v1/query",
        r#"{"queries":[{"r":60,"k":40},{"r":120,"k":40}]}"#,
    );
    assert_eq!(status, 200);
    let (status, text) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let mut expected = dod_core::CostReport::default();
    let (mut candidates, mut decided, mut false_pos) = (0usize, 0usize, 0usize);
    for rep in &reports {
        expected.absorb(&rep.cost);
        candidates += rep.candidates;
        decided += rep.decided_in_filter;
        false_pos += rep.false_positives;
    }
    let series = [
        (
            "dod_cost_filter_dist_evals_total",
            expected.filter_dist_evals,
        ),
        (
            "dod_cost_verify_dist_evals_total",
            expected.verify_dist_evals,
        ),
        ("dod_cost_hops_total", expected.hops),
        ("dod_cost_candidates_total", candidates as u64),
        ("dod_cost_decided_in_filter_total", decided as u64),
        ("dod_cost_false_positives_total", false_pos as u64),
    ];
    for (metric, want) in series {
        let got = metric_value(&text, &format!("{metric}{{engine=\"default\"}}")) as u64;
        assert_eq!(got, want, "{metric}: {text}");
    }
    let power = metric_value(&text, "dod_cost_pruning_power{engine=\"default\"}");
    let n = twin.len() as f64;
    let baseline = reports.len() as f64 * n * (n - 1.0);
    let want = (1.0 - expected.total_dist_evals() as f64 / baseline).max(0.0);
    assert!(
        (power - want).abs() < 1e-9,
        "pruning power {power} != twin's {want}"
    );
    handle.shutdown();
}

#[test]
fn wire_supplied_threads_are_clamped_server_side() {
    let (handle, twin) = engine_server();
    // A hostile thread count must not spawn 4 billion OS threads — the
    // server clamps it to its cap, and the (exact) answer is unchanged.
    let body = r#"{"queries":[{"r":60,"k":40,"threads":4000000000}]}"#;
    let (status, http_body) = post(handle.addr(), "/v1/query", body);
    assert_eq!(status, 200, "{http_body}");
    let expected =
        encode::query_response(&twin.query_many(&[Query::new(60.0, 40).unwrap()]).unwrap());
    assert_eq!(http_body, expected, "clamping must not change the answer");
    handle.shutdown();
}

#[test]
fn whole_request_deadline_caps_slow_requests() {
    // Per-read timeout far above the request deadline: only the deadline
    // can explain a fast 408.
    let handle = DodServer::builder()
        .read_timeout(Duration::from_secs(5))
        .request_timeout(Duration::from_millis(300))
        .bind("127.0.0.1:0")
        .expect("bind")
        .start();
    let mut conn = TcpStream::connect(handle.addr()).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10))).ok();
    let started = std::time::Instant::now();
    conn.write_all(b"GET /healthz HTT").expect("send");
    std::thread::sleep(Duration::from_millis(100));
    conn.write_all(b"P/1.1\r\nx-drip: 1\r\n").expect("send");
    // …then silence mid-headers: a slowloris client pacing bytes inside
    // the per-read timeout must still be cut off at the deadline.
    let (status, _body) = read_response(&mut BufReader::new(conn.try_clone().expect("clone")));
    assert_eq!(status, 408);
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "the deadline, not the 5s read timeout, must answer: {:?}",
        started.elapsed()
    );
    handle.shutdown();
}

#[test]
fn http10_requests_default_to_connection_close() {
    let handle = DodServer::builder()
        .bind("127.0.0.1:0")
        .expect("bind")
        .start();
    let mut conn = TcpStream::connect(handle.addr()).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(30))).ok();
    conn.write_all(b"GET /healthz HTTP/1.0\r\n\r\n")
        .expect("send");
    let mut all = String::new();
    std::io::Read::read_to_string(&mut conn, &mut all).expect("server must close after answering");
    assert!(all.starts_with("HTTP/1.1 200"), "{all}");
    assert!(all.contains("connection: close"), "{all}");
    handle.shutdown();
}

#[test]
fn ingest_and_report_match_the_in_process_sharded_detector() {
    let handle = DodServer::builder()
        .stream(stream_detector())
        .workers(2)
        .bind("127.0.0.1:0")
        .expect("bind")
        .start();
    let mut twin = stream_detector();

    let points = stream_points();
    // Ingest in two chunks, with a mid-stream report in between — the
    // snapshot must reflect exactly the first chunk.
    let (first, rest) = points.split_at(points.len() / 2);
    for chunk in [first, rest] {
        let (status, body) = post(handle.addr(), "/v1/ingest", &points_body(chunk));
        assert_eq!(status, 200, "{body}");
        assert_eq!(body, encode::ingest_response(chunk.len()));
        for p in chunk {
            twin.insert(p.clone());
        }
        let (status, http_report) = get(handle.addr(), "/v1/report");
        assert_eq!(status, 200, "{http_report}");
        let expected = encode::stream_report_response(&twin.outliers());
        assert_eq!(http_report, expected, "snapshot must match the twin");
    }
    // The planted isolated point is among the reported outliers.
    let (_, http_report) = get(handle.addr(), "/v1/report");
    let isolated_seq = points.len() as u64 - 1;
    assert!(
        http_report.contains(&isolated_seq.to_string()),
        "isolated point must be reported: {http_report}"
    );
    // And the twin agrees with its own from-scratch audit.
    assert_eq!(twin.outliers(), twin.audit());
    handle.shutdown();
}

#[test]
fn metrics_expose_query_counters_latency_buckets_and_ghost_rates() {
    let (handle, _twin) = engine_server();
    let addr = handle.addr();
    // Drive the query route: 1 batch of 3 (one duplicate) + 1 batch of 1.
    post(
        addr,
        "/v1/query",
        r#"{"queries":[{"r":60,"k":40},{"r":120,"k":40},{"r":60,"k":40}]}"#,
    );
    post(addr, "/v1/query", r#"{"queries":[{"r":60,"k":40}]}"#);
    let (status, text) = get(addr, "/metrics");
    assert_eq!(status, 200);
    // Engine series are labeled by registry name; a builder-mounted
    // engine is the "default" one.
    assert!(
        text.contains("dod_engine_queries_total{engine=\"default\"} 4"),
        "{text}"
    );
    assert!(
        text.contains("dod_engine_batches_total{engine=\"default\"} 2"),
        "{text}"
    );
    assert!(
        text.contains("dod_engine_query_errors_total{engine=\"default\"} 0"),
        "{text}"
    );
    assert!(text.contains("dod_engine_resident 1"), "{text}");
    // Histogram: buckets, +Inf, sum and count; 3 timed observations (the
    // duplicate was answered by clone, not re-timed).
    assert!(
        text.contains("dod_engine_query_latency_seconds_bucket{engine=\"default\",le=\"+Inf\"} 3"),
        "{text}"
    );
    assert!(
        text.contains(
            "dod_engine_query_latency_seconds_bucket{engine=\"default\",le=\"0.000001\"}"
        ),
        "{text}"
    );
    assert!(
        text.contains("dod_engine_query_latency_seconds_sum{engine=\"default\"}"),
        "{text}"
    );
    assert!(
        text.contains("dod_engine_query_latency_seconds_count{engine=\"default\"} 3"),
        "{text}"
    );
    // Request accounting by route pattern and status, plus the per-route
    // latency histogram and pool gauges that ride along.
    assert!(
        text.contains("dod_http_requests_total{route=\"/v1/query\",status=\"200\"} 2"),
        "{text}"
    );
    assert!(
        text.contains("dod_http_request_seconds_count{route=\"/v1/query\"} 2"),
        "{text}"
    );
    assert!(text.contains("dod_http_queue_wait_seconds_count"), "{text}");
    assert!(text.contains("dod_pool_workers "), "{text}");
    handle.shutdown();

    // Stream-backed server: ghost-pair counters and rates after load.
    let handle = DodServer::builder()
        .stream(stream_detector())
        .bind("127.0.0.1:0")
        .expect("bind")
        .start();
    let (status, body) = post(handle.addr(), "/v1/ingest", &points_body(&stream_points()));
    assert_eq!(status, 200, "{body}");
    let (_, _) = get(handle.addr(), "/v1/report"); // barrier: drain queues
    let (status, text) = get(handle.addr(), "/metrics");
    assert_eq!(status, 200);
    assert!(
        text.contains("dod_stream_inserts_total{session=\"default\"}"),
        "{text}"
    );
    assert!(
        text.contains("dod_stream_ghost_inserts_total{session=\"default\"}"),
        "{text}"
    );
    assert!(text.contains("dod_session_active 1"), "{text}");
    // The boundary drifters must have ghosted across the shard pair, in
    // at least one direction.
    let ghost_lines: Vec<&str> = text
        .lines()
        .filter(|l| l.starts_with("dod_shard_ghost_routes_total{"))
        .collect();
    assert_eq!(
        ghost_lines.len(),
        2,
        "S=2 has two off-diagonal pairs: {text}"
    );
    let total_ghosts: u64 = ghost_lines
        .iter()
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum();
    assert!(total_ghosts > 0, "boundary points must replicate: {text}");
    assert!(
        text.contains("dod_shard_ghost_rate{session=\"default\",owner=\"0\",target=\"1\"}"),
        "{text}"
    );
    assert!(
        text.contains("dod_shard_ghost_rate{session=\"default\",owner=\"1\",target=\"0\"}"),
        "{text}"
    );
    // Ghost rates are per-owner: rate[o][t] = routes[o][t] / owned[o],
    // and the owned counts partition the stream exactly.
    let owned0 = metric_value(
        &text,
        "dod_shard_owned_points_total{session=\"default\",shard=\"0\"}",
    );
    let owned1 = metric_value(
        &text,
        "dod_shard_owned_points_total{session=\"default\",shard=\"1\"}",
    );
    assert_eq!((owned0 + owned1) as usize, stream_points().len(), "{text}");
    let routes01 = metric_value(
        &text,
        "dod_shard_ghost_routes_total{session=\"default\",owner=\"0\",target=\"1\"}",
    );
    let rate01 = metric_value(
        &text,
        "dod_shard_ghost_rate{session=\"default\",owner=\"0\",target=\"1\"}",
    );
    assert!(owned0 > 0.0 && owned1 > 0.0, "{text}");
    assert!(
        (rate01 - routes01 / owned0).abs() < 1e-9,
        "rate must divide by the owner shard's owned count: {text}"
    );
    handle.shutdown();
}

/// The numeric value of the first metric line starting with `line_start`.
fn metric_value(text: &str, line_start: &str) -> f64 {
    text.lines()
        .find(|l| l.starts_with(line_start))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("missing metric {line_start}: {text}"))
}

#[test]
fn malformed_requests_get_typed_4xx_and_the_server_survives() {
    let handle = DodServer::builder()
        .engine(
            Family::Sift
                .generate(120, 3)
                .data
                .into_engine()
                .index(IndexSpec::VpTree)
                .build()
                .expect("engine"),
        )
        .stream(stream_detector())
        .max_body_bytes(1024)
        .bind("127.0.0.1:0")
        .expect("bind")
        .start();
    let addr = handle.addr();

    // Bad JSON.
    let (status, body) = post(addr, "/v1/query", "{not json");
    assert_eq!(status, 400);
    assert!(body.contains("\"kind\":\"bad_json\""), "{body}");
    // Wrong shape.
    let (status, body) = post(addr, "/v1/query", r#"{"nope":1}"#);
    assert_eq!(status, 400, "{body}");
    // Invalid radius: the DodError variant comes through as the kind.
    let (status, body) = post(addr, "/v1/query", r#"{"queries":[{"r":-2,"k":3}]}"#);
    assert_eq!(status, 400);
    assert!(body.contains("\"kind\":\"invalid_radius\""), "{body}");
    assert!(body.contains("finite non-negative"), "{body}");
    // Wrong family: a string where this stream's vectors belong.
    let (status, body) = post(addr, "/v1/ingest", r#"{"points":["hello"]}"#);
    assert_eq!(status, 400);
    assert!(body.contains("\"kind\":\"family_mismatch\""), "{body}");
    // Wrong dimension.
    let (status, body) = post(addr, "/v1/ingest", r#"{"points":[[1.0,2.0]]}"#);
    assert_eq!(status, 400);
    assert!(body.contains("\"kind\":\"family_mismatch\""), "{body}");
    // Oversized body: rejected from the Content-Length alone.
    let big = format!("{{\"points\":[{}]}}", "[1.0],".repeat(400) + "[1.0]");
    let (status, body) = post(addr, "/v1/ingest", &big);
    assert_eq!(status, 413, "{body}");
    // Unknown route, wrong method, garbage request line, chunked bodies.
    let (status, _) = get(addr, "/v2/nope");
    assert_eq!(status, 404);
    let (status, _) = get(addr, "/v1/query");
    assert_eq!(status, 405);
    let (status, _) = request(addr, "total garbage\r\n\r\n");
    assert_eq!(status, 400);
    let (status, _) = request(
        addr,
        "POST /v1/query HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
    );
    assert_eq!(status, 501);

    // After all of that abuse the server still answers.
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(
        body,
        r#"{"status":"ok","engine":true,"stream":true,"engines":1,"sessions":1}"#
    );
    // The stream session survived the rejected ingests untouched: no
    // point ever reached it.
    let (status, report) = get(addr, "/v1/report");
    assert_eq!(status, 200);
    assert_eq!(report, encode::stream_report_response(&[]));
    handle.shutdown();
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let (handle, twin) = engine_server();
    let mut conn = TcpStream::connect(handle.addr()).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(30))).ok();
    let body = r#"{"queries":[{"r":60,"k":40}]}"#;
    let expected =
        encode::query_response(&twin.query_many(&[Query::new(60.0, 40).unwrap()]).unwrap());
    for _ in 0..3 {
        let (status, resp) = roundtrip(
            &mut conn,
            &format!(
                "POST /v1/query HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
                body.len()
            ),
        );
        assert_eq!(status, 200);
        assert_eq!(resp, expected);
    }
    // healthz on the same connection, then an explicit close.
    let (status, _) = roundtrip(
        &mut conn,
        "GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    handle.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For arbitrary (r, k) batches, the HTTP answer equals the wire
    /// encoding of the in-process `query_many` answer, byte for byte.
    #[test]
    fn http_query_parity_for_arbitrary_batches(
        rs in proptest::collection::vec(0.0f64..200.0, 1..4),
        ks in proptest::collection::vec(0usize..60, 1..4),
        seed in 0u64..100,
    ) {
        let build = || {
            Family::Sift
                .generate(150, seed)
                .data
                .into_engine()
                .index(IndexSpec::VpTree)
                .build()
                .expect("engine")
        };
        let handle = DodServer::builder()
            .engine(build())
            .workers(1)
            .bind("127.0.0.1:0")
            .expect("bind")
            .start();
        let twin = build();
        let queries: Vec<Query> = rs
            .iter()
            .zip(&ks)
            .map(|(&r, &k)| Query::new(r, k).expect("valid"))
            .collect();
        let items: Vec<String> = queries
            .iter()
            .map(|q| format!("{{\"r\":{},\"k\":{}}}", q.r(), q.k()))
            .collect();
        let (status, http_body) = post(
            handle.addr(),
            "/v1/query",
            &format!("{{\"queries\":[{}]}}", items.join(",")),
        );
        prop_assert_eq!(status, 200);
        let expected = encode::query_response(&twin.query_many(&queries).expect("in-process"));
        prop_assert_eq!(http_body, expected);
        handle.shutdown();
    }

    /// For arbitrary streams and shard counts, ingest→report over HTTP
    /// matches the in-process sharded detector, byte for byte.
    #[test]
    fn http_stream_parity_for_arbitrary_streams(
        shards in 1usize..4,
        n in 20usize..80,
        seed in 0u64..100,
    ) {
        let open = || {
            ShardedStreamDetector::open(
                VectorSpace::new(L2, 2),
                Query::new(0.8, 2).expect("query"),
                WindowSpec::Count(32),
                Backend::Exhaustive,
                ShardSpec::new(shards).with_warmup(8),
            )
            .expect("detector")
        };
        let points = dod_datasets::StreamScenario {
            clusters: 2,
            outlier_rate: 0.1,
            ..dod_datasets::StreamScenario::new(2)
        }
        .generate(n, seed);
        let handle = DodServer::builder()
            .stream(open())
            .workers(1)
            .bind("127.0.0.1:0")
            .expect("bind")
            .start();
        let mut twin = open();
        for p in &points {
            twin.insert(p.clone());
        }
        let (status, body) = post(handle.addr(), "/v1/ingest", &points_body(&points));
        prop_assert_eq!(status, 200, "{}", body);
        let (status, http_report) = get(handle.addr(), "/v1/report");
        prop_assert_eq!(status, 200);
        prop_assert_eq!(http_report, encode::stream_report_response(&twin.outliers()));
        handle.shutdown();
    }
}
