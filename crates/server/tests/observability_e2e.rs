//! End-to-end observability tests: request ids echoed over real
//! sockets, the `/v1/debug/traces` ring, per-route `/metrics` series,
//! and the JSON-lines access log — all driven with hand-written
//! HTTP/1.1 against a server on an ephemeral port.

use dod_core::{IndexSpec, Query};
use dod_datasets::Family;
use dod_metrics::L2;
use dod_server::DodServer;
use dod_shard::{ShardSpec, ShardedStreamDetector};
use dod_stream::{Backend, VectorSpace, WindowSpec};
use dod_wire::JsonValue;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One HTTP/1.1 exchange on a fresh connection, returning
/// `(status, headers, body)` with header names lower-cased.
fn exchange(addr: SocketAddr, raw: &str) -> (u16, Vec<(String, String)>, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(30))).ok();
    conn.write_all(raw.as_bytes()).expect("send");
    let mut r = BufReader::new(conn);
    let mut line = String::new();
    r.read_line(&mut line).expect("status line");
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {line:?}"));
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        r.read_line(&mut h).expect("header line");
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        let (name, value) = h.split_once(':').expect("header colon");
        let name = name.to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value.parse().expect("content-length value");
        }
        headers.push((name, value));
    }
    let mut body = vec![0u8; content_length];
    std::io::Read::read_exact(&mut r, &mut body).expect("body");
    (status, headers, String::from_utf8(body).expect("utf8 body"))
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn post(
    addr: SocketAddr,
    path: &str,
    body: &str,
    extra: &str,
) -> (u16, Vec<(String, String)>, String) {
    exchange(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\ncontent-length: {}\r\n{extra}connection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn get(addr: SocketAddr, path: &str) -> (u16, Vec<(String, String)>, String) {
    exchange(
        addr,
        &format!("GET {path} HTTP/1.1\r\nconnection: close\r\n\r\n"),
    )
}

fn builder() -> dod_server::ServerBuilder {
    let engine = Family::Sift
        .generate(300, 11)
        .data
        .into_engine()
        .index(IndexSpec::Mrpg(dod_graph::MrpgParams::new(6)))
        .build()
        .expect("engine");
    let stream = ShardedStreamDetector::open(
        VectorSpace::new(L2, 1),
        Query::new(1.0, 2).expect("query"),
        WindowSpec::Count(64),
        Backend::Exhaustive,
        ShardSpec::new(2).with_warmup(4).with_pivots_per_shard(1),
    )
    .expect("detector");
    DodServer::builder()
        .engine(engine)
        .stream(stream)
        .workers(2)
}

/// A trace object's span by name, if present.
fn span<'a>(trace: &'a JsonValue, name: &str) -> Option<&'a JsonValue> {
    trace
        .get("spans")
        .and_then(JsonValue::as_arr)?
        .iter()
        .find(|s| s.get("name").and_then(JsonValue::as_str) == Some(name))
}

fn span_duration_ns(trace: &JsonValue, name: &str) -> u64 {
    span(trace, name)
        .and_then(|s| s.get("duration_ns"))
        .and_then(JsonValue::as_usize)
        .unwrap_or_else(|| panic!("span {name} missing: {trace:?}")) as u64
}

#[test]
fn a_query_is_traced_from_queue_wait_to_filter_and_verify() {
    let handle = builder().bind("127.0.0.1:0").expect("bind").start();
    let addr = handle.addr();

    let (status, headers, _) = post(
        addr,
        "/v1/query",
        r#"{"queries":[{"r":100.0,"k":40}]}"#,
        "x-request-id: trace-me-42\r\n",
    );
    assert_eq!(status, 200);
    // The inbound id is echoed on the response.
    assert_eq!(header(&headers, "x-request-id"), Some("trace-me-42"));

    let (status, _, body) = get(addr, "/v1/debug/traces");
    assert_eq!(status, 200, "{body}");
    let doc = dod_wire::parse_json(&body).expect("traces json");
    assert!(doc.get("capacity").and_then(JsonValue::as_usize).unwrap() >= 1);
    let traces = doc
        .get("traces")
        .and_then(JsonValue::as_arr)
        .expect("traces");
    let trace = traces
        .iter()
        .find(|t| t.get("request_id").and_then(JsonValue::as_str) == Some("trace-me-42"))
        .expect("the query's trace is in the ring");
    assert_eq!(
        trace.get("route").and_then(JsonValue::as_str),
        Some("/v1/query")
    );
    assert_eq!(trace.get("status").and_then(JsonValue::as_usize), Some(200));
    // The whole path is covered: pool queue wait, socket read, dispatch,
    // and the paper's filter/verify phase split — all with real time in
    // them.
    for name in [
        "queue_wait",
        "read",
        "dispatch",
        "engine",
        "filter",
        "verify",
    ] {
        assert!(
            span_duration_ns(trace, name) > 0,
            "span {name} has zero duration: {trace:?}"
        );
    }
    let filter = span(trace, "filter")
        .unwrap()
        .get("fields")
        .expect("fields");
    assert!(filter
        .get("candidates")
        .and_then(JsonValue::as_usize)
        .is_some());

    // The same request shows up in the per-route×status counters.
    let (_, _, metrics) = get(addr, "/metrics");
    assert!(
        metrics.contains("dod_http_requests_total{route=\"/v1/query\",status=\"200\"} 1"),
        "{metrics}"
    );
    handle.shutdown();
}

#[test]
fn inbound_request_ids_are_sanitized_not_trusted() {
    let handle = builder().bind("127.0.0.1:0").expect("bind").start();
    let (status, headers, _) = post(
        handle.addr(),
        "/v1/query",
        r#"{"queries":[{"r":100.0,"k":40}]}"#,
        "x-request-id: bad id\"with{junk}\r\n",
    );
    assert_eq!(status, 200);
    // The hostile id is replaced by a generated one, never echoed.
    let echoed = header(&headers, "x-request-id").expect("some id is echoed");
    assert_ne!(echoed, "bad id\"with{junk}");
    assert!(echoed
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b"-_.:".contains(&b)));
    handle.shutdown();
}

#[test]
fn debug_traces_filter_by_route_and_min_ms() {
    let handle = builder().bind("127.0.0.1:0").expect("bind").start();
    let addr = handle.addr();
    let (status, _, _) = post(addr, "/v1/query", r#"{"queries":[{"r":100.0,"k":40}]}"#, "");
    assert_eq!(status, 200);
    let (status, _, _) = get(addr, "/healthz");
    assert_eq!(status, 200);

    let (status, _, body) = get(addr, "/v1/debug/traces?route=/v1/query");
    assert_eq!(status, 200, "{body}");
    let doc = dod_wire::parse_json(&body).expect("json");
    let traces = doc
        .get("traces")
        .and_then(JsonValue::as_arr)
        .expect("traces");
    assert!(!traces.is_empty());
    for t in traces {
        assert_eq!(
            t.get("route").and_then(JsonValue::as_str),
            Some("/v1/query")
        );
    }

    // An absurd floor filters everything out (requests here are fast).
    let (status, _, body) = get(addr, "/v1/debug/traces?min_ms=3600000");
    assert_eq!(status, 200);
    let doc = dod_wire::parse_json(&body).expect("json");
    assert_eq!(
        doc.get("traces")
            .and_then(JsonValue::as_arr)
            .map(<[_]>::len),
        Some(0)
    );

    // A malformed floor is a client error, not a shrug.
    let (status, _, body) = get(addr, "/v1/debug/traces?min_ms=soon");
    assert_eq!(status, 400, "{body}");

    // Unknown parameters and routes matching no mounted pattern are
    // named 400 envelopes too — not silently ignored filters.
    for q in ["?min_mss=5", "?route=/v1/quary"] {
        let (status, _, body) = get(addr, &format!("/v1/debug/traces{q}"));
        assert_eq!(status, 400, "{q}: {body}");
        let doc = dod_wire::parse_json(&body).expect("json");
        let env = dod_wire::shapes::ErrorEnvelope::from_json(&doc).expect("envelope");
        assert_eq!(env.kind, "bad_request", "{q}");
    }
    handle.shutdown();
}

/// The slow-query log: bounded, slowest-first, filterable, and joined
/// to the trace ring through the request id each entry records.
#[test]
fn debug_slow_serves_the_bounded_ring_with_request_id_linkage() {
    let handle = builder()
        .slow_query_capacity(2)
        .bind("127.0.0.1:0")
        .expect("bind")
        .start();
    let addr = handle.addr();

    // Empty before any query — and the capacity knob is echoed.
    let (status, _, body) = get(addr, "/v1/debug/slow");
    assert_eq!(status, 200, "{body}");
    let doc = dod_wire::parse_json(&body).expect("json");
    assert_eq!(
        doc.get("slow").and_then(JsonValue::as_arr).map(<[_]>::len),
        Some(0)
    );
    assert_eq!(doc.get("capacity").and_then(JsonValue::as_usize), Some(2));

    for id in ["slow-a", "slow-b", "slow-c"] {
        let (status, _, _) = post(
            addr,
            "/v1/query",
            r#"{"queries":[{"r":100.0,"k":40}]}"#,
            &format!("x-request-id: {id}\r\n"),
        );
        assert_eq!(status, 200);
    }

    let (status, _, body) = get(addr, "/v1/debug/slow");
    assert_eq!(status, 200);
    let doc = dod_wire::parse_json(&body).expect("json");
    let slow = doc.get("slow").and_then(JsonValue::as_arr).expect("slow");
    assert_eq!(slow.len(), 2, "capacity bounds the log: {body}");
    let duration = |e: &JsonValue| {
        e.get("duration_ns")
            .and_then(JsonValue::as_usize)
            .expect("duration_ns")
    };
    assert!(
        duration(&slow[0]) >= duration(&slow[1]),
        "slowest first: {body}"
    );
    let (_, _, traces_body) = get(addr, "/v1/debug/traces");
    let traces_doc = dod_wire::parse_json(&traces_body).expect("traces json");
    let traces = traces_doc
        .get("traces")
        .and_then(JsonValue::as_arr)
        .expect("traces");
    for e in slow {
        assert_eq!(e.get("engine").and_then(JsonValue::as_str), Some("default"));
        assert_eq!(e.get("queries").and_then(JsonValue::as_usize), Some(1));
        let cost = e.get("cost").expect("cost plan");
        assert!(
            cost.get("total_dist_evals")
                .and_then(JsonValue::as_usize)
                .expect("total_dist_evals")
                > 0,
            "{body}"
        );
        let power = cost
            .get("pruning_power")
            .and_then(JsonValue::as_f64)
            .expect("pruning_power");
        assert!((0.0..=1.0).contains(&power), "{power}");
        // The entry's request id resolves in the trace ring: the two
        // debug endpoints join on it.
        let id = e
            .get("request_id")
            .and_then(JsonValue::as_str)
            .expect("request_id");
        assert!(id.starts_with("slow-"), "{id}");
        assert!(
            traces
                .iter()
                .any(|t| t.get("request_id").and_then(JsonValue::as_str) == Some(id)),
            "{id} not found in the trace ring: {traces_body}"
        );
    }

    // Filters mirror the traces ring: an absurd floor empties the view,
    // an unknown engine matches nothing, and mistakes are named 400s.
    for (query, expect_empty) in [("?min_ms=3600000", true), ("?engine=absent", true)] {
        let (status, _, body) = get(addr, &format!("/v1/debug/slow{query}"));
        assert_eq!(status, 200, "{query}: {body}");
        let doc = dod_wire::parse_json(&body).expect("json");
        let len = doc.get("slow").and_then(JsonValue::as_arr).map(<[_]>::len);
        assert_eq!(len == Some(0), expect_empty, "{query}: {body}");
    }
    for q in ["?min_ms=soon", "?route=/v1/query", "?engine=bad%20name"] {
        let (status, _, body) = get(addr, &format!("/v1/debug/slow{q}"));
        assert_eq!(status, 400, "{q}: {body}");
        let doc = dod_wire::parse_json(&body).expect("json");
        let env = dod_wire::shapes::ErrorEnvelope::from_json(&doc).expect("envelope");
        assert_eq!(env.kind, "bad_request", "{q}");
    }
    handle.shutdown();
}

/// The per-session cost series: an exhaustive-backend session books one
/// window scan per insert, visible as `dod_cost_insert_dist_evals_total`.
#[test]
fn metrics_expose_stream_cost_series() {
    let handle = builder().bind("127.0.0.1:0").expect("bind").start();
    let addr = handle.addr();
    let (status, _, _) = post(
        addr,
        "/v1/ingest",
        r#"{"points":[[0.5],[0.6],[0.7],[0.8],[50.0]]}"#,
        "",
    );
    assert_eq!(status, 200);
    let (status, _, report) = get(addr, "/v1/report");
    assert_eq!(status, 200, "{report}");
    let (_, _, metrics) = get(addr, "/metrics");
    let series_value = |name: &str| {
        metrics
            .lines()
            .find(|l| l.starts_with(&format!("{name}{{session=\"default\"}}")))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or_else(|| panic!("missing {name}: {metrics}"))
    };
    assert!(
        series_value("dod_cost_insert_dist_evals_total") > 0.0,
        "exhaustive discovery scans the window: {metrics}"
    );
    // An exact backend never walks a graph and needs no repair.
    assert_eq!(series_value("dod_cost_insert_hops_total"), 0.0);
    assert_eq!(series_value("dod_cost_query_dist_evals_total"), 0.0);
    assert!(series_value("dod_cost_query_decided_in_filter_total") >= 0.0);
    handle.shutdown();
}

#[test]
fn the_access_log_records_every_request_parsably() {
    let path = std::env::temp_dir().join(format!(
        "dod_access_log_{}_{:?}.jsonl",
        std::process::id(),
        std::thread::current().id()
    ));
    let log = std::fs::File::create(&path).expect("create log");
    let handle = builder()
        .access_log(log)
        .bind("127.0.0.1:0")
        .expect("bind")
        .start();
    let addr = handle.addr();

    let (status, headers, _) = post(
        addr,
        "/v1/query",
        r#"{"queries":[{"r":100.0,"k":40}]}"#,
        "x-request-id: logged-query\r\n",
    );
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-request-id"), Some("logged-query"));
    let (status, _, _) = post(
        addr,
        "/v1/ingest",
        r#"{"points":[[0.5],[0.6],[0.7]]}"#,
        "x-request-id: logged-ingest\r\n",
    );
    assert_eq!(status, 200);
    // A routed client error: invalid JSON body on a real route.
    let (status, _, _) = post(
        addr,
        "/v1/query",
        "{not json",
        "x-request-id: logged-bad\r\n",
    );
    assert_eq!(status, 400);
    // A pre-routing parse failure: no such method/target shape at all.
    let (status, _, _) = exchange(addr, "BOGUS\r\n\r\n");
    assert_eq!(status, 400);
    handle.shutdown();

    let text = std::fs::read_to_string(&path).expect("read log");
    let _ = std::fs::remove_file(&path);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 4, "one line per request: {text}");
    let mut logged = Vec::new();
    for line in &lines {
        let doc = dod_wire::parse_json(line)
            .unwrap_or_else(|e| panic!("unparsable access-log line {line:?}: {e:?}"));
        assert!(
            doc.get("duration_ns")
                .and_then(JsonValue::as_usize)
                .unwrap()
                > 0,
            "{line}"
        );
        logged.push((
            doc.get("request_id")
                .and_then(JsonValue::as_str)
                .unwrap()
                .to_string(),
            doc.get("route")
                .and_then(JsonValue::as_str)
                .unwrap()
                .to_string(),
            doc.get("status").and_then(JsonValue::as_usize).unwrap() as u16,
        ));
    }
    assert_eq!(
        logged[0],
        ("logged-query".to_string(), "/v1/query".to_string(), 200)
    );
    assert_eq!(
        logged[1],
        ("logged-ingest".to_string(), "/v1/ingest".to_string(), 200)
    );
    assert_eq!(
        logged[2],
        ("logged-bad".to_string(), "/v1/query".to_string(), 400)
    );
    // The unparsable request got a generated id and the synthetic route.
    assert_eq!(logged[3].1, "<parse>");
    assert_eq!(logged[3].2, 400);
    assert!(!logged[3].0.is_empty());
}

#[test]
fn parse_failures_are_counted_under_the_synthetic_route() {
    let handle = builder().bind("127.0.0.1:0").expect("bind").start();
    let addr = handle.addr();
    let (status, headers, _) = exchange(addr, "gibberish\r\n\r\n");
    assert_eq!(status, 400);
    // Even rejects carry a (generated) request id.
    assert!(header(&headers, "x-request-id").is_some());
    let (_, _, metrics) = get(addr, "/metrics");
    assert!(
        metrics.contains("dod_http_requests_total{route=\"<parse>\",status=\"400\"} 1"),
        "{metrics}"
    );
    handle.shutdown();
}
