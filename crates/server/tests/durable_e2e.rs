//! End-to-end durability: a `"durable": true` wire session writes a WAL
//! under the server's data directory, survives a full server restart
//! with an identical report, exports `dod_wal_*` metrics, and `DELETE`
//! reclaims its files. A server without a data directory refuses
//! durable creation with a 503.

use dod_server::DodServer;
use dod_wire::shapes::{ErrorEnvelope, SessionSummary};
use dod_wire::JsonValue;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    write!(
        conn,
        "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("recv");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    request(addr, "POST", path, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    request(addr, "GET", path, "")
}

fn scratch(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dod_durable_e2e_{tag}_{}_{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn serve(data_dir: &PathBuf) -> dod_server::ServerHandle {
    DodServer::builder()
        .workers(2)
        .data_dir(data_dir)
        .bind("127.0.0.1:0")
        .expect("bind")
        .start()
}

/// A low-warmup spec so both the pre-restart and the recovered detector
/// are past warm-up (partitioned) when reports are compared — warm-up
/// reports account their work differently, so equality across a restart
/// is only meaningful on the partitioned side.
const CREATE: &str = r#"{"metric":"l2","dim":2,"r":0.5,"k":3,"window":{"count":24},"shards":2,"warmup":4,"durable":true,"sync":"always","snapshot_ops":16}"#;

/// Deterministic stream: a tight cluster with a planted far point.
fn points_body(offset: usize, n: usize) -> String {
    let mut pts = Vec::new();
    for i in offset..offset + n {
        if i % 13 == 7 {
            pts.push(format!("[{}.0,100.0]", i));
        } else {
            let x = (i % 5) as f64 * 0.1;
            let y = (i % 7) as f64 * 0.1;
            pts.push(format!("[{x:.1},{y:.1}]"));
        }
    }
    format!("{{\"points\":[{}]}}", pts.join(","))
}

#[test]
fn durable_sessions_survive_a_server_restart_byte_for_byte() {
    let data_dir = scratch("restart");

    let handle = serve(&data_dir);
    let addr = handle.addr();
    let (status, body) = post(addr, "/v1/sessions", CREATE);
    assert_eq!(status, 201, "{body}");
    let summary =
        SessionSummary::from_json(&dod_wire::parse_json(&body).expect("json")).expect("summary");
    assert_eq!(summary.id, "s1");
    assert!(summary.durable, "{body}");

    let (status, body) = post(addr, "/v1/sessions/s1/ingest", &points_body(0, 60));
    assert_eq!(status, 200, "{body}");
    let (status, before) = get(addr, "/v1/sessions/s1/report");
    assert_eq!(status, 200, "{before}");
    assert!(before.contains("\"outliers\":["), "{before}");

    // The session's directory holds log, snapshot and manifest.
    let dir = data_dir.join("sessions").join("s1");
    assert!(dir.join("wal.log").is_file());
    assert!(dir.join("manifest.json").is_file());

    // WAL counters are scraped per session.
    let (_, metrics) = get(addr, "/metrics");
    assert!(
        metrics.contains("dod_session_durable{session=\"s1\"} 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("dod_wal_appended_records_total{session=\"s1\"}"),
        "{metrics}"
    );
    assert!(
        metrics.contains("dod_wal_io_errors_total{session=\"s1\"} 0"),
        "{metrics}"
    );

    handle.shutdown();

    // A new server over the same data directory recovers the session —
    // same id, same window, byte-identical report.
    let handle = serve(&data_dir);
    let addr = handle.addr();
    let (status, body) = get(addr, "/v1/sessions/s1");
    assert_eq!(status, 200, "{body}");
    let summary =
        SessionSummary::from_json(&dod_wire::parse_json(&body).expect("json")).expect("summary");
    assert!(summary.durable);
    assert_eq!(
        (summary.metric.as_str(), summary.dim, summary.shards),
        ("l2", 2, 2)
    );
    let (status, after) = get(addr, "/v1/sessions/s1/report");
    assert_eq!(status, 200, "{after}");
    assert_eq!(after, before, "recovered report must match pre-restart");

    // The recovered session keeps streaming, and fresh ids never collide
    // with recovered ones.
    let (status, body) = post(addr, "/v1/sessions/s1/ingest", &points_body(60, 20));
    assert_eq!(status, 200, "{body}");
    let (status, body) = post(
        addr,
        "/v1/sessions",
        r#"{"metric":"l2","dim":1,"r":1,"k":2,"window":{"count":8},"warmup":2}"#,
    );
    assert_eq!(status, 201, "{body}");
    let fresh =
        SessionSummary::from_json(&dod_wire::parse_json(&body).expect("json")).expect("summary");
    assert_ne!(fresh.id, "s1", "{body}");
    assert!(!fresh.durable);

    // DELETE reclaims the durable session's files.
    let (status, body) = request(addr, "DELETE", "/v1/sessions/s1", "");
    assert_eq!(status, 200, "{body}");
    assert!(!dir.join("wal.log").exists());
    assert!(!dir.join("manifest.json").exists());
    let (status, _) = get(addr, "/v1/sessions/s1");
    assert_eq!(status, 404);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&data_dir);
}

#[test]
fn recovered_reports_match_an_uninterrupted_session() {
    // Twin streams: one server restarted mid-stream, one never
    // restarted. Their final reports must agree — recovery is invisible.
    let data_a = scratch("twin_a");
    let data_b = scratch("twin_b");

    let handle_b = serve(&data_b);
    let (status, _) = post(handle_b.addr(), "/v1/sessions", CREATE);
    assert_eq!(status, 201);

    let handle_a = serve(&data_a);
    let (status, _) = post(handle_a.addr(), "/v1/sessions", CREATE);
    assert_eq!(status, 201);
    // Interrupted side: half the stream, restart, the other half.
    let (status, _) = post(
        handle_a.addr(),
        "/v1/sessions/s1/ingest",
        &points_body(0, 37),
    );
    assert_eq!(status, 200);
    handle_a.shutdown();
    let handle_a = serve(&data_a);
    let (status, _) = post(
        handle_a.addr(),
        "/v1/sessions/s1/ingest",
        &points_body(37, 43),
    );
    assert_eq!(status, 200);

    // Uninterrupted side: the whole stream in one life.
    let (status, _) = post(
        handle_b.addr(),
        "/v1/sessions/s1/ingest",
        &points_body(0, 80),
    );
    assert_eq!(status, 200);

    let (_, report_a) = get(handle_a.addr(), "/v1/sessions/s1/report");
    let (_, report_b) = get(handle_b.addr(), "/v1/sessions/s1/report");
    assert_eq!(report_a, report_b);

    handle_a.shutdown();
    handle_b.shutdown();
    let _ = std::fs::remove_dir_all(&data_a);
    let _ = std::fs::remove_dir_all(&data_b);
}

#[test]
fn durable_creation_without_a_data_dir_is_503() {
    let handle = DodServer::builder()
        .workers(1)
        .bind("127.0.0.1:0")
        .expect("bind")
        .start();
    let (status, body) = post(handle.addr(), "/v1/sessions", CREATE);
    assert_eq!(status, 503, "{body}");
    let env = ErrorEnvelope::from_json(&dod_wire::parse_json(&body).expect("json")).expect("env");
    assert_eq!(env.kind, "unavailable");
    assert!(env.message.contains("data directory"), "{body}");
    handle.shutdown();
}

#[test]
fn volatile_sessions_do_not_survive_restarts() {
    let data_dir = scratch("volatile");
    let handle = serve(&data_dir);
    let (status, body) = post(
        handle.addr(),
        "/v1/sessions",
        r#"{"metric":"l2","dim":1,"r":1,"k":2,"window":{"count":8},"warmup":2}"#,
    );
    assert_eq!(status, 201, "{body}");
    handle.shutdown();
    let handle = serve(&data_dir);
    let (status, _) = get(handle.addr(), "/v1/sessions/s1");
    assert_eq!(status, 404, "volatile sessions leave nothing to recover");
    // And nothing was written for them.
    assert!(!data_dir.join("sessions").join("s1").exists());
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&data_dir);
}

#[test]
fn mistyped_durability_fields_are_named_400s() {
    let data_dir = scratch("badfields");
    let handle = serve(&data_dir);
    let addr = handle.addr();
    for (body, needle) in [
        (
            r#"{"metric":"l2","dim":1,"r":1,"k":2,"window":{"count":8},"durable":"yes"}"#,
            "durable",
        ),
        (
            r#"{"metric":"l2","dim":1,"r":1,"k":2,"window":{"count":8},"durable":true,"sync":"lazy"}"#,
            "sync",
        ),
        (
            r#"{"metric":"l2","dim":1,"r":1,"k":2,"window":{"count":8},"durable":true,"sync":0}"#,
            "sync",
        ),
    ] {
        let (status, resp) = post(addr, "/v1/sessions", body);
        assert_eq!(status, 400, "{body}: {resp}");
        let env =
            ErrorEnvelope::from_json(&dod_wire::parse_json(&resp).expect("json")).expect("env");
        assert!(env.message.contains(needle), "{body}: {resp}");
    }
    // Nothing half-made stays on disk after rejected creations.
    let leftovers = std::fs::read_dir(data_dir.join("sessions"))
        .map(|d| d.count())
        .unwrap_or(0);
    assert_eq!(leftovers, 0);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&data_dir);
}

#[test]
fn acked_ingests_report_their_durability() {
    let data_dir = scratch("ack");
    let handle = serve(&data_dir);
    let addr = handle.addr();
    let (status, _) = post(addr, "/v1/sessions", CREATE);
    assert_eq!(status, 201);
    // A durable session's 200 carries the barrier's verdict: these
    // points are WAL-committed by the time the ack is on the wire.
    let (status, body) = post(addr, "/v1/sessions/s1/ingest", &points_body(0, 12));
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, r#"{"accepted":12,"durable":true}"#);
    // And the session reports healthy durability.
    let (_, body) = get(addr, "/v1/sessions/s1");
    assert!(body.contains(r#""durability":"ok""#), "{body}");

    // Volatile sessions make no such promise, so their ack carries no
    // durability verdict at all.
    let (status, _) = post(
        addr,
        "/v1/sessions",
        r#"{"metric":"l2","dim":2,"r":1,"k":2,"window":{"count":8},"warmup":2}"#,
    );
    assert_eq!(status, 201);
    let (status, body) = post(addr, "/v1/sessions/s2/ingest", &points_body(0, 5));
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, r#"{"accepted":5}"#);
    let (_, body) = get(addr, "/v1/sessions/s2");
    assert!(!body.contains("durability"), "{body}");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&data_dir);
}

#[test]
fn wal_failures_degrade_acks_listing_and_metrics() {
    let data_dir = scratch("degraded");
    let handle = serve(&data_dir);
    let addr = handle.addr();
    // snapshot_ops=1: the first committed batch triggers a snapshot.
    let create = CREATE.replace(r#""snapshot_ops":16"#, r#""snapshot_ops":1"#);
    let (status, body) = post(addr, "/v1/sessions", &create);
    assert_eq!(status, 201, "{body}");
    let (_, body) = get(addr, "/v1/sessions/s1");
    assert!(body.contains(r#""durability":"ok""#), "{body}");

    // Sabotage the WAL's snapshot path: `snapshot.tmp` is now a
    // directory, so the snapshot install fails and the WAL latches into
    // fail-open. (Works as root, where permission bits would not.)
    std::fs::create_dir(data_dir.join("sessions").join("s1").join("snapshot.tmp"))
        .expect("plant tmp dir");

    // The ingest still answers 200 — fail-open keeps the stream alive —
    // but the ack must say the batch is *not* durable.
    let (status, body) = post(addr, "/v1/sessions/s1/ingest", &points_body(0, 12));
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, r#"{"accepted":12,"durable":false}"#);

    // The degradation is visible on the resource and on /metrics.
    let (_, body) = get(addr, "/v1/sessions/s1");
    assert!(body.contains(r#""durability":"degraded""#), "{body}");
    let (_, metrics) = get(addr, "/metrics");
    assert!(
        !metrics.contains("dod_wal_io_errors_total{session=\"s1\"} 0"),
        "{metrics}"
    );

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&data_dir);
}

#[test]
fn aborted_creations_are_swept_at_bind() {
    let data_dir = scratch("sweep");
    // A session directory with WAL files but no manifest is an aborted
    // creation: no 201 ever went out for it (the manifest write is what
    // completes creation), so recovery reclaims it instead of stranding
    // the files forever.
    let orphan = data_dir.join("sessions").join("s3");
    std::fs::create_dir_all(&orphan).expect("orphan dir");
    std::fs::write(orphan.join("wal.log"), b"half-made").expect("orphan log");
    // A non-session name in the same tree is not ours to touch.
    let foreign = data_dir.join("sessions").join("not a session!");
    std::fs::create_dir_all(&foreign).expect("foreign dir");

    let handle = serve(&data_dir);
    assert!(!orphan.exists(), "aborted creation reclaimed at bind");
    assert!(foreign.exists(), "foreign directory left alone");
    let (status, _) = get(handle.addr(), "/v1/sessions/s3");
    assert_eq!(status, 404);
    let (_, metrics) = get(handle.addr(), "/metrics");
    assert!(
        metrics.contains("dod_session_cleanup_errors_total 0"),
        "{metrics}"
    );
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&data_dir);
}

#[test]
fn failed_session_cleanup_is_counted() {
    let data_dir = scratch("cleanup_err");
    let handle = serve(&data_dir);
    let addr = handle.addr();
    let (status, _) = post(addr, "/v1/sessions", CREATE);
    assert_eq!(status, 201);
    // Make the directory unreclaimable: `manifest.tmp` as a directory
    // cannot be `remove_file`d.
    std::fs::create_dir(data_dir.join("sessions").join("s1").join("manifest.tmp"))
        .expect("plant tmp dir");
    // DELETE still succeeds — the session is gone from the registry —
    // but the leftover files are an alarm, not a silence.
    let (status, body) = request(addr, "DELETE", "/v1/sessions/s1", "");
    assert_eq!(status, 200, "{body}");
    let (_, metrics) = get(addr, "/metrics");
    assert!(
        metrics.contains("dod_session_cleanup_errors_total 1"),
        "{metrics}"
    );
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&data_dir);
}

#[test]
fn listing_marks_durable_and_volatile_sessions() {
    let data_dir = scratch("listing");
    let handle = serve(&data_dir);
    let addr = handle.addr();
    let (status, _) = post(addr, "/v1/sessions", CREATE);
    assert_eq!(status, 201);
    let (status, _) = post(
        addr,
        "/v1/sessions",
        r#"{"metric":"l2","dim":1,"r":1,"k":2,"window":{"count":8},"warmup":2}"#,
    );
    assert_eq!(status, 201);
    let (_, listing) = get(addr, "/v1/sessions");
    let doc = dod_wire::parse_json(&listing).expect("json");
    let sessions: Vec<SessionSummary> = doc
        .get("sessions")
        .and_then(JsonValue::as_arr)
        .expect("sessions")
        .iter()
        .map(|s| SessionSummary::from_json(s).expect("summary"))
        .collect();
    assert_eq!(sessions.len(), 2, "{listing}");
    assert!(sessions[0].durable, "{listing}");
    assert!(!sessions[1].durable, "{listing}");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&data_dir);
}
