//! `GET /v1/debug/health`: the index-health document — discovery-recall
//! estimates, tombstone ratios and degree distributions from the recall
//! auditor, shard-balance skews from the pipeline's health barrier, and
//! the thread-phase profile.
//!
//! The document is deliberately *byte-stable*: two scrapes with no
//! intervening ingest answer identical bytes. Everything rendered here
//! is either configuration, a lifetime counter that only moves on
//! ingest, or a phase tally that only moves while some thread is in a
//! non-idle phase — and serving this route itself sets no phase (see
//! `dispatch`), so the scrape cannot perturb what it reports. That
//! property is what lets an operator (or a test) diff two scrapes and
//! read any change as real work, not measurement noise.
//!
//! Like `/v1/debug/traces`, the query string is strict: `?engine=` and
//! `?session=` restrict the document to one resource, unknown keys are
//! named 400s, and a well-formed id that matches nothing is a 404 — a
//! typo must never quietly answer the unfiltered document.

use crate::http::Request;
use crate::registry::SessionEntry;
use crate::routes::{bad_request, no_engine, no_session, query_params, valid_name, Response};
use crate::State;
use dod_core::profile::{Phase, PHASES};
use dod_shard::HealthReport;
use dod_wire::JsonValue;

/// The validated filter of a `GET /v1/debug/health` request.
#[derive(Debug, PartialEq, Eq)]
struct HealthFilter {
    engine: Option<String>,
    session: Option<String>,
}

/// Parses and strictly validates the health query string, in the same
/// spirit as the traces filter: every parameter checked, mistakes named.
fn parse_health_filter(query: &str) -> Result<HealthFilter, String> {
    let mut filter = HealthFilter {
        engine: None,
        session: None,
    };
    for (k, v) in query_params(query) {
        match k.as_str() {
            "engine" if valid_name(&v) => filter.engine = Some(v),
            "session" if valid_name(&v) => filter.session = Some(v),
            "engine" | "session" => {
                return Err(format!(
                "{k} must be a resource name (1-64 alphanumeric, '_' or '-' characters), got {v:?}"
            ))
            }
            _ => {
                return Err(format!(
                    "unknown query parameter {k:?}; supported: engine, session"
                ))
            }
        }
    }
    Ok(filter)
}

/// One engine's row: static identity plus size — engines have no
/// streaming health, their indexes are immutable once built.
fn engine_health(name: &str, entry: &crate::registry::EngineEntry) -> JsonValue {
    JsonValue::obj([
        ("name", JsonValue::from(name)),
        ("index", JsonValue::from(entry.index.as_str())),
        ("points", JsonValue::from(entry.engine.len() as u64)),
        (
            "index_bytes",
            JsonValue::from(entry.engine.index_bytes() as u64),
        ),
    ])
}

/// The recall-auditor section: the sampled discovery-recall estimate
/// and the raw audit tallies behind it.
fn recall_json(report: &HealthReport) -> JsonValue {
    let stats = report.stats();
    JsonValue::obj([
        ("estimate", JsonValue::from(stats.recall_estimate())),
        ("audits", JsonValue::from(stats.recall_audits)),
        ("hits", JsonValue::from(stats.recall_hits)),
        ("expected", JsonValue::from(stats.recall_expected)),
    ])
}

/// The index-structure section: the absorbed [`IndexHealth`] document
/// across shards (degree histogram bucket bounds are in
/// `dod_stream::DEGREE_BUCKET_BOUNDS`, last slot = overflow).
fn index_json(report: &HealthReport) -> JsonValue {
    let idx = report.index();
    JsonValue::obj([
        ("exact", JsonValue::Bool(idx.exact)),
        ("live", JsonValue::from(idx.live)),
        ("tombstones", JsonValue::from(idx.tombstones)),
        ("tombstone_ratio", JsonValue::from(idx.tombstone_ratio())),
        ("compactions", JsonValue::from(idx.compactions)),
        ("bridge_edges", JsonValue::from(idx.bridge_edges)),
        ("prunes", JsonValue::from(idx.prunes)),
        (
            "degree_hist",
            JsonValue::arr(idx.degree_hist.iter().copied()),
        ),
    ])
}

/// The shard-balance section: occupancy and work skews plus one row per
/// shard. `slide_nanos` is a lifetime counter booked only while sliding,
/// so it is scrape-stable like everything else here.
fn balance_json(report: &HealthReport) -> JsonValue {
    let shards: Vec<JsonValue> = report
        .shards
        .iter()
        .map(|s| {
            JsonValue::obj([
                ("owned", JsonValue::from(s.owned)),
                ("ghosts", JsonValue::from(s.ghosts)),
                ("ghost_rate", JsonValue::from(s.ghost_rate())),
                ("slide_nanos", JsonValue::from(s.slide_nanos())),
            ])
        })
        .collect();
    let (owned, ghosts) = report
        .shards
        .iter()
        .fold((0usize, 0usize), |(o, g), s| (o + s.owned, g + s.ghosts));
    JsonValue::obj([
        ("owned", JsonValue::from(owned)),
        ("ghosts", JsonValue::from(ghosts)),
        ("owned_skew", JsonValue::from(report.owned_skew())),
        ("slide_skew", JsonValue::from(report.slide_skew())),
        ("shards", JsonValue::Arr(shards)),
    ])
}

/// One session's row. A dead pipeline (router thread gone) degrades to
/// `"alive": false` with the health sections absent — the endpoint keeps
/// answering for every other session, same policy as `/metrics`.
fn session_health(id: &str, entry: &SessionEntry) -> JsonValue {
    let mut fields: Vec<(String, JsonValue)> = vec![
        ("id".into(), JsonValue::from(id)),
        ("metric".into(), JsonValue::from(entry.metric)),
        ("shards".into(), JsonValue::from(entry.shards)),
        ("durable".into(), JsonValue::Bool(entry.durable.is_some())),
    ];
    match entry.pipeline.health() {
        Ok(report) => {
            fields.push(("alive".into(), JsonValue::Bool(true)));
            fields.push(("recall".into(), recall_json(&report)));
            fields.push(("index".into(), index_json(&report)));
            fields.push(("balance".into(), balance_json(&report)));
        }
        Err(_) => fields.push(("alive".into(), JsonValue::Bool(false))),
    }
    JsonValue::obj(fields)
}

/// The thread-phase profile: every registered thread's current phase
/// and its *non-idle* sample tallies. Idle samples are deliberately
/// absent — they accumulate with wall-clock time alone, and this
/// document only carries numbers that move when work happens. (They are
/// still exported, with the idle row, as
/// `dod_profile_samples_total{thread,phase}` on `/metrics`, where
/// monotone time-driven counters belong.)
fn profile_json(state: &State) -> JsonValue {
    let threads: Vec<JsonValue> = state
        .profiler
        .profiles()
        .iter()
        .map(|p| {
            let samples: Vec<(&'static str, JsonValue)> = PHASES
                .iter()
                .filter(|ph| **ph != Phase::Idle)
                .map(|ph| (ph.name(), JsonValue::from(p.samples(*ph))))
                .collect();
            JsonValue::obj([
                ("thread", JsonValue::from(p.name())),
                ("phase", JsonValue::from(p.current().name())),
                ("samples", JsonValue::obj(samples)),
            ])
        })
        .collect();
    JsonValue::obj([
        ("hz", JsonValue::from(u64::from(state.profile_hz))),
        ("threads", JsonValue::Arr(threads)),
    ])
}

/// `GET /v1/debug/health[?engine=..][&session=..]`.
pub(crate) fn handle_debug_health(state: &State, req: &Request) -> Response {
    let filter = match parse_health_filter(&req.query) {
        Ok(f) => f,
        Err(msg) => return bad_request(&msg),
    };
    // Snapshot both registries (peek semantics: a health scrape must not
    // keep a cold engine warm), then render with no lock held — recall
    // aggregation and the per-session health barrier are pipeline
    // round-trips that must not block creates and deletes.
    let mut engines = {
        let reg = state.engines.read().expect("engine registry lock");
        reg.sorted()
    };
    let mut sessions = {
        let reg = state.sessions.read().expect("session registry lock");
        reg.sorted()
    };
    if let Some(want) = &filter.engine {
        engines.retain(|(name, _)| name == want);
        if engines.is_empty() {
            return no_engine(want);
        }
    }
    if let Some(want) = &filter.session {
        sessions.retain(|(id, _)| id == want);
        if sessions.is_empty() {
            return no_session(want);
        }
    }
    let engines: Vec<JsonValue> = engines
        .iter()
        .map(|(name, entry)| engine_health(name, entry))
        .collect();
    let sessions: Vec<JsonValue> = sessions
        .iter()
        .map(|(id, entry)| session_health(id, entry))
        .collect();
    Response::json(
        200,
        JsonValue::obj([
            ("engines", JsonValue::Arr(engines)),
            ("sessions", JsonValue::Arr(sessions)),
            ("profile", profile_json(state)),
        ])
        .render(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The health filter is strict, like the traces filter: every
    /// accepted spelling and every rejection is pinned.
    #[test]
    fn health_filters_parse_strictly() {
        assert_eq!(
            parse_health_filter(""),
            Ok(HealthFilter {
                engine: None,
                session: None
            })
        );
        assert_eq!(
            parse_health_filter("engine=prod&session=s1"),
            Ok(HealthFilter {
                engine: Some("prod".to_string()),
                session: Some("s1".to_string())
            })
        );
        // Percent-encoded values decode like every other query string.
        assert_eq!(
            parse_health_filter("session=s%31").unwrap().session,
            Some("s1".to_string())
        );
        // A malformed resource name is a named 400, not a silent
        // no-match 404 (the name could never exist).
        let err = parse_health_filter("session=bad name").unwrap_err();
        assert!(err.starts_with("session must be a resource name"), "{err}");
        let err = parse_health_filter("engine=").unwrap_err();
        assert!(err.starts_with("engine must be a resource name"), "{err}");
        // Unknown keys are named, supported ones listed.
        let err = parse_health_filter("sesion=s1").unwrap_err();
        assert_eq!(
            err,
            "unknown query parameter \"sesion\"; supported: engine, session"
        );
        // The first offending pair wins; valid ones before it are fine.
        assert!(parse_health_filter("engine=prod&oops=1").is_err());
    }
}
