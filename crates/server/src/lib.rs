//! `dod_server` — the std-only HTTP/1.1 front door over the detection
//! stack.
//!
//! Every entry point below this crate is in-process: [`dod_core::Engine`]
//! answers batch queries, [`dod_shard::IngestPipeline`] runs a sharded
//! sliding window. This crate puts both behind one TCP listener so the
//! system can actually *serve* — no framework, no async runtime, no
//! dependencies beyond `std` (matching the workspace's vendored-stubs
//! constraint): a blocking accept loop fans connections out to a fixed
//! [`dod_core::parallel::WorkerPool`], requests are content-length framed
//! HTTP/1.1 with keep-alive, and every response body speaks the shared
//! [`dod_wire`] JSON dialect.
//!
//! # Resources and routes
//!
//! The `/v1` API is resource-oriented: a registry of **named engines**
//! (batch detectors over generated datasets, LRU-bounded) and a registry
//! of **ingest sessions** (sharded sliding windows, capacity-bounded),
//! each with its own lifecycle routes. The original singleton routes
//! remain as aliases for the resources named [`DEFAULT_RESOURCE`].
//!
//! | Route | Body | Answer |
//! |---|---|---|
//! | `PUT /v1/engines/{name}` | `{"family", "n", "seed"?, "index"?, "load"?}` | `201`/`200` with the engine summary (+ LRU `"evicted"` names) |
//! | `GET /v1/engines` | — | `{"engines": [{name, index, points, index_bytes}, …], "capacity"}` |
//! | `GET /v1/engines/{name}` | — | one engine summary |
//! | `DELETE /v1/engines/{name}` | — | `{"deleted": name}` |
//! | `POST /v1/engines/{name}/query` | `{"queries": [{"r": 2.0, "k": 5}, …]}` | `{"results": [{"outliers": […], …}, …]}` via [`Engine::query_many`](dod_core::Engine::query_many) |
//! | `POST /v1/sessions` | `{"metric", "dim", "r", "k", "window", "shards"?, …}` | `201` with the session summary (server-assigned id) |
//! | `GET /v1/sessions` | — | `{"sessions": [{id, metric, dim, shards, ingested}, …], "capacity"}` |
//! | `GET /v1/sessions/{id}` | — | one session summary |
//! | `DELETE /v1/sessions/{id}` | — | `{"deleted": id}` — joins the session's pipeline |
//! | `POST /v1/sessions/{id}/ingest` | `{"points": [[…], …]}` | `{"accepted": n}` — enqueued into the [`IngestPipeline`](dod_shard::IngestPipeline); durable sessions add `"durable": bool` and answer only after a WAL commit barrier |
//! | `GET /v1/sessions/{id}/report` | — | `{"outliers": [seq, …]}`, snapshot-consistent with every prior ingest |
//! | `POST /v1/query` | as engine query | alias for `/v1/engines/default/query` |
//! | `POST /v1/ingest` | as session ingest | alias for `/v1/sessions/default/ingest` |
//! | `GET /v1/report` | — | alias for `/v1/sessions/default/report` |
//! | `GET /healthz` | — | `{"status": "ok", …}` |
//! | `GET /metrics` | — | Prometheus text: per-route×status HTTP counters + latency histograms, worker-pool and pipeline gauges, per-engine query telemetry, per-session stream counters, ghost rates and WAL counters |
//! | `GET /v1/debug/traces` | — | the most recent request traces (`?min_ms=`, `?route=` filters) from an in-memory ring |
//! | `GET /v1/debug/health` | — | the index-health document: per-session discovery-recall estimates, tombstone ratios, shard-balance skews, and the thread-phase profile (`?engine=`, `?session=` filters) |
//! | `GET /v1/debug/slow` | — | the N slowest query requests since startup with their cost plans (`?min_ms=`, `?engine=` filters); join on `request_id` against `/v1/debug/traces` |
//!
//! # Observability
//!
//! Every request is traced end to end with
//! [`dod_core::trace`]: the worker-pool queue wait, socket
//! read, route dispatch, and — inside the engine and session handlers —
//! the paper's filter/verify phase split and per-slide ingest work, each
//! as a named span with typed fields. The request id is taken from an
//! inbound `X-Request-Id` header (sanitized) or generated, and echoed on
//! every response. Completed traces fan out to every configured sink:
//!
//! * a bounded in-memory ring served by `GET /v1/debug/traces`
//!   ([`ServerBuilder::trace_capacity`]),
//! * an optional JSON-lines access log ([`ServerBuilder::access_log`],
//!   off by default) — one `dod_wire` object per line,
//! * any custom [`TraceSink`] added with
//!   [`ServerBuilder::trace_sink`].
//!
//! Requests rejected before routing (timeouts, oversized bodies, parse
//! failures) are traced and counted too, under the synthetic route label
//! `<parse>`, so `/metrics` totals add up to connections served.
//!
//! Responses are **deterministic**: query and report bodies carry no
//! timings (latency lives in `/metrics`), so the HTTP answer for a given
//! dataset and query is byte-identical to encoding the in-process answer
//! with [`routes::encode`] — which is exactly what the integration tests
//! assert. Malformed input — bad JSON, an oversized body, a point of the
//! wrong dimension or family — answers 4xx with a
//! [`DodError`]-derived `{"error": {"kind", "message"}}`
//! body; route handlers cannot panic, and a worker that somehow does is
//! caught by the pool.
//!
//! # Quickstart
//!
//! ```
//! use dod_core::IndexSpec;
//! use dod_datasets::Family;
//! use dod_server::DodServer;
//! use std::io::{Read, Write};
//!
//! let engine = Family::Sift
//!     .generate(300, 7)
//!     .data
//!     .into_engine()
//!     .index(IndexSpec::VpTree)
//!     .build()?;
//! let handle = DodServer::builder()
//!     .engine(engine)
//!     .workers(2)
//!     .bind("127.0.0.1:0")? // ephemeral port
//!     .start();
//!
//! let mut conn = std::net::TcpStream::connect(handle.addr())?;
//! let body = r#"{"queries": [{"r": 100.0, "k": 40}]}"#;
//! write!(
//!     conn,
//!     "POST /v1/query HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
//!     body.len()
//! )?;
//! let mut reply = String::new();
//! conn.read_to_string(&mut reply)?;
//! assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
//! assert!(reply.contains("\"results\""), "{reply}");
//! handle.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod durable;
mod health;
mod http;
mod prom;
mod registry;
pub mod routes;
mod sink;
mod slow;
mod streams;

pub use routes::{dod_error_kind, dod_error_status, encode, error_body, http_error_kind};
pub use streams::AnyStreamDetector;

use dod_core::parallel::{PoolStats, WorkerPool};
use dod_core::profile::{Profiler, Sampler, ThreadProfile};
use dod_core::telemetry::{Counter, Histogram};
use dod_core::trace::{
    generate_request_id, sanitize_request_id, TraceContext, TraceRing, TraceSink,
};
use dod_core::{DodError, EngineMetrics, OutlierReport, Query};
use dod_metrics::Dataset;
use dod_shard::PipelineProfile;
use registry::{EngineRegistry, SessionEntry, SessionRegistry};
use routes::Route;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// The engine name and session id the legacy singleton routes
/// (`/v1/query`, `/v1/ingest`, `/v1/report`) alias: resources mounted by
/// [`ServerBuilder::engine`] / [`ServerBuilder::stream`] land here.
pub const DEFAULT_RESOURCE: &str = "default";

/// What a server needs from an engine: the object-safe slice of
/// [`dod_core::Engine`], blanket-implemented for every dataset type, so
/// one server type serves `Engine<VectorSet<L2>>`, the dataset-erased
/// `dod_datasets::AnyEngine`, and anything else alike.
pub trait QueryEngine: Send + Sync {
    /// Answers a batch of queries (see
    /// [`Engine::query_many`](dod_core::Engine::query_many)).
    fn query_many(&self, queries: &[Query]) -> Result<Vec<OutlierReport>, DodError>;
    /// Number of objects served.
    fn len(&self) -> usize;
    /// `true` when the engine serves no objects.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Display name of the backing index.
    fn index_name(&self) -> &'static str;
    /// Index footprint in bytes — the `GET /v1/engines` memory estimate.
    fn index_bytes(&self) -> usize;
    /// Live query telemetry.
    fn metrics(&self) -> &EngineMetrics;
}

impl<D: Dataset + Send> QueryEngine for dod_core::Engine<D> {
    fn query_many(&self, queries: &[Query]) -> Result<Vec<OutlierReport>, DodError> {
        dod_core::Engine::query_many(self, queries)
    }
    fn len(&self) -> usize {
        dod_core::Engine::len(self)
    }
    fn index_name(&self) -> &'static str {
        dod_core::Engine::index_name(self)
    }
    fn index_bytes(&self) -> usize {
        dod_core::Engine::index_bytes(self)
    }
    fn metrics(&self) -> &EngineMetrics {
        dod_core::Engine::metrics(self)
    }
}

/// Everything the route handlers see: the resource registries plus the
/// serving counters. Shared across workers; the registries are the only
/// mutable parts, each behind its own `RwLock` so the hot serving paths
/// (query, ingest, report) take a read lock just long enough to clone an
/// `Arc`.
pub(crate) struct State {
    pub(crate) engines: RwLock<EngineRegistry>,
    pub(crate) sessions: RwLock<SessionRegistry>,
    pub(crate) http: HttpMetrics,
    pub(crate) ingested_points: Counter,
    pub(crate) max_query_threads: usize,
    /// Queue depth new wire-opened sessions inherit for their pipelines.
    pub(crate) pipeline_queue: usize,
    /// Root of durable-session storage (`{data_dir}/sessions/{id}`);
    /// `None` means durable session creation answers 503.
    pub(crate) data_dir: Option<PathBuf>,
    /// The last-N completed request traces, served by
    /// `GET /v1/debug/traces` (also registered in `sinks`).
    pub(crate) trace_ring: Arc<TraceRing>,
    /// The N slowest engine-query requests with their cost plans, served
    /// by `GET /v1/debug/slow`.
    pub(crate) slow_ring: slow::SlowRing,
    /// Every sink a completed trace fans out to: the ring, the optional
    /// access log, and any builder-supplied extras.
    pub(crate) sinks: Vec<Arc<dyn TraceSink>>,
    /// Saturation gauges of the connection worker pool.
    pub(crate) pool_stats: Arc<PoolStats>,
    /// Failed removals of durable-session directories (DELETE or the
    /// bind-time sweep of aborted creations). Non-zero means on-disk
    /// state the operator believes deleted may still exist.
    pub(crate) cleanup_errors: Counter,
    /// The thread-phase registry: every pipeline thread
    /// (`{session}/router`, `{session}/pump-{i}`) and HTTP worker
    /// (`http-{i}`) publishes its current phase here; a sampler thread
    /// scrapes it into `dod_profile_samples_total`.
    pub(crate) profiler: Arc<Profiler>,
    /// The sampler's configured rate, echoed by `/v1/debug/health`.
    pub(crate) profile_hz: u32,
    /// Next `http-{i}` name to hand a worker thread (workers register
    /// their profile lazily, on their first request).
    http_threads: AtomicUsize,
    shutting_down: AtomicBool,
}

impl State {
    /// The session-pipeline profile for `id` — every thread the pipeline
    /// spawns registers under `{id}/…` in the shared profiler.
    pub(crate) fn pipeline_profile(&self, id: &str) -> PipelineProfile {
        PipelineProfile {
            profiler: Arc::clone(&self.profiler),
            prefix: id.to_string(),
        }
    }
}

/// The exact response statuses this server emits, each its own
/// `/metrics` label; anything else (future statuses) lands in the
/// shared `"other"` slot, so cardinality stays `routes × 14` by
/// construction.
pub(crate) const TRACKED_STATUSES: [u16; 13] = [
    200, 201, 400, 404, 405, 408, 413, 429, 431, 500, 501, 503, 505,
];

/// HTTP-layer telemetry: connections, requests by route × status, and
/// request latency by route — plus the worker-pool queue wait, which
/// has no route (it is paid before the request is even read).
pub(crate) struct HttpMetrics {
    pub(crate) connections: Counter,
    requests: Vec<[Counter; TRACKED_STATUSES.len() + 1]>, // indexed by Route as usize
    latency: Vec<Histogram>,                              // indexed by Route as usize
    pub(crate) queue_wait: Histogram,
}

impl HttpMetrics {
    fn new() -> Self {
        HttpMetrics {
            connections: Counter::new(),
            requests: Route::ALL
                .iter()
                .map(|_| std::array::from_fn(|_| Counter::new()))
                .collect(),
            latency: Route::ALL.iter().map(|_| Histogram::new()).collect(),
            queue_wait: Histogram::new(),
        }
    }

    fn status_slot(status: u16) -> usize {
        TRACKED_STATUSES
            .iter()
            .position(|&s| s == status)
            .unwrap_or(TRACKED_STATUSES.len())
    }

    fn record(&self, route: Route, status: u16, duration_secs: f64) {
        self.requests[route as usize][Self::status_slot(status)].inc();
        self.latency[route as usize].observe_secs(duration_secs);
    }

    /// `(status label, count)` per tracked status of the route; the
    /// final slot is labeled `other`.
    pub(crate) fn by_status(&self, route: Route) -> impl Iterator<Item = (String, u64)> + '_ {
        self.requests[route as usize]
            .iter()
            .enumerate()
            .map(|(i, counter)| {
                let label = TRACKED_STATUSES
                    .get(i)
                    .map_or_else(|| "other".to_string(), u16::to_string);
                (label, counter.get())
            })
    }

    pub(crate) fn latency(&self, route: Route) -> &Histogram {
        &self.latency[route as usize]
    }
}

/// Configures a [`DodServer`]. Created by [`DodServer::builder`].
pub struct ServerBuilder {
    engine: Option<Arc<dyn QueryEngine>>,
    stream: Option<AnyStreamDetector>,
    workers: usize,
    queue: usize,
    max_body_bytes: usize,
    read_timeout: Duration,
    write_timeout: Duration,
    request_timeout: Duration,
    keep_alive_requests: usize,
    max_query_threads: usize,
    max_engines: usize,
    max_sessions: usize,
    data_dir: Option<PathBuf>,
    access_log: Option<Box<dyn std::io::Write + Send>>,
    trace_capacity: usize,
    slow_query_capacity: usize,
    extra_sinks: Vec<Arc<dyn TraceSink>>,
    profile_hz: u32,
}

impl Default for ServerBuilder {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(4, |n| n.get());
        ServerBuilder {
            engine: None,
            stream: None,
            workers: cores,
            queue: 1024,
            max_body_bytes: 8 * 1024 * 1024,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            request_timeout: Duration::from_secs(30),
            keep_alive_requests: 1000,
            max_query_threads: cores,
            max_engines: 8,
            max_sessions: 16,
            data_dir: None,
            access_log: None,
            trace_capacity: 256,
            slow_query_capacity: 32,
            extra_sinks: Vec::new(),
            // A prime default: samples decorrelate from any periodic
            // pipeline work, and the overhead (one atomic load per thread
            // per tick) is negligible.
            profile_hz: 97,
        }
    }
}

impl ServerBuilder {
    /// Mounts a batch engine as the [`DEFAULT_RESOURCE`] engine — served
    /// at `/v1/engines/default` and aliased by the legacy `POST
    /// /v1/query` (any dataset type; the engine is moved behind an
    /// `Arc`).
    pub fn engine<E: QueryEngine + 'static>(mut self, engine: E) -> Self {
        self.engine = Some(Arc::new(engine));
        self
    }

    /// Mounts an already-shared engine (e.g. one also queried
    /// in-process) as the [`DEFAULT_RESOURCE`] engine.
    pub fn shared_engine(mut self, engine: Arc<dyn QueryEngine>) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Mounts a sharded sliding-window session as the
    /// [`DEFAULT_RESOURCE`] session — served at `/v1/sessions/default`
    /// and aliased by the legacy `POST /v1/ingest` / `GET /v1/report`.
    /// The detector (possibly already holding window state) is moved
    /// onto its pipeline threads when the server binds.
    pub fn stream(mut self, stream: impl Into<AnyStreamDetector>) -> Self {
        self.stream = Some(stream.into());
        self
    }

    /// Resident-engine capacity (default 8, clamped to ≥ 1). Creating an
    /// engine past the bound evicts the least recently *used* one — an
    /// engine is a pure function of its spec, so eviction costs a
    /// rebuild, never data.
    pub fn max_engines(mut self, n: usize) -> Self {
        self.max_engines = n.max(1);
        self
    }

    /// Concurrent ingest-session capacity (default 16, clamped to ≥ 1).
    /// Sessions are *refused* past the bound, never evicted: a session's
    /// sliding window is stream state the client cannot re-send.
    pub fn max_sessions(mut self, n: usize) -> Self {
        self.max_sessions = n.max(1);
        self
    }

    /// Enables **durable sessions**: a `POST /v1/sessions` body carrying
    /// `"durable": true` gets a write-ahead log, periodic window
    /// snapshots and a spec manifest under `{dir}/sessions/{id}`, and
    /// [`bind`](Self::bind) recovers every session found there — same
    /// id, same window, same clock — before the server accepts a single
    /// connection. Without a data directory, durable creation answers
    /// `503`. Recovery failures (structural corruption, capacity
    /// exhaustion — *not* torn log tails, which are truncated as normal
    /// crash artifacts) fail the bind rather than silently dropping
    /// state.
    pub fn data_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.data_dir = Some(dir.into());
        self
    }

    /// Worker threads handling connections (default: the machine's
    /// parallelism).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Pending-connection queue depth before the accept loop blocks
    /// (backpressure; default 1024). Also the ingest pipeline's queue.
    pub fn queue(mut self, queue: usize) -> Self {
        self.queue = queue.max(1);
        self
    }

    /// Maximum request-body bytes (default 8 MiB); larger bodies answer
    /// `413` before a single body byte is buffered.
    pub fn max_body_bytes(mut self, bytes: usize) -> Self {
        self.max_body_bytes = bytes;
        self
    }

    /// Socket read timeout — bounds how long a slow or idle client can
    /// hold a worker between bytes (default 10s; zero disables the
    /// per-read cap, leaving only the
    /// [`request_timeout`](Self::request_timeout) deadline).
    pub fn read_timeout(mut self, t: Duration) -> Self {
        self.read_timeout = t;
        self
    }

    /// Socket write timeout for responses (default 10s; zero disables
    /// the per-send cap, leaving only the
    /// [`request_timeout`](Self::request_timeout) deadline).
    pub fn write_timeout(mut self, t: Duration) -> Self {
        self.write_timeout = t;
        self
    }

    /// Whole-exchange deadline: the total time a client gets to deliver
    /// one complete request (head and body), and separately to accept
    /// its response (default 30s; clamped to ≥ 1ms — the deadline is
    /// always enforced, zero does not disable it). The per-read
    /// [`read_timeout`](Self::read_timeout) and per-send
    /// [`write_timeout`](Self::write_timeout) alone would let a client
    /// dribble or drain one byte per interval and hold a worker
    /// indefinitely — this bounds each sum.
    pub fn request_timeout(mut self, t: Duration) -> Self {
        self.request_timeout = t.max(Duration::from_millis(1));
        self
    }

    /// Upper bound on the per-query `"threads"` a `/v1/query` body may
    /// request (default: the machine's parallelism; clamped to ≥ 1).
    /// Wire values above the cap are clamped, not rejected, so the cap
    /// bounds resource use without breaking portable clients.
    pub fn max_query_threads(mut self, n: usize) -> Self {
        self.max_query_threads = n.max(1);
        self
    }

    /// Requests served per connection before it is closed (default 1000).
    pub fn keep_alive_requests(mut self, n: usize) -> Self {
        self.keep_alive_requests = n.max(1);
        self
    }

    /// Writes a JSON-lines access log: one object per completed request
    /// (request id, route, status, duration, and every span) in the
    /// `dod_wire` dialect, flushed per line. Off by default — request
    /// traces still reach the in-memory ring without it.
    pub fn access_log(mut self, writer: impl std::io::Write + Send + 'static) -> Self {
        self.access_log = Some(Box::new(writer));
        self
    }

    /// Completed traces retained for `GET /v1/debug/traces` (default
    /// 256, clamped to ≥ 1). Memory is bounded by this times the spans
    /// per request, which the handlers keep small and fixed.
    pub fn trace_capacity(mut self, n: usize) -> Self {
        self.trace_capacity = n.max(1);
        self
    }

    /// Slowest engine-query requests retained for `GET /v1/debug/slow`
    /// (default 32, clamped to ≥ 1). Unlike the trace ring's last-N
    /// window, this keeps the N *slowest* since startup, so a
    /// pathological query survives until something slower displaces it.
    pub fn slow_query_capacity(mut self, n: usize) -> Self {
        self.slow_query_capacity = n.max(1);
        self
    }

    /// Adds a custom sink; every completed trace is delivered to it on
    /// the worker that served the request, after the response is
    /// written. Sinks must be cheap or hand off internally.
    pub fn trace_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.extra_sinks.push(sink);
        self
    }

    /// Thread-phase sampling rate in Hz (default 97). Every pipeline and
    /// HTTP worker thread publishes its current phase; a dedicated
    /// sampler thread scrapes them this many times per second into
    /// `dod_profile_samples_total{thread,phase}`. Validated at
    /// [`bind`](Self::bind): values outside
    /// `1..=`[`dod_core::profile::MAX_PROFILE_HZ`] fail the bind with a
    /// typed [`DodError::InvalidSpec`] — never silently clamped.
    pub fn profile_hz(mut self, hz: u32) -> Self {
        self.profile_hz = hz;
        self
    }

    /// Binds the listener (use port `0` for an ephemeral port) and stands
    /// the stream session up on its pipeline threads. The server is not
    /// accepting yet — call [`DodServer::start`] or [`DodServer::run`].
    pub fn bind(self, addr: &str) -> Result<DodServer, DodError> {
        // Validate the sampling rate before any thread is spawned: a bad
        // knob must fail the bind, not surface later.
        let profiler = Arc::new(Profiler::new());
        let sampler = Sampler::start(Arc::clone(&profiler), self.profile_hz)?;
        let listener = TcpListener::bind(addr)?;
        let mut engines = EngineRegistry::new(self.max_engines);
        if let Some(engine) = self.engine {
            let index = routes::index_wire_name(engine.index_name()).to_string();
            engines.insert(DEFAULT_RESOURCE, engine, index);
        }
        let mut sessions = SessionRegistry::new(self.max_sessions);
        if let Some(stream) = self.stream {
            let metric = stream.metric_name();
            let shards = stream.shard_count();
            let entry = SessionEntry {
                pipeline: stream.into_pipeline(
                    self.queue,
                    Some(PipelineProfile {
                        profiler: Arc::clone(&profiler),
                        prefix: DEFAULT_RESOURCE.to_string(),
                    }),
                ),
                metric,
                shards,
                ingested: Counter::new(),
                durable: None,
            };
            sessions
                .mount(DEFAULT_RESOURCE, entry)
                .unwrap_or_else(|_| unreachable!("an empty registry has room (capacity ≥ 1)"));
        }
        let cleanup_errors = Counter::new();
        if let Some(data_dir) = &self.data_dir {
            durable::recover_sessions(
                data_dir,
                self.queue,
                &mut sessions,
                &cleanup_errors,
                &profiler,
            )?;
        }
        let trace_ring = Arc::new(TraceRing::new(self.trace_capacity));
        let mut sinks: Vec<Arc<dyn TraceSink>> = Vec::with_capacity(2 + self.extra_sinks.len());
        sinks.push(Arc::clone(&trace_ring) as Arc<dyn TraceSink>);
        if let Some(writer) = self.access_log {
            sinks.push(Arc::new(sink::AccessLog::new(writer)));
        }
        sinks.extend(self.extra_sinks);
        // The pool is created at bind time (not in run()) so its
        // saturation gauges are part of State and visible to /metrics
        // from the first scrape.
        let pool = WorkerPool::new(self.workers, self.queue);
        // Register every worker's profile up front. Registration must not
        // be lazy (first-request): `/v1/debug/health` is byte-stable
        // across idle scrapes, and two scrapes served by *different*
        // workers would otherwise disagree about the thread list.
        for i in 0..self.workers {
            let _ = profiler.register(&format!("http-{i}"));
        }
        let state = Arc::new(State {
            engines: RwLock::new(engines),
            sessions: RwLock::new(sessions),
            http: HttpMetrics::new(),
            ingested_points: Counter::new(),
            max_query_threads: self.max_query_threads,
            pipeline_queue: self.queue,
            data_dir: self.data_dir,
            trace_ring,
            slow_ring: slow::SlowRing::new(self.slow_query_capacity),
            sinks,
            pool_stats: pool.stats(),
            cleanup_errors,
            profiler,
            profile_hz: self.profile_hz,
            http_threads: AtomicUsize::new(0),
            shutting_down: AtomicBool::new(false),
        });
        Ok(DodServer {
            listener,
            state,
            pool,
            sampler,
            read_timeout: self.read_timeout,
            write_timeout: self.write_timeout,
            request_timeout: self.request_timeout,
            max_body_bytes: self.max_body_bytes,
            keep_alive_requests: self.keep_alive_requests,
        })
    }
}

/// A bound (but not yet accepting) server. See the [crate docs](self)
/// for the protocol and a quickstart.
pub struct DodServer {
    listener: TcpListener,
    state: Arc<State>,
    pool: WorkerPool,
    sampler: Sampler,
    read_timeout: Duration,
    write_timeout: Duration,
    request_timeout: Duration,
    max_body_bytes: usize,
    keep_alive_requests: usize,
}

impl DodServer {
    /// Starts configuring a server.
    pub fn builder() -> ServerBuilder {
        ServerBuilder::default()
    }

    /// The bound address (read the ephemeral port here after binding
    /// `127.0.0.1:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("a bound listener has an address")
    }

    /// Serves until [`ServerHandle::shutdown`] — blocking the calling
    /// thread. Most callers want [`start`](Self::start) instead.
    pub fn run(self) {
        let pool = self.pool;
        // The sampler lives exactly as long as the accept loop: dropping
        // it at the end of run() stops and joins its thread.
        let _sampler = self.sampler;
        let conn_cfg = ConnConfig {
            read_timeout: self.read_timeout,
            write_timeout: self.write_timeout,
            request_timeout: self.request_timeout,
            max_body_bytes: self.max_body_bytes,
            keep_alive_requests: self.keep_alive_requests,
        };
        for conn in self.listener.incoming() {
            if self.state.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let state = Arc::clone(&self.state);
            let submitted = Instant::now();
            let accepted =
                pool.execute(move || handle_connection(stream, &state, conn_cfg, submitted));
            if !accepted {
                break;
            }
        }
        // WorkerPool::drop drains the queue and joins every worker: all
        // accepted connections finish before run() returns.
    }

    /// Spawns the accept loop on a background thread and returns the
    /// handle that owns graceful shutdown.
    pub fn start(self) -> ServerHandle {
        let addr = self.local_addr();
        let state = Arc::clone(&self.state);
        let thread = std::thread::spawn(move || self.run());
        ServerHandle {
            addr,
            state,
            thread: Some(thread),
        }
    }
}

/// A running server. Dropping the handle shuts the server down
/// gracefully (in-flight requests finish; the listener closes).
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<State>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is accepting on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, finish in-flight requests,
    /// join every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        self.state.shutting_down.store(true, Ordering::SeqCst);
        // The accept loop is blocked in accept(): wake it with one
        // throwaway connection so it observes the flag. A listener bound
        // to the unspecified address (0.0.0.0 / [::]) is not connectable
        // at that address on every platform — aim at loopback instead.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect_timeout(&wake, Duration::from_secs(1));
        let _ = thread.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

#[derive(Clone, Copy)]
struct ConnConfig {
    read_timeout: Duration,
    write_timeout: Duration,
    request_timeout: Duration,
    max_body_bytes: usize,
    keep_alive_requests: usize,
}

/// A whole-exchange deadline over per-op socket timeouts: a socket
/// timeout only bounds the gap between bytes, so a slowloris client
/// dribbling (or a slow reader draining) one byte per interval would
/// hold a worker of the fixed pool forever. Armed once per request or
/// response; every op first shrinks its socket timeout to the time left.
#[derive(Clone, Copy)]
struct Deadline {
    /// Per-op cap between bytes (the configured read/write timeout).
    per_op: Duration,
    /// Absolute deadline for the exchange phase in progress.
    at: std::time::Instant,
}

impl Deadline {
    fn new(per_op: Duration, budget: Duration) -> Self {
        Deadline {
            per_op,
            at: std::time::Instant::now() + budget,
        }
    }

    /// Starts the clock for the next request or response.
    fn arm(&mut self, budget: Duration) {
        self.at = std::time::Instant::now() + budget;
    }

    /// The socket timeout for the next op, or `TimedOut` once spent.
    /// Never zero: a zero socket timeout means "no timeout". A zero
    /// *per-op* cap keeps its historical meaning — no per-op timeout,
    /// the whole-exchange deadline alone bounds the op.
    fn op_budget(&self, what: &str) -> std::io::Result<Duration> {
        let remaining = self.at.saturating_duration_since(std::time::Instant::now());
        if remaining.is_zero() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                format!("{what} deadline exceeded"),
            ));
        }
        let capped = if self.per_op.is_zero() {
            remaining
        } else {
            remaining.min(self.per_op)
        };
        Ok(capped.max(Duration::from_millis(1)))
    }
}

/// The read half of a connection under its request [`Deadline`].
struct DeadlineStream {
    inner: TcpStream,
    deadline: Deadline,
}

impl std::io::Read for DeadlineStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.inner
            .set_read_timeout(Some(self.deadline.op_budget("request")?))?;
        self.inner.read(buf)
    }
}

/// The write half under its response [`Deadline`] — otherwise `write_all`
/// makes partial progress inside every per-send timeout and never errors.
struct DeadlineWriter {
    inner: TcpStream,
    deadline: Deadline,
}

impl std::io::Write for DeadlineWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.inner
            .set_write_timeout(Some(self.deadline.op_budget("response")?))?;
        self.inner.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// This worker thread's phase profile, registered in the server's
/// profiler on first use as `http-{i}`. Cached per thread: a worker
/// belongs to exactly one server's pool for its whole life, so the
/// cache can never serve a stale profiler.
fn http_profile(state: &State) -> Arc<ThreadProfile> {
    thread_local! {
        static PROFILE: std::cell::RefCell<Option<Arc<ThreadProfile>>> =
            const { std::cell::RefCell::new(None) };
    }
    PROFILE.with(|slot| {
        let mut slot = slot.borrow_mut();
        if let Some(p) = slot.as_ref() {
            return Arc::clone(p);
        }
        let idx = state.http_threads.fetch_add(1, Ordering::Relaxed);
        let p = state.profiler.register(&format!("http-{idx}"));
        *slot = Some(Arc::clone(&p));
        p
    })
}

/// Serves one connection: a keep-alive loop of read → dispatch → write,
/// each request traced from the socket in. Never panics on client
/// input; on protocol errors it answers once and closes.
///
/// `submitted` is when the accept loop enqueued the connection: its
/// elapsed time at entry is the worker-pool queue wait, recorded once
/// per connection (as a histogram observation and as the first
/// request's `queue_wait` span).
fn handle_connection(stream: TcpStream, state: &State, cfg: ConnConfig, submitted: Instant) {
    state.http.connections.inc();
    let queue_wait = submitted.elapsed();
    state.http.queue_wait.observe_secs(queue_wait.as_secs_f64());
    let mut first_request = true;
    let _ = stream.set_nodelay(true);
    // Socket timeouts are armed per op by the Deadline wrappers below.
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(DeadlineStream {
        inner: read_half,
        deadline: Deadline::new(cfg.read_timeout, cfg.request_timeout),
    });
    let mut writer = DeadlineWriter {
        inner: stream,
        deadline: Deadline::new(cfg.write_timeout, cfg.request_timeout),
    };
    for served in 0..cfg.keep_alive_requests {
        // Honor shutdown between requests: in-flight requests finish, but
        // an open keep-alive connection must not demand service forever.
        // (A worker idle in read_request observes this within
        // cfg.read_timeout — or cfg.request_timeout when the per-read
        // cap is disabled — at the latest.)
        if state.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        // Each request gets a fresh deadline; within it, every read is
        // still individually bounded by cfg.read_timeout.
        reader.get_mut().deadline.arm(cfg.request_timeout);
        let read_start = Instant::now();
        match http::read_request(&mut reader, cfg.max_body_bytes) {
            Ok(None) => break, // clean close between requests
            Ok(Some(req)) => {
                let keep_alive = req.keep_alive()
                    && served + 1 < cfg.keep_alive_requests
                    && !state.shutting_down.load(Ordering::SeqCst);
                let request_id = req
                    .header("x-request-id")
                    .and_then(sanitize_request_id)
                    .map(str::to_string)
                    .unwrap_or_else(generate_request_id);
                let mut ctx = TraceContext::starting_at(request_id, read_start);
                if std::mem::take(&mut first_request) {
                    ctx.record("queue_wait", queue_wait, Vec::new());
                }
                ctx.record(
                    "read",
                    read_start.elapsed(),
                    vec![("body_bytes", req.body.len().into())],
                );
                let dispatch_span = ctx.child("dispatch");
                let (route, resp) = routes::dispatch(state, &req, &mut ctx, &http_profile(state));
                dispatch_span.finish(&mut ctx);
                // Account and publish the trace *before* the response
                // goes out: once the client has its answer, a scrape of
                // /metrics or /v1/debug/traces must already see this
                // request. (The traced duration therefore excludes the
                // response write.)
                let trace = Arc::new(ctx.finish(route.pattern(), resp.status));
                state
                    .http
                    .record(route, resp.status, trace.duration_nanos as f64 / 1e9);
                for sink in &state.sinks {
                    sink.record(Arc::clone(&trace));
                }
                writer.deadline.arm(cfg.request_timeout);
                let wrote = http::write_response(
                    &mut writer,
                    resp.status,
                    resp.content_type,
                    &resp.body,
                    keep_alive,
                    Some(&trace.request_id),
                );
                if wrote.is_err() || !keep_alive {
                    break;
                }
            }
            Err(e) => {
                // One typed answer (408 on timeouts, 4xx/5xx otherwise),
                // then close: framing is unreliable after a parse error.
                // The request never reached routing, so it is traced and
                // counted under the synthetic `<parse>` route — totals
                // still add up.
                let mut ctx = TraceContext::starting_at(generate_request_id(), read_start);
                if std::mem::take(&mut first_request) {
                    ctx.record("queue_wait", queue_wait, Vec::new());
                }
                ctx.record("read", read_start.elapsed(), Vec::new());
                let trace = Arc::new(ctx.finish(Route::Parse.pattern(), e.status));
                state
                    .http
                    .record(Route::Parse, e.status, trace.duration_nanos as f64 / 1e9);
                for sink in &state.sinks {
                    sink.record(Arc::clone(&trace));
                }
                let body = error_body(http_error_kind(e.status), &e.message);
                writer.deadline.arm(cfg.request_timeout);
                let _ = http::write_response(
                    &mut writer,
                    e.status,
                    "application/json",
                    body.as_bytes(),
                    false,
                    Some(&trace.request_id),
                );
                break;
            }
        }
    }
}
