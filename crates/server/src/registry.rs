//! The session manager's state: named resident engines under an LRU
//! bound, and identified ingest sessions under a hard capacity.
//!
//! Both registries live behind a `RwLock` in [`crate::State`] and keep
//! their *contents* in `Arc`s, so the serving path is: take the read
//! lock, clone the `Arc`, drop the lock, then do the actual work
//! (a batch query, an ingest enqueue) with no lock held at all. Only
//! create and delete take the write lock, and even there the expensive
//! step — building an index, joining a pipeline's threads — happens
//! outside it.
//!
//! The two registries bound memory differently on purpose:
//!
//! * **Engines are evicted.** An engine is a pure function of its spec —
//!   rebuilding an evicted one loses nothing but time — so the registry
//!   keeps the `max_engines` most recently *used* (queried or created)
//!   and silently drops the rest, like any cache.
//! * **Sessions are refused.** A session's sliding window is
//!   irreplaceable state accumulated over its stream; evicting one
//!   destroys data the client cannot re-send. At capacity, opening a new
//!   session fails with `429` until the client deletes one.

use crate::streams::AnyPipeline;
use crate::QueryEngine;
use dod_core::telemetry::Counter;
use dod_shard::WalTelemetry;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A resident engine: the queryable object plus the listing metadata it
/// was created with.
pub(crate) struct EngineEntry {
    /// The engine itself, shared with in-flight query handlers.
    pub engine: Arc<dyn QueryEngine>,
    /// Canonical index spelling for listings (`mrpg:8`, `vptree`, …).
    pub index: String,
    /// LRU tick of the last create or query (relaxed: the LRU order is a
    /// heuristic, not a happens-before edge).
    last_used: AtomicU64,
}

/// Named engines under an LRU bound.
pub(crate) struct EngineRegistry {
    capacity: usize,
    clock: AtomicU64,
    entries: HashMap<String, Arc<EngineEntry>>,
}

impl EngineRegistry {
    pub fn new(capacity: usize) -> Self {
        EngineRegistry {
            capacity: capacity.max(1),
            clock: AtomicU64::new(0),
            entries: HashMap::new(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Looks an engine up *for use*: clones the `Arc` and touches the
    /// LRU clock. Takes `&self`, so the serving path runs under the read
    /// lock.
    pub fn get(&self, name: &str) -> Option<Arc<EngineEntry>> {
        let entry = self.entries.get(name)?;
        entry.last_used.store(self.tick(), Ordering::Relaxed);
        Some(Arc::clone(entry))
    }

    /// Looks an engine up *for inspection* (listings, `GET` info)
    /// without touching the LRU clock — reading about an engine is not
    /// using it.
    pub fn peek(&self, name: &str) -> Option<Arc<EngineEntry>> {
        self.entries.get(name).map(Arc::clone)
    }

    /// Installs (or replaces) an engine, evicting least-recently-used
    /// entries if the insert would exceed capacity. Returns whether the
    /// name was newly created and the evicted names, eviction order.
    pub fn insert(
        &mut self,
        name: &str,
        engine: Arc<dyn QueryEngine>,
        index: String,
    ) -> (bool, Vec<String>) {
        let entry = Arc::new(EngineEntry {
            engine,
            index,
            last_used: AtomicU64::new(self.tick()),
        });
        let created = self.entries.insert(name.to_string(), entry).is_none();
        let mut evicted = Vec::new();
        while self.entries.len() > self.capacity {
            // The new entry holds the freshest tick, so it is never the
            // minimum: an insert at capacity cannot evict itself.
            let coldest = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(n, _)| n.clone())
                .expect("len > capacity ≥ 1 implies entries");
            self.entries.remove(&coldest);
            evicted.push(coldest);
        }
        (created, evicted)
    }

    pub fn remove(&mut self, name: &str) -> Option<Arc<EngineEntry>> {
        self.entries.remove(name)
    }

    /// All entries, name-sorted, for deterministic listings and scrapes.
    pub fn sorted(&self) -> Vec<(String, Arc<EngineEntry>)> {
        let mut all: Vec<_> = self
            .entries
            .iter()
            .map(|(n, e)| (n.clone(), Arc::clone(e)))
            .collect();
        all.sort_by(|(a, _), (b, _)| a.cmp(b));
        all
    }
}

/// A live ingest session: its pipeline plus the wire-side metadata a
/// listing reports.
pub(crate) struct SessionEntry {
    /// The running pipeline. Channel-fed with `&self` methods, so
    /// concurrent handlers share the entry without locking.
    pub pipeline: AnyPipeline,
    /// Wire name of the session's metric (`l1`, `l2`, …).
    pub metric: &'static str,
    /// Shards the window is partitioned across.
    pub shards: usize,
    /// Points this session accepted over HTTP.
    pub ingested: Counter,
    /// Present iff the session is durable: its WAL counters (shared with
    /// the router thread) and the on-disk directory `DELETE` reclaims.
    pub durable: Option<DurableInfo>,
}

/// The server-side face of a durable session's WAL.
pub(crate) struct DurableInfo {
    /// The session's WAL counters, scraped by `/metrics`.
    pub telemetry: Arc<WalTelemetry>,
    /// Directory holding `wal.log`, `snapshot.bin` and `manifest.json`.
    pub dir: PathBuf,
}

impl DurableInfo {
    /// `true` once the session's WAL has failed and latched into
    /// fail-open: every append and snapshot error bumps `io_errors`, and
    /// the first one stops the log for the session's lifetime.
    pub fn degraded(&self) -> bool {
        self.telemetry.io_errors.get() > 0
    }
}

/// Identified ingest sessions under a hard capacity bound.
pub(crate) struct SessionRegistry {
    capacity: usize,
    next_id: u64,
    entries: HashMap<String, Arc<SessionEntry>>,
}

impl SessionRegistry {
    pub fn new(capacity: usize) -> Self {
        SessionRegistry {
            capacity: capacity.max(1),
            next_id: 1,
            entries: HashMap::new(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Reserves the next `s{n}` id without inserting anything — both
    /// create paths need the id *before* the entry exists (a durable
    /// session's directory and every session's profiler threads are
    /// named after it), and must not hold the registry lock through the
    /// disk or thread-spawn work. At capacity the reservation is refused
    /// (the later [`mount`](Self::mount) re-checks anyway, in case
    /// sessions were created in between). Skipped ids are fine: ids are
    /// opaque, only uniqueness matters.
    pub fn reserve(&mut self) -> Option<String> {
        if self.entries.len() >= self.capacity {
            return None;
        }
        let id = format!("s{}", self.next_id);
        self.next_id += 1;
        Some(id)
    }

    /// Mounts a session under a caller-chosen id (the builder's
    /// `"default"` alias target, a reserved durable id, or an id
    /// recovered from disk). Same capacity rule as [`reserve`](Self::reserve).
    /// A recovered `s{n}` id pushes `next_id` past `n`, so fresh opens
    /// can never collide with sessions that survived a restart.
    pub fn mount(
        &mut self,
        id: &str,
        entry: SessionEntry,
    ) -> Result<Arc<SessionEntry>, Box<SessionEntry>> {
        if self.entries.len() >= self.capacity && !self.entries.contains_key(id) {
            return Err(Box::new(entry));
        }
        if let Some(n) = id.strip_prefix('s').and_then(|n| n.parse::<u64>().ok()) {
            self.next_id = self.next_id.max(n + 1);
        }
        let entry = Arc::new(entry);
        self.entries.insert(id.to_string(), Arc::clone(&entry));
        Ok(entry)
    }

    pub fn get(&self, id: &str) -> Option<Arc<SessionEntry>> {
        self.entries.get(id).map(Arc::clone)
    }

    /// Removes a session. The caller drops the returned `Arc` outside
    /// the registry lock — the last drop joins the pipeline's threads.
    pub fn remove(&mut self, id: &str) -> Option<Arc<SessionEntry>> {
        self.entries.remove(id)
    }

    /// All sessions in id order (`s1`, `s2`, …, `s10` — numeric, not
    /// lexicographic), for deterministic listings and scrapes.
    pub fn sorted(&self) -> Vec<(String, Arc<SessionEntry>)> {
        let mut all: Vec<_> = self
            .entries
            .iter()
            .map(|(n, e)| (n.clone(), Arc::clone(e)))
            .collect();
        all.sort_by(|(a, _), (b, _)| (a.len(), a.as_str()).cmp(&(b.len(), b.as_str())));
        all
    }
}
