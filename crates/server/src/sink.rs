//! Trace sinks owned by the server: the JSON-lines access log and the
//! shared trace → JSON encoding the log and `GET /v1/debug/traces` both
//! use, so one trace renders identically wherever it surfaces.

use dod_core::trace::{FieldValue, Trace, TraceSink};
use dod_wire::JsonValue;
use std::io::Write;
use std::sync::Mutex;

/// One completed trace as its wire object:
///
/// ```json
/// {"request_id": "…", "route": "/v1/query", "status": 200,
///  "duration_ns": 1234567,
///  "spans": [{"name": "filter", "start_ns": 120, "duration_ns": 900,
///             "fields": {"candidates": 12}}, …]}
/// ```
///
/// Span `parent` appears only on nested spans; field values keep their
/// types (counts as numbers, labels as strings).
pub(crate) fn trace_json(t: &Trace) -> JsonValue {
    let spans: Vec<JsonValue> = t
        .spans
        .iter()
        .map(|s| {
            let mut fields: Vec<(String, JsonValue)> = vec![
                ("name".to_string(), JsonValue::from(s.name)),
                ("start_ns".to_string(), JsonValue::from(s.start_nanos)),
                ("duration_ns".to_string(), JsonValue::from(s.duration_nanos)),
            ];
            if let Some(parent) = s.parent {
                fields.insert(1, ("parent".to_string(), JsonValue::from(parent)));
            }
            if !s.fields.is_empty() {
                let kv: Vec<(String, JsonValue)> = s
                    .fields
                    .iter()
                    .map(|&(k, v)| {
                        let v = match v {
                            FieldValue::U64(n) => JsonValue::from(n),
                            FieldValue::F64(x) => JsonValue::from(x),
                            FieldValue::Str(s) => JsonValue::from(s),
                        };
                        (k.to_string(), v)
                    })
                    .collect();
                fields.push(("fields".to_string(), JsonValue::Obj(kv)));
            }
            JsonValue::Obj(fields)
        })
        .collect();
    JsonValue::obj([
        ("request_id", JsonValue::from(t.request_id.as_str())),
        ("route", JsonValue::from(t.route)),
        ("status", JsonValue::from(u64::from(t.status))),
        ("duration_ns", JsonValue::from(t.duration_nanos)),
        ("spans", JsonValue::Arr(spans)),
    ])
}

/// The JSON-lines access log: one [`trace_json`] line per completed
/// request, flushed per line so a tail reader (or a crashed process's
/// last log) sees whole lines. The writer sits behind a mutex — requests
/// contend only at line granularity, and the serialization itself
/// happens before the lock.
pub(crate) struct AccessLog {
    writer: Mutex<Box<dyn Write + Send>>,
}

impl AccessLog {
    pub(crate) fn new(writer: Box<dyn Write + Send>) -> Self {
        AccessLog {
            writer: Mutex::new(writer),
        }
    }
}

impl TraceSink for AccessLog {
    fn record(&self, trace: std::sync::Arc<Trace>) {
        let line = trace_json(&trace).render();
        let mut guard = match self.writer.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        // A full disk (or closed pipe) must not take the serving path
        // down: logging failures are dropped, not propagated.
        let _ = writeln!(guard, "{line}");
        let _ = guard.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dod_core::trace::TraceContext;
    use std::sync::Arc;

    #[test]
    fn trace_json_round_trips_through_the_wire_parser() {
        let mut ctx = TraceContext::new("req-1");
        let span = ctx.child("engine").with_field("queries", 2u64);
        span.finish(&mut ctx);
        ctx.record(
            "filter",
            std::time::Duration::from_micros(5),
            vec![("candidates", 7u64.into()), ("backend", "mrpg".into())],
        );
        let trace = ctx.finish("/v1/query", 200);
        let rendered = trace_json(&trace).render();
        let doc = dod_wire::parse_json(&rendered).expect("valid json");
        assert_eq!(
            doc.get("request_id").and_then(JsonValue::as_str),
            Some("req-1")
        );
        assert_eq!(
            doc.get("route").and_then(JsonValue::as_str),
            Some("/v1/query")
        );
        assert_eq!(doc.get("status").and_then(JsonValue::as_usize), Some(200));
        let spans = doc.get("spans").and_then(JsonValue::as_arr).expect("spans");
        assert_eq!(spans.len(), 2);
        let filter = &spans[1];
        assert_eq!(
            filter.get("name").and_then(JsonValue::as_str),
            Some("filter")
        );
        assert_eq!(
            filter.get("duration_ns").and_then(JsonValue::as_usize),
            Some(5_000)
        );
        let fields = filter.get("fields").expect("fields");
        assert_eq!(
            fields.get("candidates").and_then(JsonValue::as_usize),
            Some(7)
        );
        assert_eq!(
            fields.get("backend").and_then(JsonValue::as_str),
            Some("mrpg")
        );
    }

    #[test]
    fn access_log_writes_one_parsable_line_per_trace() {
        let buf = Arc::new(Mutex::new(Vec::<u8>::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let log = AccessLog::new(Box::new(Shared(Arc::clone(&buf))));
        for i in 0..3u16 {
            let ctx = TraceContext::new(format!("r{i}"));
            log.record(Arc::new(ctx.finish("/healthz", 200 + i)));
        }
        let text = String::from_utf8(buf.lock().unwrap().clone()).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for (i, line) in lines.iter().enumerate() {
            let doc = dod_wire::parse_json(line).expect("each line parses");
            assert_eq!(
                doc.get("request_id").and_then(JsonValue::as_str),
                Some(format!("r{i}").as_str())
            );
        }
    }
}
