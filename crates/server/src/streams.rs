//! The ingest session behind `/v1/ingest` and `/v1/report`: a
//! [`ShardedStreamDetector`] over any vector metric, erased into one
//! server-side type and moved onto its [`IngestPipeline`] threads.
//!
//! The erasure mirrors `dod_datasets::AnyDataset` (a small enum over the
//! concrete spaces, not a trait object), because the pipeline type is
//! generic over the space and the server must pick it from configuration
//! at runtime. Only vector spaces are served — points travel as JSON
//! number arrays; a string-space session has no natural wire shape here
//! and stays an in-process API.

use dod_core::{DodError, Query};
use dod_metrics::{Angular, MetricKind, L1, L2, L4};
use dod_shard::{
    CommitAck, DurabilityPolicy, DurableSession, GhostRouteStats, HealthReport, IngestPipeline,
    PipelineProfile, RecoveryStats, ShardSpec, ShardedStreamDetector, WalTelemetry,
};
use dod_stream::{Backend, StreamStats, VectorSpace, WindowSpec};
use std::path::Path;
use std::sync::Arc;

/// A sharded sliding-window detector over any served vector metric,
/// ready to be mounted on a server. Build the concrete detector with
/// [`ShardedStreamDetector::open`] and let the `From` impls erase it.
pub enum AnyStreamDetector {
    /// Vectors under the L1 norm.
    L1(ShardedStreamDetector<VectorSpace<L1>>),
    /// Vectors under the L2 norm.
    L2(ShardedStreamDetector<VectorSpace<L2>>),
    /// Vectors under the L4 norm.
    L4(ShardedStreamDetector<VectorSpace<L4>>),
    /// Unit vectors under angular distance.
    Angular(ShardedStreamDetector<VectorSpace<Angular>>),
}

macro_rules! impl_from {
    ($($v:ident),+) => {$(
        impl From<ShardedStreamDetector<VectorSpace<$v>>> for AnyStreamDetector {
            fn from(det: ShardedStreamDetector<VectorSpace<$v>>) -> Self {
                AnyStreamDetector::$v(det)
            }
        }
    )+};
}
impl_from!(L1, L2, L4, Angular);

impl AnyStreamDetector {
    /// Opens a sharded detector from wire-level configuration: the
    /// metric by [`MetricKind`] instead of by type. This is how
    /// `POST /v1/sessions` builds a session — the metric arrives as a
    /// string, so the type dispatch has to happen at runtime, here.
    ///
    /// Only the vector metrics are servable ([`MetricKind::Edit`] has no
    /// JSON point shape, and no served space uses
    /// [`MetricKind::Chebyshev`]); others answer
    /// [`DodError::InvalidSpec`].
    pub fn open(
        kind: MetricKind,
        dim: usize,
        query: Query,
        window: WindowSpec,
        backend: Backend,
        spec: ShardSpec,
    ) -> Result<Self, DodError> {
        if dim == 0 {
            return Err(DodError::InvalidSpec {
                reason: "a session's vector dimension must be at least 1".to_string(),
            });
        }
        Ok(match kind {
            MetricKind::L1 => ShardedStreamDetector::open(
                VectorSpace::new(L1, dim),
                query,
                window,
                backend,
                spec,
            )?
            .into(),
            MetricKind::L2 => ShardedStreamDetector::open(
                VectorSpace::new(L2, dim),
                query,
                window,
                backend,
                spec,
            )?
            .into(),
            MetricKind::L4 => ShardedStreamDetector::open(
                VectorSpace::new(L4, dim),
                query,
                window,
                backend,
                spec,
            )?
            .into(),
            MetricKind::Angular => ShardedStreamDetector::open(
                VectorSpace::new(Angular, dim),
                query,
                window,
                backend,
                spec,
            )?
            .into(),
            other => {
                return Err(DodError::InvalidSpec {
                    reason: format!(
                        "metric {:?} is not servable over HTTP; use one of l1, l2, l4, angular",
                        other.wire_name()
                    ),
                })
            }
        })
    }

    /// Wire name of the session's metric (`l1`, `l2`, `l4`, `angular`).
    pub(crate) fn metric_name(&self) -> &'static str {
        match self {
            AnyStreamDetector::L1(_) => MetricKind::L1.wire_name(),
            AnyStreamDetector::L2(_) => MetricKind::L2.wire_name(),
            AnyStreamDetector::L4(_) => MetricKind::L4.wire_name(),
            AnyStreamDetector::Angular(_) => MetricKind::Angular.wire_name(),
        }
    }

    /// Shards the window is partitioned across (listing metadata,
    /// captured before the detector moves onto its pipeline threads).
    pub(crate) fn shard_count(&self) -> usize {
        match self {
            AnyStreamDetector::L1(det) => det.spec().shards,
            AnyStreamDetector::L2(det) => det.spec().shards,
            AnyStreamDetector::L4(det) => det.spec().shards,
            AnyStreamDetector::Angular(det) => det.spec().shards,
        }
    }

    /// The pinned vector dimension of the session's space — the
    /// validation boundary for wire points. (A wrong-length point must be
    /// rejected at the route, because `Space::prepare` enforces the
    /// dimension with an assert on the pipeline's router thread.)
    pub(crate) fn dim(&self) -> usize {
        match self {
            AnyStreamDetector::L1(det) => det.space().dim(),
            AnyStreamDetector::L2(det) => det.space().dim(),
            AnyStreamDetector::L4(det) => det.space().dim(),
            AnyStreamDetector::Angular(det) => det.space().dim(),
        }
    }

    /// Reconfigures the sampled recall auditor on every shard (see
    /// [`ShardedStreamDetector::set_audit_params`]); wire knobs are
    /// validated here with typed errors, never clamped.
    pub(crate) fn set_audit_params(
        &mut self,
        sample_rate: u64,
        audit_sample: usize,
    ) -> Result<(), DodError> {
        match self {
            AnyStreamDetector::L1(det) => det.set_audit_params(sample_rate, audit_sample),
            AnyStreamDetector::L2(det) => det.set_audit_params(sample_rate, audit_sample),
            AnyStreamDetector::L4(det) => det.set_audit_params(sample_rate, audit_sample),
            AnyStreamDetector::Angular(det) => det.set_audit_params(sample_rate, audit_sample),
        }
    }

    /// Moves the detector onto its pipeline threads. With a profile, the
    /// router and pump threads publish their phases under
    /// `{prefix}/router` and `{prefix}/pump-{i}` for the sampler.
    pub(crate) fn into_pipeline(
        self,
        queue: usize,
        profile: Option<PipelineProfile>,
    ) -> AnyPipeline {
        let dim = self.dim();
        let inner = match self {
            AnyStreamDetector::L1(det) => InnerPipeline::L1(match profile {
                Some(p) => det.into_pipeline_profiled(queue, p),
                None => det.into_pipeline(queue),
            }),
            AnyStreamDetector::L2(det) => InnerPipeline::L2(match profile {
                Some(p) => det.into_pipeline_profiled(queue, p),
                None => det.into_pipeline(queue),
            }),
            AnyStreamDetector::L4(det) => InnerPipeline::L4(match profile {
                Some(p) => det.into_pipeline_profiled(queue, p),
                None => det.into_pipeline(queue),
            }),
            AnyStreamDetector::Angular(det) => InnerPipeline::Angular(match profile {
                Some(p) => det.into_pipeline_profiled(queue, p),
                None => det.into_pipeline(queue),
            }),
        };
        AnyPipeline { dim, inner }
    }
}

/// A *durable* wire session: the same metric erasure as
/// [`AnyStreamDetector`], wrapped around [`DurableSession`] so every
/// accepted operation is WAL-logged and the session can be rebuilt from
/// its directory after a restart (see `dod_shard::DurableSession`).
pub(crate) enum AnyDurableSession {
    L1(DurableSession<VectorSpace<L1>>),
    L2(DurableSession<VectorSpace<L2>>),
    L4(DurableSession<VectorSpace<L4>>),
    Angular(DurableSession<VectorSpace<Angular>>),
}

impl AnyDurableSession {
    /// Opens (or recovers) a durable sharded session in `dir` from
    /// wire-level configuration — the durable twin of
    /// [`AnyStreamDetector::open`], with identical validation.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn open(
        kind: MetricKind,
        dim: usize,
        query: Query,
        window: WindowSpec,
        backend: Backend,
        spec: ShardSpec,
        dir: &Path,
        policy: DurabilityPolicy,
    ) -> Result<(Self, RecoveryStats), DodError> {
        if dim == 0 {
            return Err(DodError::InvalidSpec {
                reason: "a session's vector dimension must be at least 1".to_string(),
            });
        }
        Ok(match kind {
            MetricKind::L1 => {
                let (s, stats) = DurableSession::open(
                    VectorSpace::new(L1, dim),
                    query,
                    window,
                    backend,
                    spec,
                    dir,
                    policy,
                )?;
                (AnyDurableSession::L1(s), stats)
            }
            MetricKind::L2 => {
                let (s, stats) = DurableSession::open(
                    VectorSpace::new(L2, dim),
                    query,
                    window,
                    backend,
                    spec,
                    dir,
                    policy,
                )?;
                (AnyDurableSession::L2(s), stats)
            }
            MetricKind::L4 => {
                let (s, stats) = DurableSession::open(
                    VectorSpace::new(L4, dim),
                    query,
                    window,
                    backend,
                    spec,
                    dir,
                    policy,
                )?;
                (AnyDurableSession::L4(s), stats)
            }
            MetricKind::Angular => {
                let (s, stats) = DurableSession::open(
                    VectorSpace::new(Angular, dim),
                    query,
                    window,
                    backend,
                    spec,
                    dir,
                    policy,
                )?;
                (AnyDurableSession::Angular(s), stats)
            }
            other => {
                return Err(DodError::InvalidSpec {
                    reason: format!(
                        "metric {:?} is not servable over HTTP; use one of l1, l2, l4, angular",
                        other.wire_name()
                    ),
                })
            }
        })
    }

    /// Wire name of the session's metric.
    pub(crate) fn metric_name(&self) -> &'static str {
        match self {
            AnyDurableSession::L1(_) => MetricKind::L1.wire_name(),
            AnyDurableSession::L2(_) => MetricKind::L2.wire_name(),
            AnyDurableSession::L4(_) => MetricKind::L4.wire_name(),
            AnyDurableSession::Angular(_) => MetricKind::Angular.wire_name(),
        }
    }

    /// Shards the window is partitioned across.
    pub(crate) fn shard_count(&self) -> usize {
        match self {
            AnyDurableSession::L1(s) => s.detector().spec().shards,
            AnyDurableSession::L2(s) => s.detector().spec().shards,
            AnyDurableSession::L4(s) => s.detector().spec().shards,
            AnyDurableSession::Angular(s) => s.detector().spec().shards,
        }
    }

    /// The session's WAL counters, shareable with `/metrics` scrapers
    /// after the session moves onto its pipeline threads.
    pub(crate) fn telemetry(&self) -> Arc<WalTelemetry> {
        match self {
            AnyDurableSession::L1(s) => s.telemetry(),
            AnyDurableSession::L2(s) => s.telemetry(),
            AnyDurableSession::L4(s) => s.telemetry(),
            AnyDurableSession::Angular(s) => s.telemetry(),
        }
    }

    /// Reconfigures the sampled recall auditor on every shard. Applied
    /// on every open (create *and* recovery), since audit cadence lives
    /// in the manifest, not the WAL.
    pub(crate) fn set_audit_params(
        &mut self,
        sample_rate: u64,
        audit_sample: usize,
    ) -> Result<(), DodError> {
        match self {
            AnyDurableSession::L1(s) => s.set_audit_params(sample_rate, audit_sample),
            AnyDurableSession::L2(s) => s.set_audit_params(sample_rate, audit_sample),
            AnyDurableSession::L4(s) => s.set_audit_params(sample_rate, audit_sample),
            AnyDurableSession::Angular(s) => s.set_audit_params(sample_rate, audit_sample),
        }
    }

    /// Moves the session onto its pipeline threads; the WAL rides on the
    /// router thread (append-before-ack at batch boundaries). With a
    /// profile, every thread publishes its phase for the sampler.
    pub(crate) fn into_pipeline(
        self,
        queue: usize,
        profile: Option<PipelineProfile>,
    ) -> AnyPipeline {
        let dim = match &self {
            AnyDurableSession::L1(s) => s.detector().space().dim(),
            AnyDurableSession::L2(s) => s.detector().space().dim(),
            AnyDurableSession::L4(s) => s.detector().space().dim(),
            AnyDurableSession::Angular(s) => s.detector().space().dim(),
        };
        let inner = match self {
            AnyDurableSession::L1(s) => InnerPipeline::L1(match profile {
                Some(p) => s.into_pipeline_profiled(queue, p),
                None => s.into_pipeline(queue),
            }),
            AnyDurableSession::L2(s) => InnerPipeline::L2(match profile {
                Some(p) => s.into_pipeline_profiled(queue, p),
                None => s.into_pipeline(queue),
            }),
            AnyDurableSession::L4(s) => InnerPipeline::L4(match profile {
                Some(p) => s.into_pipeline_profiled(queue, p),
                None => s.into_pipeline(queue),
            }),
            AnyDurableSession::Angular(s) => InnerPipeline::Angular(match profile {
                Some(p) => s.into_pipeline_profiled(queue, p),
                None => s.into_pipeline(queue),
            }),
        };
        AnyPipeline { dim, inner }
    }
}

enum InnerPipeline {
    L1(IngestPipeline<VectorSpace<L1>>),
    L2(IngestPipeline<VectorSpace<L2>>),
    L4(IngestPipeline<VectorSpace<L4>>),
    Angular(IngestPipeline<VectorSpace<Angular>>),
}

/// The running ingest session: one [`IngestPipeline`] plus the wire-side
/// dimension check. All methods take `&self` — the pipeline is channel
///-fed, so concurrent route handlers need no lock.
pub(crate) struct AnyPipeline {
    dim: usize,
    inner: InnerPipeline,
}

impl AnyPipeline {
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Enqueues a run of points (dimension already validated by the
    /// route) at consecutive ticks.
    pub fn insert_many(&self, points: Vec<Vec<f32>>) -> Result<(), DodError> {
        match &self.inner {
            InnerPipeline::L1(p) => p.insert_many(points),
            InnerPipeline::L2(p) => p.insert_many(points),
            InnerPipeline::L4(p) => p.insert_many(points),
            InnerPipeline::Angular(p) => p.insert_many(points),
        }
    }

    /// Commit barrier: blocks until every op enqueued before the call is
    /// WAL-committed (see [`IngestPipeline::commit`]). The durable ingest
    /// route answers 200 only after this returns — the ack *is* the
    /// durability promise.
    pub fn commit(&self) -> Result<CommitAck, DodError> {
        match &self.inner {
            InnerPipeline::L1(p) => p.commit(),
            InnerPipeline::L2(p) => p.commit(),
            InnerPipeline::L4(p) => p.commit(),
            InnerPipeline::Angular(p) => p.commit(),
        }
    }

    /// Snapshot-consistent outliers as global stream seqs, ascending.
    pub fn outliers(&self) -> Result<Vec<u64>, DodError> {
        match &self.inner {
            InnerPipeline::L1(p) => p.outliers(),
            InnerPipeline::L2(p) => p.outliers(),
            InnerPipeline::L4(p) => p.outliers(),
            InnerPipeline::Angular(p) => p.outliers(),
        }
    }

    /// Summed per-shard lifetime counters.
    pub fn stats(&self) -> Result<StreamStats, DodError> {
        match &self.inner {
            InnerPipeline::L1(p) => p.stats(),
            InnerPipeline::L2(p) => p.stats(),
            InnerPipeline::L4(p) => p.stats(),
            InnerPipeline::Angular(p) => p.stats(),
        }
    }

    /// The topology's health document — per-shard occupancy, counters
    /// and index structure plus ghost routing — collected at a read-only
    /// barrier (never advances shard clocks; see
    /// [`IngestPipeline::health`]).
    pub fn health(&self) -> Result<HealthReport, DodError> {
        match &self.inner {
            InnerPipeline::L1(p) => p.health(),
            InnerPipeline::L2(p) => p.health(),
            InnerPipeline::L4(p) => p.health(),
            InnerPipeline::Angular(p) => p.health(),
        }
    }

    /// Ghost replicas per `(owner, target)` shard pair plus per-shard
    /// owned-point counts, one self-consistent snapshot.
    pub fn ghost_route_stats(&self) -> Result<GhostRouteStats, DodError> {
        match &self.inner {
            InnerPipeline::L1(p) => p.ghost_route_stats(),
            InnerPipeline::L2(p) => p.ghost_route_stats(),
            InnerPipeline::L4(p) => p.ghost_route_stats(),
            InnerPipeline::Angular(p) => p.ghost_route_stats(),
        }
    }

    /// The pipeline's live queue/routing gauges (lock-free reads, never
    /// block on the pipeline threads).
    fn gauges(&self) -> std::sync::Arc<dod_shard::PipelineGauges> {
        match &self.inner {
            InnerPipeline::L1(p) => p.gauges(),
            InnerPipeline::L2(p) => p.gauges(),
            InnerPipeline::L4(p) => p.gauges(),
            InnerPipeline::Angular(p) => p.gauges(),
        }
    }

    /// Commands enqueued but not yet routed — the per-session queue
    /// depth gauge.
    pub fn queue_depth(&self) -> u64 {
        self.gauges().queue_depth()
    }

    /// Cumulative router-thread routing time, in nanoseconds.
    pub fn route_nanos(&self) -> u64 {
        self.gauges().route_nanos()
    }
}
