//! `/metrics` rendering in the Prometheus text exposition format
//! (version 0.0.4): HTTP-layer counters, the engine's query telemetry
//! (counters + the log-bucketed latency histogram as a native
//! `_bucket`/`_sum`/`_count` family), and the sharded stream's lifetime
//! counters including per-shard-pair ghost replication.

use crate::routes::Route;
use crate::State;
use std::fmt::Write as _;

fn header(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

pub(crate) fn render(state: &State) -> String {
    let mut out = String::with_capacity(4096);

    header(
        &mut out,
        "dod_http_connections_total",
        "TCP connections accepted.",
        "counter",
    );
    let _ = writeln!(
        out,
        "dod_http_connections_total {}",
        state.http.connections.get()
    );
    header(
        &mut out,
        "dod_http_requests_total",
        "HTTP requests answered, by route and status class.",
        "counter",
    );
    for route in Route::ALL {
        for (class, counter) in state.http.by_class(route) {
            let _ = writeln!(
                out,
                "dod_http_requests_total{{route=\"{}\",class=\"{class}\"}} {}",
                route.name(),
                counter.get()
            );
        }
    }

    if let Some(engine) = &state.engine {
        header(
            &mut out,
            "dod_engine_dataset_size",
            "Objects the engine serves.",
            "gauge",
        );
        let _ = writeln!(out, "dod_engine_dataset_size {}", engine.len());
        let m = engine.metrics();
        for (name, help, value) in [
            (
                "dod_engine_queries_total",
                "Queries answered successfully (batch members count individually).",
                m.queries.get(),
            ),
            (
                "dod_engine_query_errors_total",
                "Queries that returned an error.",
                m.query_errors.get(),
            ),
            (
                "dod_engine_batches_total",
                "query_many batches served.",
                m.batches.get(),
            ),
            (
                "dod_engine_outliers_reported_total",
                "Outliers reported across all queries.",
                m.outliers_reported.get(),
            ),
        ] {
            header(&mut out, name, help, "counter");
            let _ = writeln!(out, "{name} {value}");
        }
        header(
            &mut out,
            "dod_engine_query_latency_seconds",
            "Latency of successful queries.",
            "histogram",
        );
        let snap = m.latency.snapshot();
        for (bound, cumulative) in &snap.cumulative {
            let _ = writeln!(
                out,
                "dod_engine_query_latency_seconds_bucket{{le=\"{}\"}} {cumulative}",
                dod_wire::render_number(*bound)
            );
        }
        let _ = writeln!(
            out,
            "dod_engine_query_latency_seconds_bucket{{le=\"+Inf\"}} {}",
            snap.count
        );
        let _ = writeln!(
            out,
            "dod_engine_query_latency_seconds_sum {}",
            dod_wire::render_number(snap.sum_secs)
        );
        let _ = writeln!(out, "dod_engine_query_latency_seconds_count {}", snap.count);
    }

    if let Some(stream) = &state.stream {
        header(
            &mut out,
            "dod_ingest_points_total",
            "Stream points accepted over HTTP.",
            "counter",
        );
        let _ = writeln!(
            out,
            "dod_ingest_points_total {}",
            state.ingested_points.get()
        );
        // Pipeline scrapes are snapshot-consistent barriers; a dead
        // pipeline (worker panic) must degrade the scrape, not kill it.
        if let Ok(stats) = stream.stats() {
            for (name, help, value) in [
                (
                    "dod_stream_inserts_total",
                    "Points inserted into shard windows (owned + ghost).",
                    stats.inserts,
                ),
                (
                    "dod_stream_ghost_inserts_total",
                    "Ghost replicas inserted into shard windows.",
                    stats.ghost_inserts,
                ),
                (
                    "dod_stream_expirations_total",
                    "Window residents expired.",
                    stats.expirations,
                ),
                (
                    "dod_stream_safe_promotions_total",
                    "Residents promoted to safe inliers.",
                    stats.safe_promotions,
                ),
            ] {
                header(&mut out, name, help, "counter");
                let _ = writeln!(out, "{name} {value}");
            }
            if let Ok(ghost) = stream.ghost_route_stats() {
                header(
                    &mut out,
                    "dod_shard_ghost_routes_total",
                    "Ghost replicas routed from the owner shard into the target shard.",
                    "counter",
                );
                for (owner, row) in ghost.pairs.iter().enumerate() {
                    for (target, &count) in row.iter().enumerate() {
                        if owner != target {
                            let _ = writeln!(
                                out,
                                "dod_shard_ghost_routes_total{{owner=\"{owner}\",target=\"{target}\"}} {count}"
                            );
                        }
                    }
                }
                header(
                    &mut out,
                    "dod_shard_owned_points_total",
                    "Stream points owned by the shard (the ghost-rate denominator).",
                    "counter",
                );
                for (shard, &owned) in ghost.owned.iter().enumerate() {
                    let _ = writeln!(
                        out,
                        "dod_shard_owned_points_total{{shard=\"{shard}\"}} {owned}"
                    );
                }
                header(
                    &mut out,
                    "dod_shard_ghost_rate",
                    "Fraction of the owner shard's owned points replicated into the target shard.",
                    "gauge",
                );
                for (owner, row) in ghost.pairs.iter().enumerate() {
                    let owned = ghost.owned.get(owner).copied().unwrap_or(0).max(1);
                    for (target, &count) in row.iter().enumerate() {
                        if owner != target {
                            let _ = writeln!(
                                out,
                                "dod_shard_ghost_rate{{owner=\"{owner}\",target=\"{target}\"}} {}",
                                dod_wire::render_number(count as f64 / owned as f64)
                            );
                        }
                    }
                }
            }
        }
    }
    out
}
