//! `/metrics` rendering in the Prometheus text exposition format
//! (version 0.0.4): HTTP-layer counters, registry occupancy gauges,
//! every resident engine's query telemetry (counters + the log-bucketed
//! latency histogram as a native `_bucket`/`_sum`/`_count` family)
//! labeled `{engine="name"}`, and every live session's stream counters —
//! including per-shard-pair ghost replication — labeled
//! `{session="id"}`.
//!
//! Label cardinality stays bounded by construction: `route` is a
//! fieldless enum, `status` is drawn from the fixed
//! `TRACKED_STATUSES` set (everything else
//! folds into one `"other"` slot), `engine` is capped by `max_engines`,
//! `session` by `max_sessions`, and shard pairs by the shard-spec cap. Names and ids
//! are registry-validated identifiers (`[A-Za-z0-9_-]{1,64}`), so they
//! embed in label values without escaping.

use crate::routes::Route;
use crate::State;
use dod_core::telemetry::HistogramSnapshot;
use std::fmt::Write as _;

fn header(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Renders one histogram series (`_bucket`/`_sum`/`_count`) under
/// `labels` (`key="value"` pairs without braces, possibly empty — `le`
/// is appended).
fn histogram(out: &mut String, name: &str, labels: &str, snap: &HistogramSnapshot) {
    let sep = if labels.is_empty() { "" } else { "," };
    for (bound, cumulative) in &snap.cumulative {
        let _ = writeln!(
            out,
            "{name}_bucket{{{labels}{sep}le=\"{}\"}} {cumulative}",
            dod_wire::render_number(*bound)
        );
    }
    let _ = writeln!(
        out,
        "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}",
        snap.count
    );
    if labels.is_empty() {
        let _ = writeln!(out, "{name}_sum {}", dod_wire::render_number(snap.sum_secs));
        let _ = writeln!(out, "{name}_count {}", snap.count);
    } else {
        let _ = writeln!(
            out,
            "{name}_sum{{{labels}}} {}",
            dod_wire::render_number(snap.sum_secs)
        );
        let _ = writeln!(out, "{name}_count{{{labels}}} {}", snap.count);
    }
}

pub(crate) fn render(state: &State) -> String {
    let mut out = String::with_capacity(4096);

    header(
        &mut out,
        "dod_http_connections_total",
        "TCP connections accepted.",
        "counter",
    );
    let _ = writeln!(
        out,
        "dod_http_connections_total {}",
        state.http.connections.get()
    );
    header(
        &mut out,
        "dod_http_requests_total",
        "HTTP requests answered, by route pattern and status (pre-routing rejections count as route=\"<parse>\").",
        "counter",
    );
    // Only touched route×status cells are rendered: the full matrix is
    // mostly zeros and scrapers treat an absent counter as zero anyway.
    for route in Route::ALL {
        for (status, count) in state.http.by_status(route) {
            if count > 0 {
                let _ = writeln!(
                    out,
                    "dod_http_requests_total{{route=\"{}\",status=\"{status}\"}} {count}",
                    route.pattern()
                );
            }
        }
    }
    header(
        &mut out,
        "dod_http_request_seconds",
        "Wall time from first request byte to response ready, by route pattern.",
        "histogram",
    );
    for route in Route::ALL {
        let snap = state.http.latency(route).snapshot();
        if snap.count > 0 {
            histogram(
                &mut out,
                "dod_http_request_seconds",
                &format!("route=\"{}\"", route.pattern()),
                &snap,
            );
        }
    }
    header(
        &mut out,
        "dod_http_queue_wait_seconds",
        "Time accepted connections waited in the worker-pool queue.",
        "histogram",
    );
    histogram(
        &mut out,
        "dod_http_queue_wait_seconds",
        "",
        &state.http.queue_wait.snapshot(),
    );
    header(
        &mut out,
        "dod_pool_queue_depth",
        "Connections accepted but not yet picked up by a worker.",
        "gauge",
    );
    let _ = writeln!(
        out,
        "dod_pool_queue_depth {}",
        state.pool_stats.queue_depth()
    );
    header(
        &mut out,
        "dod_pool_busy_workers",
        "Workers currently serving a connection.",
        "gauge",
    );
    let _ = writeln!(
        out,
        "dod_pool_busy_workers {}",
        state.pool_stats.busy_workers()
    );
    header(
        &mut out,
        "dod_pool_workers",
        "Size of the connection worker pool.",
        "gauge",
    );
    let _ = writeln!(out, "dod_pool_workers {}", state.pool_stats.workers());

    // Snapshot both registries up front (name-sorted, so scrapes are
    // deterministic) and render with no lock held: a slow scrape client
    // must not block engine creation.
    let engines = state.engines.read().expect("engine registry lock").sorted();
    let engine_capacity = state
        .engines
        .read()
        .expect("engine registry lock")
        .capacity();
    let sessions = state
        .sessions
        .read()
        .expect("session registry lock")
        .sorted();
    let session_capacity = state
        .sessions
        .read()
        .expect("session registry lock")
        .capacity();

    header(
        &mut out,
        "dod_engine_resident",
        "Engines resident in the registry (bounded by dod_engine_capacity).",
        "gauge",
    );
    let _ = writeln!(out, "dod_engine_resident {}", engines.len());
    header(
        &mut out,
        "dod_engine_capacity",
        "The registry's LRU bound on resident engines.",
        "gauge",
    );
    let _ = writeln!(out, "dod_engine_capacity {engine_capacity}");
    header(
        &mut out,
        "dod_session_active",
        "Live ingest sessions (bounded by dod_session_capacity).",
        "gauge",
    );
    let _ = writeln!(out, "dod_session_active {}", sessions.len());
    header(
        &mut out,
        "dod_session_capacity",
        "The hard bound on concurrent ingest sessions.",
        "gauge",
    );
    let _ = writeln!(out, "dod_session_capacity {session_capacity}");

    if !engines.is_empty() {
        header(
            &mut out,
            "dod_engine_dataset_size",
            "Objects the engine serves.",
            "gauge",
        );
        for (name, entry) in &engines {
            let _ = writeln!(
                out,
                "dod_engine_dataset_size{{engine=\"{name}\"}} {}",
                entry.engine.len()
            );
        }
        header(
            &mut out,
            "dod_engine_index_bytes",
            "Index footprint of the engine, in bytes.",
            "gauge",
        );
        for (name, entry) in &engines {
            let _ = writeln!(
                out,
                "dod_engine_index_bytes{{engine=\"{name}\"}} {}",
                entry.engine.index_bytes()
            );
        }
        for (metric, help, value) in [
            (
                "dod_engine_queries_total",
                "Queries answered successfully (batch members count individually).",
                &|m: &dod_core::EngineMetrics| m.queries.get(),
            ),
            (
                "dod_engine_query_errors_total",
                "Queries that returned an error.",
                &|m: &dod_core::EngineMetrics| m.query_errors.get(),
            ),
            (
                "dod_engine_batches_total",
                "query_many batches served.",
                &|m: &dod_core::EngineMetrics| m.batches.get(),
            ),
            (
                "dod_engine_outliers_reported_total",
                "Outliers reported across all queries.",
                &|m: &dod_core::EngineMetrics| m.outliers_reported.get(),
            ),
        ]
            as [(&str, &str, &dyn Fn(&dod_core::EngineMetrics) -> u64); 4]
        {
            header(&mut out, metric, help, "counter");
            for (name, entry) in &engines {
                let _ = writeln!(
                    out,
                    "{metric}{{engine=\"{name}\"}} {}",
                    value(entry.engine.metrics())
                );
            }
        }
        header(
            &mut out,
            "dod_engine_query_latency_seconds",
            "Latency of successful queries.",
            "histogram",
        );
        for (name, entry) in &engines {
            histogram(
                &mut out,
                "dod_engine_query_latency_seconds",
                &format!("engine=\"{name}\""),
                &entry.engine.metrics().latency.snapshot(),
            );
        }
        // Query-cost accounting: the paper's evaluation currency
        // (distance evaluations by phase, graph hops) plus the filter's
        // effectiveness counters, cumulative over every answered query.
        for (metric, help, value) in [
            (
                "dod_cost_filter_dist_evals_total",
                "Distance evaluations spent in the graph-filter phase, across all queries.",
                &|m: &dod_core::EngineMetrics| m.filter_dist_evals.get(),
            ),
            (
                "dod_cost_verify_dist_evals_total",
                "Distance evaluations spent verifying filter candidates, across all queries.",
                &|m: &dod_core::EngineMetrics| m.verify_dist_evals.get(),
            ),
            (
                "dod_cost_hops_total",
                "Proximity-graph vertices expanded by filter traversals, across all queries.",
                &|m: &dod_core::EngineMetrics| m.hops.get(),
            ),
            (
                "dod_cost_candidates_total",
                "Points the filter could not decide, handed to exact verification.",
                &|m: &dod_core::EngineMetrics| m.candidates.get(),
            ),
            (
                "dod_cost_decided_in_filter_total",
                "Points the filter decided alone (no verification needed).",
                &|m: &dod_core::EngineMetrics| m.decided_in_filter.get(),
            ),
            (
                "dod_cost_false_positives_total",
                "Filter candidates that verification overturned (inliers after all).",
                &|m: &dod_core::EngineMetrics| m.false_positives.get(),
            ),
        ]
            as [(&str, &str, &dyn Fn(&dod_core::EngineMetrics) -> u64); 6]
        {
            header(&mut out, metric, help, "counter");
            for (name, entry) in &engines {
                let _ = writeln!(
                    out,
                    "{metric}{{engine=\"{name}\"}} {}",
                    value(entry.engine.metrics())
                );
            }
        }
        header(
            &mut out,
            "dod_cost_pruning_power",
            "Fraction of the nested-loop distance baseline (queries × n·(n−1)) the index avoided; 0 until the first query.",
            "gauge",
        );
        for (name, entry) in &engines {
            let m = entry.engine.metrics();
            let n = entry.engine.len() as f64;
            let baseline = m.queries.get() as f64 * n * (n - 1.0);
            let spent = (m.filter_dist_evals.get() + m.verify_dist_evals.get()) as f64;
            let power = if baseline > 0.0 {
                (1.0 - spent / baseline).max(0.0)
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "dod_cost_pruning_power{{engine=\"{name}\"}} {}",
                dod_wire::render_number(power)
            );
        }
    }

    if !sessions.is_empty() {
        header(
            &mut out,
            "dod_ingest_points_total",
            "Stream points accepted over HTTP, by session.",
            "counter",
        );
        for (id, entry) in &sessions {
            let _ = writeln!(
                out,
                "dod_ingest_points_total{{session=\"{id}\"}} {}",
                entry.ingested.get()
            );
        }
        // Pipeline scrapes are snapshot-consistent barriers; a dead
        // pipeline (worker panic) must degrade its session's series, not
        // kill the scrape.
        let stats: Vec<_> = sessions
            .iter()
            .filter_map(|(id, entry)| entry.pipeline.stats().ok().map(|s| (id.clone(), s)))
            .collect();
        for (metric, help, value) in [
            (
                "dod_stream_inserts_total",
                "Points inserted into shard windows (owned + ghost).",
                &|s: &dod_stream::StreamStats| s.inserts,
            ),
            (
                "dod_stream_ghost_inserts_total",
                "Ghost replicas inserted into shard windows.",
                &|s: &dod_stream::StreamStats| s.ghost_inserts,
            ),
            (
                "dod_stream_expirations_total",
                "Window residents expired.",
                &|s: &dod_stream::StreamStats| s.expirations,
            ),
            (
                "dod_stream_safe_promotions_total",
                "Residents promoted to safe inliers.",
                &|s: &dod_stream::StreamStats| s.safe_promotions,
            ),
        ]
            as [(&str, &str, &dyn Fn(&dod_stream::StreamStats) -> u64); 4]
        {
            header(&mut out, metric, help, "counter");
            for (id, s) in &stats {
                let _ = writeln!(out, "{metric}{{session=\"{id}\"}} {}", value(s));
            }
        }
        // Stream-side cost accounting: backend work split by phase
        // (insert discovery, expiry sweeps, recall audits, query-time
        // lazy repair) plus the per-report filter effectiveness.
        for (metric, help, value) in [
            (
                "dod_cost_insert_dist_evals_total",
                "Distance evaluations spent discovering neighbors of inserted points.",
                &|s: &dod_stream::StreamStats| s.insert_dist_evals,
            ),
            (
                "dod_cost_insert_hops_total",
                "Graph vertices expanded while inserting points.",
                &|s: &dod_stream::StreamStats| s.insert_hops,
            ),
            (
                "dod_cost_expiry_dist_evals_total",
                "Distance evaluations spent in expiry maintenance.",
                &|s: &dod_stream::StreamStats| s.expiry_dist_evals,
            ),
            (
                "dod_cost_expiry_hops_total",
                "Graph vertices expanded during expiry maintenance.",
                &|s: &dod_stream::StreamStats| s.expiry_hops,
            ),
            (
                "dod_cost_audit_dist_evals_total",
                "Distance evaluations spent by the sampled recall auditor.",
                &|s: &dod_stream::StreamStats| s.audit_dist_evals,
            ),
            (
                "dod_cost_audit_hops_total",
                "Graph vertices expanded by the sampled recall auditor.",
                &|s: &dod_stream::StreamStats| s.audit_hops,
            ),
            (
                "dod_cost_query_dist_evals_total",
                "Distance evaluations spent lazily repairing neighbor counts at report time.",
                &|s: &dod_stream::StreamStats| s.query_dist_evals,
            ),
            (
                "dod_cost_query_candidates_total",
                "Report-time residents whose counts needed repair before a verdict.",
                &|s: &dod_stream::StreamStats| s.query_candidates,
            ),
            (
                "dod_cost_query_decided_in_filter_total",
                "Report-time residents decided from maintained counts alone.",
                &|s: &dod_stream::StreamStats| s.query_decided_in_filter,
            ),
            (
                "dod_cost_query_false_positives_total",
                "Report-time outlier candidates that repair reclassified as inliers.",
                &|s: &dod_stream::StreamStats| s.query_false_positives,
            ),
        ]
            as [(&str, &str, &dyn Fn(&dod_stream::StreamStats) -> u64); 10]
        {
            header(&mut out, metric, help, "counter");
            for (id, s) in &stats {
                let _ = writeln!(out, "{metric}{{session=\"{id}\"}} {}", value(s));
            }
        }
        // Slide wall time, split into the paper's two phases: insert
        // (discovery + repair) and expiry sweeps. Nanosecond counters on
        // the shard pumps, rendered as seconds.
        for (metric, help, nanos) in [
            (
                "dod_stream_insert_seconds_total",
                "Wall time spent inserting into shard windows (discovery and repair).",
                &|s: &dod_stream::StreamStats| s.insert_nanos,
            ),
            (
                "dod_stream_expiry_seconds_total",
                "Wall time spent expiring window residents.",
                &|s: &dod_stream::StreamStats| s.expiry_nanos,
            ),
        ]
            as [(&str, &str, &dyn Fn(&dod_stream::StreamStats) -> u64); 2]
        {
            header(&mut out, metric, help, "counter");
            for (id, s) in &stats {
                let _ = writeln!(
                    out,
                    "{metric}{{session=\"{id}\"}} {}",
                    dod_wire::render_number(nanos(s) as f64 / 1e9)
                );
            }
        }
        header(
            &mut out,
            "dod_ingest_queue_depth",
            "Ingest commands enqueued on the session's pipeline but not yet routed.",
            "gauge",
        );
        for (id, entry) in &sessions {
            let _ = writeln!(
                out,
                "dod_ingest_queue_depth{{session=\"{id}\"}} {}",
                entry.pipeline.queue_depth()
            );
        }
        header(
            &mut out,
            "dod_shard_route_seconds_total",
            "Wall time the session's router thread spent assigning points to shards.",
            "counter",
        );
        for (id, entry) in &sessions {
            let _ = writeln!(
                out,
                "dod_shard_route_seconds_total{{session=\"{id}\"}} {}",
                dod_wire::render_number(entry.pipeline.route_nanos() as f64 / 1e9)
            );
        }
        let ghosts: Vec<_> = sessions
            .iter()
            .filter_map(|(id, entry)| {
                entry
                    .pipeline
                    .ghost_route_stats()
                    .ok()
                    .map(|g| (id.clone(), g))
            })
            .collect();
        header(
            &mut out,
            "dod_shard_ghost_routes_total",
            "Ghost replicas routed from the owner shard into the target shard.",
            "counter",
        );
        for (id, ghost) in &ghosts {
            for (owner, row) in ghost.pairs.iter().enumerate() {
                for (target, &count) in row.iter().enumerate() {
                    if owner != target {
                        let _ = writeln!(
                            out,
                            "dod_shard_ghost_routes_total{{session=\"{id}\",owner=\"{owner}\",target=\"{target}\"}} {count}"
                        );
                    }
                }
            }
        }
        header(
            &mut out,
            "dod_shard_owned_points_total",
            "Stream points owned by the shard (the ghost-rate denominator).",
            "counter",
        );
        for (id, ghost) in &ghosts {
            for (shard, &owned) in ghost.owned.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "dod_shard_owned_points_total{{session=\"{id}\",shard=\"{shard}\"}} {owned}"
                );
            }
        }
        header(
            &mut out,
            "dod_shard_ghost_rate",
            "Fraction of the owner shard's owned points replicated into the target shard.",
            "gauge",
        );
        for (id, ghost) in &ghosts {
            for (owner, row) in ghost.pairs.iter().enumerate() {
                let owned = ghost.owned.get(owner).copied().unwrap_or(0).max(1);
                for (target, &count) in row.iter().enumerate() {
                    if owner != target {
                        let _ = writeln!(
                            out,
                            "dod_shard_ghost_rate{{session=\"{id}\",owner=\"{owner}\",target=\"{target}\"}} {}",
                            dod_wire::render_number(count as f64 / owned as f64)
                        );
                    }
                }
            }
        }
        // Index-health barriers: a consistent per-shard cut of the recall
        // auditor's tallies, the discovery index's structure document,
        // and the balance picture. Same degradation policy as stats().
        let healths: Vec<_> = sessions
            .iter()
            .filter_map(|(id, entry)| entry.pipeline.health().ok().map(|h| (id.clone(), h)))
            .collect();
        header(
            &mut out,
            "dod_graph_recall_estimate",
            "Sampled discovery recall (audited hits / brute-force expected); 1 until the first audit.",
            "gauge",
        );
        for (id, h) in &healths {
            let _ = writeln!(
                out,
                "dod_graph_recall_estimate{{session=\"{id}\"}} {}",
                dod_wire::render_number(h.stats().recall_estimate())
            );
        }
        header(
            &mut out,
            "dod_graph_recall_audits_total",
            "Sampled discovery-recall audits performed.",
            "counter",
        );
        for (id, h) in &healths {
            let _ = writeln!(
                out,
                "dod_graph_recall_audits_total{{session=\"{id}\"}} {}",
                h.stats().recall_audits
            );
        }
        header(
            &mut out,
            "dod_graph_tombstone_ratio",
            "Tombstoned fraction of indexed vertices (dead weight awaiting compaction).",
            "gauge",
        );
        for (id, h) in &healths {
            let _ = writeln!(
                out,
                "dod_graph_tombstone_ratio{{session=\"{id}\"}} {}",
                dod_wire::render_number(h.index().tombstone_ratio())
            );
        }
        for (metric, help, kind, value) in [
            (
                "dod_graph_live_nodes",
                "Live (reportable) vertices in the discovery index.",
                "gauge",
                &|h: &dod_stream::IndexHealth| h.live,
            ),
            (
                "dod_graph_tombstones",
                "Tombstoned vertices awaiting compaction.",
                "gauge",
                &|h: &dod_stream::IndexHealth| h.tombstones,
            ),
            (
                "dod_graph_compactions_total",
                "Compaction passes over the discovery index.",
                "counter",
                &|h: &dod_stream::IndexHealth| h.compactions,
            ),
            (
                "dod_graph_bridge_edges_total",
                "Bridge edges added while compacting tombstones out.",
                "counter",
                &|h: &dod_stream::IndexHealth| h.bridge_edges,
            ),
            (
                "dod_graph_prunes_total",
                "Adjacency prunes (over-full vertices trimmed back).",
                "counter",
                &|h: &dod_stream::IndexHealth| h.prunes,
            ),
        ]
            as [(&str, &str, &str, &dyn Fn(&dod_stream::IndexHealth) -> u64); 5]
        {
            header(&mut out, metric, help, kind);
            for (id, h) in &healths {
                let _ = writeln!(out, "{metric}{{session=\"{id}\"}} {}", value(&h.index()));
            }
        }
        header(
            &mut out,
            "dod_graph_degree_nodes",
            "Indexed vertices with degree <= le (cumulative; bucket bounds fixed at compile time).",
            "gauge",
        );
        for (id, h) in &healths {
            let hist = h.index().degree_hist;
            let mut cumulative = 0u64;
            for (i, count) in hist.iter().enumerate() {
                cumulative += count;
                let le = match dod_stream::DEGREE_BUCKET_BOUNDS.get(i) {
                    Some(bound) => bound.to_string(),
                    None => "+Inf".to_string(),
                };
                let _ = writeln!(
                    out,
                    "dod_graph_degree_nodes{{session=\"{id}\",le=\"{le}\"}} {cumulative}"
                );
            }
        }
        header(
            &mut out,
            "dod_shard_balance_owned_skew",
            "Owned-resident imbalance, max/mean across shards (1 = balanced).",
            "gauge",
        );
        for (id, h) in &healths {
            let _ = writeln!(
                out,
                "dod_shard_balance_owned_skew{{session=\"{id}\"}} {}",
                dod_wire::render_number(h.owned_skew())
            );
        }
        header(
            &mut out,
            "dod_shard_balance_slide_skew",
            "Slide-work imbalance, max/mean of per-shard insert+expiry wall time (1 = balanced).",
            "gauge",
        );
        for (id, h) in &healths {
            let _ = writeln!(
                out,
                "dod_shard_balance_slide_skew{{session=\"{id}\"}} {}",
                dod_wire::render_number(h.slide_skew())
            );
        }
        header(
            &mut out,
            "dod_shard_balance_ghost_rate",
            "Ghost fraction of the shard's residents (replication bought for exactness).",
            "gauge",
        );
        for (id, h) in &healths {
            for (shard, rate) in h.ghost_rates().iter().enumerate() {
                let _ = writeln!(
                    out,
                    "dod_shard_balance_ghost_rate{{session=\"{id}\",shard=\"{shard}\"}} {}",
                    dod_wire::render_number(*rate)
                );
            }
        }
        header(
            &mut out,
            "dod_session_durable",
            "1 for sessions backed by a write-ahead log, 0 for in-memory sessions.",
            "gauge",
        );
        for (id, entry) in &sessions {
            let _ = writeln!(
                out,
                "dod_session_durable{{session=\"{id}\"}} {}",
                u8::from(entry.durable.is_some())
            );
        }
        // WAL counters, only for durable sessions. The telemetry Arcs are
        // shared with each session's router thread, so scrapes read live
        // values without touching the pipeline.
        let wals: Vec<_> = sessions
            .iter()
            .filter_map(|(id, entry)| {
                entry
                    .durable
                    .as_ref()
                    .map(|d| (id.clone(), std::sync::Arc::clone(&d.telemetry)))
            })
            .collect();
        if !wals.is_empty() {
            for (metric, help, value) in [
                (
                    "dod_wal_appended_records_total",
                    "WAL frames appended (one per committed ingest batch).",
                    &|t: &dod_shard::WalTelemetry| t.appended_records.get(),
                ),
                (
                    "dod_wal_appended_ops_total",
                    "Stream operations (inserts and clock advances) appended to the WAL.",
                    &|t: &dod_shard::WalTelemetry| t.appended_ops.get(),
                ),
                (
                    "dod_wal_appended_bytes_total",
                    "Bytes appended to the WAL, framing included.",
                    &|t: &dod_shard::WalTelemetry| t.appended_bytes.get(),
                ),
                (
                    "dod_wal_fsyncs_total",
                    "fsync calls issued by the WAL (appends and snapshots).",
                    &|t: &dod_shard::WalTelemetry| t.fsyncs.get(),
                ),
                (
                    "dod_wal_snapshots_total",
                    "Window snapshots installed (each truncates the log tail).",
                    &|t: &dod_shard::WalTelemetry| t.snapshots.get(),
                ),
                (
                    "dod_wal_replayed_records_total",
                    "WAL frames replayed at the last open.",
                    &|t: &dod_shard::WalTelemetry| t.replayed_records.get(),
                ),
                (
                    "dod_wal_replayed_ops_total",
                    "Stream operations replayed at the last open.",
                    &|t: &dod_shard::WalTelemetry| t.replayed_ops.get(),
                ),
                (
                    "dod_wal_torn_tails_total",
                    "Torn log tails truncated on open (expected crash artifacts).",
                    &|t: &dod_shard::WalTelemetry| t.torn_tails.get(),
                ),
                (
                    "dod_wal_io_errors_total",
                    "WAL I/O failures; nonzero means the session degraded to in-memory (alarm on this).",
                    &|t: &dod_shard::WalTelemetry| t.io_errors.get(),
                ),
            ]
                as [(&str, &str, &dyn Fn(&dod_shard::WalTelemetry) -> u64); 9]
            {
                header(&mut out, metric, help, "counter");
                for (id, t) in &wals {
                    let _ = writeln!(out, "{metric}{{session=\"{id}\"}} {}", value(t));
                }
            }
            for (metric, help, nanos) in [
                (
                    "dod_wal_snapshot_seconds_total",
                    "Wall time spent installing window snapshots.",
                    &|t: &dod_shard::WalTelemetry| t.snapshot_nanos.get(),
                ),
                (
                    "dod_wal_replay_seconds_total",
                    "Wall time spent replaying the WAL at open.",
                    &|t: &dod_shard::WalTelemetry| t.replay_nanos.get(),
                ),
            ]
                as [(&str, &str, &dyn Fn(&dod_shard::WalTelemetry) -> u64); 2]
            {
                header(&mut out, metric, help, "counter");
                for (id, t) in &wals {
                    let _ = writeln!(
                        out,
                        "{metric}{{session=\"{id}\"}} {}",
                        dod_wire::render_number(nanos(t) as f64 / 1e9)
                    );
                }
            }
        }
    }
    // The thread-phase profile: every registered thread (HTTP workers
    // plus each session's router and pumps) × every phase, idle
    // included — rate() over these gives a poor-man's flame graph of
    // where the process spends its time. Cardinality is bounded by the
    // worker count and 3 threads per session under max_sessions.
    header(
        &mut out,
        "dod_profile_samples_total",
        "Sampling-profiler observations of the thread in the phase (see dod_profile_hz).",
        "counter",
    );
    for p in state.profiler.profiles() {
        for phase in dod_core::profile::PHASES {
            let _ = writeln!(
                out,
                "dod_profile_samples_total{{thread=\"{}\",phase=\"{}\"}} {}",
                p.name(),
                phase.name(),
                p.samples(phase)
            );
        }
    }
    header(
        &mut out,
        "dod_profile_hz",
        "Configured sampling rate of the thread-phase profiler.",
        "gauge",
    );
    let _ = writeln!(out, "dod_profile_hz {}", state.profile_hz);
    // Always emitted (even with zero live sessions): the error that
    // matters most is the one that happened while *deleting* the last
    // session.
    header(
        &mut out,
        "dod_session_cleanup_errors_total",
        "Failed removals of durable-session directories; nonzero means \
         on-disk state believed deleted may still exist.",
        "counter",
    );
    let _ = writeln!(
        out,
        "dod_session_cleanup_errors_total {}",
        state.cleanup_errors.get()
    );
    out
}
