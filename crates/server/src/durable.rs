//! Durable wire sessions: the on-disk manifest that makes a session's
//! *spec* restart-survivable (its window *contents* travel through the
//! WAL + snapshot in the same directory), and the bind-time recovery
//! sweep that re-mounts every surviving session before the server
//! accepts its first connection.
//!
//! A durable session's directory is `{data_dir}/sessions/{id}` and holds
//! exactly three files: `wal.log` and `snapshot.bin` (owned by
//! [`dod_wal::SessionWal`]) plus `manifest.json` — the session's
//! creation body, verbatim, in the [`SessionCreateRequest`] wire shape.
//! Storing the request rather than some parallel schema means the
//! manifest can never drift from what `POST /v1/sessions` accepts: the
//! recovery path replays creation through the same parser and the same
//! [`AnyDurableSession::open`] the handler uses.

use crate::registry::{DurableInfo, SessionEntry, SessionRegistry};
use crate::streams::AnyDurableSession;
use dod_core::profile::Profiler;
use dod_core::telemetry::Counter;
use dod_core::{DodError, Query};
use dod_metrics::MetricKind;
use dod_shard::{DurabilityPolicy, PipelineProfile, ShardSpec, SyncPolicy};
use dod_stream::{Backend, WindowSpec};
use dod_wire::shapes::{SessionCreateRequest, SyncShape, WindowShape};
use std::path::Path;

/// The session-spec file next to the WAL, in the
/// [`SessionCreateRequest`] wire shape.
pub(crate) const MANIFEST_FILE: &str = "manifest.json";

/// The wire durability knobs as a [`DurabilityPolicy`]. A durable wire
/// session defaults to [`SyncPolicy::Always`]: its HTTP ack is a promise
/// the point is on disk, not merely in a buffer.
pub(crate) fn policy_from(create: &SessionCreateRequest) -> DurabilityPolicy {
    let mut policy = DurabilityPolicy::with_sync(match create.sync {
        None | Some(SyncShape::Always) => SyncPolicy::Always,
        Some(SyncShape::Never) => SyncPolicy::Never,
        Some(SyncShape::EveryN(n)) => SyncPolicy::EveryN(n.min(u32::MAX as u64) as u32),
    });
    if let Some(n) = create.snapshot_ops {
        policy.snapshot_ops = n.max(1);
    }
    policy
}

/// Opens (or recovers) the durable session a creation body describes,
/// in `dir`. The caller has already validated the body's wire limits;
/// this re-derives the engine-level spec from the same fields, so the
/// manifest replay at bind time and the create handler take one path.
pub(crate) fn open_session(
    create: &SessionCreateRequest,
    dir: &Path,
) -> Result<AnyDurableSession, DodError> {
    let Some(kind) = MetricKind::parse_wire(&create.metric) else {
        return Err(DodError::InvalidSpec {
            reason: format!(
                "unknown metric {:?}; one of: l1, l2, l4, angular",
                create.metric
            ),
        });
    };
    let query = Query::new(create.r, create.k as usize)?;
    let window = match create.window {
        WindowShape::Count(w) => WindowSpec::Count(w as usize),
        WindowShape::Time(horizon) => WindowSpec::Time(horizon),
    };
    let mut spec = ShardSpec::new(create.shards as usize);
    if let Some(warmup) = create.warmup {
        spec = spec.with_warmup(warmup as usize);
    }
    if let Some(pivots) = create.pivots_per_shard {
        spec = spec.with_pivots_per_shard(pivots as usize);
    }
    // Exhaustive per-shard backend, exactly like volatile wire sessions:
    // wire sessions promise exact answers.
    let (mut session, _stats) = AnyDurableSession::open(
        kind,
        create.dim as usize,
        query,
        window,
        Backend::Exhaustive,
        spec,
        dir,
        policy_from(create),
    )?;
    // Audit cadence comes from the manifest on every open (create and
    // recovery alike) — it is observability configuration, not logged
    // window state.
    if create.sample_rate.is_some() || create.audit_sample.is_some() {
        let defaults = dod_stream::GraphParams::default();
        session.set_audit_params(
            create.sample_rate.unwrap_or(defaults.sample_rate),
            create
                .audit_sample
                .map_or(defaults.audit_sample, |n| n as usize),
        )?;
    }
    Ok(session)
}

/// Persists the creation body as the session's manifest, atomically
/// (tmp → fsync → rename → dir sync): a half-written manifest must
/// never look recoverable. Without the fsync before the rename, an OS
/// crash can leave the *renamed* file empty — the rename is atomic in
/// the namespace but says nothing about the data blocks — and a
/// zero-byte manifest reads as `Corrupt`, refusing the whole bind.
pub(crate) fn write_manifest(dir: &Path, create: &SessionCreateRequest) -> Result<(), DodError> {
    use std::io::Write;
    let tmp = dir.join("manifest.tmp");
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(create.to_json().render().as_bytes())?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, dir.join(MANIFEST_FILE))?;
    // Make the rename itself durable. Best-effort, like the WAL's own
    // snapshot commit: directory fsync is not supported everywhere.
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Reads a session's manifest back into its creation body.
pub(crate) fn read_manifest(dir: &Path) -> Result<SessionCreateRequest, DodError> {
    let text = std::fs::read_to_string(dir.join(MANIFEST_FILE))?;
    let doc = dod_wire::parse_json(&text).map_err(|_| DodError::Corrupt {
        offset: 0,
        reason: "session manifest is not valid JSON",
    })?;
    SessionCreateRequest::from_json(&doc).map_err(|_| DodError::Corrupt {
        offset: 0,
        reason: "session manifest is missing or mistypes a required field",
    })
}

/// Removes everything a durable session put on disk: the manifest, the
/// WAL files, and (if then empty) the directory itself. Already-gone
/// files are fine (deletion is idempotent); any other failure
/// propagates — callers go through [`reclaim_session_dir`], which turns
/// it into a counted, logged event instead of silently leaving
/// recoverable state behind.
pub(crate) fn remove_session_dir(dir: &Path) -> std::io::Result<()> {
    for f in [MANIFEST_FILE, "manifest.tmp"] {
        match std::fs::remove_file(dir.join(f)) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
    }
    dod_wal::remove_session_dir(dir)
}

/// [`remove_session_dir`] as the handlers use it: the HTTP response does
/// not change on failure (the session itself is already gone from the
/// registry), but the failure is counted (`dod_session_cleanup_errors_total`)
/// and logged so leftover on-disk state is an alarm, not a silence.
pub(crate) fn reclaim_session_dir(dir: &Path, cleanup_errors: &Counter) {
    if let Err(e) = remove_session_dir(dir) {
        cleanup_errors.inc();
        eprintln!(
            "dod_server: failed to remove session directory {}: {e}",
            dir.display()
        );
    }
}

/// Builds the registry entry for an opened durable session (shared by
/// the create handler and bind-time recovery). `ingested` starts at
/// zero on every open: it counts points accepted over HTTP *by this
/// process* — the window itself is what recovery restores.
pub(crate) fn session_entry(
    session: AnyDurableSession,
    dir: &Path,
    queue: usize,
    profile: PipelineProfile,
) -> SessionEntry {
    let metric = session.metric_name();
    let shards = session.shard_count();
    let telemetry = session.telemetry();
    SessionEntry {
        pipeline: session.into_pipeline(queue, Some(profile)),
        metric,
        shards,
        ingested: Counter::new(),
        durable: Some(DurableInfo {
            telemetry,
            dir: dir.to_path_buf(),
        }),
    }
}

/// Bind-time recovery: scans `{data_dir}/sessions/*` for directories
/// holding a manifest, replays each session and mounts it under its
/// original id (bumping the registry's id counter past recovered ids).
/// Returns the recovered ids in id order.
///
/// Failures propagate — a server asked to host durable sessions must not
/// silently come up without the state it was trusted with. Torn WAL
/// tails are *not* failures (the WAL truncates them as ordinary crash
/// artifacts); only structural corruption or exhausted capacity refuse
/// the bind.
pub(crate) fn recover_sessions(
    data_dir: &Path,
    queue: usize,
    sessions: &mut SessionRegistry,
    cleanup_errors: &Counter,
    profiler: &std::sync::Arc<Profiler>,
) -> Result<Vec<String>, DodError> {
    let root = data_dir.join("sessions");
    if !root.is_dir() {
        return Ok(Vec::new());
    }
    let mut ids: Vec<String> = Vec::new();
    for entry in std::fs::read_dir(&root)? {
        let entry = entry?;
        let id = entry.file_name().to_string_lossy().into_owned();
        // Only registry-valid ids with a manifest are sessions; anything
        // else in the directory is not ours to touch.
        if crate::routes::valid_name(&id) {
            if entry.path().join(MANIFEST_FILE).is_file() {
                ids.push(id);
            } else if entry.path().is_dir() {
                // A valid session id with no manifest is an aborted
                // creation: the 201 only goes out after `write_manifest`
                // succeeds, so nothing in here was ever promised to a
                // client. Reclaim it rather than stranding WAL files
                // that will never be replayed.
                reclaim_session_dir(&entry.path(), cleanup_errors);
            }
        }
    }
    // Recover in listing order (s1, s2, …, s10 — numeric before
    // lexicographic), so a capacity refusal is deterministic.
    ids.sort_by(|a, b| (a.len(), a.as_str()).cmp(&(b.len(), b.as_str())));
    for id in &ids {
        let dir = root.join(id);
        let create = read_manifest(&dir)?;
        let session = open_session(&create, &dir)?;
        let profile = PipelineProfile {
            profiler: std::sync::Arc::clone(profiler),
            prefix: id.clone(),
        };
        let entry = session_entry(session, &dir, queue, profile);
        if sessions.mount(id, entry).is_err() {
            return Err(DodError::InvalidSpec {
                reason: format!(
                    "recovering session {id:?} exceeds the session capacity of {}; raise max_sessions",
                    sessions.capacity()
                ),
            });
        }
    }
    Ok(ids)
}
