//! Route dispatch and the JSON protocol: resource-path parsing, request
//! decoding, response encoding, and the uniform
//! `{"error": {"kind", "message"}}` bodies.
//!
//! The path grammar is resource-oriented: collection routes
//! (`/v1/engines`, `/v1/sessions`) plus item routes carrying one path
//! parameter (`/v1/engines/{name}`, `/v1/sessions/{id}/ingest`, …),
//! parsed by `Resource::parse` into a borrowed enum — no regex, no
//! allocation. The three original singleton routes stay mounted as
//! aliases for the [`DEFAULT_RESOURCE`] engine/session, with their
//! pre-redesign bodies preserved
//! byte-for-byte (the compat-shim tests pin this).

use crate::http::Request;
use crate::registry::SessionEntry;
use crate::streams::AnyStreamDetector;
use crate::{State, DEFAULT_RESOURCE};
use dod_core::profile::{Phase, ThreadProfile};
use dod_core::telemetry::Counter;
use dod_core::trace::TraceContext;
use dod_core::{DodError, IndexSpec, OutlierReport, Query};
use dod_datasets::{EngineSpec, Family};
use dod_metrics::MetricKind;
use dod_stream::{Backend, WindowSpec};
use dod_wire::shapes::{
    EngineCreateRequest, EngineSummary, SessionCreateRequest, SessionSummary, WindowShape,
};
use dod_wire::{parse_json, JsonValue};

/// The served route *shapes*, used as the metrics label: one variant per
/// path pattern, path parameters not included, so the label cardinality
/// is bounded by construction (unknown paths all land in `Other`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Route {
    /// `POST /v1/query` (alias for the default engine's query).
    Query,
    /// `POST /v1/ingest` (alias for the default session's ingest).
    Ingest,
    /// `GET /v1/report` (alias for the default session's report).
    Report,
    /// `GET /v1/engines`
    Engines,
    /// `PUT`/`GET`/`DELETE /v1/engines/{name}`
    Engine,
    /// `POST /v1/engines/{name}/query`
    EngineQuery,
    /// `POST`/`GET /v1/sessions`
    Sessions,
    /// `GET`/`DELETE /v1/sessions/{id}`
    Session,
    /// `POST /v1/sessions/{id}/ingest`
    SessionIngest,
    /// `GET /v1/sessions/{id}/report`
    SessionReport,
    /// `GET /healthz`
    Healthz,
    /// `GET /metrics`
    Metrics,
    /// `GET /v1/debug/traces`
    DebugTraces,
    /// `GET /v1/debug/health`
    DebugHealth,
    /// `GET /v1/debug/slow`
    DebugSlow,
    /// Requests rejected before routing (framing failures, timeouts,
    /// oversized bodies) — a synthetic label so `/metrics` error rates
    /// include requests that never reached a handler.
    Parse,
    /// Everything else.
    Other,
}

impl Route {
    pub(crate) const ALL: [Route; 17] = [
        Route::Query,
        Route::Ingest,
        Route::Report,
        Route::Engines,
        Route::Engine,
        Route::EngineQuery,
        Route::Sessions,
        Route::Session,
        Route::SessionIngest,
        Route::SessionReport,
        Route::Healthz,
        Route::Metrics,
        Route::DebugTraces,
        Route::DebugHealth,
        Route::DebugSlow,
        Route::Parse,
        Route::Other,
    ];

    /// The route's path pattern — the `route` label in `/metrics`,
    /// access-log lines and traces. Path parameters appear as
    /// placeholders, and the two synthetic labels (`<parse>`, `<other>`)
    /// are spelled so they can never collide with a real path.
    pub(crate) fn pattern(self) -> &'static str {
        match self {
            Route::Query => "/v1/query",
            Route::Ingest => "/v1/ingest",
            Route::Report => "/v1/report",
            Route::Engines => "/v1/engines",
            Route::Engine => "/v1/engines/{name}",
            Route::EngineQuery => "/v1/engines/{name}/query",
            Route::Sessions => "/v1/sessions",
            Route::Session => "/v1/sessions/{id}",
            Route::SessionIngest => "/v1/sessions/{id}/ingest",
            Route::SessionReport => "/v1/sessions/{id}/report",
            Route::Healthz => "/healthz",
            Route::Metrics => "/metrics",
            Route::DebugTraces => "/v1/debug/traces",
            Route::DebugHealth => "/v1/debug/health",
            Route::DebugSlow => "/v1/debug/slow",
            Route::Parse => "<parse>",
            Route::Other => "<other>",
        }
    }
}

/// Every route the server mounts, as `(method, path pattern)` — the
/// source of truth the README's API table is checked against by
/// `scripts/check_api_table.sh` in CI.
pub const API_ROUTES: &[(&str, &str)] = &[
    ("GET", "/v1/engines"),
    ("PUT", "/v1/engines/{name}"),
    ("GET", "/v1/engines/{name}"),
    ("DELETE", "/v1/engines/{name}"),
    ("POST", "/v1/engines/{name}/query"),
    ("POST", "/v1/sessions"),
    ("GET", "/v1/sessions"),
    ("GET", "/v1/sessions/{id}"),
    ("DELETE", "/v1/sessions/{id}"),
    ("POST", "/v1/sessions/{id}/ingest"),
    ("GET", "/v1/sessions/{id}/report"),
    ("POST", "/v1/query"),
    ("POST", "/v1/ingest"),
    ("GET", "/v1/report"),
    ("GET", "/healthz"),
    ("GET", "/metrics"),
    ("GET", "/v1/debug/traces"),
    ("GET", "/v1/debug/health"),
    ("GET", "/v1/debug/slow"),
];

/// A parsed request path: which resource, with path parameters borrowed
/// from the request.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Resource<'a> {
    Query,
    Ingest,
    Report,
    Engines,
    Engine(&'a str),
    EngineQuery(&'a str),
    Sessions,
    Session(&'a str),
    SessionIngest(&'a str),
    SessionReport(&'a str),
    Healthz,
    Metrics,
    DebugTraces,
    DebugHealth,
    DebugSlow,
    Unknown,
}

/// Resource names are short identifiers — no separators, no escapes —
/// so a name is also safe to echo into error messages and metric labels
/// (and, for durable sessions, to use as a directory name).
pub(crate) fn valid_name(s: &str) -> bool {
    (1..=64).contains(&s.len())
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

impl<'a> Resource<'a> {
    pub(crate) fn parse(path: &'a str) -> Resource<'a> {
        match path {
            "/v1/query" => return Resource::Query,
            "/v1/ingest" => return Resource::Ingest,
            "/v1/report" => return Resource::Report,
            "/v1/engines" => return Resource::Engines,
            "/v1/sessions" => return Resource::Sessions,
            "/healthz" => return Resource::Healthz,
            "/metrics" => return Resource::Metrics,
            "/v1/debug/traces" => return Resource::DebugTraces,
            "/v1/debug/health" => return Resource::DebugHealth,
            "/v1/debug/slow" => return Resource::DebugSlow,
            _ => {}
        }
        if let Some(rest) = path.strip_prefix("/v1/engines/") {
            return match rest.split_once('/') {
                None if valid_name(rest) => Resource::Engine(rest),
                Some((name, "query")) if valid_name(name) => Resource::EngineQuery(name),
                _ => Resource::Unknown,
            };
        }
        if let Some(rest) = path.strip_prefix("/v1/sessions/") {
            return match rest.split_once('/') {
                None if valid_name(rest) => Resource::Session(rest),
                Some((id, "ingest")) if valid_name(id) => Resource::SessionIngest(id),
                Some((id, "report")) if valid_name(id) => Resource::SessionReport(id),
                _ => Resource::Unknown,
            };
        }
        Resource::Unknown
    }

    /// The bounded-cardinality metrics label for this resource.
    pub(crate) fn route(&self) -> Route {
        match self {
            Resource::Query => Route::Query,
            Resource::Ingest => Route::Ingest,
            Resource::Report => Route::Report,
            Resource::Engines => Route::Engines,
            Resource::Engine(_) => Route::Engine,
            Resource::EngineQuery(_) => Route::EngineQuery,
            Resource::Sessions => Route::Sessions,
            Resource::Session(_) => Route::Session,
            Resource::SessionIngest(_) => Route::SessionIngest,
            Resource::SessionReport(_) => Route::SessionReport,
            Resource::Healthz => Route::Healthz,
            Resource::Metrics => Route::Metrics,
            Resource::DebugTraces => Route::DebugTraces,
            Resource::DebugHealth => Route::DebugHealth,
            Resource::DebugSlow => Route::DebugSlow,
            Resource::Unknown => Route::Other,
        }
    }
}

/// A computed response, ready for the framing layer.
#[derive(Debug)]
pub(crate) struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
}

impl Response {
    pub(crate) fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }

    fn text(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "text/plain; version=0.0.4",
            body: body.into_bytes(),
        }
    }
}

/// Upper bound on queries per batch and points per ingest call — the body
/// size limit bounds bytes, this bounds amplification (a tiny body
/// requesting enormous per-item work).
const MAX_BATCH_ITEMS: usize = 4096;

/// Upper bound on the `"n"` of a `PUT /v1/engines/{name}` body: index
/// construction is super-linear work triggered by a ~50-byte request, so
/// it gets its own amplification bound.
const MAX_ENGINE_POINTS: usize = 100_000;

/// Upper bound on a wire session's vector dimension.
const MAX_SESSION_DIM: usize = 4096;

/// The `{"error": {"kind": …, "message": …}}` body every non-2xx answer
/// carries.
pub fn error_body(kind: &str, message: &str) -> String {
    JsonValue::obj([(
        "error",
        JsonValue::obj([("kind", kind), ("message", message)]),
    )])
    .render()
}

/// The error-body `kind` for a [`DodError`]: its variant, snake-cased.
pub fn dod_error_kind(e: &DodError) -> &'static str {
    match e {
        DodError::InvalidRadius { .. } => "invalid_radius",
        DodError::InvalidWindow { .. } => "invalid_window",
        DodError::InvalidSpec { .. } => "invalid_spec",
        DodError::InvalidShardSpec { .. } => "invalid_shard_spec",
        DodError::SizeMismatch { .. } => "size_mismatch",
        DodError::FamilyMismatch { .. } => "family_mismatch",
        DodError::Corrupt { .. } => "corrupt",
        DodError::Io(_) => "io",
        _ => "error",
    }
}

/// The HTTP status a [`DodError`] maps to: validation failures are the
/// caller's fault (400), I/O and corruption are the server's (5xx).
pub fn dod_error_status(e: &DodError) -> u16 {
    match e {
        DodError::InvalidRadius { .. }
        | DodError::InvalidWindow { .. }
        | DodError::InvalidSpec { .. }
        | DodError::InvalidShardSpec { .. }
        | DodError::SizeMismatch { .. }
        | DodError::FamilyMismatch { .. } => 400,
        DodError::Corrupt { .. } => 500,
        DodError::Io(_) => 503,
        _ => 500,
    }
}

/// The error-body `kind` for a failure the HTTP layer itself diagnosed
/// (framing, limits, timeouts), keyed by the status it answers with —
/// the counterpart of [`dod_error_kind`] for errors that never were a
/// [`DodError`].
pub fn http_error_kind(status: u16) -> &'static str {
    match status {
        400 => "bad_request",
        404 => "not_found",
        405 => "method_not_allowed",
        408 => "timeout",
        413 => "payload_too_large",
        429 => "too_many_requests",
        431 => "headers_too_large",
        501 => "not_implemented",
        503 => "unavailable",
        505 => "unsupported_version",
        _ => "http",
    }
}

/// Maps an engine's [`index_name`](crate::QueryEngine::index_name)
/// display string to the canonical wire spelling, for engines mounted
/// through the builder (wire-created engines keep their spec's exact
/// spelling, degree included).
pub(crate) fn index_wire_name(display: &str) -> &'static str {
    match display {
        "MRPG" => "mrpg",
        "NSW" => "nsw",
        "KGraph" => "kgraph",
        "VP-tree" => "vptree",
        _ => "none",
    }
}

fn dod_error_response(e: &DodError) -> Response {
    Response::json(
        dod_error_status(e),
        error_body(dod_error_kind(e), &e.to_string()),
    )
}

/// Deterministic wire encodings, public so integration tests (and other
/// clients of the protocol) can assert byte-identity between HTTP answers
/// and in-process calls.
pub mod encode {
    use super::*;

    /// One [`OutlierReport`] as its wire object. Timing fields are
    /// deliberately absent: they vary run to run, and the protocol's
    /// contract is that the same data and query produce the same bytes —
    /// latency belongs to `/metrics`.
    pub fn report_json(rep: &OutlierReport) -> JsonValue {
        JsonValue::obj([
            ("outliers", JsonValue::arr(rep.outliers.iter().copied())),
            ("candidates", JsonValue::from(rep.candidates)),
            ("false_positives", JsonValue::from(rep.false_positives)),
            ("decided_in_filter", JsonValue::from(rep.decided_in_filter)),
        ])
    }

    /// The query response body for a batch of reports (`/v1/query` and
    /// `/v1/engines/{name}/query` answer identical bytes).
    pub fn query_response(reports: &[OutlierReport]) -> String {
        JsonValue::obj([(
            "results",
            JsonValue::Arr(reports.iter().map(report_json).collect()),
        )])
        .render()
    }

    /// One [`CostReport`](dod_core::CostReport) as its wire object, with
    /// the derived totals precomputed: pruning power is measured against
    /// the query's own nested-loop baseline `n·(n−1)`, so the caller
    /// supplies the dataset size `n`. Deterministic — counts, not
    /// timings — so explained responses stay byte-stable per dataset
    /// and query.
    pub fn query_cost_json(cost: &dod_core::CostReport, n: usize) -> JsonValue {
        dod_wire::shapes::QueryCostShape {
            filter_dist_evals: cost.filter_dist_evals,
            verify_dist_evals: cost.verify_dist_evals,
            total_dist_evals: cost.total_dist_evals(),
            hops: cost.hops,
            pruning_power: cost.pruning_power(n),
        }
        .to_json()
    }

    /// The explained query response: [`report_json`] plus a `"cost"`
    /// plan per result. Served only when the body carries
    /// `"explain": true` — without it, [`query_response`] answers the
    /// exact pre-EXPLAIN bytes.
    pub fn query_response_explained(reports: &[OutlierReport], n: usize) -> String {
        JsonValue::obj([(
            "results",
            JsonValue::Arr(
                reports
                    .iter()
                    .map(|rep| {
                        let JsonValue::Obj(mut fields) = report_json(rep) else {
                            unreachable!("report_json renders an object");
                        };
                        fields.push(("cost".to_string(), query_cost_json(&rep.cost, n)));
                        JsonValue::Obj(fields)
                    })
                    .collect(),
            ),
        )])
        .render()
    }

    /// The report response body: current outliers as global stream
    /// seqs, ascending (the
    /// [`ShardedStreamDetector::outliers`](dod_shard::ShardedStreamDetector::outliers)
    /// shape).
    pub fn stream_report_response(outlier_seqs: &[u64]) -> String {
        JsonValue::obj([("outliers", JsonValue::arr(outlier_seqs.iter().copied()))]).render()
    }

    /// The ingest response body.
    pub fn ingest_response(accepted: usize) -> String {
        JsonValue::obj([("accepted", JsonValue::from(accepted))]).render()
    }

    /// The durable-session ingest response body. `durable` reports the
    /// commit barrier's verdict: `true` means the batch is WAL-committed
    /// per the session's sync policy, `false` means the WAL has latched
    /// into fail-open and the batch lives only in memory.
    pub fn durable_ingest_response(accepted: usize, durable: bool) -> String {
        JsonValue::obj([
            ("accepted", JsonValue::from(accepted)),
            ("durable", JsonValue::Bool(durable)),
        ])
        .render()
    }
}

/// Decodes a query body into validated queries plus the `"explain"`
/// flag. A wire-supplied `"threads"` is clamped to `max_threads`: the
/// body size limit bounds bytes and [`MAX_BATCH_ITEMS`] bounds items,
/// this bounds the third amplification axis (one tiny query demanding
/// millions of OS threads from `par_map_strided`).
///
/// Validation is strict: unknown keys — top-level or per-query — are
/// named 400s, never silently ignored. A client that typos `"explian"`
/// must not get its queries answered *without* the plan it asked for.
fn parse_queries(body: &[u8], max_threads: usize) -> Result<(Vec<Query>, bool), Response> {
    let doc = parse_body(body)?;
    let Some(items) = doc.get("queries").and_then(JsonValue::as_arr) else {
        return Err(bad_request("body must be {\"queries\": [...]}"));
    };
    if let JsonValue::Obj(fields) = &doc {
        for (key, _) in fields {
            if key != "queries" && key != "explain" {
                return Err(bad_request(&format!(
                    "unknown key {key:?} in query body; supported: queries, explain"
                )));
            }
        }
    }
    let explain = match doc.get("explain") {
        None => false,
        Some(JsonValue::Bool(b)) => *b,
        Some(v) => {
            return Err(bad_request(&format!(
                "\"explain\" must be a boolean, not {}",
                kind_of(v)
            )))
        }
    };
    if items.len() > MAX_BATCH_ITEMS {
        return Err(bad_request(&format!(
            "batch of {} queries exceeds the limit of {MAX_BATCH_ITEMS}",
            items.len()
        )));
    }
    let mut queries = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        if let JsonValue::Obj(fields) = item {
            for (key, _) in fields {
                if !matches!(key.as_str(), "r" | "k" | "threads") {
                    return Err(bad_request(&format!(
                        "query #{i}: unknown key {key:?}; supported: r, k, threads"
                    )));
                }
            }
        }
        let r = item.get("r").and_then(JsonValue::as_f64);
        let k = item.get("k").and_then(JsonValue::as_usize);
        let (Some(r), Some(k)) = (r, k) else {
            return Err(bad_request(&format!(
                "query #{i} must carry a numeric \"r\" and a non-negative integer \"k\""
            )));
        };
        let mut q = Query::new(r, k).map_err(|e| dod_error_response(&e))?;
        if let Some(threads) = item.get("threads") {
            let Some(threads) = threads.as_usize() else {
                return Err(bad_request(&format!(
                    "query #{i}: \"threads\" must be a non-negative integer"
                )));
            };
            q = q.with_threads(threads.min(max_threads));
        }
        queries.push(q);
    }
    Ok((queries, explain))
}

/// Decodes an ingest body into dimension-checked points.
fn parse_points(body: &[u8], dim: usize) -> Result<Vec<Vec<f32>>, Response> {
    let doc = parse_body(body)?;
    let Some(items) = doc.get("points").and_then(JsonValue::as_arr) else {
        return Err(bad_request("body must be {\"points\": [[...], ...]}"));
    };
    if items.len() > MAX_BATCH_ITEMS {
        return Err(bad_request(&format!(
            "batch of {} points exceeds the limit of {MAX_BATCH_ITEMS}",
            items.len()
        )));
    }
    let mut points = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let Some(coords) = item.as_arr() else {
            // A string (or object) where a vector belongs is a family
            // mismatch in protocol form.
            return Err(Response::json(
                400,
                error_body(
                    "family_mismatch",
                    &format!(
                        "point #{i}: this stream serves {dim}-d vectors, not {}",
                        kind_of(item)
                    ),
                ),
            ));
        };
        if coords.len() != dim {
            return Err(Response::json(
                400,
                error_body(
                    "family_mismatch",
                    &format!(
                        "point #{i} has dimension {}, the stream's space is {dim}-d",
                        coords.len()
                    ),
                ),
            ));
        }
        let mut p = Vec::with_capacity(dim);
        for c in coords {
            let v = c.as_f64().unwrap_or(f64::NAN) as f32;
            if !v.is_finite() {
                return Err(bad_request(&format!(
                    "point #{i} carries a non-finite or non-numeric coordinate"
                )));
            }
            p.push(v);
        }
        points.push(p);
    }
    Ok(points)
}

fn kind_of(v: &JsonValue) -> &'static str {
    match v {
        JsonValue::Num(_) => "a number",
        JsonValue::Str(_) => "a string",
        JsonValue::Bool(_) => "a boolean",
        JsonValue::Null => "null",
        JsonValue::Arr(_) => "an array",
        JsonValue::Obj(_) => "an object",
    }
}

fn parse_body(body: &[u8]) -> Result<JsonValue, Response> {
    let text = std::str::from_utf8(body)
        .map_err(|_| Response::json(400, error_body("bad_json", "body is not UTF-8")))?;
    parse_json(text).map_err(|e| Response::json(400, error_body("bad_json", &e)))
}

pub(crate) fn bad_request(message: &str) -> Response {
    Response::json(400, error_body("bad_request", message))
}

fn invalid_spec(message: &str) -> Response {
    Response::json(400, error_body("invalid_spec", message))
}

fn method_not_allowed(allowed: &str) -> Response {
    Response::json(
        405,
        error_body("method_not_allowed", &format!("use {allowed}")),
    )
}

fn unavailable(what: &str) -> Response {
    Response::json(
        503,
        error_body(
            "unavailable",
            &format!("this server was started without {what}"),
        ),
    )
}

fn not_found(message: &str) -> Response {
    Response::json(404, error_body("not_found", message))
}

/// Answers one request, recording handler-level spans (engine compute,
/// filter/verify, ingest) into the request's trace. Infallible by
/// construction: every failure path is a 4xx/5xx response, so a
/// malformed request can never take the worker (or the connection pool)
/// down.
pub(crate) fn dispatch(
    state: &State,
    req: &Request,
    ctx: &mut TraceContext,
    profile: &std::sync::Arc<ThreadProfile>,
) -> (Route, Response) {
    let resource = Resource::parse(&req.path);
    let route = resource.route();
    let method = req.method.as_str();
    // Observability scrapes must not perturb the profile they report:
    // if serving `/v1/debug/health` itself counted as a `query` phase,
    // two back-to-back scrapes of an otherwise idle server could differ
    // only because the first one was sampled — breaking the endpoint's
    // byte-stability contract. Scrape routes leave the worker in `idle`.
    let _phase = match resource {
        Resource::Healthz
        | Resource::Metrics
        | Resource::DebugTraces
        | Resource::DebugHealth
        | Resource::DebugSlow => None,
        _ => Some(profile.enter(Phase::Query)),
    };
    let resp = match resource {
        // Legacy aliases: same handlers as the named routes, but a
        // missing default resource answers the pre-redesign 503 (the
        // server "was started without" it), not a 404 — these routes
        // predate the registry and their bodies are pinned.
        Resource::Query => match method {
            "POST" => {
                handle_engine_query(state, DEFAULT_RESOURCE, req, unavailable("an engine"), ctx)
            }
            _ => method_not_allowed("POST"),
        },
        Resource::Ingest => match method {
            "POST" => handle_session_ingest(
                state,
                DEFAULT_RESOURCE,
                req,
                unavailable("a stream session"),
                ctx,
            ),
            _ => method_not_allowed("POST"),
        },
        Resource::Report => match method {
            "GET" => {
                handle_session_report(state, DEFAULT_RESOURCE, unavailable("a stream session"))
            }
            _ => method_not_allowed("GET"),
        },
        Resource::Engines => match method {
            "GET" => handle_engine_list(state),
            _ => method_not_allowed("GET"),
        },
        Resource::Engine(name) => match method {
            "PUT" => handle_engine_put(state, name, req),
            "GET" => handle_engine_get(state, name),
            "DELETE" => handle_engine_delete(state, name),
            _ => method_not_allowed("PUT, GET or DELETE"),
        },
        Resource::EngineQuery(name) => match method {
            "POST" => handle_engine_query(state, name, req, no_engine(name), ctx),
            _ => method_not_allowed("POST"),
        },
        Resource::Sessions => match method {
            "POST" => handle_session_create(state, req),
            "GET" => handle_session_list(state),
            _ => method_not_allowed("POST or GET"),
        },
        Resource::Session(id) => match method {
            "GET" => handle_session_get(state, id),
            "DELETE" => handle_session_delete(state, id),
            _ => method_not_allowed("GET or DELETE"),
        },
        Resource::SessionIngest(id) => match method {
            "POST" => handle_session_ingest(state, id, req, no_session(id), ctx),
            _ => method_not_allowed("POST"),
        },
        Resource::SessionReport(id) => match method {
            "GET" => handle_session_report(state, id, no_session(id)),
            _ => method_not_allowed("GET"),
        },
        Resource::Healthz => match method {
            "GET" => handle_healthz(state),
            _ => method_not_allowed("GET"),
        },
        Resource::Metrics => match method {
            "GET" => Response::text(200, crate::prom::render(state)),
            _ => method_not_allowed("GET"),
        },
        Resource::DebugTraces => match method {
            "GET" => handle_debug_traces(state, req),
            _ => method_not_allowed("GET"),
        },
        Resource::DebugHealth => match method {
            "GET" => crate::health::handle_debug_health(state, req),
            _ => method_not_allowed("GET"),
        },
        Resource::DebugSlow => match method {
            "GET" => handle_debug_slow(state, req),
            _ => method_not_allowed("GET"),
        },
        Resource::Unknown => not_found(&format!("no route {}", req.path)),
    };
    (route, resp)
}

pub(crate) fn no_engine(name: &str) -> Response {
    not_found(&format!("no engine named {name:?}"))
}

pub(crate) fn no_session(id: &str) -> Response {
    not_found(&format!("no session {id:?}"))
}

fn handle_healthz(state: &State) -> Response {
    let (default_engine, engines) = {
        let reg = state.engines.read().expect("engine registry lock");
        (reg.peek(DEFAULT_RESOURCE).is_some(), reg.len())
    };
    let (default_session, sessions) = {
        let reg = state.sessions.read().expect("session registry lock");
        (reg.get(DEFAULT_RESOURCE).is_some(), reg.len())
    };
    Response::json(
        200,
        JsonValue::obj([
            ("status", JsonValue::from("ok")),
            ("engine", JsonValue::from(default_engine)),
            ("stream", JsonValue::from(default_session)),
            ("engines", JsonValue::from(engines)),
            ("sessions", JsonValue::from(sessions)),
        ])
        .render(),
    )
}

// ---- engines -------------------------------------------------------------

fn engine_summary(name: &str, entry: &crate::registry::EngineEntry) -> JsonValue {
    EngineSummary {
        name: name.to_string(),
        index: entry.index.clone(),
        points: entry.engine.len() as u64,
        index_bytes: entry.engine.index_bytes() as u64,
    }
    .to_json()
}

fn handle_engine_list(state: &State) -> Response {
    let reg = state.engines.read().expect("engine registry lock");
    let engines: Vec<JsonValue> = reg
        .sorted()
        .iter()
        .map(|(name, entry)| engine_summary(name, entry))
        .collect();
    let capacity = reg.capacity();
    drop(reg);
    Response::json(
        200,
        JsonValue::obj([
            ("engines", JsonValue::Arr(engines)),
            ("capacity", JsonValue::from(capacity)),
        ])
        .render(),
    )
}

fn handle_engine_get(state: &State, name: &str) -> Response {
    // peek, not get: inspecting an engine is not using it, so a listing
    // crawler must not keep a cold engine warm.
    let Some(entry) = state
        .engines
        .read()
        .expect("engine registry lock")
        .peek(name)
    else {
        return no_engine(name);
    };
    Response::json(200, engine_summary(name, &entry).render())
}

fn handle_engine_put(state: &State, name: &str, req: &Request) -> Response {
    let doc = match parse_body(&req.body) {
        Ok(doc) => doc,
        Err(resp) => return resp,
    };
    let create = match EngineCreateRequest::from_json(&doc) {
        Ok(c) => c,
        Err(msg) => return bad_request(&msg),
    };
    let Some(family) = Family::parse(&create.family) else {
        let known: Vec<&str> = Family::ALL.iter().map(|f| f.name()).collect();
        return invalid_spec(&format!(
            "unknown dataset family {:?}; one of: {}",
            create.family,
            known.join(", ")
        ));
    };
    if create.n == 0 || create.n as usize > MAX_ENGINE_POINTS {
        return bad_request(&format!(
            "\"n\" must be between 1 and {MAX_ENGINE_POINTS}, got {}",
            create.n
        ));
    }
    let index: IndexSpec = match &create.index {
        Some(s) => match s.parse() {
            Ok(spec) => spec,
            Err(e) => return dod_error_response(&e),
        },
        // The serving default: exact, cheap to build, no parameters.
        None => IndexSpec::VpTree,
    };
    let spec = EngineSpec {
        family,
        n: create.n as usize,
        seed: create.seed,
        index,
    };
    // The expensive part — dataset generation plus index construction
    // (or restore) — runs with no lock held: a slow build must not block
    // queries against resident engines.
    let built = match &create.load {
        Some(path) => std::fs::File::open(path)
            .map_err(DodError::from)
            .and_then(|f| spec.load(std::io::BufReader::new(f))),
        None => spec.build(),
    };
    let engine = match built {
        Ok(engine) => engine,
        Err(e) => return dod_error_response(&e),
    };
    let index_text = spec.index.to_string();
    let (created, evicted) = {
        let mut reg = state.engines.write().expect("engine registry lock");
        reg.insert(name, std::sync::Arc::new(engine), index_text)
    };
    let entry = state
        .engines
        .read()
        .expect("engine registry lock")
        .peek(name)
        .expect("just inserted; capacity ≥ 1 keeps the newest entry");
    Response::json(
        if created { 201 } else { 200 },
        JsonValue::obj([
            ("engine", engine_summary(name, &entry)),
            ("created", JsonValue::from(created)),
            (
                "evicted",
                JsonValue::Arr(
                    evicted
                        .iter()
                        .map(|n| JsonValue::from(n.as_str()))
                        .collect(),
                ),
            ),
        ])
        .render(),
    )
}

fn handle_engine_delete(state: &State, name: &str) -> Response {
    let removed = state
        .engines
        .write()
        .expect("engine registry lock")
        .remove(name);
    match removed {
        // The entry drops here, outside the lock.
        Some(_) => Response::json(
            200,
            JsonValue::obj([("deleted", JsonValue::from(name))]).render(),
        ),
        None => no_engine(name),
    }
}

fn handle_engine_query(
    state: &State,
    name: &str,
    req: &Request,
    missing: Response,
    ctx: &mut TraceContext,
) -> Response {
    // get, not peek: answering queries is exactly what "recently used"
    // means for the LRU bound.
    let Some(entry) = state
        .engines
        .read()
        .expect("engine registry lock")
        .get(name)
    else {
        return missing;
    };
    let (queries, explain) = match parse_queries(&req.body, state.max_query_threads) {
        Ok(parsed) => parsed,
        Err(resp) => return resp,
    };
    let span = ctx.child("engine").with_field("queries", queries.len());
    let started = std::time::Instant::now();
    let answered = entry.engine.query_many(&queries);
    let compute = started.elapsed();
    span.finish(ctx);
    match answered {
        Ok(reports) => {
            // The engine's own phase split, surfaced as sibling spans: the
            // reports carry wall-clock filter/verify timings and counts, so
            // the trace shows the paper's cost split per request.
            let (mut filter_secs, mut verify_secs) = (0.0f64, 0.0f64);
            let (mut candidates, mut decided, mut false_pos) = (0usize, 0usize, 0usize);
            let mut cost = dod_core::CostReport::default();
            for rep in &reports {
                filter_secs += rep.filter_secs;
                verify_secs += rep.verify_secs;
                candidates += rep.candidates;
                decided += rep.decided_in_filter;
                false_pos += rep.false_positives;
                cost.absorb(&rep.cost);
            }
            ctx.record(
                "filter",
                std::time::Duration::from_secs_f64(filter_secs.max(0.0)),
                vec![
                    ("candidates", candidates.into()),
                    ("decided_in_filter", decided.into()),
                ],
            );
            ctx.record(
                "verify",
                std::time::Duration::from_secs_f64(verify_secs.max(0.0)),
                vec![
                    ("verified", candidates.saturating_sub(decided).into()),
                    ("false_positives", false_pos.into()),
                ],
            );
            let n = entry.engine.len();
            // Every answered batch competes for the slow log; the ring
            // keeps only the N slowest, joined to the trace ring by the
            // request id it records here.
            state.slow_ring.record(crate::slow::SlowQuery {
                request_id: ctx.request_id().to_string(),
                engine: name.to_string(),
                duration_nanos: compute.as_nanos() as u64,
                queries: queries.len() as u64,
                dataset_size: n as u64,
                cost,
            });
            let body = if explain {
                encode::query_response_explained(&reports, n)
            } else {
                encode::query_response(&reports)
            };
            Response::json(200, body)
        }
        Err(e) => dod_error_response(&e),
    }
}

// ---- sessions ------------------------------------------------------------

fn session_summary(id: &str, entry: &SessionEntry) -> JsonValue {
    SessionSummary {
        id: id.to_string(),
        metric: entry.metric.to_string(),
        dim: entry.pipeline.dim() as u64,
        shards: entry.shards as u64,
        ingested: entry.ingested.get(),
        durable: entry.durable.is_some(),
        // Clients relying on the durability promise read the health here
        // rather than scraping dod_wal_io_errors_total off /metrics.
        durability: entry
            .durable
            .as_ref()
            .map(|d| if d.degraded() { "degraded" } else { "ok" }.to_string()),
    }
    .to_json()
}

fn handle_session_list(state: &State) -> Response {
    let reg = state.sessions.read().expect("session registry lock");
    let sessions: Vec<JsonValue> = reg
        .sorted()
        .iter()
        .map(|(id, entry)| session_summary(id, entry))
        .collect();
    let capacity = reg.capacity();
    drop(reg);
    Response::json(
        200,
        JsonValue::obj([
            ("sessions", JsonValue::Arr(sessions)),
            ("capacity", JsonValue::from(capacity)),
        ])
        .render(),
    )
}

fn handle_session_get(state: &State, id: &str) -> Response {
    let Some(entry) = state
        .sessions
        .read()
        .expect("session registry lock")
        .get(id)
    else {
        return no_session(id);
    };
    Response::json(200, session_summary(id, &entry).render())
}

fn handle_session_create(state: &State, req: &Request) -> Response {
    let doc = match parse_body(&req.body) {
        Ok(doc) => doc,
        Err(resp) => return resp,
    };
    let create = match SessionCreateRequest::from_json(&doc) {
        Ok(c) => c,
        Err(msg) => return bad_request(&msg),
    };
    let Some(kind) = MetricKind::parse_wire(&create.metric) else {
        return invalid_spec(&format!(
            "unknown metric {:?}; one of: l1, l2, l4, angular",
            create.metric
        ));
    };
    if create.dim as usize > MAX_SESSION_DIM {
        return bad_request(&format!(
            "\"dim\" of {} exceeds the limit of {MAX_SESSION_DIM}",
            create.dim
        ));
    }
    let query = match Query::new(create.r, create.k as usize) {
        Ok(q) => q,
        Err(e) => return dod_error_response(&e),
    };
    let window = match create.window {
        WindowShape::Count(w) => WindowSpec::Count(w as usize),
        WindowShape::Time(horizon) => WindowSpec::Time(horizon),
    };
    let mut shard_spec = dod_shard::ShardSpec::new(create.shards as usize);
    if let Some(warmup) = create.warmup {
        shard_spec = shard_spec.with_warmup(warmup as usize);
    }
    if let Some(pivots) = create.pivots_per_shard {
        shard_spec = shard_spec.with_pivots_per_shard(pivots as usize);
    }
    if create.durable {
        return handle_durable_session_create(state, &create);
    }
    // Exhaustive per-shard backend: wire sessions promise exact answers.
    let detector = AnyStreamDetector::open(
        kind,
        create.dim as usize,
        query,
        window,
        Backend::Exhaustive,
        shard_spec,
    )
    .and_then(|mut det| {
        // Audit cadence knobs apply before any point arrives; a zero
        // sample_rate is a typed 400, never a silent clamp.
        if create.sample_rate.is_some() || create.audit_sample.is_some() {
            let defaults = dod_stream::GraphParams::default();
            det.set_audit_params(
                create.sample_rate.unwrap_or(defaults.sample_rate),
                create
                    .audit_sample
                    .map_or(defaults.audit_sample, |n| n as usize),
            )?;
        }
        Ok(det)
    });
    let detector = match detector {
        Ok(det) => det,
        Err(e) => return dod_error_response(&e),
    };
    // Only a fully validated spec may consume a slot. The id is reserved
    // *before* the pipeline spins up because its profiler threads are
    // named after it (`{id}/router`, `{id}/pump-{n}`).
    let Some(id) = state
        .sessions
        .write()
        .expect("session registry lock")
        .reserve()
    else {
        return session_capacity_response(state);
    };
    let metric = detector.metric_name();
    let shards = detector.shard_count();
    let entry = SessionEntry {
        pipeline: detector.into_pipeline(state.pipeline_queue, Some(state.pipeline_profile(&id))),
        metric,
        shards,
        ingested: Counter::new(),
        durable: None,
    };
    let mounted = state
        .sessions
        .write()
        .expect("session registry lock")
        .mount(&id, entry);
    match mounted {
        Ok(entry) => Response::json(201, session_summary(&id, &entry).render()),
        Err(refused_entry) => {
            // The refused pipeline's threads join here, outside the lock,
            // and the profiles they registered under the reserved id go
            // with them.
            drop(refused_entry);
            state.profiler.unregister_prefix(&id);
            session_capacity_response(state)
        }
    }
}

fn session_capacity_response(state: &State) -> Response {
    let capacity = state
        .sessions
        .read()
        .expect("session registry lock")
        .capacity();
    Response::json(
        429,
        error_body(
            "too_many_requests",
            &format!("session capacity of {capacity} reached; delete a session first"),
        ),
    )
}

/// `POST /v1/sessions` with `"durable": true`: reserve the id (the
/// session's directory is named after it), build the WAL-backed session
/// and write its manifest with no registry lock held, then mount it.
fn handle_durable_session_create(state: &State, create: &SessionCreateRequest) -> Response {
    let Some(data_dir) = &state.data_dir else {
        return unavailable("a data directory (durable sessions)");
    };
    let Some(id) = state
        .sessions
        .write()
        .expect("session registry lock")
        .reserve()
    else {
        return session_capacity_response(state);
    };
    let dir = data_dir.join("sessions").join(&id);
    // The expensive, fallible part — creating the directory, fsyncing
    // the log header and first snapshot — runs with no lock held. On any
    // failure the half-made directory is reclaimed before answering.
    let built = crate::durable::open_session(create, &dir)
        .and_then(|sess| crate::durable::write_manifest(&dir, create).map(|()| sess));
    let session = match built {
        Ok(s) => s,
        Err(e) => {
            crate::durable::reclaim_session_dir(&dir, &state.cleanup_errors);
            return dod_error_response(&e);
        }
    };
    let entry = crate::durable::session_entry(
        session,
        &dir,
        state.pipeline_queue,
        state.pipeline_profile(&id),
    );
    let mounted = state
        .sessions
        .write()
        .expect("session registry lock")
        .mount(&id, entry);
    match mounted {
        Ok(entry) => Response::json(201, session_summary(&id, &entry).render()),
        Err(refused) => {
            // Concurrent creates filled the registry between reserve and
            // mount. Dropping the entry joins the pipeline (final WAL
            // close), then the freshly-made files are reclaimed.
            drop(refused);
            crate::durable::reclaim_session_dir(&dir, &state.cleanup_errors);
            state.profiler.unregister_prefix(&id);
            session_capacity_response(state)
        }
    }
}

fn handle_session_delete(state: &State, id: &str) -> Response {
    let removed = state
        .sessions
        .write()
        .expect("session registry lock")
        .remove(id);
    match removed {
        Some(entry) => {
            let resp = Response::json(
                200,
                JsonValue::obj([("deleted", JsonValue::from(id))]).render(),
            );
            let dir = entry.durable.as_ref().map(|d| d.dir.clone());
            // The last Arc drop joins the pipeline's threads — after the
            // lock is gone, and possibly deferred to an in-flight handler
            // still holding a clone.
            drop(entry);
            // DELETE means the stream state is no longer wanted: the WAL,
            // snapshot and manifest go with the session, so a restart
            // does not resurrect it. (If an in-flight handler deferred
            // the drop above, the files are unlinked while the pipeline
            // winds down — its writes land on anonymous inodes and the
            // directory itself is swept on a later delete or by the
            // operator; nothing recoverable remains either way.)
            if let Some(dir) = dir {
                crate::durable::reclaim_session_dir(&dir, &state.cleanup_errors);
            }
            // Retire the session's thread-profile family with it: a
            // server creating and deleting sessions all day must not
            // accumulate dead `thread` labels in `/metrics`.
            state.profiler.unregister_prefix(id);
            resp
        }
        None => no_session(id),
    }
}

fn handle_session_ingest(
    state: &State,
    id: &str,
    req: &Request,
    missing: Response,
    ctx: &mut TraceContext,
) -> Response {
    let Some(entry) = state
        .sessions
        .read()
        .expect("session registry lock")
        .get(id)
    else {
        return missing;
    };
    let points = match parse_points(&req.body, entry.pipeline.dim()) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let accepted = points.len();
    let span = ctx
        .child("ingest")
        .with_field("points", accepted)
        .with_field("queue_depth", entry.pipeline.queue_depth());
    // For a durable session the 200 is a durability promise, so the
    // handler blocks on a commit barrier: the router flushes every op
    // enqueued before the barrier through the WAL (append + sync per
    // policy) before answering. Volatile sessions skip the round-trip.
    let result = entry.pipeline.insert_many(points).and_then(|()| {
        if entry.durable.is_some() {
            entry.pipeline.commit().map(Some)
        } else {
            Ok(None)
        }
    });
    span.finish(ctx);
    match result {
        Ok(ack) => {
            // Counted only once the pipeline has the points: a dead
            // pipeline answering 5xx must not inflate the accept counter.
            entry.ingested.add(accepted as u64);
            state.ingested_points.add(accepted as u64);
            let body = match ack {
                None => encode::ingest_response(accepted),
                Some(a) => {
                    encode::durable_ingest_response(accepted, a == dod_shard::CommitAck::Durable)
                }
            };
            Response::json(200, body)
        }
        Err(e) => dod_error_response(&e),
    }
}

// ---- debug traces --------------------------------------------------------

/// Decodes `k=v&k2=v2` pairs with minimal percent-decoding (`%XX` and
/// `+` → space). Bad escapes pass through literally — a debug endpoint
/// should show what the client sent, not reject it.
pub(crate) fn query_params(query: &str) -> Vec<(String, String)> {
    fn pct_decode(s: &str) -> String {
        let bytes = s.as_bytes();
        let mut out = Vec::with_capacity(bytes.len());
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'+' => {
                    out.push(b' ');
                    i += 1;
                }
                b'%' if i + 2 < bytes.len() => {
                    let hex = |b: u8| (b as char).to_digit(16);
                    match (hex(bytes[i + 1]), hex(bytes[i + 2])) {
                        (Some(hi), Some(lo)) => {
                            out.push((hi * 16 + lo) as u8);
                            i += 3;
                        }
                        _ => {
                            out.push(b'%');
                            i += 1;
                        }
                    }
                }
                b => {
                    out.push(b);
                    i += 1;
                }
            }
        }
        String::from_utf8_lossy(&out).into_owned()
    }
    query
        .split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (pct_decode(k), pct_decode(v))
        })
        .collect()
}

/// The validated filter of a `GET /v1/debug/traces` request.
#[derive(Debug, PartialEq, Eq)]
struct TraceFilter {
    min_nanos: u64,
    route: Option<String>,
}

/// Parses and strictly validates the traces query string. Every
/// parameter is checked: unknown keys and route values that match no
/// mounted pattern are 400s rather than silently ignored — on a debug
/// endpoint, a typoed `?min_mss=5` quietly returning *everything* (or a
/// misspelled route returning nothing) sends the operator down the wrong
/// path exactly when they are debugging.
fn parse_trace_filter(query: &str) -> Result<TraceFilter, String> {
    let mut filter = TraceFilter {
        min_nanos: 0,
        route: None,
    };
    for (k, v) in query_params(query) {
        match k.as_str() {
            "min_ms" => match v.parse::<f64>() {
                Ok(ms) if ms.is_finite() && ms >= 0.0 => filter.min_nanos = (ms * 1e6) as u64,
                _ => return Err(format!("min_ms must be a non-negative number, got {v:?}")),
            },
            "route" => {
                if !Route::ALL.iter().any(|r| r.pattern() == v) {
                    let known: Vec<&str> = Route::ALL.iter().map(|r| r.pattern()).collect();
                    return Err(format!("unknown route {v:?}; one of: {}", known.join(", ")));
                }
                filter.route = Some(v);
            }
            _ => {
                return Err(format!(
                    "unknown query parameter {k:?}; supported: min_ms, route"
                ))
            }
        }
    }
    Ok(filter)
}

/// `GET /v1/debug/traces[?min_ms=..][&route=..]`: the ring buffer of
/// recently completed traces, newest first, optionally filtered to slow
/// requests (`min_ms`) and/or one route pattern (`route`, exact match on
/// the pattern spelling — percent-encode the slashes or not, both work).
/// Malformed or unknown parameters answer 400 with the mistake named.
fn handle_debug_traces(state: &State, req: &Request) -> Response {
    let filter = match parse_trace_filter(&req.query) {
        Ok(f) => f,
        Err(msg) => return bad_request(&msg),
    };
    let mut traces = state.trace_ring.snapshot();
    traces.retain(|t| {
        t.duration_nanos >= filter.min_nanos
            && filter.route.as_deref().is_none_or(|want| want == t.route)
    });
    traces.reverse(); // ring order is oldest-first; debugging wants newest
    Response::json(
        200,
        JsonValue::obj([
            (
                "traces",
                JsonValue::Arr(traces.iter().map(|t| crate::sink::trace_json(t)).collect()),
            ),
            ("capacity", JsonValue::from(state.trace_ring.capacity())),
        ])
        .render(),
    )
}

/// The validated filter of a `GET /v1/debug/slow` request.
#[derive(Debug, PartialEq, Eq)]
struct SlowFilter {
    min_nanos: u64,
    engine: Option<String>,
}

/// Parses and strictly validates the slow-log query string, with the
/// same contract as [`parse_trace_filter`]: unknown keys and malformed
/// values are named 400s. `engine` accepts any registry-valid name —
/// entries outlive engine deletion, so membership is checked against
/// the log, not the registry.
fn parse_slow_filter(query: &str) -> Result<SlowFilter, String> {
    let mut filter = SlowFilter {
        min_nanos: 0,
        engine: None,
    };
    for (k, v) in query_params(query) {
        match k.as_str() {
            "min_ms" => match v.parse::<f64>() {
                Ok(ms) if ms.is_finite() && ms >= 0.0 => filter.min_nanos = (ms * 1e6) as u64,
                _ => return Err(format!("min_ms must be a non-negative number, got {v:?}")),
            },
            "engine" => {
                if !valid_name(&v) {
                    return Err(format!("engine must be a valid resource name, got {v:?}"));
                }
                filter.engine = Some(v);
            }
            _ => {
                return Err(format!(
                    "unknown query parameter {k:?}; supported: min_ms, engine"
                ))
            }
        }
    }
    Ok(filter)
}

/// `GET /v1/debug/slow[?min_ms=..][&engine=..]`: the N slowest query
/// requests since startup, slowest first, each with its aggregated cost
/// plan and the request id its trace was published under. Malformed or
/// unknown parameters answer 400 with the mistake named.
fn handle_debug_slow(state: &State, req: &Request) -> Response {
    let filter = match parse_slow_filter(&req.query) {
        Ok(f) => f,
        Err(msg) => return bad_request(&msg),
    };
    let mut entries = state.slow_ring.snapshot();
    entries.retain(|e| {
        e.duration_nanos >= filter.min_nanos
            && filter.engine.as_deref().is_none_or(|want| want == e.engine)
    });
    Response::json(
        200,
        JsonValue::obj([
            (
                "slow",
                JsonValue::Arr(entries.iter().map(|e| crate::slow::slow_json(e)).collect()),
            ),
            ("capacity", JsonValue::from(state.slow_ring.capacity())),
        ])
        .render(),
    )
}

fn handle_session_report(state: &State, id: &str, missing: Response) -> Response {
    let Some(entry) = state
        .sessions
        .read()
        .expect("session registry lock")
        .get(id)
    else {
        return missing;
    };
    match entry.pipeline.outliers() {
        Ok(seqs) => Response::json(200, encode::stream_report_response(&seqs)),
        Err(e) => dod_error_response(&e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every `DodError` variant's wire kind and status, pinned: a new
    /// variant (or a remapping) must consciously edit this table, because
    /// clients branch on these strings.
    #[test]
    fn dod_error_kinds_and_statuses_are_pinned() {
        let io = DodError::from(std::io::Error::other("x"));
        let cases: Vec<(DodError, &str, u16)> = vec![
            (
                Query::new(-1.0, 3).expect_err("negative radius"),
                "invalid_radius",
                400,
            ),
            (
                DodError::InvalidWindow {
                    reason: "w".to_string(),
                },
                "invalid_window",
                400,
            ),
            (
                DodError::InvalidSpec {
                    reason: "s".to_string(),
                },
                "invalid_spec",
                400,
            ),
            (
                DodError::InvalidShardSpec {
                    reason: "s".to_string(),
                },
                "invalid_shard_spec",
                400,
            ),
            (
                DodError::SizeMismatch { index: 1, data: 2 },
                "size_mismatch",
                400,
            ),
            (
                DodError::FamilyMismatch {
                    expected: "a",
                    found: "b",
                },
                "family_mismatch",
                400,
            ),
            (
                DodError::Corrupt {
                    offset: 0,
                    reason: "c",
                },
                "corrupt",
                500,
            ),
            (io, "io", 503),
        ];
        for (e, kind, status) in &cases {
            assert_eq!(dod_error_kind(e), *kind, "{e}");
            assert_eq!(dod_error_status(e), *status, "{e}");
        }
    }

    /// Every HTTP-layer status the server can answer with has a stable
    /// envelope kind — including the framing failures (408/413/431/505)
    /// that never touch a route handler.
    #[test]
    fn http_error_kinds_are_pinned() {
        let table = [
            (400, "bad_request"),
            (404, "not_found"),
            (405, "method_not_allowed"),
            (408, "timeout"),
            (413, "payload_too_large"),
            (429, "too_many_requests"),
            (431, "headers_too_large"),
            (501, "not_implemented"),
            (503, "unavailable"),
            (505, "unsupported_version"),
        ];
        for (status, kind) in table {
            assert_eq!(http_error_kind(status), kind, "status {status}");
        }
        assert_eq!(http_error_kind(599), "http", "unknown statuses degrade");
    }

    /// The error body is the uniform envelope — and parses as one.
    #[test]
    fn error_bodies_are_envelopes() {
        let body = error_body("not_found", "no engine named \"x\"");
        let doc = parse_json(&body).expect("valid json");
        let envelope = dod_wire::shapes::ErrorEnvelope::from_json(&doc).expect("envelope");
        assert_eq!(envelope.kind, "not_found");
        assert_eq!(envelope.message, "no engine named \"x\"");
    }

    #[test]
    fn resource_paths_parse() {
        use Resource::*;
        let cases: Vec<(&str, Resource)> = vec![
            ("/v1/query", Query),
            ("/v1/ingest", Ingest),
            ("/v1/report", Report),
            ("/v1/engines", Engines),
            ("/v1/engines/prod", Engine("prod")),
            ("/v1/engines/prod/query", EngineQuery("prod")),
            ("/v1/engines/a-b_3", Engine("a-b_3")),
            ("/v1/sessions", Sessions),
            ("/v1/sessions/s1", Session("s1")),
            ("/v1/sessions/s1/ingest", SessionIngest("s1")),
            ("/v1/sessions/s1/report", SessionReport("s1")),
            ("/healthz", Healthz),
            ("/metrics", Metrics),
            ("/v1/debug/traces", DebugTraces),
            ("/v1/debug/health", DebugHealth),
            ("/v1/debug/slow", DebugSlow),
            // Malformed or hostile paths all fall to Unknown (→ 404).
            ("/", Unknown),
            ("/v1/engines/", Unknown),
            ("/v1/engines/a/b", Unknown),
            ("/v1/engines/prod/query/extra", Unknown),
            ("/v1/engines/bad name", Unknown),
            ("/v1/engines/../etc", Unknown),
            ("/v1/sessions/s1/flush", Unknown),
            ("/v2/engines", Unknown),
        ];
        for (path, want) in cases {
            assert_eq!(Resource::parse(path), want, "{path}");
        }
        let long = format!("/v1/engines/{}", "a".repeat(65));
        assert_eq!(Resource::parse(&long), Unknown, "names are length-capped");
    }

    /// Each mounted route pattern maps onto the Route metrics label its
    /// Resource parses to — the API table and the label set cannot drift
    /// apart.
    #[test]
    fn api_routes_cover_the_resource_space() {
        for (method, pattern) in API_ROUTES {
            let concrete = pattern.replace("{name}", "x").replace("{id}", "s1");
            let resource = Resource::parse(&concrete);
            assert_ne!(
                resource,
                Resource::Unknown,
                "{method} {pattern} does not parse"
            );
        }
    }

    #[test]
    fn query_params_decode_pairs_and_escapes() {
        assert_eq!(query_params(""), vec![]);
        assert_eq!(
            query_params("min_ms=1.5&route=%2Fv1%2Fquery"),
            vec![
                ("min_ms".to_string(), "1.5".to_string()),
                ("route".to_string(), "/v1/query".to_string()),
            ]
        );
        assert_eq!(query_params("a+b=c+d"), vec![("a b".into(), "c d".into())]);
        assert_eq!(query_params("flag"), vec![("flag".into(), String::new())]);
        // Bad escapes pass through literally, truncated ones included.
        assert_eq!(query_params("x=%zz"), vec![("x".into(), "%zz".into())]);
        assert_eq!(query_params("x=%2"), vec![("x".into(), "%2".into())]);
    }

    /// The traces filter is strict: every accepted spelling and every
    /// rejection is pinned here, because operators curl this endpoint by
    /// hand and a silently-ignored typo misleads a debugging session.
    #[test]
    fn trace_filters_parse_strictly() {
        assert_eq!(
            parse_trace_filter(""),
            Ok(TraceFilter {
                min_nanos: 0,
                route: None
            })
        );
        assert_eq!(
            parse_trace_filter("min_ms=1.5&route=%2Fv1%2Fquery"),
            Ok(TraceFilter {
                min_nanos: 1_500_000,
                route: Some("/v1/query".to_string())
            })
        );
        // Unencoded slashes and the synthetic labels work too.
        assert_eq!(
            parse_trace_filter("route=/v1/sessions/{id}/ingest")
                .unwrap()
                .route
                .as_deref(),
            Some("/v1/sessions/{id}/ingest")
        );
        assert!(parse_trace_filter("route=%3Cparse%3E").is_ok());
        // A non-numeric min_ms is a named 400, not a silent zero.
        let err = parse_trace_filter("min_ms=abc").unwrap_err();
        assert_eq!(err, "min_ms must be a non-negative number, got \"abc\"");
        for bad in ["min_ms=-1", "min_ms=inf", "min_ms="] {
            assert!(parse_trace_filter(bad).is_err(), "{bad}");
        }
        // A route matching no mounted pattern is a named 400, not an
        // empty 200.
        let err = parse_trace_filter("route=/v1/quary").unwrap_err();
        assert!(
            err.starts_with("unknown route \"/v1/quary\"; one of: "),
            "{err}"
        );
        assert!(err.contains("/v1/query"), "{err}");
        // Unknown keys are named too (the old behavior ignored them).
        let err = parse_trace_filter("min_mss=5").unwrap_err();
        assert_eq!(
            err,
            "unknown query parameter \"min_mss\"; supported: min_ms, route"
        );
        // The first offending pair wins; valid ones before it are fine.
        assert!(parse_trace_filter("min_ms=2&oops=1").is_err());
    }

    /// The slow-log filter mirrors the traces filter's strictness: every
    /// rejection is a named 400 (operators curl this endpoint by hand).
    #[test]
    fn slow_filters_parse_strictly() {
        assert_eq!(
            parse_slow_filter(""),
            Ok(SlowFilter {
                min_nanos: 0,
                engine: None
            })
        );
        assert_eq!(
            parse_slow_filter("min_ms=2.5&engine=prod"),
            Ok(SlowFilter {
                min_nanos: 2_500_000,
                engine: Some("prod".to_string())
            })
        );
        let err = parse_slow_filter("min_ms=abc").unwrap_err();
        assert_eq!(err, "min_ms must be a non-negative number, got \"abc\"");
        for bad in ["min_ms=-1", "min_ms=inf", "min_ms="] {
            assert!(parse_slow_filter(bad).is_err(), "{bad}");
        }
        // An engine value that could never name a resource is a named
        // 400, not an empty 200.
        let err = parse_slow_filter("engine=bad%20name").unwrap_err();
        assert_eq!(
            err,
            "engine must be a valid resource name, got \"bad name\""
        );
        // Unknown keys are named, with this endpoint's supported set.
        let err = parse_slow_filter("route=/v1/query").unwrap_err();
        assert_eq!(
            err,
            "unknown query parameter \"route\"; supported: min_ms, engine"
        );
    }

    /// The query body is strict end to end: unknown keys at either level
    /// and a non-boolean `"explain"` are named 400s, and the explain
    /// flag round-trips. (The silent-ignore behavior this replaces let a
    /// typoed `"explian"` run the query without its plan.)
    #[test]
    fn query_bodies_parse_strictly() {
        let ok = parse_queries(br#"{"queries": [{"r": 1.0, "k": 2}]}"#, 4).expect("plain body");
        assert_eq!(ok.0.len(), 1);
        assert!(!ok.1, "explain defaults off");
        let ok = parse_queries(br#"{"queries": [{"r": 1.0, "k": 2}], "explain": true}"#, 4)
            .expect("explained body");
        assert!(ok.1);
        let message = |resp: Response| {
            let doc = parse_json(std::str::from_utf8(&resp.body).expect("utf8")).expect("json");
            assert_eq!(resp.status, 400);
            dod_wire::shapes::ErrorEnvelope::from_json(&doc)
                .expect("envelope")
                .message
        };
        let err = parse_queries(br#"{"queries": [], "explian": true}"#, 4).unwrap_err();
        assert_eq!(
            message(err),
            "unknown key \"explian\" in query body; supported: queries, explain"
        );
        let err = parse_queries(br#"{"queries": [], "explain": 1}"#, 4).unwrap_err();
        assert_eq!(message(err), "\"explain\" must be a boolean, not a number");
        let err =
            parse_queries(br#"{"queries": [{"r": 1.0, "k": 2, "radius": 3}]}"#, 4).unwrap_err();
        assert_eq!(
            message(err),
            "query #0: unknown key \"radius\"; supported: r, k, threads"
        );
        // A body with no "queries" key keeps its original diagnosis.
        let err = parse_queries(br#"{"nope": 1}"#, 4).unwrap_err();
        assert_eq!(message(err), "body must be {\"queries\": [...]}");
    }

    #[test]
    fn route_patterns_are_unique_and_bounded() {
        let mut seen = std::collections::HashSet::new();
        for route in Route::ALL {
            assert!(
                seen.insert(route.pattern()),
                "duplicate {}",
                route.pattern()
            );
        }
        // The synthetic labels can never collide with a served path.
        assert!(Route::Parse.pattern().starts_with('<'));
        assert!(Route::Other.pattern().starts_with('<'));
    }

    #[test]
    fn index_wire_names_cover_every_display_name() {
        for (display, wire) in [
            ("MRPG", "mrpg"),
            ("NSW", "nsw"),
            ("KGraph", "kgraph"),
            ("VP-tree", "vptree"),
            ("Nested-loop", "none"),
        ] {
            assert_eq!(index_wire_name(display), wire);
            let spec: IndexSpec = wire.parse().expect("wire spelling parses");
            let _ = spec; // the mapping lands inside the canonical grammar
        }
    }
}
