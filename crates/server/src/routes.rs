//! Route dispatch and the JSON protocol: request decoding, response
//! encoding, and the `DodError`-derived error bodies.

use crate::http::Request;
use crate::State;
use dod_core::{DodError, OutlierReport, Query};
use dod_wire::{parse_json, JsonValue};

/// The served routes, used as the metrics label (bounded cardinality:
/// unknown paths all land in `Other`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Route {
    /// `POST /v1/query`
    Query,
    /// `POST /v1/ingest`
    Ingest,
    /// `GET /v1/report`
    Report,
    /// `GET /healthz`
    Healthz,
    /// `GET /metrics`
    Metrics,
    /// Everything else.
    Other,
}

impl Route {
    pub(crate) const ALL: [Route; 6] = [
        Route::Query,
        Route::Ingest,
        Route::Report,
        Route::Healthz,
        Route::Metrics,
        Route::Other,
    ];

    pub(crate) fn of(path: &str) -> Route {
        match path {
            "/v1/query" => Route::Query,
            "/v1/ingest" => Route::Ingest,
            "/v1/report" => Route::Report,
            "/healthz" => Route::Healthz,
            "/metrics" => Route::Metrics,
            _ => Route::Other,
        }
    }

    pub(crate) fn name(self) -> &'static str {
        match self {
            Route::Query => "query",
            Route::Ingest => "ingest",
            Route::Report => "report",
            Route::Healthz => "healthz",
            Route::Metrics => "metrics",
            Route::Other => "other",
        }
    }
}

/// A computed response, ready for the framing layer.
pub(crate) struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
}

impl Response {
    fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }

    fn text(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "text/plain; version=0.0.4",
            body: body.into_bytes(),
        }
    }
}

/// Upper bound on queries per batch and points per ingest call — the body
/// size limit bounds bytes, this bounds amplification (a tiny body
/// requesting enormous per-item work).
const MAX_BATCH_ITEMS: usize = 4096;

/// The `{"error": {"kind": …, "message": …}}` body every non-2xx answer
/// carries.
pub fn error_body(kind: &str, message: &str) -> String {
    JsonValue::obj([(
        "error",
        JsonValue::obj([("kind", kind), ("message", message)]),
    )])
    .render()
}

/// The error-body `kind` for a [`DodError`]: its variant, snake-cased.
pub fn dod_error_kind(e: &DodError) -> &'static str {
    match e {
        DodError::InvalidRadius { .. } => "invalid_radius",
        DodError::InvalidWindow { .. } => "invalid_window",
        DodError::InvalidSpec { .. } => "invalid_spec",
        DodError::InvalidShardSpec { .. } => "invalid_shard_spec",
        DodError::SizeMismatch { .. } => "size_mismatch",
        DodError::FamilyMismatch { .. } => "family_mismatch",
        DodError::Corrupt { .. } => "corrupt",
        DodError::Io(_) => "io",
        _ => "error",
    }
}

/// The HTTP status a [`DodError`] maps to: validation failures are the
/// caller's fault (400), I/O and corruption are the server's (5xx).
pub fn dod_error_status(e: &DodError) -> u16 {
    match e {
        DodError::InvalidRadius { .. }
        | DodError::InvalidWindow { .. }
        | DodError::InvalidSpec { .. }
        | DodError::InvalidShardSpec { .. }
        | DodError::SizeMismatch { .. }
        | DodError::FamilyMismatch { .. } => 400,
        DodError::Corrupt { .. } => 500,
        DodError::Io(_) => 503,
        _ => 500,
    }
}

fn dod_error_response(e: &DodError) -> Response {
    Response::json(
        dod_error_status(e),
        error_body(dod_error_kind(e), &e.to_string()),
    )
}

/// Deterministic wire encodings, public so integration tests (and other
/// clients of the protocol) can assert byte-identity between HTTP answers
/// and in-process calls.
pub mod encode {
    use super::*;

    /// One [`OutlierReport`] as its wire object. Timing fields are
    /// deliberately absent: they vary run to run, and the protocol's
    /// contract is that the same data and query produce the same bytes —
    /// latency belongs to `/metrics`.
    pub fn report_json(rep: &OutlierReport) -> JsonValue {
        JsonValue::obj([
            ("outliers", JsonValue::arr(rep.outliers.iter().copied())),
            ("candidates", JsonValue::from(rep.candidates)),
            ("false_positives", JsonValue::from(rep.false_positives)),
            ("decided_in_filter", JsonValue::from(rep.decided_in_filter)),
        ])
    }

    /// The `/v1/query` response body for a batch of reports.
    pub fn query_response(reports: &[OutlierReport]) -> String {
        JsonValue::obj([(
            "results",
            JsonValue::Arr(reports.iter().map(report_json).collect()),
        )])
        .render()
    }

    /// The `/v1/report` response body: current outliers as global stream
    /// seqs, ascending (the
    /// [`ShardedStreamDetector::outliers`](dod_shard::ShardedStreamDetector::outliers)
    /// shape).
    pub fn stream_report_response(outlier_seqs: &[u64]) -> String {
        JsonValue::obj([("outliers", JsonValue::arr(outlier_seqs.iter().copied()))]).render()
    }

    /// The `/v1/ingest` response body.
    pub fn ingest_response(accepted: usize) -> String {
        JsonValue::obj([("accepted", JsonValue::from(accepted))]).render()
    }
}

/// Decodes the `/v1/query` body into validated queries. A wire-supplied
/// `"threads"` is clamped to `max_threads`: the body size limit bounds
/// bytes and [`MAX_BATCH_ITEMS`] bounds items, this bounds the third
/// amplification axis (one tiny query demanding millions of OS threads
/// from `par_map_strided`).
fn parse_queries(body: &[u8], max_threads: usize) -> Result<Vec<Query>, Response> {
    let doc = parse_body(body)?;
    let Some(items) = doc.get("queries").and_then(JsonValue::as_arr) else {
        return Err(bad_request("body must be {\"queries\": [...]}"));
    };
    if items.len() > MAX_BATCH_ITEMS {
        return Err(bad_request(&format!(
            "batch of {} queries exceeds the limit of {MAX_BATCH_ITEMS}",
            items.len()
        )));
    }
    let mut queries = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let r = item.get("r").and_then(JsonValue::as_f64);
        let k = item.get("k").and_then(JsonValue::as_usize);
        let (Some(r), Some(k)) = (r, k) else {
            return Err(bad_request(&format!(
                "query #{i} must carry a numeric \"r\" and a non-negative integer \"k\""
            )));
        };
        let mut q = Query::new(r, k).map_err(|e| dod_error_response(&e))?;
        if let Some(threads) = item.get("threads") {
            let Some(threads) = threads.as_usize() else {
                return Err(bad_request(&format!(
                    "query #{i}: \"threads\" must be a non-negative integer"
                )));
            };
            q = q.with_threads(threads.min(max_threads));
        }
        queries.push(q);
    }
    Ok(queries)
}

/// Decodes the `/v1/ingest` body into dimension-checked points.
fn parse_points(body: &[u8], dim: usize) -> Result<Vec<Vec<f32>>, Response> {
    let doc = parse_body(body)?;
    let Some(items) = doc.get("points").and_then(JsonValue::as_arr) else {
        return Err(bad_request("body must be {\"points\": [[...], ...]}"));
    };
    if items.len() > MAX_BATCH_ITEMS {
        return Err(bad_request(&format!(
            "batch of {} points exceeds the limit of {MAX_BATCH_ITEMS}",
            items.len()
        )));
    }
    let mut points = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let Some(coords) = item.as_arr() else {
            // A string (or object) where a vector belongs is a family
            // mismatch in protocol form.
            return Err(Response::json(
                400,
                error_body(
                    "family_mismatch",
                    &format!(
                        "point #{i}: this stream serves {dim}-d vectors, not {}",
                        kind_of(item)
                    ),
                ),
            ));
        };
        if coords.len() != dim {
            return Err(Response::json(
                400,
                error_body(
                    "family_mismatch",
                    &format!(
                        "point #{i} has dimension {}, the stream's space is {dim}-d",
                        coords.len()
                    ),
                ),
            ));
        }
        let mut p = Vec::with_capacity(dim);
        for c in coords {
            let v = c.as_f64().unwrap_or(f64::NAN) as f32;
            if !v.is_finite() {
                return Err(bad_request(&format!(
                    "point #{i} carries a non-finite or non-numeric coordinate"
                )));
            }
            p.push(v);
        }
        points.push(p);
    }
    Ok(points)
}

fn kind_of(v: &JsonValue) -> &'static str {
    match v {
        JsonValue::Num(_) => "a number",
        JsonValue::Str(_) => "a string",
        JsonValue::Bool(_) => "a boolean",
        JsonValue::Null => "null",
        JsonValue::Arr(_) => "an array",
        JsonValue::Obj(_) => "an object",
    }
}

fn parse_body(body: &[u8]) -> Result<JsonValue, Response> {
    let text = std::str::from_utf8(body)
        .map_err(|_| Response::json(400, error_body("bad_json", "body is not UTF-8")))?;
    parse_json(text).map_err(|e| Response::json(400, error_body("bad_json", &e)))
}

fn bad_request(message: &str) -> Response {
    Response::json(400, error_body("bad_request", message))
}

fn method_not_allowed(allowed: &str) -> Response {
    Response::json(
        405,
        error_body("method_not_allowed", &format!("use {allowed}")),
    )
}

fn unavailable(what: &str) -> Response {
    Response::json(
        503,
        error_body(
            "unavailable",
            &format!("this server was started without {what}"),
        ),
    )
}

/// Answers one request. Infallible by construction: every failure path is
/// a 4xx/5xx response, so a malformed request can never take the worker
/// (or the connection pool) down.
pub(crate) fn dispatch(state: &State, req: &Request) -> (Route, Response) {
    let route = Route::of(&req.path);
    let resp = match route {
        Route::Query => match req.method.as_str() {
            "POST" => handle_query(state, req),
            _ => method_not_allowed("POST"),
        },
        Route::Ingest => match req.method.as_str() {
            "POST" => handle_ingest(state, req),
            _ => method_not_allowed("POST"),
        },
        Route::Report => match req.method.as_str() {
            "GET" => handle_report(state),
            _ => method_not_allowed("GET"),
        },
        Route::Healthz => match req.method.as_str() {
            "GET" => Response::json(
                200,
                JsonValue::obj([
                    ("status", JsonValue::from("ok")),
                    ("engine", JsonValue::from(state.engine.is_some())),
                    ("stream", JsonValue::from(state.stream.is_some())),
                ])
                .render(),
            ),
            _ => method_not_allowed("GET"),
        },
        Route::Metrics => match req.method.as_str() {
            "GET" => Response::text(200, crate::prom::render(state)),
            _ => method_not_allowed("GET"),
        },
        Route::Other => Response::json(
            404,
            error_body("not_found", &format!("no route {}", req.path)),
        ),
    };
    (route, resp)
}

fn handle_query(state: &State, req: &Request) -> Response {
    let Some(engine) = &state.engine else {
        return unavailable("an engine");
    };
    let queries = match parse_queries(&req.body, state.max_query_threads) {
        Ok(q) => q,
        Err(resp) => return resp,
    };
    match engine.query_many(&queries) {
        Ok(reports) => Response::json(200, encode::query_response(&reports)),
        Err(e) => dod_error_response(&e),
    }
}

fn handle_ingest(state: &State, req: &Request) -> Response {
    let Some(stream) = &state.stream else {
        return unavailable("a stream session");
    };
    let points = match parse_points(&req.body, stream.dim()) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let accepted = points.len();
    match stream.insert_many(points) {
        Ok(()) => {
            // Counted only once the pipeline has the points: a dead
            // pipeline answering 5xx must not inflate the accept counter.
            state.ingested_points.add(accepted as u64);
            Response::json(200, encode::ingest_response(accepted))
        }
        Err(e) => dod_error_response(&e),
    }
}

fn handle_report(state: &State) -> Response {
    let Some(stream) = &state.stream else {
        return unavailable("a stream session");
    };
    match stream.outliers() {
        Ok(seqs) => Response::json(200, encode::stream_report_response(&seqs)),
        Err(e) => dod_error_response(&e),
    }
}
