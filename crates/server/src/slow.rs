//! The slow-query log: a bounded, sorted ring of the N slowest
//! engine-query requests since startup, each carrying its cost plan —
//! served by `GET /v1/debug/slow` and cross-linkable to
//! `GET /v1/debug/traces` through the shared request id.

use dod_core::CostReport;
use dod_wire::JsonValue;
use std::sync::{Arc, Mutex};

/// One recorded query request: identity, duration, and the aggregated
/// cost plan of every query in the batch.
pub(crate) struct SlowQuery {
    /// The request id the response echoed — look the same id up in
    /// `/v1/debug/traces` for the span breakdown.
    pub(crate) request_id: String,
    /// The engine that answered (legacy `/v1/query` records as
    /// `"default"`).
    pub(crate) engine: String,
    /// Wall time of the `query_many` call, socket time excluded.
    pub(crate) duration_nanos: u64,
    /// Queries in the batch.
    pub(crate) queries: u64,
    /// Objects the engine served at answer time — the pruning-power
    /// baseline is per query, `n·(n−1)` each.
    pub(crate) dataset_size: u64,
    /// Summed cost over the batch.
    pub(crate) cost: CostReport,
}

impl SlowQuery {
    /// Pruning power of the whole batch against its nested-loop
    /// baseline, `queries · n·(n−1)`.
    pub(crate) fn pruning_power(&self) -> f64 {
        let n = self.dataset_size as f64;
        let baseline = self.queries as f64 * n * (n - 1.0);
        if baseline <= 0.0 {
            return 0.0;
        }
        (1.0 - self.cost.total_dist_evals() as f64 / baseline).max(0.0)
    }
}

/// Keep-N-slowest storage. Unlike the trace ring (last N in arrival
/// order), the slow ring is sorted by duration and keeps the slowest
/// requests *ever*: the pathological query from an hour ago is exactly
/// the one the operator wants to still be able to see.
pub(crate) struct SlowRing {
    entries: Mutex<Vec<Arc<SlowQuery>>>,
    capacity: usize,
}

impl SlowRing {
    pub(crate) fn new(capacity: usize) -> Self {
        SlowRing {
            entries: Mutex::new(Vec::with_capacity(capacity.min(1024))),
            capacity,
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts the entry if it ranks among the N slowest seen so far
    /// (ties keep the earlier arrival first).
    pub(crate) fn record(&self, entry: SlowQuery) {
        let mut entries = match self.entries.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let pos = entries.partition_point(|e| e.duration_nanos >= entry.duration_nanos);
        if pos >= self.capacity {
            return;
        }
        entries.insert(pos, Arc::new(entry));
        entries.truncate(self.capacity);
    }

    /// The current entries, slowest first.
    pub(crate) fn snapshot(&self) -> Vec<Arc<SlowQuery>> {
        match self.entries.lock() {
            Ok(g) => g.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }
}

/// One slow entry as its wire object — `duration_ns` and `request_id`
/// spelled exactly as in the traces ring, so the two endpoints join on
/// both fields. The cost plan is the batch aggregate, so its pruning
/// power is measured against the batch baseline `queries · n·(n−1)`
/// (unlike a per-result EXPLAIN plan, whose baseline is one query's).
pub(crate) fn slow_json(e: &SlowQuery) -> JsonValue {
    let cost = dod_wire::shapes::QueryCostShape {
        filter_dist_evals: e.cost.filter_dist_evals,
        verify_dist_evals: e.cost.verify_dist_evals,
        total_dist_evals: e.cost.total_dist_evals(),
        hops: e.cost.hops,
        pruning_power: e.pruning_power(),
    };
    JsonValue::obj([
        ("request_id", JsonValue::from(e.request_id.as_str())),
        ("engine", JsonValue::from(e.engine.as_str())),
        ("duration_ns", JsonValue::from(e.duration_nanos)),
        ("queries", JsonValue::from(e.queries)),
        ("cost", cost.to_json()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: &str, nanos: u64) -> SlowQuery {
        SlowQuery {
            request_id: id.to_string(),
            engine: "default".to_string(),
            duration_nanos: nanos,
            queries: 1,
            dataset_size: 100,
            cost: CostReport {
                filter_dist_evals: 10,
                verify_dist_evals: 5,
                hops: 3,
            },
        }
    }

    #[test]
    fn ring_keeps_the_slowest_n_sorted() {
        let ring = SlowRing::new(3);
        for (id, nanos) in [("a", 5), ("b", 9), ("c", 1), ("d", 7), ("e", 2)] {
            ring.record(entry(id, nanos));
        }
        let ids: Vec<String> = ring
            .snapshot()
            .iter()
            .map(|e| e.request_id.clone())
            .collect();
        assert_eq!(ids, vec!["b", "d", "a"], "slowest three, slowest first");
        // A new slowest entry displaces the current tail.
        ring.record(entry("f", 100));
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].request_id, "f");
        assert_eq!(snap[2].request_id, "d");
    }

    #[test]
    fn pruning_power_uses_the_per_query_baseline() {
        let mut e = entry("x", 1);
        // 2 queries over n = 100: baseline 2 · 100·99 = 19800.
        e.queries = 2;
        e.cost.filter_dist_evals = 1800;
        e.cost.verify_dist_evals = 180;
        let power = e.pruning_power();
        assert!((power - 0.9).abs() < 1e-12, "{power}");
        // No baseline (empty engine) degrades to zero, not NaN.
        e.dataset_size = 0;
        assert_eq!(e.pruning_power(), 0.0);
    }
}
