//! Minimal, allocation-conscious HTTP/1.1 framing: request parsing with
//! content-length bodies and keep-alive, response writing.
//!
//! This is deliberately not a general HTTP implementation — it is the
//! subset the protocol needs (no chunked bodies, no multipart, no TLS),
//! hardened where a public socket demands it: every limit (request-line
//! bytes, header count and size, body bytes) is enforced *before* the
//! bytes are buffered, and every malformed input becomes a typed
//! [`HttpError`] carrying the status to answer with, never a panic.

use std::io::{BufRead, Read, Write};

/// Upper bound on the request line, per header line, and on the header
/// block as a whole — standard proxy-grade limits.
const MAX_LINE_BYTES: usize = 8 * 1024;
/// Upper bound on the number of headers per request.
const MAX_HEADERS: usize = 64;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// The path, query string stripped.
    pub path: String,
    /// The raw query string (after `?`, empty when absent).
    pub query: String,
    /// Whether the request line said `HTTP/1.0` (keep-alive defaults
    /// differ between 1.0 and 1.1).
    pub http10: bool,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a (lower-case) header name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open. HTTP/1.1
    /// defaults to keep-alive unless `Connection: close`; HTTP/1.0
    /// defaults to close unless the client explicitly opts in with
    /// `Connection: keep-alive` (a strict 1.0 client that ignores our
    /// connection header would otherwise wait on a socket we hold open).
    pub fn keep_alive(&self) -> bool {
        // The header value is a comma-separated token list ("close, te"),
        // and repeated Connection lines are equivalent to one joined list.
        let has = |token: &str| {
            self.headers
                .iter()
                .filter(|(k, _)| k == "connection")
                .flat_map(|(_, v)| v.split(','))
                .any(|t| t.trim().eq_ignore_ascii_case(token))
        };
        if self.http10 {
            has("keep-alive")
        } else {
            !has("close")
        }
    }
}

/// A protocol-level failure: the status to answer with and a message for
/// the error body.
#[derive(Debug)]
pub struct HttpError {
    /// HTTP status code.
    pub status: u16,
    /// Human-readable description (lands in the JSON error body).
    pub message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> Self {
        HttpError {
            status,
            message: message.into(),
        }
    }
}

/// Reads one line terminated by `\n`, capped at [`MAX_LINE_BYTES`].
/// Returns `None` on clean EOF before any byte.
fn read_line<R: BufRead>(r: &mut R) -> Result<Option<String>, HttpError> {
    let mut buf = Vec::new();
    let mut limited = r.take(MAX_LINE_BYTES as u64 + 1);
    let n = limited.read_until(b'\n', &mut buf).map_err(|e| {
        // 408 only for timeouts (per-read or whole-request deadline);
        // resets and other transport failures are the client's 400.
        let status = match e.kind() {
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => 408,
            _ => 400,
        };
        HttpError::new(status, format!("read failed: {e}"))
    })?;
    if n == 0 {
        return Ok(None);
    }
    if buf.len() > MAX_LINE_BYTES {
        return Err(HttpError::new(431, "header line too long"));
    }
    while matches!(buf.last(), Some(b'\n' | b'\r')) {
        buf.pop();
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| HttpError::new(400, "request head is not UTF-8"))
}

/// Reads one request off the connection. `Ok(None)` means the client
/// closed cleanly between requests (the keep-alive loop ends).
pub fn read_request<R: BufRead>(r: &mut R, max_body: usize) -> Result<Option<Request>, HttpError> {
    // Tolerate a few stray blank lines between requests (lenient parsers
    // accept them) — bounded, so a client streaming CRLFs cannot pin the
    // worker (or, recursively, its stack).
    let line;
    let mut strays = 0;
    loop {
        let Some(l) = read_line(r)? else {
            return Ok(None);
        };
        if !l.is_empty() {
            line = l;
            break;
        }
        strays += 1;
        if strays > 8 {
            return Err(HttpError::new(400, "too many blank lines between requests"));
        }
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::new(
            400,
            format!("malformed request line {line:?}"),
        ));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::new(
            505,
            format!("unsupported version {version}"),
        ));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut headers = Vec::new();
    loop {
        let Some(line) = read_line(r)? else {
            return Err(HttpError::new(400, "connection closed mid-headers"));
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::new(431, "too many headers"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::new(400, format!("malformed header {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let req = Request {
        method: method.to_ascii_uppercase(),
        path,
        query,
        http10: version == "HTTP/1.0",
        headers,
        body: Vec::new(),
    };

    if req
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::new(
            501,
            "chunked transfer encoding not supported",
        ));
    }
    let len = match req.header("content-length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::new(400, format!("bad content-length {v:?}")))?,
    };
    if len > max_body {
        // Answered before a single body byte is buffered: an oversized
        // Content-Length cannot make the server allocate.
        return Err(HttpError::new(
            413,
            format!("body of {len} bytes exceeds the {max_body}-byte limit"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(|e| {
        // A timeout mid-body (per-read or whole-request deadline) is the
        // client being slow, not the body being short.
        let status = match e.kind() {
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => 408,
            _ => 400,
        };
        HttpError::new(status, format!("body shorter than content-length: {e}"))
    })?;
    Ok(Some(Request { body, ..req }))
}

/// The reason phrase for the statuses this server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "",
    }
}

/// Writes one response with explicit content-length framing. A
/// `request_id` (sanitized or server-generated — never raw client input)
/// is echoed as `x-request-id` so clients can correlate answers with
/// traces and access-log lines.
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    request_id: Option<&str>,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        status_text(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    if let Some(id) = request_id {
        head.push_str("x-request-id: ");
        head.push_str(id);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()), 1024)
    }

    #[test]
    fn parses_a_post_with_body_and_strips_query() {
        let req =
            parse("POST /v1/query?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nbodyEXTRA")
                .expect("ok")
                .expect("some");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/query");
        assert_eq!(req.query, "x=1");
        assert_eq!(req.header("host"), Some("h"));
        assert_eq!(req.body, b"body");
        assert!(req.keep_alive());
    }

    #[test]
    fn connection_close_is_honored() {
        let req = parse("GET / HTTP/1.1\r\nConnection: CLOSE\r\n\r\n")
            .expect("ok")
            .expect("some");
        assert!(!req.keep_alive());
        // The header is a token list, not a single value…
        let req = parse("GET / HTTP/1.1\r\nConnection: close, te\r\n\r\n")
            .expect("ok")
            .expect("some");
        assert!(!req.keep_alive());
        // …and repeated Connection lines join into one list.
        let req = parse("GET / HTTP/1.1\r\nConnection: te\r\nConnection: close\r\n\r\n")
            .expect("ok")
            .expect("some");
        assert!(!req.keep_alive());
    }

    #[test]
    fn http10_defaults_to_close_unless_opted_in() {
        let req = parse("GET / HTTP/1.0\r\n\r\n").expect("ok").expect("some");
        assert!(req.http10);
        assert!(!req.keep_alive(), "1.0 must default to close");
        let req = parse("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n")
            .expect("ok")
            .expect("some");
        assert!(req.keep_alive(), "1.0 may opt in explicitly");
        let req = parse("GET / HTTP/1.0\r\nConnection: keep-alive, te\r\n\r\n")
            .expect("ok")
            .expect("some");
        assert!(req.keep_alive(), "1.0 opt-in works inside a token list");
    }

    #[test]
    fn clean_eof_is_none_not_an_error() {
        assert!(parse("").expect("ok").is_none());
    }

    #[test]
    fn malformed_inputs_map_to_statuses() {
        assert_eq!(parse("garbage\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse("GET / SPDY/3\r\n\r\n").unwrap_err().status, 505);
        assert_eq!(
            parse("GET / HTTP/1.1\r\nbad header line\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: nine\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n")
                .unwrap_err()
                .status,
            413
        );
        assert_eq!(
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
                .unwrap_err()
                .status,
            501
        );
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: 8\r\n\r\nshrt")
                .unwrap_err()
                .status,
            400
        );
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(10_000));
        assert_eq!(parse(&long).unwrap_err().status, 431);
    }

    #[test]
    fn blank_line_floods_are_bounded_not_recursive() {
        // A few stray blank lines are tolerated…
        let req = parse("\r\n\r\nGET / HTTP/1.1\r\n\r\n")
            .expect("ok")
            .expect("some");
        assert_eq!(req.method, "GET");
        // …but a CRLF flood is a 400, not unbounded work (or, in the old
        // recursive implementation, a stack overflow).
        let flood = "\r\n".repeat(100_000) + "GET / HTTP/1.1\r\n\r\n";
        assert_eq!(parse(&flood).unwrap_err().status, 400);
    }

    #[test]
    fn header_count_is_bounded() {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..100 {
            raw.push_str(&format!("x-h-{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        assert_eq!(parse(&raw).unwrap_err().status, 431);
    }

    #[test]
    fn responses_are_framed_with_content_length() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{}", true, None).expect("write");
        let s = String::from_utf8(out).expect("utf8");
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"), "{s}");
        assert!(s.contains("content-length: 2\r\n"), "{s}");
        assert!(s.contains("connection: keep-alive\r\n"), "{s}");
        assert!(!s.contains("x-request-id"), "{s}");
        assert!(s.ends_with("\r\n\r\n{}"), "{s}");
    }

    #[test]
    fn responses_echo_the_request_id() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{}", false, Some("r-9"))
            .expect("write");
        let s = String::from_utf8(out).expect("utf8");
        assert!(s.contains("x-request-id: r-9\r\n"), "{s}");
        assert!(s.ends_with("\r\n\r\n{}"), "{s}");
    }
}
