//! Property tests: the VP-tree must agree with brute force on arbitrary
//! data — vectors and strings — for range counting, range search and kNN.
//! The verification phase of Algorithm 1 leans on this index, so an
//! incorrect prune here would silently break the paper's exactness claim.

use dod_metrics::{Dataset, StringSet, VectorSet, L2};
use dod_vptree::VpTree;
use proptest::prelude::*;

fn points(max_n: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(
        (-20.0f32..20.0, -20.0f32..20.0, -20.0f32..20.0).prop_map(|(x, y, z)| vec![x, y, z]),
        1..max_n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn range_count_matches_brute_force(
        rows in points(120),
        r in 0.0f64..30.0,
        seed in 0u64..100,
    ) {
        let data = VectorSet::from_rows(&rows, L2);
        let tree = VpTree::build(&data, seed);
        for q in 0..data.len().min(20) {
            let truth = (0..data.len())
                .filter(|&j| j != q && data.dist(q, j) <= r)
                .count();
            prop_assert_eq!(tree.range_count(&data, q, r, usize::MAX), truth);
        }
    }

    #[test]
    fn range_search_returns_exactly_the_ball(
        rows in points(100),
        r in 0.0f64..20.0,
    ) {
        let data = VectorSet::from_rows(&rows, L2);
        let tree = VpTree::build(&data, 1);
        for q in 0..data.len().min(10) {
            let mut got = tree.range_search(&data, q, r);
            got.sort_unstable();
            let want: Vec<u32> = (0..data.len())
                .filter(|&j| j != q && data.dist(q, j) <= r)
                .map(|j| j as u32)
                .collect();
            prop_assert_eq!(&got, &want, "q={}", q);
        }
    }

    #[test]
    fn early_termination_never_changes_the_verdict(
        rows in points(100),
        r in 0.0f64..20.0,
        k in 1usize..10,
    ) {
        // The DOD decision is count < k; capping the count at k must give
        // the same verdict as the full count.
        let data = VectorSet::from_rows(&rows, L2);
        let tree = VpTree::build(&data, 2);
        for q in 0..data.len().min(15) {
            let full = tree.range_count(&data, q, r, usize::MAX);
            let capped = tree.range_count(&data, q, r, k);
            prop_assert_eq!(full < k, capped < k, "q={}", q);
            prop_assert!(capped <= k);
        }
    }

    #[test]
    fn knn_distances_match_brute_force(
        rows in points(80),
        k in 1usize..8,
    ) {
        let data = VectorSet::from_rows(&rows, L2);
        let tree = VpTree::build(&data, 3);
        for q in 0..data.len().min(10) {
            let got: Vec<f64> = tree.knn(&data, q, k).iter().map(|p| p.0).collect();
            let mut all: Vec<f64> = (0..data.len())
                .filter(|&j| j != q)
                .map(|j| data.dist(q, j))
                .collect();
            all.sort_by(f64::total_cmp);
            let want: Vec<f64> = all.into_iter().take(k).collect();
            prop_assert_eq!(got, want, "q={}", q);
        }
    }

    #[test]
    fn works_on_random_strings(
        words in prop::collection::vec("[a-e]{0,10}", 2..50),
        r in 0.0f64..6.0,
    ) {
        let data = StringSet::new(words.iter().map(String::as_str));
        let tree = VpTree::build(&data, 4);
        for q in 0..data.len().min(10) {
            let truth = (0..data.len())
                .filter(|&j| j != q && data.dist(q, j) <= r)
                .count();
            prop_assert_eq!(tree.range_count(&data, q, r, usize::MAX), truth);
        }
    }
}
