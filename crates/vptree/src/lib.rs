//! VP-tree (vantage-point tree) metric index.
//!
//! The paper uses the VP-tree [Yianilos, SODA'93] in three roles:
//!
//! 1. as the strongest tree baseline for the DOD problem (per \[13\], the
//!    most efficient metric range-search index),
//! 2. as the `Exact-Counting` engine of Algorithm 1's verification phase on
//!    data with low intrinsic dimensionality,
//! 3. (a ball-partitioning variant, in `dod-graph`) to initialize
//!    NNDescent+.
//!
//! This implementation builds by recursive *median* splits on the distance
//! to a randomly chosen vantage point, which keeps the tree balanced even
//! with duplicated objects (ties are split positionally). Each internal
//! node stores the exact `[min, max]` distance interval of both children to
//! the vantage point, giving strictly tighter pruning than the single
//! `mu` radius described in §3 of the paper.
//!
//! All query entry points take *object ids* (queries in the DOD problem are
//! themselves members of the dataset) and exclude the query id from counts
//! and results, matching Definition 1 (a neighbor of `p` is drawn from
//! `P \ {p}`).

use dod_metrics::{Dataset, OrdF64};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BinaryHeap;

const NONE: u32 = u32::MAX;

/// Number of objects at which recursion stops and a leaf is emitted.
/// Scanning a few objects linearly beats further indirection (perf-book:
/// handle small sizes specially).
const LEAF_CAP: usize = 16;

#[derive(Debug, Clone)]
struct Node {
    /// Vantage point object id (internal nodes) or `NONE` for leaves.
    vp: u32,
    /// Children (internal) or `NONE`.
    left: u32,
    right: u32,
    /// Exact distance interval of the left child's objects to `vp`.
    left_lo: f64,
    left_hi: f64,
    /// Exact distance interval of the right child's objects to `vp`.
    right_lo: f64,
    right_hi: f64,
    /// Leaf payload: range into `leaf_ids` (leaves only).
    leaf_start: u32,
    leaf_len: u32,
}

impl Node {
    fn leaf(start: u32, len: u32) -> Self {
        Node {
            vp: NONE,
            left: NONE,
            right: NONE,
            left_lo: 0.0,
            left_hi: 0.0,
            right_lo: 0.0,
            right_hi: 0.0,
            leaf_start: start,
            leaf_len: len,
        }
    }

    fn is_leaf(&self) -> bool {
        self.vp == NONE
    }
}

/// A VP-tree over all objects of a dataset.
pub struct VpTree {
    nodes: Vec<Node>,
    leaf_ids: Vec<u32>,
    root: u32,
    n: usize,
}

impl VpTree {
    /// Builds the tree over every object of `data`. Vantage points are
    /// chosen with the seeded RNG, so builds are deterministic per seed.
    ///
    /// Runs in `O(n log n)` expected time (median selection per level).
    pub fn build<D: Dataset + ?Sized>(data: &D, seed: u64) -> Self {
        let n = data.len();
        let mut ids: Vec<u32> = (0..n as u32).collect();
        let mut tree = VpTree {
            nodes: Vec::with_capacity(n / LEAF_CAP * 2 + 1),
            leaf_ids: Vec::with_capacity(n),
            root: NONE,
            n,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scratch: Vec<(f64, u32)> = Vec::with_capacity(n);
        tree.root = tree.build_rec(data, &mut ids[..], &mut rng, &mut scratch);
        tree
    }

    fn build_rec<D: Dataset + ?Sized>(
        &mut self,
        data: &D,
        ids: &mut [u32],
        rng: &mut StdRng,
        scratch: &mut Vec<(f64, u32)>,
    ) -> u32 {
        if ids.is_empty() {
            return NONE;
        }
        if ids.len() <= LEAF_CAP {
            let start = self.leaf_ids.len() as u32;
            self.leaf_ids.extend_from_slice(ids);
            self.nodes.push(Node::leaf(start, ids.len() as u32));
            return (self.nodes.len() - 1) as u32;
        }
        // Random vantage point, removed from the id set.
        let pick = rng.gen_range(0..ids.len());
        ids.swap(0, pick);
        let vp = ids[0];
        scratch.clear();
        scratch.extend(
            ids[1..]
                .iter()
                .map(|&id| (data.dist(vp as usize, id as usize), id)),
        );
        // Positional median split: balanced regardless of ties.
        let mid = scratch.len() / 2;
        scratch.select_nth_unstable_by(mid, |a, b| a.0.total_cmp(&b.0));
        let (left_half, right_half) = scratch.split_at(mid);
        let bounds = |part: &[(f64, u32)]| -> (f64, f64) {
            part.iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |acc, &(d, _)| {
                    (acc.0.min(d), acc.1.max(d))
                })
        };
        let (left_lo, left_hi) = bounds(left_half);
        let (right_lo, right_hi) = bounds(right_half);
        // Copy the partitioned ids out before recursing (scratch is reused).
        let mut left_ids: Vec<u32> = left_half.iter().map(|&(_, id)| id).collect();
        let mut right_ids: Vec<u32> = right_half.iter().map(|&(_, id)| id).collect();

        let node_idx = self.nodes.len() as u32;
        self.nodes.push(Node {
            vp,
            left: NONE,
            right: NONE,
            left_lo,
            left_hi,
            right_lo,
            right_hi,
            leaf_start: 0,
            leaf_len: 0,
        });
        let left = self.build_rec(data, &mut left_ids[..], rng, scratch);
        let right = self.build_rec(data, &mut right_ids[..], rng, scratch);
        self.nodes[node_idx as usize].left = left;
        self.nodes[node_idx as usize].right = right;
        node_idx
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when no objects are indexed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Heap footprint of the index in bytes (paper Table 6 reports index
    /// sizes; object storage is accounted separately by the dataset).
    pub fn size_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<Node>()
            + self.leaf_ids.len() * std::mem::size_of::<u32>()
    }

    /// Counts objects within distance `r` of object `query` (excluding
    /// `query` itself), stopping early once the count reaches `limit`.
    ///
    /// With `limit = k` this is exactly the paper's `Exact-Counting`
    /// primitive: the return value is `min(true_count, limit)`.
    pub fn range_count<D: Dataset + ?Sized>(
        &self,
        data: &D,
        query: usize,
        r: f64,
        limit: usize,
    ) -> usize {
        if limit == 0 || self.root == NONE {
            return 0;
        }
        let mut count = 0;
        // Explicit stack; depth is O(log n) but recursion would thread the
        // early-exit flag awkwardly.
        let mut stack = vec![self.root];
        while let Some(idx) = stack.pop() {
            let node = &self.nodes[idx as usize];
            if node.is_leaf() {
                let ids = &self.leaf_ids
                    [node.leaf_start as usize..(node.leaf_start + node.leaf_len) as usize];
                for &id in ids {
                    if id as usize != query && data.dist(query, id as usize) <= r {
                        count += 1;
                        if count >= limit {
                            return count;
                        }
                    }
                }
                continue;
            }
            let d = data.dist(query, node.vp as usize);
            if d <= r && node.vp as usize != query {
                count += 1;
                if count >= limit {
                    return count;
                }
            }
            // A child can contain a neighbor only if its distance interval
            // to the vantage point intersects [d - r, d + r] (triangle
            // inequality both ways).
            if node.left != NONE && d - r <= node.left_hi && d + r >= node.left_lo {
                stack.push(node.left);
            }
            if node.right != NONE && d - r <= node.right_hi && d + r >= node.right_lo {
                stack.push(node.right);
            }
        }
        count
    }

    /// Collects the ids of all objects within distance `r` of `query`
    /// (excluding `query` itself), in no particular order.
    pub fn range_search<D: Dataset + ?Sized>(&self, data: &D, query: usize, r: f64) -> Vec<u32> {
        let mut out = Vec::new();
        if self.root == NONE {
            return out;
        }
        let mut stack = vec![self.root];
        while let Some(idx) = stack.pop() {
            let node = &self.nodes[idx as usize];
            if node.is_leaf() {
                let ids = &self.leaf_ids
                    [node.leaf_start as usize..(node.leaf_start + node.leaf_len) as usize];
                out.extend(
                    ids.iter()
                        .copied()
                        .filter(|&id| id as usize != query && data.dist(query, id as usize) <= r),
                );
                continue;
            }
            let d = data.dist(query, node.vp as usize);
            if d <= r && node.vp as usize != query {
                out.push(node.vp);
            }
            if node.left != NONE && d - r <= node.left_hi && d + r >= node.left_lo {
                stack.push(node.left);
            }
            if node.right != NONE && d - r <= node.right_hi && d + r >= node.right_lo {
                stack.push(node.right);
            }
        }
        out
    }

    /// The `k` nearest neighbors of object `query` (excluding itself),
    /// ascending by distance. Returns fewer than `k` pairs only if the
    /// dataset has fewer than `k + 1` objects.
    ///
    /// Best-first branch-and-bound on the stored child intervals.
    pub fn knn<D: Dataset + ?Sized>(&self, data: &D, query: usize, k: usize) -> Vec<(f64, u32)> {
        if k == 0 || self.root == NONE {
            return Vec::new();
        }
        // Max-heap of current best k (top = worst kept distance).
        let mut best: BinaryHeap<(OrdF64, u32)> = BinaryHeap::with_capacity(k + 1);
        fn consider(d: f64, id: u32, k: usize, best: &mut BinaryHeap<(OrdF64, u32)>) {
            if best.len() < k {
                best.push((OrdF64(d), id));
            } else if d < best.peek().expect("non-empty").0 .0 {
                best.pop();
                best.push((OrdF64(d), id));
            }
        }
        use std::cmp::Reverse;
        // Min-heap of subtrees keyed by their distance lower bound.
        let mut frontier: BinaryHeap<(Reverse<OrdF64>, u32)> = BinaryHeap::new();
        frontier.push((Reverse(OrdF64(0.0)), self.root));
        while let Some((Reverse(OrdF64(lb)), idx)) = frontier.pop() {
            if best.len() == k && lb > best.peek().expect("non-empty").0 .0 {
                break; // no remaining subtree can improve the result
            }
            let node = &self.nodes[idx as usize];
            if node.is_leaf() {
                let ids = &self.leaf_ids
                    [node.leaf_start as usize..(node.leaf_start + node.leaf_len) as usize];
                for &id in ids {
                    if id as usize != query {
                        consider(data.dist(query, id as usize), id, k, &mut best);
                    }
                }
                continue;
            }
            let d = data.dist(query, node.vp as usize);
            if node.vp as usize != query {
                consider(d, node.vp, k, &mut best);
            }
            // Lower bound of a child: how far outside its [lo, hi] ring the
            // query sits.
            if node.left != NONE {
                let lb = (node.left_lo - d).max(d - node.left_hi).max(0.0);
                frontier.push((Reverse(OrdF64(lb)), node.left));
            }
            if node.right != NONE {
                let lb = (node.right_lo - d).max(d - node.right_hi).max(0.0);
                frontier.push((Reverse(OrdF64(lb)), node.right));
            }
        }
        let mut out: Vec<(f64, u32)> = best.into_iter().map(|(OrdF64(d), id)| (d, id)).collect();
        out.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dod_metrics::{VectorSet, L2};
    use rand::Rng;

    fn grid(n: usize) -> VectorSet<L2> {
        // n points on a 1-d line at integer coordinates.
        VectorSet::from_rows(&(0..n).map(|i| vec![i as f32]).collect::<Vec<_>>(), L2)
    }

    fn random_points(n: usize, dim: usize, seed: u64) -> VectorSet<L2> {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        VectorSet::from_rows(&rows, L2)
    }

    fn brute_count(data: &impl Dataset, q: usize, r: f64) -> usize {
        (0..data.len())
            .filter(|&j| j != q && data.dist(q, j) <= r)
            .count()
    }

    #[test]
    fn range_count_matches_brute_force_on_grid() {
        let data = grid(200);
        let tree = VpTree::build(&data, 0);
        for q in [0, 13, 99, 199] {
            for r in [0.5, 1.0, 3.5, 10.0] {
                assert_eq!(
                    tree.range_count(&data, q, r, usize::MAX),
                    brute_count(&data, q, r),
                    "q={q} r={r}"
                );
            }
        }
    }

    #[test]
    fn range_count_matches_brute_force_random() {
        let data = random_points(300, 4, 7);
        let tree = VpTree::build(&data, 1);
        for q in 0..30 {
            for r in [0.1, 0.4, 0.9] {
                assert_eq!(
                    tree.range_count(&data, q, r, usize::MAX),
                    brute_count(&data, q, r),
                    "q={q} r={r}"
                );
            }
        }
    }

    #[test]
    fn early_termination_caps_count() {
        let data = grid(100);
        let tree = VpTree::build(&data, 0);
        assert_eq!(tree.range_count(&data, 50, 30.0, 5), 5);
        assert_eq!(tree.range_count(&data, 50, 30.0, 0), 0);
    }

    #[test]
    fn range_search_returns_exact_ids() {
        let data = grid(50);
        let tree = VpTree::build(&data, 3);
        let mut got = tree.range_search(&data, 10, 2.0);
        got.sort_unstable();
        assert_eq!(got, vec![8, 9, 11, 12]);
    }

    #[test]
    fn query_is_never_its_own_neighbor() {
        let data = grid(10);
        let tree = VpTree::build(&data, 0);
        assert!(!tree.range_search(&data, 5, 100.0).contains(&5));
        assert_eq!(tree.range_count(&data, 5, 100.0, usize::MAX), 9);
    }

    #[test]
    fn knn_matches_brute_force() {
        let data = random_points(150, 3, 5);
        let tree = VpTree::build(&data, 9);
        for q in 0..20 {
            let got = tree.knn(&data, q, 5);
            let mut all: Vec<(f64, u32)> = (0..150)
                .filter(|&j| j != q)
                .map(|j| (data.dist(q, j), j as u32))
                .collect();
            all.sort_by(|a, b| a.0.total_cmp(&b.0));
            let want: Vec<f64> = all[..5].iter().map(|p| p.0).collect();
            let got_d: Vec<f64> = got.iter().map(|p| p.0).collect();
            assert_eq!(got_d, want, "q={q}");
        }
    }

    #[test]
    fn knn_is_sorted_ascending() {
        let data = random_points(80, 2, 2);
        let tree = VpTree::build(&data, 4);
        let nn = tree.knn(&data, 0, 10);
        assert_eq!(nn.len(), 10);
        assert!(nn.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn knn_with_k_larger_than_dataset() {
        let data = grid(4);
        let tree = VpTree::build(&data, 0);
        assert_eq!(tree.knn(&data, 0, 10).len(), 3);
    }

    #[test]
    fn handles_duplicate_objects() {
        // 100 identical points: any ball of radius 0 holds all others.
        let data = VectorSet::from_rows(&vec![vec![1.0, 1.0]; 100], L2);
        let tree = VpTree::build(&data, 0);
        assert_eq!(tree.range_count(&data, 0, 0.0, usize::MAX), 99);
        assert_eq!(tree.knn(&data, 0, 5).len(), 5);
    }

    #[test]
    fn empty_and_singleton_datasets() {
        let empty = VectorSet::from_rows(&[], L2);
        let tree = VpTree::build(&empty, 0);
        assert!(tree.is_empty());
        assert_eq!(tree.knn(&empty, 0, 3), vec![]);

        let one = grid(1);
        let tree = VpTree::build(&one, 0);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.range_count(&one, 0, 10.0, usize::MAX), 0);
    }

    #[test]
    fn build_is_deterministic_per_seed() {
        let data = random_points(100, 2, 3);
        let a = VpTree::build(&data, 42);
        let b = VpTree::build(&data, 42);
        assert_eq!(a.size_bytes(), b.size_bytes());
        for q in 0..10 {
            assert_eq!(a.range_search(&data, q, 0.5), b.range_search(&data, q, 0.5));
        }
    }

    #[test]
    fn size_bytes_is_linear_ish() {
        let small = VpTree::build(&grid(100), 0);
        let large = VpTree::build(&grid(1000), 0);
        let ratio = large.size_bytes() as f64 / small.size_bytes() as f64;
        assert!(ratio > 5.0 && ratio < 20.0, "ratio = {ratio}");
    }

    #[test]
    fn works_with_strings_too() {
        let data = dod_metrics::StringSet::new(["cat", "cut", "dog", "caterpillar"]);
        let tree = VpTree::build(&data, 0);
        // Within edit distance 1 of "cat": only "cut".
        assert_eq!(tree.range_count(&data, 0, 1.0, usize::MAX), 1);
    }
}
