//! Small shared utilities for ordering distances.

use std::cmp::Ordering;

/// An `f64` with total ordering (via [`f64::total_cmp`]), usable as a
/// `BinaryHeap` key. Distances in this codebase are never NaN, but a total
/// order keeps the heaps well-defined even if one slipped through.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrdF64(pub f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    #[test]
    fn orders_like_f64() {
        assert!(OrdF64(1.0) < OrdF64(2.0));
        assert!(OrdF64(-1.0) < OrdF64(0.0));
        assert_eq!(OrdF64(3.5), OrdF64(3.5));
    }

    #[test]
    fn works_as_max_heap_key() {
        let mut h = BinaryHeap::new();
        for v in [3.0, 1.0, 2.0] {
            h.push(OrdF64(v));
        }
        assert_eq!(h.pop(), Some(OrdF64(3.0)));
        assert_eq!(h.pop(), Some(OrdF64(2.0)));
    }

    #[test]
    fn nan_has_a_consistent_position() {
        // total_cmp puts NaN above +inf; we only need consistency.
        assert!(OrdF64(f64::NAN) > OrdF64(f64::INFINITY));
    }
}
