//! Metric spaces and distance functions for distance-based outlier detection.
//!
//! Everything downstream (VP-trees, proximity graphs, the DOD algorithms)
//! accesses data through the [`Dataset`] trait: objects are addressed by
//! dense `usize` ids and the only operation is an exact metric distance
//! between two ids. This is the contract the SIGMOD'21 paper relies on — the
//! algorithms never look inside an object, which is what makes them work for
//! multi-dimensional points, embedding vectors and strings alike.
//!
//! Provided spaces (mirroring Table 1 of the paper):
//!
//! | Space | Distance | Paper dataset |
//! |---|---|---|
//! | [`VectorSet<L2>`] | Euclidean norm | Deep, PAMAP2, SIFT |
//! | [`VectorSet<L1>`] | Manhattan norm | HEPMASS |
//! | [`VectorSet<L4>`] | Minkowski p=4 | MNIST |
//! | [`VectorSet<Angular>`] | angular (arc-cosine) distance | Glove |
//! | [`StringSet`] | Levenshtein edit distance | Words |
//!
//! All distances satisfy the metric axioms (identity, symmetry, triangle
//! inequality); the property tests in this crate check them on random data.

pub mod dataset;
pub mod string;
pub mod util;
pub mod vector;

pub use dataset::{Dataset, DistanceCounter, Fnv1a, Subset};
pub use string::{edit_distance, StringSet};
pub use util::OrdF64;
pub use vector::{Angular, Chebyshev, Minkowski, VectorMetric, VectorSet, L1, L2, L4};

use serde::{Deserialize, Serialize};

/// Identifies a distance function, e.g. in dataset descriptors and
/// experiment configuration files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetricKind {
    /// Manhattan (`L1`) norm.
    L1,
    /// Euclidean (`L2`) norm.
    L2,
    /// Minkowski norm with `p = 4`.
    L4,
    /// Chebyshev (`L∞`) norm.
    Chebyshev,
    /// Angular (arc-cosine of cosine similarity) distance.
    Angular,
    /// Levenshtein edit distance over strings.
    Edit,
}

impl MetricKind {
    /// Human-readable name used in experiment reports.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::L1 => "L1-norm",
            MetricKind::L2 => "L2-norm",
            MetricKind::L4 => "L4-norm",
            MetricKind::Chebyshev => "Linf-norm",
            MetricKind::Angular => "Angular distance",
            MetricKind::Edit => "Edit distance",
        }
    }

    /// Short machine-readable spelling used on the wire (`dod_server`
    /// session bodies and listings): `l1`, `l2`, `l4`, `chebyshev`,
    /// `angular`, `edit`.
    pub fn wire_name(self) -> &'static str {
        match self {
            MetricKind::L1 => "l1",
            MetricKind::L2 => "l2",
            MetricKind::L4 => "l4",
            MetricKind::Chebyshev => "chebyshev",
            MetricKind::Angular => "angular",
            MetricKind::Edit => "edit",
        }
    }

    /// Parses a [`wire_name`](Self::wire_name) spelling back to the kind.
    pub fn parse_wire(s: &str) -> Option<MetricKind> {
        [
            MetricKind::L1,
            MetricKind::L2,
            MetricKind::L4,
            MetricKind::Chebyshev,
            MetricKind::Angular,
            MetricKind::Edit,
        ]
        .into_iter()
        .find(|k| k.wire_name() == s)
    }
}

impl std::fmt::Display for MetricKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod kind_tests {
    use super::MetricKind;

    #[test]
    fn wire_names_round_trip() {
        for k in [
            MetricKind::L1,
            MetricKind::L2,
            MetricKind::L4,
            MetricKind::Chebyshev,
            MetricKind::Angular,
            MetricKind::Edit,
        ] {
            assert_eq!(MetricKind::parse_wire(k.wire_name()), Some(k));
        }
        assert_eq!(
            MetricKind::parse_wire("L2"),
            None,
            "wire names are lowercase"
        );
        assert_eq!(MetricKind::parse_wire("cosine"), None);
    }
}
