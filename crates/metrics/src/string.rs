//! String space under Levenshtein edit distance (the paper's Words dataset).

use crate::dataset::Dataset;

/// Levenshtein edit distance between two byte strings: the minimum number of
/// single-byte insertions, deletions and substitutions turning `a` into `b`.
///
/// Two-row dynamic program, `O(|a|·|b|)` time and `O(min(|a|,|b|))` space.
pub fn edit_distance(a: &[u8], b: &[u8]) -> u32 {
    // Keep the DP row as short as possible.
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return long.len() as u32;
    }
    // prev[j] = distance between long[..i] and short[..j] for the previous i.
    let mut prev: Vec<u32> = (0..=short.len() as u32).collect();
    let mut curr = vec![0u32; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        curr[0] = i as u32 + 1;
        for (j, &sc) in short.iter().enumerate() {
            let sub = prev[j] + u32::from(lc != sc);
            let del = prev[j + 1] + 1;
            let ins = curr[j] + 1;
            curr[j + 1] = sub.min(del).min(ins);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[short.len()]
}

/// A set of strings stored in one flat byte buffer with an offset table,
/// exposing Levenshtein edit distance through [`Dataset`].
///
/// The flat layout avoids one heap allocation per string and keeps
/// sequential scans cache-friendly (the verification phase scans many
/// strings in id order).
pub struct StringSet {
    bytes: Vec<u8>,
    /// `offsets[i]..offsets[i+1]` is the byte range of string `i`.
    offsets: Vec<u32>,
}

impl StringSet {
    /// Builds a set from anything yielding string-like items.
    pub fn new<I, S>(items: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut bytes = Vec::new();
        let mut offsets = vec![0u32];
        for item in items {
            bytes.extend_from_slice(item.as_ref().as_bytes());
            offsets.push(u32::try_from(bytes.len()).expect("string set exceeds 4 GiB"));
        }
        Self { bytes, offsets }
    }

    /// The bytes of string `i`.
    pub fn get(&self, i: usize) -> &[u8] {
        &self.bytes[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// The string `i` as UTF-8 (callers constructed it from `&str`, so this
    /// cannot fail for sets built via [`StringSet::new`]).
    pub fn get_str(&self, i: usize) -> &str {
        std::str::from_utf8(self.get(i)).expect("StringSet holds valid UTF-8")
    }

    /// Length in bytes of string `i`.
    pub fn str_len(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Bytes of object storage (used by the index-size experiment).
    pub fn data_bytes(&self) -> usize {
        self.bytes.len() + self.offsets.len() * std::mem::size_of::<u32>()
    }
}

impl Dataset for StringSet {
    fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    fn dist(&self, i: usize, j: usize) -> f64 {
        edit_distance(self.get(i), self.get(j)) as f64
    }

    /// FNV-1a over every string's bytes with length framing, so moving a
    /// boundary between adjacent strings changes the digest.
    fn content_digest(&self) -> u64 {
        let mut h = crate::Fnv1a::new();
        for i in 0..self.len() {
            h.write_u64(self.str_len(i) as u64);
            h.write(self.get(i));
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_distance_textbook_cases() {
        assert_eq!(edit_distance(b"kitten", b"sitting"), 3);
        assert_eq!(edit_distance(b"flaw", b"lawn"), 2);
        assert_eq!(edit_distance(b"", b"abc"), 3);
        assert_eq!(edit_distance(b"abc", b""), 3);
        assert_eq!(edit_distance(b"", b""), 0);
        assert_eq!(edit_distance(b"same", b"same"), 0);
    }

    #[test]
    fn edit_distance_is_symmetric_on_samples() {
        let pairs: &[(&[u8], &[u8])] =
            &[(b"abcdef", b"azced"), (b"x", b"yyyy"), (b"hello", b"world")];
        for &(a, b) in pairs {
            assert_eq!(edit_distance(a, b), edit_distance(b, a));
        }
    }

    #[test]
    fn edit_distance_single_edits() {
        assert_eq!(edit_distance(b"cat", b"cut"), 1); // substitution
        assert_eq!(edit_distance(b"cat", b"cats"), 1); // insertion
        assert_eq!(edit_distance(b"cat", b"at"), 1); // deletion
    }

    #[test]
    fn string_set_round_trips() {
        let s = StringSet::new(["alpha", "beta", ""]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.get_str(0), "alpha");
        assert_eq!(s.get_str(1), "beta");
        assert_eq!(s.get_str(2), "");
        assert_eq!(s.str_len(0), 5);
    }

    #[test]
    fn string_set_distance_matches_function() {
        let s = StringSet::new(["kitten", "sitting"]);
        assert_eq!(s.dist(0, 1), 3.0);
        assert_eq!(s.dist(1, 0), 3.0);
        assert_eq!(s.dist(0, 0), 0.0);
    }

    #[test]
    fn empty_string_set() {
        let s = StringSet::new(Vec::<String>::new());
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn data_bytes_accounts_for_offsets() {
        let s = StringSet::new(["ab", "c"]);
        assert_eq!(s.data_bytes(), 3 + 3 * 4);
    }
}
