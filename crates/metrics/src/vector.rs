//! Vector spaces: flat `f32` storage with pluggable Minkowski-family and
//! angular metrics.

use crate::dataset::Dataset;

/// A distance function over equal-length `f32` slices.
///
/// Implementations must be metrics (identity, symmetry, triangle
/// inequality). `preprocess` runs once per dataset at construction and may
/// normalize the stored rows (the angular metric uses it to pre-normalize to
/// unit length so each distance evaluation is a single dot product).
pub trait VectorMetric: Send + Sync {
    /// Exact distance between `a` and `b` (same length).
    fn dist(&self, a: &[f32], b: &[f32]) -> f64;

    /// One-time hook to transform stored rows at dataset construction.
    fn preprocess(&self, _data: &mut [f32], _dim: usize) {}

    /// Human-readable metric name.
    fn name(&self) -> &'static str;
}

/// Manhattan (`L1`) norm: `Σ |a_i − b_i|`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L1;

impl VectorMetric for L1 {
    #[inline]
    fn dist(&self, a: &[f32], b: &[f32]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| (x as f64 - y as f64).abs())
            .sum()
    }

    fn name(&self) -> &'static str {
        "L1"
    }
}

/// Euclidean (`L2`) norm: `sqrt(Σ (a_i − b_i)²)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L2;

impl VectorMetric for L2 {
    #[inline]
    fn dist(&self, a: &[f32], b: &[f32]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| {
                let d = x as f64 - y as f64;
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }

    fn name(&self) -> &'static str {
        "L2"
    }
}

/// Minkowski norm with `p = 4`: `(Σ (a_i − b_i)⁴)^(1/4)`.
///
/// The paper evaluates MNIST under this metric; the quartic power penalizes
/// large per-coordinate differences more than L2.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L4;

impl VectorMetric for L4 {
    #[inline]
    fn dist(&self, a: &[f32], b: &[f32]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| {
                let d = x as f64 - y as f64;
                let d2 = d * d;
                d2 * d2
            })
            .sum::<f64>()
            .powf(0.25)
    }

    fn name(&self) -> &'static str {
        "L4"
    }
}

/// Chebyshev (`L∞`) norm: `max |a_i − b_i|`. Provided for completeness of
/// the Minkowski family; not used by the paper's evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Chebyshev;

impl VectorMetric for Chebyshev {
    #[inline]
    fn dist(&self, a: &[f32], b: &[f32]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| (x as f64 - y as f64).abs())
            .fold(0.0, f64::max)
    }

    fn name(&self) -> &'static str {
        "Linf"
    }
}

/// General Minkowski norm with arbitrary `p ≥ 1` (a metric only for `p ≥ 1`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Minkowski {
    p: f64,
}

impl Minkowski {
    /// A Minkowski metric with the given order.
    ///
    /// # Panics
    /// Panics if `p < 1` (the triangle inequality fails below 1).
    pub fn new(p: f64) -> Self {
        assert!(p >= 1.0, "Minkowski order must be >= 1, got {p}");
        Self { p }
    }

    /// The order `p`.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl VectorMetric for Minkowski {
    #[inline]
    fn dist(&self, a: &[f32], b: &[f32]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| (x as f64 - y as f64).abs().powf(self.p))
            .sum::<f64>()
            .powf(1.0 / self.p)
    }

    fn name(&self) -> &'static str {
        "Minkowski"
    }
}

/// Angular distance: `arccos(cos_similarity(a, b))`, the geodesic distance
/// on the unit sphere (a true metric, unlike raw cosine similarity).
///
/// Stored rows are normalized to unit length at construction, so each
/// distance evaluation is one dot product plus an `acos`. Zero vectors are
/// left untouched and are at distance `π/2` from everything (their dot
/// product is zero), which keeps the function total and symmetric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Angular;

impl VectorMetric for Angular {
    #[inline]
    fn dist(&self, a: &[f32], b: &[f32]) -> f64 {
        let dot: f64 = a.iter().zip(b).map(|(&x, &y)| x as f64 * y as f64).sum();
        dot.clamp(-1.0, 1.0).acos()
    }

    fn preprocess(&self, data: &mut [f32], dim: usize) {
        assert!(dim > 0, "angular metric requires dim > 0");
        for row in data.chunks_exact_mut(dim) {
            let norm: f64 = row.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>();
            let norm = norm.sqrt();
            if norm > 0.0 {
                for x in row {
                    *x = (*x as f64 / norm) as f32;
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "Angular"
    }
}

/// A set of equal-dimension vectors stored in one flat, cache-friendly
/// buffer, paired with a [`VectorMetric`].
pub struct VectorSet<M> {
    data: Vec<f32>,
    dim: usize,
    metric: M,
}

impl<M: VectorMetric> VectorSet<M> {
    /// Builds a set from a flat row-major buffer of `n × dim` values.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `data.len()` is not a multiple of `dim`.
    pub fn from_flat(mut data: Vec<f32>, dim: usize, metric: M) -> Self {
        assert!(dim > 0, "vector dimension must be positive");
        assert!(
            data.len().is_multiple_of(dim),
            "flat buffer length {} is not a multiple of dim {}",
            data.len(),
            dim
        );
        metric.preprocess(&mut data, dim);
        Self { data, dim, metric }
    }

    /// Builds a set from per-object rows. All rows must share one length.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths or the first row is empty.
    pub fn from_rows(rows: &[Vec<f32>], metric: M) -> Self {
        let dim = rows.first().map_or(1, |r| r.len());
        assert!(dim > 0, "vector dimension must be positive");
        let mut data = Vec::with_capacity(rows.len() * dim);
        for row in rows {
            assert_eq!(row.len(), dim, "all rows must have the same dimension");
            data.extend_from_slice(row);
        }
        Self::from_flat(data, dim, metric)
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The (possibly preprocessed) row for object `i`.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// The metric in use.
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// Bytes of object storage (used by the index-size experiment).
    pub fn data_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

impl<M: VectorMetric> Dataset for VectorSet<M> {
    fn len(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    #[inline]
    fn dist(&self, i: usize, j: usize) -> f64 {
        // An object is at distance zero from itself by definition; skipping
        // the evaluation also sidesteps `acos` rounding for the angular
        // metric, where `dot(x, x)` of an f32-normalized row can land at
        // `1 - ulp` and `acos` blows the error up to ~3e-4.
        if i == j {
            return 0.0;
        }
        self.metric.dist(self.row(i), self.row(j))
    }

    /// FNV-1a over the stored (preprocessed) point bytes plus the
    /// dimensionality — any changed coordinate changes the digest.
    fn content_digest(&self) -> u64 {
        let mut h = crate::Fnv1a::new();
        h.write_u64(self.dim as u64);
        for v in &self.data {
            h.write(&v.to_le_bytes());
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set2<M: VectorMetric>(metric: M) -> VectorSet<M> {
        VectorSet::from_rows(&[vec![0.0, 0.0], vec![3.0, 4.0], vec![-1.0, 1.0]], metric)
    }

    #[test]
    fn l1_matches_hand_computation() {
        let s = set2(L1);
        assert_eq!(s.dist(0, 1), 7.0);
        assert_eq!(s.dist(1, 2), 4.0 + 3.0);
    }

    #[test]
    fn l2_matches_hand_computation() {
        let s = set2(L2);
        assert_eq!(s.dist(0, 1), 5.0);
        assert!((s.dist(0, 2) - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn l4_matches_hand_computation() {
        let s = set2(L4);
        let expected = (3f64.powi(4) + 4f64.powi(4)).powf(0.25);
        assert!((s.dist(0, 1) - expected).abs() < 1e-12);
    }

    #[test]
    fn chebyshev_takes_max_coordinate() {
        let s = set2(Chebyshev);
        assert_eq!(s.dist(0, 1), 4.0);
    }

    #[test]
    fn minkowski_p2_equals_l2() {
        let m = Minkowski::new(2.0);
        let s = set2(m);
        let e = set2(L2);
        for i in 0..3 {
            for j in 0..3 {
                assert!((s.dist(i, j) - e.dist(i, j)).abs() < 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "Minkowski order must be >= 1")]
    fn minkowski_rejects_p_below_one() {
        let _ = Minkowski::new(0.5);
    }

    #[test]
    fn angular_normalizes_rows() {
        let s = VectorSet::from_rows(&[vec![2.0, 0.0], vec![0.0, 5.0]], Angular);
        // After normalization the rows are unit vectors; the angle is π/2.
        assert!((s.dist(0, 1) - std::f64::consts::FRAC_PI_2).abs() < 1e-6);
        assert!((s.row(0)[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn angular_identical_directions_are_at_distance_zero() {
        let s = VectorSet::from_rows(&[vec![1.0, 1.0], vec![10.0, 10.0]], Angular);
        assert!(s.dist(0, 1).abs() < 1e-3);
    }

    #[test]
    fn angular_opposite_directions_are_at_distance_pi() {
        let s = VectorSet::from_rows(&[vec![1.0, 0.0], vec![-3.0, 0.0]], Angular);
        assert!((s.dist(0, 1) - std::f64::consts::PI).abs() < 1e-6);
    }

    #[test]
    fn angular_zero_vector_is_quarter_turn_from_everything() {
        let s = VectorSet::from_rows(&[vec![0.0, 0.0], vec![1.0, 0.0]], Angular);
        assert!((s.dist(0, 1) - std::f64::consts::FRAC_PI_2).abs() < 1e-6);
        // Self-distance is still zero thanks to the i == j shortcut.
        assert_eq!(s.dist(0, 0), 0.0);
    }

    #[test]
    fn from_flat_round_trips_rows() {
        let s = VectorSet::from_flat(vec![1.0, 2.0, 3.0, 4.0], 2, L2);
        assert_eq!(s.len(), 2);
        assert_eq!(s.row(1), &[3.0, 4.0]);
        assert_eq!(s.dim(), 2);
        assert_eq!(s.data_bytes(), 16);
    }

    #[test]
    #[should_panic(expected = "not a multiple of dim")]
    fn from_flat_rejects_ragged_buffer() {
        let _ = VectorSet::from_flat(vec![1.0, 2.0, 3.0], 2, L2);
    }

    #[test]
    #[should_panic(expected = "same dimension")]
    fn from_rows_rejects_ragged_rows() {
        let _ = VectorSet::from_rows(&[vec![1.0], vec![1.0, 2.0]], L2);
    }

    #[test]
    fn empty_set_has_len_zero() {
        let s = VectorSet::from_rows(&[], L2);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn self_distance_is_zero_for_all_metrics() {
        assert_eq!(set2(L1).dist(1, 1), 0.0);
        assert_eq!(set2(L2).dist(1, 1), 0.0);
        assert_eq!(set2(L4).dist(1, 1), 0.0);
        assert_eq!(set2(Chebyshev).dist(1, 1), 0.0);
    }
}
