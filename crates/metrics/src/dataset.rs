//! The [`Dataset`] abstraction: id-addressed objects in a metric space.

use std::sync::atomic::{AtomicU64, Ordering};

/// A finite set of objects in a metric space, addressed by dense ids
/// `0..len()`.
///
/// `dist` must be an exact metric: non-negative, zero on identical ids,
/// symmetric, and satisfying the triangle inequality. Implementations must be
/// `Sync` because the DOD algorithms evaluate objects from multiple threads.
pub trait Dataset: Sync {
    /// Number of objects in the set.
    fn len(&self) -> usize;

    /// Exact metric distance between objects `i` and `j`.
    ///
    /// # Panics
    /// May panic if `i` or `j` is out of bounds.
    fn dist(&self, i: usize, j: usize) -> f64;

    /// `true` when the set holds no objects.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<D: Dataset + ?Sized> Dataset for &D {
    fn len(&self) -> usize {
        (**self).len()
    }
    fn dist(&self, i: usize, j: usize) -> f64 {
        (**self).dist(i, j)
    }
}

impl<D: Dataset + ?Sized> Dataset for Box<D> {
    fn len(&self) -> usize {
        (**self).len()
    }
    fn dist(&self, i: usize, j: usize) -> f64 {
        (**self).dist(i, j)
    }
}

/// Wraps a dataset and counts every distance evaluation.
///
/// The experiment harness uses this to report pruning power (distance
/// computations are the dominant cost of every algorithm in the paper).
/// Counting uses a relaxed atomic, so the overhead is a few nanoseconds per
/// call and the wrapper stays `Sync`.
pub struct DistanceCounter<D> {
    inner: D,
    calls: AtomicU64,
}

impl<D: Dataset> DistanceCounter<D> {
    /// Wraps `inner`, starting the counter at zero.
    pub fn new(inner: D) -> Self {
        Self {
            inner,
            calls: AtomicU64::new(0),
        }
    }

    /// Number of `dist` evaluations since construction or the last [`reset`].
    ///
    /// [`reset`]: DistanceCounter::reset
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero.
    pub fn reset(&self) {
        self.calls.store(0, Ordering::Relaxed);
    }

    /// Returns the wrapped dataset.
    pub fn into_inner(self) -> D {
        self.inner
    }

    /// Borrows the wrapped dataset.
    pub fn inner(&self) -> &D {
        &self.inner
    }
}

impl<D: Dataset> Dataset for DistanceCounter<D> {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn dist(&self, i: usize, j: usize) -> f64 {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.inner.dist(i, j)
    }
}

/// A view of a subset of a dataset's ids, itself a [`Dataset`].
///
/// Used by the sampling-rate experiments (Figures 6 and 7 of the paper):
/// the same base objects are evaluated at increasing cardinality without
/// regenerating data.
pub struct Subset<D> {
    base: D,
    ids: Vec<u32>,
}

impl<D: Dataset> Subset<D> {
    /// A view exposing only `ids` of `base` (in the given order).
    ///
    /// # Panics
    /// Panics if any id is out of bounds for `base`.
    pub fn new(base: D, ids: Vec<u32>) -> Self {
        let n = base.len();
        assert!(
            ids.iter().all(|&i| (i as usize) < n),
            "subset id out of bounds"
        );
        Self { base, ids }
    }

    /// The id in the base dataset backing subset position `i`.
    pub fn base_id(&self, i: usize) -> u32 {
        self.ids[i]
    }

    /// The ids of the base dataset exposed by this view.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }
}

impl<D: Dataset> Dataset for Subset<D> {
    fn len(&self) -> usize {
        self.ids.len()
    }

    fn dist(&self, i: usize, j: usize) -> f64 {
        self.base.dist(self.ids[i] as usize, self.ids[j] as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1-d points on a line; distance is absolute difference.
    struct Line(Vec<f64>);

    impl Dataset for Line {
        fn len(&self) -> usize {
            self.0.len()
        }
        fn dist(&self, i: usize, j: usize) -> f64 {
            (self.0[i] - self.0[j]).abs()
        }
    }

    #[test]
    fn counter_counts_every_call() {
        let d = DistanceCounter::new(Line(vec![0.0, 1.0, 3.0]));
        assert_eq!(d.calls(), 0);
        let _ = d.dist(0, 1);
        let _ = d.dist(1, 2);
        assert_eq!(d.calls(), 2);
        d.reset();
        assert_eq!(d.calls(), 0);
    }

    #[test]
    fn counter_preserves_distances() {
        let d = DistanceCounter::new(Line(vec![0.0, 1.0, 3.0]));
        assert_eq!(d.dist(0, 2), 3.0);
        assert_eq!(d.dist(2, 1), 2.0);
    }

    #[test]
    fn subset_remaps_ids() {
        let s = Subset::new(Line(vec![0.0, 10.0, 20.0, 30.0]), vec![3, 1]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.dist(0, 1), 20.0);
        assert_eq!(s.base_id(0), 3);
    }

    #[test]
    #[should_panic(expected = "subset id out of bounds")]
    fn subset_rejects_bad_ids() {
        let _ = Subset::new(Line(vec![0.0]), vec![1]);
    }

    #[test]
    fn empty_dataset_reports_empty() {
        let d = Line(vec![]);
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
    }

    #[test]
    fn dataset_by_reference_delegates() {
        let d = Line(vec![0.0, 2.0]);
        let r: &dyn Dataset = &d;
        assert_eq!(r.len(), 2);
        assert_eq!(d.dist(0, 1), 2.0);
    }
}
