//! The [`Dataset`] abstraction: id-addressed objects in a metric space.

use std::sync::atomic::{AtomicU64, Ordering};

/// Incremental [FNV-1a] hasher over raw bytes.
///
/// Used for [`Dataset::content_digest`]: persisted engines embed the
/// digest of the dataset they were built over, so loading against the
/// wrong dataset file fails fast with a typed error instead of serving
/// silently wrong answers.
///
/// [FNV-1a]: http://www.isthe.com/chongo/tech/comp/fnv/
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET_BASIS)
    }

    /// Folds `bytes` into the running hash.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        self
    }

    /// Folds a `u64` (little-endian) into the running hash.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// A finite set of objects in a metric space, addressed by dense ids
/// `0..len()`.
///
/// `dist` must be an exact metric: non-negative, zero on identical ids,
/// symmetric, and satisfying the triangle inequality. Implementations must be
/// `Sync` because the DOD algorithms evaluate objects from multiple threads.
pub trait Dataset: Sync {
    /// Number of objects in the set.
    fn len(&self) -> usize;

    /// Exact metric distance between objects `i` and `j`.
    ///
    /// # Panics
    /// May panic if `i` or `j` is out of bounds.
    fn dist(&self, i: usize, j: usize) -> f64;

    /// `true` when the set holds no objects.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A deterministic FNV-1a digest of the dataset contents, embedded by
    /// persistence layers so a saved index can reject a mismatched
    /// dataset before anything else goes wrong.
    ///
    /// Concrete object stores ([`VectorSet`](crate::VectorSet),
    /// [`StringSet`](crate::StringSet)) hash the raw point bytes. The
    /// default hashes the cardinality plus a bounded, deterministic
    /// sample of distance bit patterns — cheap, and still catching any
    /// dataset swap that changes the geometry it can observe.
    fn content_digest(&self) -> u64 {
        let n = self.len();
        let mut h = Fnv1a::new();
        h.write_u64(n as u64);
        if n > 1 {
            let samples = n.min(64);
            for t in 0..samples {
                let i = t * n / samples;
                // A fixed multiplicative stride decorrelates the probe
                // pairs from the sample grid. The stride math runs in
                // u64 so the digest is identical on 32- and 64-bit
                // targets (usize would wrap differently).
                let stride = ((t as u64).wrapping_mul(2_654_435_761) % (n as u64 - 1)) as usize;
                let j = (i + 1 + stride) % n;
                let j = if j == i { (i + 1) % n } else { j };
                h.write_u64(self.dist(i, j).to_bits());
            }
        }
        h.finish()
    }
}

impl<D: Dataset + ?Sized> Dataset for &D {
    fn len(&self) -> usize {
        (**self).len()
    }
    fn dist(&self, i: usize, j: usize) -> f64 {
        (**self).dist(i, j)
    }
    fn content_digest(&self) -> u64 {
        (**self).content_digest()
    }
}

impl<D: Dataset + ?Sized> Dataset for Box<D> {
    fn len(&self) -> usize {
        (**self).len()
    }
    fn dist(&self, i: usize, j: usize) -> f64 {
        (**self).dist(i, j)
    }
    fn content_digest(&self) -> u64 {
        (**self).content_digest()
    }
}

/// Wraps a dataset and counts every distance evaluation.
///
/// The experiment harness uses this to report pruning power (distance
/// computations are the dominant cost of every algorithm in the paper).
/// Counting uses a relaxed atomic, so the overhead is a few nanoseconds per
/// call and the wrapper stays `Sync`.
pub struct DistanceCounter<D> {
    inner: D,
    calls: AtomicU64,
}

impl<D: Dataset> DistanceCounter<D> {
    /// Wraps `inner`, starting the counter at zero.
    pub fn new(inner: D) -> Self {
        Self {
            inner,
            calls: AtomicU64::new(0),
        }
    }

    /// Number of `dist` evaluations since construction or the last [`reset`].
    ///
    /// [`reset`]: DistanceCounter::reset
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero.
    pub fn reset(&self) {
        self.calls.store(0, Ordering::Relaxed);
    }

    /// Returns the wrapped dataset.
    pub fn into_inner(self) -> D {
        self.inner
    }

    /// Borrows the wrapped dataset.
    pub fn inner(&self) -> &D {
        &self.inner
    }
}

impl<D: Dataset> Dataset for DistanceCounter<D> {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn dist(&self, i: usize, j: usize) -> f64 {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.inner.dist(i, j)
    }

    /// Delegates to the wrapped dataset: digesting is not a measured
    /// detection cost, so it leaves the counter untouched.
    fn content_digest(&self) -> u64 {
        self.inner.content_digest()
    }
}

/// A view of a subset of a dataset's ids, itself a [`Dataset`].
///
/// Used by the sampling-rate experiments (Figures 6 and 7 of the paper):
/// the same base objects are evaluated at increasing cardinality without
/// regenerating data.
pub struct Subset<D> {
    base: D,
    ids: Vec<u32>,
}

impl<D: Dataset> Subset<D> {
    /// A view exposing only `ids` of `base` (in the given order).
    ///
    /// # Panics
    /// Panics if any id is out of bounds for `base`.
    pub fn new(base: D, ids: Vec<u32>) -> Self {
        let n = base.len();
        assert!(
            ids.iter().all(|&i| (i as usize) < n),
            "subset id out of bounds"
        );
        Self { base, ids }
    }

    /// The id in the base dataset backing subset position `i`.
    pub fn base_id(&self, i: usize) -> u32 {
        self.ids[i]
    }

    /// The ids of the base dataset exposed by this view.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }
}

impl<D: Dataset> Dataset for Subset<D> {
    fn len(&self) -> usize {
        self.ids.len()
    }

    fn dist(&self, i: usize, j: usize) -> f64 {
        self.base.dist(self.ids[i] as usize, self.ids[j] as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1-d points on a line; distance is absolute difference.
    struct Line(Vec<f64>);

    impl Dataset for Line {
        fn len(&self) -> usize {
            self.0.len()
        }
        fn dist(&self, i: usize, j: usize) -> f64 {
            (self.0[i] - self.0[j]).abs()
        }
    }

    #[test]
    fn counter_counts_every_call() {
        let d = DistanceCounter::new(Line(vec![0.0, 1.0, 3.0]));
        assert_eq!(d.calls(), 0);
        let _ = d.dist(0, 1);
        let _ = d.dist(1, 2);
        assert_eq!(d.calls(), 2);
        d.reset();
        assert_eq!(d.calls(), 0);
    }

    #[test]
    fn counter_preserves_distances() {
        let d = DistanceCounter::new(Line(vec![0.0, 1.0, 3.0]));
        assert_eq!(d.dist(0, 2), 3.0);
        assert_eq!(d.dist(2, 1), 2.0);
    }

    #[test]
    fn subset_remaps_ids() {
        let s = Subset::new(Line(vec![0.0, 10.0, 20.0, 30.0]), vec![3, 1]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.dist(0, 1), 20.0);
        assert_eq!(s.base_id(0), 3);
    }

    #[test]
    #[should_panic(expected = "subset id out of bounds")]
    fn subset_rejects_bad_ids() {
        let _ = Subset::new(Line(vec![0.0]), vec![1]);
    }

    #[test]
    fn empty_dataset_reports_empty() {
        let d = Line(vec![]);
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
    }

    #[test]
    fn dataset_by_reference_delegates() {
        let d = Line(vec![0.0, 2.0]);
        let r: &dyn Dataset = &d;
        assert_eq!(r.len(), 2);
        assert_eq!(d.dist(0, 1), 2.0);
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a test vectors (64-bit).
        assert_eq!(Fnv1a::new().finish(), 0xcbf2_9ce4_8422_2325);
        assert_eq!(Fnv1a::new().write(b"a").finish(), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(Fnv1a::new().write(b"foobar").finish(), 0x85944171f73967e8,);
    }

    #[test]
    fn default_digest_is_stable_and_discriminates() {
        let a = Line(vec![0.0, 1.0, 3.0, 7.0]);
        let b = Line(vec![0.0, 1.0, 3.0, 7.5]);
        assert_eq!(a.content_digest(), a.content_digest());
        assert_ne!(a.content_digest(), b.content_digest());
        // References and boxes see the same digest as the owned value.
        assert_eq!(<&Line as Dataset>::content_digest(&&a), a.content_digest());
        let boxed: Box<dyn Dataset> = Box::new(Line(vec![0.0, 1.0, 3.0, 7.0]));
        assert_eq!(boxed.content_digest(), a.content_digest());
    }

    #[test]
    fn digest_ignores_the_distance_counter() {
        let d = DistanceCounter::new(Line(vec![0.0, 1.0, 3.0]));
        let inner_digest = d.inner().content_digest();
        assert_eq!(d.content_digest(), inner_digest);
        assert_eq!(d.calls(), 0, "digesting must not count as detection");
    }
}
