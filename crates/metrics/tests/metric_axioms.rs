//! Property tests: every distance function must satisfy the metric axioms
//! (identity of indiscernibles relaxed to `d(x,x) = 0`, symmetry, triangle
//! inequality). The DOD algorithms' correctness proofs (Lemma 1 etc.) assume
//! these properties, so violating them would silently break exactness.

use dod_metrics::{
    edit_distance, Angular, Chebyshev, Dataset, Minkowski, StringSet, VectorMetric, VectorSet, L1,
    L2, L4,
};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

const DIM: usize = 6;

fn vec_strategy() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, DIM)
}

/// Absolute slack for floating-point triangle-inequality checks.
const EPS: f64 = 1e-6;

fn check_axioms<M: VectorMetric>(
    metric: M,
    a: Vec<f32>,
    b: Vec<f32>,
    c: Vec<f32>,
) -> Result<(), TestCaseError> {
    check_axioms_eps(metric, a, b, c, EPS)
}

fn check_axioms_eps<M: VectorMetric>(
    metric: M,
    a: Vec<f32>,
    b: Vec<f32>,
    c: Vec<f32>,
    eps: f64,
) -> Result<(), TestCaseError> {
    let s = VectorSet::from_rows(&[a, b, c], metric);
    for i in 0..3 {
        let d_ii = s.dist(i, i);
        prop_assert!(d_ii.abs() <= eps, "d(x,x) = {} != 0", d_ii);
        for j in 0..3 {
            let d_ij = s.dist(i, j);
            prop_assert!(d_ij >= 0.0, "negative distance {}", d_ij);
            prop_assert!(
                (d_ij - s.dist(j, i)).abs() <= eps,
                "asymmetric: d({},{})={} d({},{})={}",
                i,
                j,
                d_ij,
                j,
                i,
                s.dist(j, i)
            );
            for k in 0..3 {
                let lhs = s.dist(i, k);
                let rhs = d_ij + s.dist(j, k);
                prop_assert!(
                    lhs <= rhs + eps,
                    "triangle violated: d({},{})={} > {}",
                    i,
                    k,
                    lhs,
                    rhs
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn l1_is_a_metric(a in vec_strategy(), b in vec_strategy(), c in vec_strategy()) {
        check_axioms(L1, a, b, c)?;
    }

    #[test]
    fn l2_is_a_metric(a in vec_strategy(), b in vec_strategy(), c in vec_strategy()) {
        check_axioms(L2, a, b, c)?;
    }

    #[test]
    fn l4_is_a_metric(a in vec_strategy(), b in vec_strategy(), c in vec_strategy()) {
        check_axioms(L4, a, b, c)?;
    }

    #[test]
    fn chebyshev_is_a_metric(a in vec_strategy(), b in vec_strategy(), c in vec_strategy()) {
        check_axioms(Chebyshev, a, b, c)?;
    }

    #[test]
    fn minkowski_p3_is_a_metric(a in vec_strategy(), b in vec_strategy(), c in vec_strategy()) {
        check_axioms(Minkowski::new(3.0), a, b, c)?;
    }

    #[test]
    fn angular_is_a_metric(a in vec_strategy(), b in vec_strategy(), c in vec_strategy()) {
        // Skip near-zero vectors: normalization leaves them at the origin,
        // where angular distance degenerates to a constant π/2 (still
        // symmetric but d(x,x) != 0, which the generator never produces).
        let big = |v: &[f32]| v.iter().map(|x| (*x as f64).powi(2)).sum::<f64>().sqrt() > 1.0;
        prop_assume!(big(&a) && big(&b) && big(&c));
        // f32 row normalization + acos near 1 keeps errors ~1e-4.
        check_axioms_eps(Angular, a, b, c, 2e-3)?;
    }

    #[test]
    fn l2_agrees_with_minkowski_p2(a in vec_strategy(), b in vec_strategy()) {
        let s2 = VectorSet::from_rows(&[a.clone(), b.clone()], L2);
        let sm = VectorSet::from_rows(&[a, b], Minkowski::new(2.0));
        prop_assert!((s2.dist(0, 1) - sm.dist(0, 1)).abs() < 1e-6);
    }

    #[test]
    fn edit_distance_is_a_metric(
        a in "[a-d]{0,12}",
        b in "[a-d]{0,12}",
        c in "[a-d]{0,12}",
    ) {
        let s = StringSet::new([a.as_str(), b.as_str(), c.as_str()]);
        for i in 0..3 {
            prop_assert_eq!(s.dist(i, i), 0.0);
            for j in 0..3 {
                prop_assert_eq!(s.dist(i, j), s.dist(j, i));
                for k in 0..3 {
                    prop_assert!(s.dist(i, k) <= s.dist(i, j) + s.dist(j, k));
                }
            }
        }
    }

    #[test]
    fn edit_distance_bounded_by_longer_string(
        a in "[a-z]{0,16}",
        b in "[a-z]{0,16}",
    ) {
        let d = edit_distance(a.as_bytes(), b.as_bytes());
        let lower = (a.len() as i64 - b.len() as i64).unsigned_abs() as u32;
        let upper = a.len().max(b.len()) as u32;
        prop_assert!(d >= lower, "distance {d} below length-difference bound {lower}");
        prop_assert!(d <= upper, "distance {d} above max-length bound {upper}");
    }

    #[test]
    fn edit_distance_zero_iff_equal(a in "[a-c]{0,10}", b in "[a-c]{0,10}") {
        let d = edit_distance(a.as_bytes(), b.as_bytes());
        prop_assert_eq!(d == 0, a == b);
    }
}
