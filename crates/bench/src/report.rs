//! Markdown table rendering and machine-readable JSON reports.

/// A JSON scalar for [`JsonReport`] rows (the vendored `serde` stand-in
/// has no serializer, so the harness emits JSON directly).
#[derive(Debug, Clone)]
pub enum JsonVal {
    /// A number (serialized with full precision; non-finite becomes
    /// `null`).
    Num(f64),
    /// An integer.
    Int(i64),
    /// A string.
    Str(String),
}

impl From<f64> for JsonVal {
    fn from(v: f64) -> Self {
        JsonVal::Num(v)
    }
}

impl From<usize> for JsonVal {
    fn from(v: usize) -> Self {
        JsonVal::Int(v as i64)
    }
}

impl From<&str> for JsonVal {
    fn from(v: &str) -> Self {
        JsonVal::Str(v.to_string())
    }
}

impl From<String> for JsonVal {
    fn from(v: String) -> Self {
        JsonVal::Str(v)
    }
}

// Escaping and number formatting come from the shared wire format
// (`dod_wire`), so artifacts stay parseable by the same crate that parses
// them back in `compare` and serves them over HTTP.
fn json_escape(s: &str) -> String {
    dod_wire::escape(s)
}

fn json_val(v: &JsonVal) -> String {
    match v {
        JsonVal::Num(n) => dod_wire::render_number(*n),
        JsonVal::Int(i) => format!("{i}"),
        JsonVal::Str(s) => format!("\"{}\"", json_escape(s)),
    }
}

/// Machine-readable experiment results: flat metadata plus a list of
/// measurement rows, written as one JSON object so the perf trajectory
/// can be tracked across PRs (`experiments <sub> --json BENCH_dod.json`).
#[derive(Debug, Default)]
pub struct JsonReport {
    meta: Vec<(String, JsonVal)>,
    rows: Vec<Vec<(String, JsonVal)>>,
}

impl JsonReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a top-level metadata field.
    pub fn meta(&mut self, key: &str, val: impl Into<JsonVal>) -> &mut Self {
        self.meta.push((key.to_string(), val.into()));
        self
    }

    /// Adds one measurement row.
    pub fn row<I: IntoIterator<Item = (&'static str, JsonVal)>>(&mut self, fields: I) {
        self.rows.push(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        );
    }

    /// Number of measurement rows collected.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows have been collected.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the whole report as pretty-printed JSON.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        for (k, v) in &self.meta {
            out.push_str(&format!("  \"{}\": {},\n", json_escape(k), json_val(v)));
        }
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let fields: Vec<String> = row
                .iter()
                .map(|(k, v)| format!("\"{}\": {}", json_escape(k), json_val(v)))
                .collect();
            let comma = if i + 1 < self.rows.len() { "," } else { "" };
            out.push_str(&format!("    {{{}}}{}\n", fields.join(", "), comma));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the report to `path`.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }
}

/// A simple right-aligned Markdown table builder.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header count.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Renders GitHub-flavored Markdown with padded columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {c:>w$} |", w = w));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{}:|", "-".repeat(w + 1)));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Formats seconds with adaptive precision (experiments span µs to hours).
pub fn secs(v: f64) -> String {
    if v < 0.000_5 {
        format!("{:.1}us", v * 1e6)
    } else if v < 0.5 {
        format!("{:.1}ms", v * 1e3)
    } else {
        format!("{v:.2}s")
    }
}

/// Formats an optional paper reference value ("NA" for the paper's
/// timeouts).
pub fn paper_secs(v: Option<f64>) -> String {
    v.map_or("NA".to_string(), |s| format!("{s:.0}s"))
}

/// Formats megabytes.
pub fn mb(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(["a", "bbbb"]);
        t.row(["1", "2"]).row(["333", "4"]);
        let s = t.render();
        assert!(s.contains("|   a | bbbb |"), "{s}");
        assert!(s.lines().count() == 4);
        // All lines equal width.
        let lens: Vec<usize> = s.lines().map(str::len).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "{s}");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        Table::new(["a", "b"]).row(["only one"]);
    }

    #[test]
    fn time_formatting_picks_sane_units() {
        assert_eq!(secs(0.000_000_4), "0.4us");
        assert_eq!(secs(0.002), "2.0ms");
        assert_eq!(secs(3.25), "3.25s");
    }

    #[test]
    fn paper_na_values() {
        assert_eq!(paper_secs(None), "NA");
        assert_eq!(paper_secs(Some(83.82)), "84s");
    }

    #[test]
    fn mb_formatting() {
        assert_eq!(mb(1024 * 1024), "1.00");
    }

    #[test]
    fn json_report_renders_valid_shape() {
        let mut j = JsonReport::new();
        j.meta("experiment", "stream").meta("scale", 0.5);
        j.row([
            ("backend", JsonVal::from("graph")),
            ("slides", JsonVal::from(100usize)),
            ("secs", JsonVal::from(0.25)),
        ]);
        j.row([("backend", JsonVal::from("exhaustive"))]);
        let s = j.render();
        assert!(s.starts_with("{\n"), "{s}");
        assert!(s.contains("\"experiment\": \"stream\""));
        assert!(s.contains("\"scale\": 0.5"));
        assert!(s.contains("{\"backend\": \"graph\", \"slides\": 100, \"secs\": 0.25},"));
        assert!(s.trim_end().ends_with('}'));
        assert_eq!(j.len(), 2);
        assert!(!j.is_empty());
    }

    #[test]
    fn json_strings_are_escaped_and_nonfinite_nulled() {
        let mut j = JsonReport::new();
        j.meta("note", "a\"b\\c\nd");
        j.row([("v", JsonVal::Num(f64::INFINITY))]);
        let s = j.render();
        assert!(s.contains("a\\\"b\\\\c\\nd"), "{s}");
        assert!(s.contains("\"v\": null"));
    }
}
