//! Markdown table rendering for experiment reports.

/// A simple right-aligned Markdown table builder.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header count.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Renders GitHub-flavored Markdown with padded columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {c:>w$} |", w = w));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{}:|", "-".repeat(w + 1)));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Formats seconds with adaptive precision (experiments span µs to hours).
pub fn secs(v: f64) -> String {
    if v < 0.000_5 {
        format!("{:.1}us", v * 1e6)
    } else if v < 0.5 {
        format!("{:.1}ms", v * 1e3)
    } else {
        format!("{v:.2}s")
    }
}

/// Formats an optional paper reference value ("NA" for the paper's
/// timeouts).
pub fn paper_secs(v: Option<f64>) -> String {
    v.map_or("NA".to_string(), |s| format!("{s:.0}s"))
}

/// Formats megabytes.
pub fn mb(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(["a", "bbbb"]);
        t.row(["1", "2"]).row(["333", "4"]);
        let s = t.render();
        assert!(s.contains("|   a | bbbb |"), "{s}");
        assert!(s.lines().count() == 4);
        // All lines equal width.
        let lens: Vec<usize> = s.lines().map(str::len).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "{s}");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        Table::new(["a", "b"]).row(["only one"]);
    }

    #[test]
    fn time_formatting_picks_sane_units() {
        assert_eq!(secs(0.000_000_4), "0.4us");
        assert_eq!(secs(0.002), "2.0ms");
        assert_eq!(secs(3.25), "3.25s");
    }

    #[test]
    fn paper_na_values() {
        assert_eq!(paper_secs(None), "NA");
        assert_eq!(paper_secs(Some(83.82)), "84s");
    }

    #[test]
    fn mb_formatting() {
        assert_eq!(mb(1024 * 1024), "1.00");
    }
}
