//! Reference numbers from the paper (SIGMOD'21 / arXiv:2110.08959v2),
//! printed next to our measurements so shape comparisons are one glance.
//!
//! `None` encodes the paper's "NA" — the configuration exceeded its 12 h
//! pre-processing / 8 h detection limit on the authors' 48-thread testbed.

use dod_datasets::Family;

/// Row order of every per-dataset table, matching [`Family::ALL`].
pub fn family_index(f: Family) -> usize {
    Family::ALL
        .iter()
        .position(|&x| x == f)
        .expect("known family")
}

/// Paper Table 3 — pre-processing time in seconds:
/// `[NSW, KGraph, MRPG-basic, MRPG]` per dataset.
pub const TABLE3_PREPROCESS_SECS: [[Option<f64>; 4]; 7] = [
    [None, Some(20079.80), Some(13417.40), Some(17230.30)], // deep
    [Some(2333.47), Some(923.83), Some(755.54), Some(791.53)], // glove
    [None, Some(7935.25), Some(4345.63), Some(5221.86)],    // hepmass
    [Some(33368.0), Some(2972.96), Some(1566.05), Some(2281.55)], // mnist
    [Some(4522.14), Some(1325.40), Some(729.54), Some(888.61)], // pamap2
    [Some(4910.94), Some(929.48), Some(723.75), Some(817.33)], // sift
    [Some(871.27), Some(455.15), Some(707.08), Some(868.62)], // words
];

/// Paper Table 4 — decomposed MRPG build time on Glove in seconds:
/// `(phase, KGraph, MRPG-basic, MRPG)`.
pub const TABLE4_GLOVE_DECOMPOSED: [(&str, Option<f64>, f64, f64); 4] = [
    ("NNDescent(+)", Some(923.83), 464.34, 474.20),
    ("Connect-SubGraphs", None, 20.36, 24.28),
    ("Remove-Detours", None, 278.21, 271.41),
    ("Remove-Links", None, 19.44, 19.61),
];

/// Paper Table 5 — detection running time in seconds:
/// `[Nested-loop, SNIF, DOLPHIN, VP-tree, NSW, KGraph, MRPG-basic, MRPG]`.
pub const TABLE5_RUNNING_SECS: [[Option<f64>; 8]; 7] = [
    [
        None,
        None,
        None,
        None,
        None,
        Some(8616.10),
        Some(5474.10),
        Some(1966.17),
    ], // deep
    [
        Some(1045.47),
        Some(1222.43),
        Some(9277.89),
        Some(1398.92),
        Some(147.00),
        Some(83.82),
        Some(56.80),
        Some(2.63),
    ], // glove
    [
        Some(17295.40),
        Some(20360.80),
        None,
        Some(8597.23),
        None,
        Some(780.19),
        Some(638.83),
        Some(38.40),
    ], // hepmass
    [
        Some(15494.00),
        Some(22579.80),
        None,
        Some(13836.60),
        Some(1630.25),
        Some(1702.57),
        Some(1264.26),
        Some(918.91),
    ], // mnist
    [
        Some(422.40),
        Some(1213.56),
        Some(1819.90),
        Some(208.55),
        Some(22.16),
        Some(23.77),
        Some(18.16),
        Some(10.55),
    ], // pamap2
    [
        Some(1427.74),
        Some(1507.58),
        Some(8684.08),
        Some(2005.27),
        Some(200.89),
        Some(175.88),
        Some(144.11),
        Some(11.32),
    ], // sift
    [
        Some(1844.65),
        Some(2086.50),
        Some(7061.50),
        Some(1021.39),
        Some(498.34),
        Some(393.95),
        Some(374.08),
        Some(2.67),
    ], // words
];

/// Paper Table 6 — index size in MB:
/// `[SNIF, DOLPHIN, VP-tree, NSW, KGraph, MRPG-basic, MRPG]`
/// (Nested-loop has no index).
pub const TABLE6_INDEX_MB: [[Option<f64>; 7]; 7] = [
    [
        None,
        None,
        Some(324.35),
        None,
        Some(1405.94),
        Some(5516.58),
        Some(7350.83),
    ],
    [
        Some(13.26),
        Some(69.14),
        Some(54.86),
        Some(188.62),
        Some(167.91),
        Some(460.48),
        Some(438.76),
    ],
    [
        Some(61.04),
        None,
        Some(265.39),
        None,
        Some(1195.35),
        Some(2188.65),
        Some(2450.84),
    ],
    [
        Some(27.75),
        None,
        Some(117.80),
        Some(417.95),
        Some(404.29),
        Some(589.08),
        Some(591.27),
    ],
    [
        Some(18.36),
        Some(65.12),
        Some(128.00),
        Some(819.17),
        Some(528.26),
        Some(553.87),
        Some(760.69),
    ],
    [
        Some(8.10),
        Some(47.00),
        Some(39.99),
        Some(157.58),
        Some(140.54),
        Some(433.48),
        Some(489.14),
    ],
    [
        Some(4.41),
        Some(26.86),
        Some(27.79),
        Some(102.20),
        Some(93.92),
        Some(191.73),
        Some(178.74),
    ],
];

/// Paper Table 7 — false positives after filtering:
/// `[NSW, KGraph, MRPG-basic, MRPG]`.
pub const TABLE7_FALSE_POSITIVES: [[Option<u64>; 4]; 7] = [
    [None, Some(81_140), Some(33_180), Some(20_616)],
    [Some(19_970), Some(3_356), Some(40), Some(24)],
    [None, Some(11_133), Some(2_363), Some(438)],
    [Some(7_079), Some(4_698), Some(2_509), Some(2_061)],
    [Some(18_346), Some(22_543), Some(4_290), Some(3_986)],
    [Some(4_899), Some(2_513), Some(585), Some(51)],
    [Some(9_569), Some(989), Some(120), Some(4)],
];

/// Paper Table 8 — decomposed detection time on Glove in seconds:
/// `(phase, NSW, KGraph, MRPG-basic, MRPG)`.
pub const TABLE8_GLOVE_DECOMPOSED: [(&str, f64, f64, f64, f64); 2] = [
    ("Filtering", 1.28, 0.86, 2.43, 1.98),
    ("Verification", 147.00, 82.96, 57.03, 0.65),
];

/// Paper §6.2 — false positives of MRPG ablation variants on PAMAP2:
/// `(variant, paper value)`.
pub const ABLATION_PAMAP2_FALSE_POSITIVES: [(&str, u64); 4] = [
    ("MRPG (full)", 3_986),
    ("without Connect-SubGraphs", 4_712),
    ("without Remove-Detours", 9_720),
    ("without both", 11_937),
];

/// Paper Figure 8 `k` grids per dataset (defaults bolded in the paper).
pub fn k_grid(f: Family) -> [usize; 5] {
    match f {
        Family::Deep | Family::Hepmass | Family::Mnist => [40, 45, 50, 55, 60],
        Family::Glove => [10, 15, 20, 25, 30],
        Family::Pamap2 => [50, 75, 100, 125, 150],
        Family::Sift => [30, 35, 40, 45, 50],
        Family::Words => [5, 10, 15, 20, 25],
    }
}

/// Paper Figure 9 varies `r` around the default; the paper's grids span
/// roughly ±4–20% per dataset, which these multipliers reproduce.
pub const R_GRID_MULTIPLIERS: [f64; 5] = [0.90, 0.95, 1.0, 1.05, 1.10];

/// Paper Figure 10 thread grid (the paper sweeps 1..48; a laptop saturates
/// earlier, the shape up to the core count is what transfers).
pub const THREAD_GRID: [usize; 4] = [1, 2, 4, 8];

/// The five datasets of the paper's Figure 10.
pub const FIG10_FAMILIES: [Family; 5] = [
    Family::Glove,
    Family::Hepmass,
    Family::Pamap2,
    Family::Sift,
    Family::Words,
];

/// Sampling-rate grid of Figures 6 and 7.
pub const SAMPLING_RATES: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_index_follows_all_order() {
        assert_eq!(family_index(Family::Deep), 0);
        assert_eq!(family_index(Family::Words), 6);
    }

    #[test]
    fn table5_mrpg_always_wins_in_the_paper() {
        for row in TABLE5_RUNNING_SECS {
            let mrpg = row[7].expect("MRPG never NA");
            for cell in row.iter().take(7).flatten() {
                assert!(mrpg <= *cell, "paper data transcription error");
            }
        }
    }

    #[test]
    fn table7_mrpg_minimizes_false_positives() {
        for row in TABLE7_FALSE_POSITIVES {
            let mrpg = row[3].expect("MRPG never NA");
            for cell in row.iter().take(3).flatten() {
                assert!(mrpg <= *cell);
            }
        }
    }

    #[test]
    fn k_grids_contain_the_defaults() {
        for f in Family::ALL {
            assert!(
                k_grid(f).contains(&f.default_k()),
                "{f}: default k missing from grid"
            );
        }
    }
}
