//! The experiment implementations: one function per paper table/figure.

use crate::graphs::{build_all_graphs, mrpg_params};
use crate::paper;
use crate::report::{paper_secs, secs, JsonReport, JsonVal, Table};
use crate::slide_baseline::BatchSlideBaseline;
use crate::workload::{Config, Workload};
use dod_core::{dolphin, nested_loop, snif, DodParams, Engine, IndexSpec, OutlierReport, Query};
use dod_datasets::{calibrate_r, Family, StreamScenario};
use dod_graph::ProximityGraph;
use dod_metrics::{Dataset, Subset, VectorSet, L2};
use dod_shard::{DurabilityPolicy, DurableSession, ShardSpec, ShardedStreamDetector, SyncPolicy};
use dod_stream::{
    Backend, GraphParams, IndexHealth, StreamDetector, StreamStats, VectorSpace, WindowSpec,
};
use std::io::{self, Write};

/// Which experiment(s) to run; parsed from the CLI subcommand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Which {
    /// Tables 3–8 (optionally a single one).
    Tables(Option<u8>),
    /// Figures 6 and 7 (scalability in n).
    Fig6and7,
    /// Figures 8 and 9 (sensitivity to k and r).
    Fig8and9,
    /// Figure 10 (thread scalability).
    Fig10,
    /// §6.2 ablation of Connect-SubGraphs / Remove-Detours.
    Ablation,
    /// Extension: test the paper's §3 claim that HNSW's hierarchy cannot
    /// help the DOD problem.
    Hnsw,
    /// Extension: sliding-window streaming engine vs per-slide batch
    /// re-detection.
    Stream,
    /// Everything.
    All,
}

impl Which {
    /// Parses the CLI subcommand.
    pub fn parse(s: &str) -> Option<Which> {
        Some(match s {
            "tables" => Which::Tables(None),
            "table3" => Which::Tables(Some(3)),
            "table4" => Which::Tables(Some(4)),
            "table5" => Which::Tables(Some(5)),
            "table6" => Which::Tables(Some(6)),
            "table7" => Which::Tables(Some(7)),
            "table8" => Which::Tables(Some(8)),
            "fig6_7" | "fig6" | "fig7" => Which::Fig6and7,
            "fig8_9" | "fig8" | "fig9" => Which::Fig8and9,
            "fig10" => Which::Fig10,
            "ablation" => Which::Ablation,
            "hnsw" => Which::Hnsw,
            "stream" => Which::Stream,
            "all" => Which::All,
            _ => return None,
        })
    }
}

/// Stands an [`Engine`] up over a prebuilt graph, configured the way the
/// workload's paper settings dictate (verification strategy, threads,
/// seed). The engine owns the graph; kind/size stay reachable through
/// [`Engine::graph`]/[`Engine::index_bytes`].
fn graph_engine<'a, D: Dataset>(
    data: &'a D,
    graph: ProximityGraph,
    w: &Workload,
    threads: usize,
    seed: u64,
) -> Engine<&'a D> {
    Engine::builder(data)
        .prebuilt_graph(graph)
        .verify(w.verify_strategy())
        .threads(threads)
        .seed(seed)
        .build()
        .expect("prebuilt graph covers the workload dataset")
}

/// The workload's calibrated `(r, k)` as a validated engine query.
fn workload_query(w: &Workload, threads: usize) -> Query {
    Query::new(w.r, w.k)
        .expect("calibrated workload parameters are valid")
        .with_threads(threads)
}

/// Runs the selected experiment(s), writing Markdown to `out`. With
/// `--json <path>` the `tables` and `stream` experiments additionally
/// collect machine-readable rows written to that path at the end.
pub fn run(cfg: &Config, which: Which, out: &mut dyn Write) -> io::Result<()> {
    writeln!(
        out,
        "# DOD experiments (scale={}, seed={}, detect-threads={}, build-threads={})\n",
        cfg.scale, cfg.seed, cfg.threads, cfg.build_threads
    )?;
    let mut json = cfg.json.as_ref().map(|_| {
        let mut j = JsonReport::new();
        j.meta("scale", cfg.scale)
            .meta("seed", cfg.seed as usize)
            .meta("threads", cfg.threads);
        j
    });
    match which {
        Which::Tables(filter) => tables(cfg, filter, out, &mut json)?,
        Which::Fig6and7 => fig6_7(cfg, out)?,
        Which::Fig8and9 => fig8_9(cfg, out)?,
        Which::Fig10 => fig10(cfg, out)?,
        Which::Ablation => ablation(cfg, out)?,
        Which::Hnsw => hnsw_claim(cfg, out)?,
        Which::Stream => stream_experiment(cfg, out, &mut json)?,
        Which::All => {
            tables(cfg, None, out, &mut json)?;
            fig6_7(cfg, out)?;
            fig8_9(cfg, out)?;
            fig10(cfg, out)?;
            ablation(cfg, out)?;
            hnsw_claim(cfg, out)?;
            stream_experiment(cfg, out, &mut json)?;
        }
    }
    if let (Some(json), Some(path)) = (&json, &cfg.json) {
        if json.is_empty() {
            writeln!(
                out,
                "\n(--json: this subcommand collects no machine-readable rows; \
                 {path} not written — use tables, stream or all)"
            )?;
        } else {
            json.write(path)?;
            writeln!(out, "\n(machine-readable results written to {path})")?;
        }
    }
    Ok(())
}

/// One family's full measurement set for the table experiments.
struct FamilyMeasurement {
    family: Family,
    n: usize,
    /// Build seconds: NSW, KGraph, MRPG-basic, MRPG.
    build_secs: [f64; 4],
    /// Index MB: SNIF, DOLPHIN, VP-tree, NSW, KGraph, MRPG-basic, MRPG.
    index_mb: [f64; 7],
    /// Detection secs: NL, SNIF, DOLPHIN, VP-tree, NSW, KGraph, basic, MRPG.
    detect_secs: [f64; 8],
    /// False positives: NSW, KGraph, MRPG-basic, MRPG.
    false_positives: [usize; 4],
    /// Outliers found (sanity: identical across algorithms).
    outliers: usize,
    /// MRPG build decomposition (basic, full).
    breakdowns: [dod_graph::BuildBreakdown; 2],
    /// Filter/verify decomposition per graph.
    phase_secs: [(f64, f64); 4],
}

fn measure_family(
    cfg: &Config,
    family: Family,
    out: &mut dyn Write,
) -> io::Result<FamilyMeasurement> {
    let w = Workload::prepare(family, cfg);
    writeln!(out, "* workload {w}")?;
    out.flush()?;
    let params = DodParams::new(w.r, w.k).with_threads(cfg.threads);
    let query = workload_query(&w, cfg.threads);

    // Offline builds.
    let built = build_all_graphs(&w.data, &w, cfg.build_threads, cfg.seed);
    let build_secs = [
        built.graphs[0].build_secs,
        built.graphs[1].build_secs,
        built.graphs[2].build_secs,
        built.graphs[3].build_secs,
    ];
    let breakdowns = [
        built.graphs[2].breakdown.expect("basic has breakdown"),
        built.graphs[3].breakdown.expect("mrpg has breakdown"),
    ];
    let vp = Engine::builder(&w.data)
        .index(IndexSpec::VpTree)
        .seed(cfg.seed)
        .threads(cfg.threads)
        .build()
        .expect("VP-tree engines build for any dataset");

    // Online detection: baselines.
    let nl = nested_loop::detect(&w.data, &params, cfg.seed);
    let (snif_res, snif_bytes) = snif::detect_with_stats(&w.data, &params, cfg.seed);
    let (dolphin_res, dolphin_bytes) = dolphin::detect_with_stats(&w.data, &params, cfg.seed);
    let vp_res = vp.query(query).expect("VP-tree query");
    assert_eq!(nl.outliers, snif_res.outliers, "{family}: SNIF mismatch");
    assert_eq!(
        nl.outliers, dolphin_res.outliers,
        "{family}: DOLPHIN mismatch"
    );
    assert_eq!(nl.outliers, vp_res.outliers, "{family}: VP-tree mismatch");

    // Online detection: the four graphs, each behind an Engine session.
    let engines: Vec<Engine<&_>> = built
        .graphs
        .into_iter()
        .map(|b| graph_engine(&w.data, b.graph, &w, cfg.threads, cfg.seed))
        .collect();
    let mut graph_reports: Vec<OutlierReport> = Vec::with_capacity(4);
    for engine in &engines {
        let report = engine.query(query).expect("graph query");
        assert_eq!(
            nl.outliers,
            report.outliers,
            "{family}: {} mismatch",
            engine.index_name()
        );
        graph_reports.push(report);
    }

    Ok(FamilyMeasurement {
        family,
        n: w.n,
        build_secs,
        index_mb: [
            snif_bytes as f64 / 1048576.0,
            dolphin_bytes as f64 / 1048576.0,
            vp.index_bytes() as f64 / 1048576.0,
            engines[0].index_bytes() as f64 / 1048576.0,
            engines[1].index_bytes() as f64 / 1048576.0,
            engines[2].index_bytes() as f64 / 1048576.0,
            engines[3].index_bytes() as f64 / 1048576.0,
        ],
        detect_secs: [
            nl.total_secs(),
            snif_res.total_secs(),
            dolphin_res.total_secs(),
            vp_res.total_secs(),
            graph_reports[0].total_secs(),
            graph_reports[1].total_secs(),
            graph_reports[2].total_secs(),
            graph_reports[3].total_secs(),
        ],
        false_positives: [
            graph_reports[0].false_positives,
            graph_reports[1].false_positives,
            graph_reports[2].false_positives,
            graph_reports[3].false_positives,
        ],
        outliers: nl.outliers.len(),
        breakdowns,
        phase_secs: [
            (graph_reports[0].filter_secs, graph_reports[0].verify_secs),
            (graph_reports[1].filter_secs, graph_reports[1].verify_secs),
            (graph_reports[2].filter_secs, graph_reports[2].verify_secs),
            (graph_reports[3].filter_secs, graph_reports[3].verify_secs),
        ],
    })
}

const ALGO_NAMES: [&str; 8] = [
    "Nested-loop",
    "SNIF",
    "DOLPHIN",
    "VP-tree",
    "NSW",
    "KGraph",
    "MRPG-basic",
    "MRPG",
];

fn tables(
    cfg: &Config,
    filter: Option<u8>,
    out: &mut dyn Write,
    json: &mut Option<JsonReport>,
) -> io::Result<()> {
    writeln!(out, "## Tables 3–8 (paper §6.1–6.2)\n")?;
    let mut measurements = Vec::new();
    for &family in &cfg.families {
        measurements.push(measure_family(cfg, family, out)?);
    }
    writeln!(out)?;

    if let Some(json) = json {
        for m in &measurements {
            for (i, name) in ALGO_NAMES.iter().enumerate() {
                json.row([
                    ("experiment", JsonVal::from("tables")),
                    ("dataset", JsonVal::from(m.family.to_string())),
                    ("n", JsonVal::from(m.n)),
                    ("algorithm", JsonVal::from(*name)),
                    ("detect_secs", JsonVal::from(m.detect_secs[i])),
                ]);
            }
            for (i, graph) in ["NSW", "KGraph", "MRPG-basic", "MRPG"].iter().enumerate() {
                json.row([
                    ("experiment", JsonVal::from("tables_build")),
                    ("dataset", JsonVal::from(m.family.to_string())),
                    ("n", JsonVal::from(m.n)),
                    ("graph", JsonVal::from(*graph)),
                    ("build_secs", JsonVal::from(m.build_secs[i])),
                    ("false_positives", JsonVal::from(m.false_positives[i])),
                ]);
            }
        }
    }

    let want = |t: u8| filter.is_none() || filter == Some(t);

    if want(3) {
        writeln!(out, "### Table 3 — pre-processing time\n")?;
        let mut t = Table::new([
            "dataset",
            "n",
            "NSW",
            "KGraph",
            "MRPG-basic",
            "MRPG",
            "paper (NSW/KG/basic/MRPG)",
        ]);
        for m in &measurements {
            let p = paper::TABLE3_PREPROCESS_SECS[paper::family_index(m.family)];
            t.row([
                m.family.to_string(),
                m.n.to_string(),
                secs(m.build_secs[0]),
                secs(m.build_secs[1]),
                secs(m.build_secs[2]),
                secs(m.build_secs[3]),
                format!(
                    "{}/{}/{}/{}",
                    paper_secs(p[0]),
                    paper_secs(p[1]),
                    paper_secs(p[2]),
                    paper_secs(p[3])
                ),
            ]);
        }
        writeln!(out, "{}", t.render())?;
    }

    if want(4) {
        writeln!(out, "### Table 4 — decomposed MRPG build time (glove)\n")?;
        if let Some(m) = measurements.iter().find(|m| m.family == Family::Glove) {
            let mut t = Table::new(["phase", "MRPG-basic", "MRPG", "paper basic", "paper MRPG"]);
            let phases = [
                ("NNDescent(+)", 0usize),
                ("Connect-SubGraphs", 1),
                ("Remove-Detours", 2),
                ("Remove-Links", 3),
            ];
            for (name, idx) in phases {
                let pick = |b: &dod_graph::BuildBreakdown| match idx {
                    0 => b.nndescent_secs,
                    1 => b.connect_secs,
                    2 => b.detours_secs,
                    _ => b.remove_links_secs,
                };
                let paper_row = paper::TABLE4_GLOVE_DECOMPOSED[idx];
                t.row([
                    name.to_string(),
                    secs(pick(&m.breakdowns[0])),
                    secs(pick(&m.breakdowns[1])),
                    format!("{:.0}s", paper_row.2),
                    format!("{:.0}s", paper_row.3),
                ]);
            }
            writeln!(out, "{}", t.render())?;
        } else {
            writeln!(out, "(glove not in --families; skipped)\n")?;
        }
    }

    if want(5) {
        writeln!(out, "### Table 5 — detection running time\n")?;
        let mut t = Table::new([
            "dataset",
            "outliers",
            "Nested-loop",
            "SNIF",
            "DOLPHIN",
            "VP-tree",
            "NSW",
            "KGraph",
            "MRPG-basic",
            "MRPG",
        ]);
        for m in &measurements {
            let mut cells = vec![m.family.to_string(), m.outliers.to_string()];
            cells.extend(m.detect_secs.iter().map(|&s| secs(s)));
            t.row(cells);
        }
        writeln!(out, "{}", t.render())?;
        writeln!(out, "paper row order {ALGO_NAMES:?}; reference seconds:\n")?;
        let mut t = Table::new([
            "dataset", "paper NL", "SNIF", "DOLPHIN", "VP-tree", "NSW", "KGraph", "basic", "MRPG",
        ]);
        for m in &measurements {
            let p = paper::TABLE5_RUNNING_SECS[paper::family_index(m.family)];
            let mut cells = vec![m.family.to_string()];
            cells.extend(p.iter().map(|v| paper_secs(*v)));
            t.row(cells);
        }
        writeln!(out, "{}", t.render())?;
    }

    if want(6) {
        writeln!(out, "### Table 6 — index size [MB]\n")?;
        let mut t = Table::new([
            "dataset",
            "SNIF",
            "DOLPHIN",
            "VP-tree",
            "NSW",
            "KGraph",
            "MRPG-basic",
            "MRPG",
        ]);
        for m in &measurements {
            let mut cells = vec![m.family.to_string()];
            cells.extend(m.index_mb.iter().map(|&v| format!("{v:.2}")));
            t.row(cells);
        }
        writeln!(out, "{}", t.render())?;
        writeln!(
            out,
            "(paper, same columns, at full cardinality: e.g. glove {:?})\n",
            paper::TABLE6_INDEX_MB[1]
        )?;
    }

    if want(7) {
        writeln!(out, "### Table 7 — false positives after filtering\n")?;
        let mut t = Table::new([
            "dataset",
            "NSW",
            "KGraph",
            "MRPG-basic",
            "MRPG",
            "paper (NSW/KG/basic/MRPG)",
        ]);
        for m in &measurements {
            let p = paper::TABLE7_FALSE_POSITIVES[paper::family_index(m.family)];
            let fmt = |v: Option<u64>| v.map_or("NA".into(), |x| x.to_string());
            t.row([
                m.family.to_string(),
                m.false_positives[0].to_string(),
                m.false_positives[1].to_string(),
                m.false_positives[2].to_string(),
                m.false_positives[3].to_string(),
                format!("{}/{}/{}/{}", fmt(p[0]), fmt(p[1]), fmt(p[2]), fmt(p[3])),
            ]);
        }
        writeln!(out, "{}", t.render())?;
    }

    if want(8) {
        writeln!(out, "### Table 8 — decomposed detection time (glove)\n")?;
        if let Some(m) = measurements.iter().find(|m| m.family == Family::Glove) {
            let mut t = Table::new(["phase", "NSW", "KGraph", "MRPG-basic", "MRPG"]);
            t.row([
                "Filtering".to_string(),
                secs(m.phase_secs[0].0),
                secs(m.phase_secs[1].0),
                secs(m.phase_secs[2].0),
                secs(m.phase_secs[3].0),
            ]);
            t.row([
                "Verification".to_string(),
                secs(m.phase_secs[0].1),
                secs(m.phase_secs[1].1),
                secs(m.phase_secs[2].1),
                secs(m.phase_secs[3].1),
            ]);
            writeln!(out, "{}", t.render())?;
            writeln!(
                out,
                "(paper: filtering {:?}, verification {:?})\n",
                paper::TABLE8_GLOVE_DECOMPOSED[0],
                paper::TABLE8_GLOVE_DECOMPOSED[1]
            )?;
        } else {
            writeln!(out, "(glove not in --families; skipped)\n")?;
        }
    }

    if cfg.trace_summary {
        writeln!(
            out,
            "### Trace summary — filter/verify phase breakdown (`--trace-summary`)\n"
        )?;
        let mut t = Table::new(["dataset", "graph", "filter", "verify", "filter share"]);
        for m in &measurements {
            for (i, graph) in ["NSW", "KGraph", "MRPG-basic", "MRPG"].iter().enumerate() {
                let (filter, verify) = m.phase_secs[i];
                t.row([
                    m.family.to_string(),
                    (*graph).to_string(),
                    secs(filter),
                    secs(verify),
                    format!("{:.0}%", 100.0 * filter / (filter + verify).max(1e-12)),
                ]);
            }
        }
        writeln!(out, "{}", t.render())?;
    }

    if cfg.cost {
        cost_grid(cfg, out, json)?;
    }
    Ok(())
}

/// The `--cost` grid: Algorithm 1's work accounting per index spec. For
/// every family and every wire-spelled index (`mrpg:8` … `none`), one
/// calibrated query reports its distance evaluations by phase, graph
/// hops and pruning power `1 − evals ⁄ n·(n−1)` — the paper's headline
/// quantity, now measured instead of inferred from wall time. A
/// micro-benchmark of the counting hook itself rides along, since the
/// accounting cannot be compiled out: the documented budget is <2%
/// (PR 9's phase-span precedent measured ~1.7%).
fn cost_grid(cfg: &Config, out: &mut dyn Write, json: &mut Option<JsonReport>) -> io::Result<()> {
    writeln!(out, "### Query-cost accounting (`--cost`)\n")?;
    const SPECS: [&str; 5] = ["mrpg:8", "nsw:25", "kgraph:25", "vptree", "none"];
    for &family in &cfg.families {
        let w = Workload::prepare(family, cfg);
        writeln!(out, "* workload {w}")?;
        out.flush()?;
        let query = workload_query(&w, cfg.threads);
        let mut t = Table::new([
            "index",
            "filter evals",
            "verify evals",
            "total",
            "hops",
            "pruning power",
        ]);
        let mut reference: Option<Vec<u32>> = None;
        for spec in SPECS {
            let index: IndexSpec = spec.parse().expect("cost-grid specs are valid");
            let engine = Engine::builder(&w.data)
                .index(index)
                .verify(w.verify_strategy())
                .threads(cfg.threads)
                .seed(cfg.seed)
                .build()
                .expect("cost-grid engines build for any workload");
            let report = engine.query(query).expect("cost-grid query");
            match &reference {
                None => reference = Some(report.outliers.clone()),
                Some(r0) => assert_eq!(r0, &report.outliers, "{family}: {spec} mismatch"),
            }
            let cost = report.cost;
            let power = cost.pruning_power(w.n);
            t.row([
                spec.to_string(),
                cost.filter_dist_evals.to_string(),
                cost.verify_dist_evals.to_string(),
                cost.total_dist_evals().to_string(),
                cost.hops.to_string(),
                format!("{power:.4}"),
            ]);
            if let Some(json) = json {
                json.row([
                    ("experiment", JsonVal::from("tables_cost")),
                    ("dataset", JsonVal::from(family.to_string())),
                    ("n", JsonVal::from(w.n)),
                    ("index", JsonVal::from(spec)),
                    (
                        "dist_evals",
                        JsonVal::from(cost.total_dist_evals() as usize),
                    ),
                    (
                        "filter_dist_evals",
                        JsonVal::from(cost.filter_dist_evals as usize),
                    ),
                    (
                        "verify_dist_evals",
                        JsonVal::from(cost.verify_dist_evals as usize),
                    ),
                    ("hops", JsonVal::from(cost.hops as usize)),
                    ("pruning_power", JsonVal::from(power)),
                ]);
            }
        }
        writeln!(out, "{}", t.render())?;
        out.flush()?;
    }
    counting_overhead(cfg, out, json)
}

/// Prices the counting hook itself: the same distance evaluations with
/// and without the [`DistanceCounter`](dod_metrics::DistanceCounter)
/// wrapper (one relaxed `fetch_add` per call). The accounting is always
/// on in the engines, so this micro-benchmark is the only way to see its
/// cost; the reading is informational, never gated (CI timer noise), and
/// documented against the <2% budget.
fn counting_overhead(
    cfg: &Config,
    out: &mut dyn Write,
    json: &mut Option<JsonReport>,
) -> io::Result<()> {
    use dod_metrics::DistanceCounter;
    let family = *cfg.families.first().unwrap_or(&Family::Glove);
    let w = Workload::prepare(family, cfg);
    let pairs: u64 = 2_000_000;
    let time = |data: &dyn Dataset| {
        let n = data.len() as u64;
        let started = std::time::Instant::now();
        let mut acc = 0.0f64;
        for p in 0..pairs {
            let i = (p.wrapping_mul(0x9e3779b9)) % n;
            let j = (p.wrapping_mul(0x85ebca6b).wrapping_add(1)) % n;
            if i != j {
                acc += data.dist(i as usize, j as usize);
            }
        }
        // The sum leaves through a volatile-style sink so the loop cannot
        // be optimized away.
        assert!(acc.is_finite());
        started.elapsed().as_secs_f64()
    };
    // Warm both paths once, then measure.
    let counted = DistanceCounter::new(&w.data);
    time(&w.data);
    time(&counted);
    let raw_secs = time(&w.data);
    let counted_secs = time(&counted);
    let overhead = counted_secs / raw_secs.max(1e-12) - 1.0;
    writeln!(
        out,
        "Counting-hook overhead ({family}, {pairs} distance evaluations): raw {:.3}s, \
         counted {:.3}s — {:+.2}% (budget <2%; informational, CI timers are noisy)\n",
        raw_secs,
        counted_secs,
        overhead * 100.0
    )?;
    if let Some(json) = json {
        json.row([
            ("experiment", JsonVal::from("tables_cost_overhead")),
            ("dataset", JsonVal::from(family.to_string())),
            ("pairs", JsonVal::from(pairs as usize)),
            ("raw_secs", JsonVal::from(raw_secs)),
            ("counted_secs", JsonVal::from(counted_secs)),
            ("counting_overhead", JsonVal::from(overhead)),
        ]);
    }
    Ok(())
}

fn fig6_7(cfg: &Config, out: &mut dyn Write) -> io::Result<()> {
    writeln!(out, "## Figures 6 & 7 — scalability in n (sampling rate)\n")?;
    for &family in &cfg.families {
        let w = Workload::prepare(family, cfg);
        writeln!(out, "### {w}\n")?;
        let mut build_t = Table::new(["rate", "n", "NSW", "KGraph", "MRPG-basic", "MRPG"]);
        let mut run_t = Table::new(["rate", "n", "NSW", "KGraph", "MRPG-basic", "MRPG"]);
        for rate in paper::SAMPLING_RATES {
            let ids = w.sample_ids(rate, cfg.seed ^ 0x5a);
            let data = Subset::new(&w.data, ids);
            let built = build_all_graphs(&data, &w, cfg.build_threads, cfg.seed);
            let query = workload_query(&w, cfg.threads);
            let mut build_cells = vec![format!("{rate:.1}"), data.len().to_string()];
            let mut run_cells = vec![format!("{rate:.1}"), data.len().to_string()];
            let mut reference: Option<Vec<u32>> = None;
            for b in built.graphs {
                build_cells.push(secs(b.build_secs));
                let engine = graph_engine(&data, b.graph, &w, cfg.threads, cfg.seed);
                let report = engine.query(query).expect("graph query");
                run_cells.push(secs(report.total_secs()));
                match &reference {
                    None => reference = Some(report.outliers),
                    Some(r0) => assert_eq!(r0, &report.outliers, "{family} rate {rate}"),
                }
            }
            build_t.row(build_cells);
            run_t.row(run_cells);
        }
        writeln!(
            out,
            "Figure 6 (pre-processing time):\n\n{}",
            build_t.render()
        )?;
        writeln!(out, "Figure 7 (running time):\n\n{}", run_t.render())?;
        out.flush()?;
    }
    Ok(())
}

fn fig8_9(cfg: &Config, out: &mut dyn Write) -> io::Result<()> {
    writeln!(out, "## Figures 8 & 9 — sensitivity to k and r\n")?;
    for &family in &cfg.families {
        let w = Workload::prepare(family, cfg);
        writeln!(out, "### {w}\n")?;
        let built = build_all_graphs(&w.data, &w, cfg.build_threads, cfg.seed);
        // Build-once/query-many: one engine per graph serves both grids.
        let engines: Vec<Engine<&_>> = built
            .graphs
            .into_iter()
            .map(|b| graph_engine(&w.data, b.graph, &w, cfg.threads, cfg.seed))
            .collect();
        // One untimed warm-up query per engine: the verification engine is
        // built lazily on first use and cached, so without this the first
        // grid row alone would pay it and the rows would not compare.
        for engine in &engines {
            let _ = engine
                .query(workload_query(&w, cfg.threads))
                .expect("warm-up query");
        }

        let mut k_t = Table::new(["k", "NSW", "KGraph", "MRPG-basic", "MRPG"]);
        for k in paper::k_grid(family) {
            let k = k.min(w.n - 1);
            let query = Query::new(w.r, k).expect("valid").with_threads(cfg.threads);
            let mut cells = vec![k.to_string()];
            let mut reference: Option<Vec<u32>> = None;
            for engine in &engines {
                let report = engine.query(query).expect("graph query");
                cells.push(secs(report.total_secs()));
                match &reference {
                    None => reference = Some(report.outliers),
                    Some(r0) => assert_eq!(r0, &report.outliers, "{family} k={k}"),
                }
            }
            k_t.row(cells);
        }
        writeln!(out, "Figure 8 (vary k, r={:.4}):\n\n{}", w.r, k_t.render())?;

        let mut r_t = Table::new(["r", "NSW", "KGraph", "MRPG-basic", "MRPG"]);
        for mult in paper::R_GRID_MULTIPLIERS {
            let r = w.r * mult;
            let query = Query::new(r, w.k).expect("valid").with_threads(cfg.threads);
            let mut cells = vec![format!("{r:.4}")];
            let mut reference: Option<Vec<u32>> = None;
            for engine in &engines {
                let report = engine.query(query).expect("graph query");
                cells.push(secs(report.total_secs()));
                match &reference {
                    None => reference = Some(report.outliers),
                    Some(r0) => assert_eq!(r0, &report.outliers, "{family} r={r}"),
                }
            }
            r_t.row(cells);
        }
        writeln!(out, "Figure 9 (vary r, k={}):\n\n{}", w.k, r_t.render())?;
        out.flush()?;
    }
    Ok(())
}

fn fig10(cfg: &Config, out: &mut dyn Write) -> io::Result<()> {
    writeln!(out, "## Figure 10 — thread scalability\n")?;
    let hw = std::thread::available_parallelism().map_or(2, |p| p.get());
    writeln!(
        out,
        "(machine has {hw} hardware threads; counts beyond that are oversubscribed)\n"
    )?;
    for family in paper::FIG10_FAMILIES {
        if !cfg.families.contains(&family) {
            continue;
        }
        let w = Workload::prepare(family, cfg);
        writeln!(out, "### {w}\n")?;
        let built = build_all_graphs(&w.data, &w, cfg.build_threads, cfg.seed);
        let engines: Vec<Engine<&_>> = built
            .graphs
            .into_iter()
            .map(|b| graph_engine(&w.data, b.graph, &w, cfg.threads, cfg.seed))
            .collect();
        // Untimed warm-up so the cached verification engine is built
        // before the grid — otherwise only the first thread count pays it.
        for engine in &engines {
            let _ = engine
                .query(workload_query(&w, cfg.threads))
                .expect("warm-up query");
        }
        let mut t = Table::new(["threads", "NSW", "KGraph", "MRPG-basic", "MRPG"]);
        for threads in paper::THREAD_GRID {
            // The per-query override scales one engine across the grid.
            let query = workload_query(&w, threads);
            let mut cells = vec![threads.to_string()];
            for engine in &engines {
                let report = engine.query(query).expect("graph query");
                cells.push(secs(report.total_secs()));
            }
            t.row(cells);
        }
        writeln!(out, "{}", t.render())?;
        out.flush()?;
    }
    Ok(())
}

fn ablation(cfg: &Config, out: &mut dyn Write) -> io::Result<()> {
    writeln!(
        out,
        "## §6.2 ablation — Connect-SubGraphs / Remove-Detours (pamap2)\n"
    )?;
    let family = Family::Pamap2;
    let w = Workload::prepare(family, cfg);
    writeln!(out, "workload {w}\n")?;
    let params = DodParams::new(w.r, w.k).with_threads(cfg.threads);
    let truth = nested_loop::detect(&w.data, &params, cfg.seed).outliers;

    let mut t = Table::new(["variant", "false positives", "run time", "paper f (pamap2)"]);
    let variants: [(&str, bool, bool, usize); 4] = [
        ("MRPG (full)", true, true, 0),
        ("without Connect-SubGraphs", false, true, 1),
        ("without Remove-Detours", true, false, 2),
        ("without both", false, false, 3),
    ];
    for (name, connect, detours, paper_idx) in variants {
        let mut p = mrpg_params(&w, w.n, cfg.build_threads, cfg.seed, true);
        p.enable_connect = connect;
        p.enable_detours = detours;
        let (g, _) = dod_graph::mrpg::build(&w.data, &p);
        let engine = graph_engine(&w.data, g, &w, cfg.threads, cfg.seed);
        let report = engine
            .query(workload_query(&w, cfg.threads))
            .expect("graph query");
        assert_eq!(report.outliers, truth, "{name} lost exactness");
        t.row([
            name.to_string(),
            report.false_positives.to_string(),
            secs(report.total_secs()),
            paper::ABLATION_PAMAP2_FALSE_POSITIVES[paper_idx]
                .1
                .to_string(),
        ]);
    }
    writeln!(out, "{}", t.render())?;
    Ok(())
}

fn hnsw_claim(cfg: &Config, out: &mut dyn Write) -> io::Result<()> {
    writeln!(
        out,
        "## Extension — §3's HNSW claim\n\n\
         The paper excludes HNSW because DOD queries start at the query\n\
         object itself, so the hierarchy's entry-point routing is dead\n\
         weight. We verify: Algorithm 1 on HNSW's bottom layer should match\n\
         plain NSW detection while paying extra build time and memory for\n\
         the upper layers.\n"
    )?;
    let mut t = Table::new([
        "dataset",
        "NSW build",
        "HNSW build",
        "NSW MB",
        "HNSW MB",
        "NSW detect",
        "HNSW detect",
    ]);
    for &family in &cfg.families {
        let w = Workload::prepare(family, cfg);
        let query = workload_query(&w, cfg.threads);

        let t0 = std::time::Instant::now();
        let nsw = dod_graph::mrpg::build_nsw(&w.data, w.degree, cfg.seed);
        let nsw_build = t0.elapsed().as_secs_f64();
        let t0 = std::time::Instant::now();
        let hnsw = dod_graph::hnsw::build(
            &w.data,
            &dod_graph::hnsw::HnswParams::matching_kgraph(w.degree),
        );
        let hnsw_build = t0.elapsed().as_secs_f64();
        let hnsw_bytes = hnsw.size_bytes();
        let hnsw_flat = hnsw.bottom_layer_graph();

        let nsw_engine = graph_engine(&w.data, nsw, &w, cfg.threads, cfg.seed);
        let hnsw_engine = graph_engine(&w.data, hnsw_flat, &w, cfg.threads, cfg.seed);
        let nsw_report = nsw_engine.query(query).expect("graph query");
        let hnsw_report = hnsw_engine.query(query).expect("graph query");
        assert_eq!(
            nsw_report.outliers, hnsw_report.outliers,
            "{family}: exactness must hold on both graphs"
        );
        t.row([
            family.to_string(),
            secs(nsw_build),
            secs(hnsw_build),
            format!("{:.2}", nsw_engine.index_bytes() as f64 / 1048576.0),
            format!("{:.2}", hnsw_bytes as f64 / 1048576.0),
            secs(nsw_report.total_secs()),
            secs(hnsw_report.total_secs()),
        ]);
    }
    writeln!(out, "{}", t.render())?;
    writeln!(
        out,
        "Reading: HNSW detection should sit in NSW's ballpark (both are\n\
         flat small-world graphs at layer 0) while its index is strictly\n\
         larger — the hierarchy buys nothing for DOD, as §3 argues.\n"
    )?;
    Ok(())
}

fn stream_experiment(
    cfg: &Config,
    out: &mut dyn Write,
    json: &mut Option<JsonReport>,
) -> io::Result<()> {
    writeln!(
        out,
        "## Extension — sliding-window streaming engine\n\n\
         A drift/burst/churn stream is fed point-by-point; after every\n\
         slide the engine answers \"current outliers\". Incremental\n\
         maintenance (both backends) is compared against re-running the\n\
         batch nested loop over the window contents per slide. All three\n\
         agree exactly on every slide (asserted).\n"
    )?;
    let dim = 8;
    let n = ((4000.0 * cfg.scale) as usize).max(256);
    let w = (n / 4).clamp(64, 1024);
    let k = 8;
    let scenario = StreamScenario::new(dim);
    let points = scenario.generate(n, cfg.seed);

    // Calibrate r on a window-sized prefix so ~1% of a full window is
    // outlying.
    let prefix = VectorSet::from_rows(&points[..w], L2);
    let r = calibrate_r(&prefix, k, 0.01, 400.min(w), cfg.seed ^ 0x57ea);
    writeln!(out, "workload: n={n}, W={w}, dim={dim}, r={r:.4}, k={k}\n")?;

    // Per-slide batch baseline: re-detect over the window with the
    // randomized nested loop (positions mapped back to seqs).
    let t0 = std::time::Instant::now();
    let mut baseline = BatchSlideBaseline::new(w, DodParams::new(r, k), cfg.seed);
    let batch_outliers: Vec<Vec<u64>> = points.iter().map(|p| baseline.slide(p)).collect();
    let batch_secs = t0.elapsed().as_secs_f64();

    let mut t = Table::new([
        "engine",
        "total",
        "per slide",
        "speedup vs batch",
        "safe promotions",
        "repairs",
    ]);
    t.row([
        "batch nested-loop".to_string(),
        secs(batch_secs),
        secs(batch_secs / n as f64),
        "1.0x".to_string(),
        "-".to_string(),
        "-".to_string(),
    ]);

    // One emitter for every engine's JSON row, the batch baseline included,
    // so the schema cannot drift between them.
    let emit_row = |json: &mut Option<JsonReport>, engine: &str, total: f64| {
        if let Some(json) = json {
            json.row([
                ("experiment", JsonVal::from("stream")),
                ("engine", JsonVal::from(engine)),
                ("n", JsonVal::from(n)),
                ("window", JsonVal::from(w)),
                ("r", JsonVal::from(r)),
                ("k", JsonVal::from(k)),
                ("total_secs", JsonVal::from(total)),
                ("slide_us", JsonVal::from(total / n as f64 * 1e6)),
                ("speedup_vs_batch", JsonVal::from(batch_secs / total)),
            ]);
        }
    };
    emit_row(json, "batch nested-loop", batch_secs);

    let mut measured: Vec<(&str, f64)> = Vec::new();
    let mut phase_rows: Vec<(&str, f64, u64, u64)> = Vec::new();
    for (name, backend) in [
        ("stream exhaustive", Backend::Exhaustive),
        ("stream graph", Backend::Graph(GraphParams::default())),
    ] {
        let space = VectorSpace::new(L2, dim);
        let query = Query::new(r, k).expect("calibrated stream query is valid");
        let mut det = StreamDetector::open(space, query, WindowSpec::Count(w), backend)
            .expect("valid stream parameters");
        let t0 = std::time::Instant::now();
        let mut disagreements = 0usize;
        for (i, p) in points.iter().enumerate() {
            det.insert(p.clone());
            let got = det.outliers();
            if got != batch_outliers[i] {
                disagreements += 1;
            }
        }
        let total = t0.elapsed().as_secs_f64();
        assert_eq!(disagreements, 0, "{name} disagreed with batch re-detection");
        let stats = det.stats();
        t.row([
            name.to_string(),
            secs(total),
            secs(total / n as f64),
            format!("{:.1}x", batch_secs / total),
            stats.safe_promotions.to_string(),
            (stats.full_repairs + stats.incremental_repairs).to_string(),
        ]);
        measured.push((name, total));
        phase_rows.push((name, total, stats.insert_nanos, stats.expiry_nanos));
        emit_row(json, name, total);
    }
    writeln!(out, "{}", t.render())?;
    for (name, total) in measured {
        writeln!(
            out,
            "{name}: {:.1}x cheaper per slide than batch re-detection",
            batch_secs / total
        )?;
    }
    writeln!(out)?;

    if cfg.trace_summary {
        writeln!(
            out,
            "### Trace summary — per-slide phase breakdown (`--trace-summary`)\n"
        )?;
        let mut t = Table::new(["engine", "insert", "expiry", "insert/slide", "insert share"]);
        for (name, total, insert_nanos, expiry_nanos) in &phase_rows {
            let insert = *insert_nanos as f64 / 1e9;
            let expiry = *expiry_nanos as f64 / 1e9;
            t.row([
                (*name).to_string(),
                secs(insert),
                secs(expiry),
                secs(insert / n as f64),
                format!("{:.0}%", 100.0 * insert / total.max(1e-12)),
            ]);
        }
        writeln!(out, "{}", t.render())?;
    }

    if !cfg.shards.is_empty() {
        shard_grid(cfg, out, json, &scenario)?;
    }
    if !cfg.durability.is_empty() {
        durability_grid(cfg, out, json, &scenario)?;
    }
    if cfg.health {
        health_grid(cfg, out, json, &scenario)?;
    }
    Ok(())
}

/// The `--health` grid: the observability counters under load. Three
/// questions: what does sampled recall auditing cost at its default
/// cadence (the auditor ships enabled, so its overhead must stay at
/// noise level); how do the graph-health gauges — recall estimate,
/// tombstone ratio, compaction/bridge counters — move over a long
/// churning stream (the aging regime the auditor exists to catch); and
/// how balanced does a sharded window stay (owned-point skew,
/// slide-time skew, ghost rates).
fn health_grid(
    cfg: &Config,
    out: &mut dyn Write,
    json: &mut Option<JsonReport>,
    scenario: &StreamScenario,
) -> io::Result<()> {
    // Churn stays ON here (the shard grid turns it off): teleporting
    // clusters are what ages a proximity graph — mass expiry leaves
    // tombstones, edge loss forces repairs — so they are exactly what
    // the gauges must be seen witnessing.
    let dim = scenario.dim;
    let n = ((12000.0 * cfg.scale) as usize).max(1024);
    let w = (n / 8).clamp(128, 1024);
    let k = 8;
    let points = scenario.generate(n, cfg.seed ^ 0x6ea1);
    let prefix = VectorSet::from_rows(&points[..w], L2);
    let r = calibrate_r(&prefix, k, 0.01, 400.min(w), cfg.seed ^ 0x6ea1);
    let query = Query::new(r, k).expect("calibrated health query is valid");
    writeln!(
        out,
        "### Index health (`--health`): n={n}, W={w}, dim={dim}, r={r:.4}, k={k}\n"
    )?;

    // Audit-off vs audit-on over the same stream, the audit-on run
    // doubling as the trajectory probe. Both runs pause the clock at the
    // same checkpoints, so `index_health()` (an O(live) scan) and the
    // checkpoint bookkeeping run off the clock and the timing comparison
    // stays fair.
    let defaults = GraphParams::default();
    const CHECKPOINTS: usize = 8;
    let mut totals = [0f64; 2];
    let mut finals: [Option<StreamStats>; 2] = [None, None];
    let mut trajectory: Vec<(usize, StreamStats, IndexHealth)> = Vec::new();
    for (run, audit_sample) in [(0usize, 0usize), (1, defaults.audit_sample)] {
        let mut det = StreamDetector::open(
            VectorSpace::new(L2, dim),
            query,
            WindowSpec::Count(w),
            Backend::Graph(GraphParams {
                audit_sample,
                ..defaults
            }),
        )
        .expect("valid stream parameters");
        let mut fed = 0usize;
        for seg in 1..=CHECKPOINTS {
            let until = n * seg / CHECKPOINTS;
            let t0 = std::time::Instant::now();
            for p in &points[fed..until] {
                det.insert(p.clone());
            }
            totals[run] += t0.elapsed().as_secs_f64();
            fed = until;
            if run == 1 {
                trajectory.push((fed, det.stats(), det.index_health()));
            }
        }
        finals[run] = Some(det.stats());
    }
    let [off_secs, on_secs] = totals;
    let overhead = on_secs / off_secs - 1.0;

    let mut t = Table::new([
        "engine",
        "total",
        "per slide",
        "audits",
        "recall estimate",
        "audit overhead",
    ]);
    for (name, total, stats) in [
        (
            "graph audit-off",
            off_secs,
            finals[0].take().expect("audit-off run measured"),
        ),
        (
            "graph audit-on",
            on_secs,
            finals[1].take().expect("audit-on run measured"),
        ),
    ] {
        let audited = stats.recall_audits > 0;
        t.row([
            name.to_string(),
            secs(total),
            secs(total / n as f64),
            stats.recall_audits.to_string(),
            if audited {
                format!("{:.4}", stats.recall_estimate())
            } else {
                "-".to_string()
            },
            if audited {
                format!("{:+.2}%", overhead * 100.0)
            } else {
                "-".to_string()
            },
        ]);
        if let Some(json) = json {
            let mut row = vec![
                ("experiment", JsonVal::from("stream_health")),
                ("engine", JsonVal::from(name)),
                ("n", JsonVal::from(n)),
                ("window", JsonVal::from(w)),
                ("r", JsonVal::from(r)),
                ("k", JsonVal::from(k)),
                ("total_secs", JsonVal::from(total)),
                ("slide_us", JsonVal::from(total / n as f64 * 1e6)),
            ];
            if audited {
                row.push(("audits", JsonVal::from(stats.recall_audits as usize)));
                row.push(("recall_estimate", JsonVal::from(stats.recall_estimate())));
                row.push(("audit_overhead", JsonVal::from(overhead)));
            }
            json.row(row);
        }
    }
    writeln!(out, "{}", t.render())?;
    writeln!(
        out,
        "(identical stream, graph backend; audit-on samples {} residents \
         every {} slides — the default cadence `/v1/debug/health` reports \
         against)\n",
        defaults.audit_sample, defaults.sample_rate
    )?;

    writeln!(
        out,
        "#### Graph-health trajectory (audit-on run, {CHECKPOINTS} checkpoints)\n"
    )?;
    let mut t = Table::new([
        "position",
        "recall",
        "audits",
        "tombstone ratio",
        "live",
        "compactions",
        "bridge edges",
        "repairs",
    ]);
    for (pos, stats, health) in &trajectory {
        t.row([
            pos.to_string(),
            format!("{:.4}", stats.recall_estimate()),
            stats.recall_audits.to_string(),
            format!("{:.4}", health.tombstone_ratio()),
            health.live.to_string(),
            health.compactions.to_string(),
            health.bridge_edges.to_string(),
            (stats.full_repairs + stats.incremental_repairs).to_string(),
        ]);
        if let Some(json) = json {
            json.row([
                ("experiment", JsonVal::from("stream_health_trajectory")),
                ("position", JsonVal::from(*pos)),
                ("n", JsonVal::from(n)),
                ("window", JsonVal::from(w)),
                ("recall_estimate", JsonVal::from(stats.recall_estimate())),
                ("audits", JsonVal::from(stats.recall_audits as usize)),
                ("tombstone_ratio", JsonVal::from(health.tombstone_ratio())),
                ("live", JsonVal::from(health.live as usize)),
                ("tombstones", JsonVal::from(health.tombstones as usize)),
                ("compactions", JsonVal::from(health.compactions as usize)),
                ("bridge_edges", JsonVal::from(health.bridge_edges as usize)),
            ]);
        }
    }
    writeln!(out, "{}", t.render())?;

    // Shard balance: the skew gauges the server exports, measured over
    // the shard grid's cluster geometry (many clusters, fixed r tied to
    // the cluster scale). The churny single-window scenario above would
    // be degenerate here — its calibrated r dwarfs the pivot spacing, so
    // every point routes to one shard and skew pins at S, measuring
    // nothing. Graph-backed shards, so the per-shard health documents
    // being absorbed are non-trivial.
    let shards = 4;
    let balance_scenario = StreamScenario {
        dim,
        clusters: 16,
        spread: 14.0,
        churn_every: 0,
        ..scenario.clone()
    };
    let balance_points = balance_scenario.generate(n, cfg.seed ^ 0xba1a);
    let balance_r = 1.1 * balance_scenario.cluster_std * (2.0 * dim as f64).sqrt();
    let balance_query = Query::new(balance_r, k).expect("geometry-fixed query is valid");
    let spec = ShardSpec::new(shards).with_warmup((w / 4).max(64));
    let mut det = ShardedStreamDetector::open(
        VectorSpace::new(L2, dim),
        balance_query,
        WindowSpec::Count(w),
        Backend::Graph(defaults),
        spec,
    )
    .expect("valid shard spec");
    let t0 = std::time::Instant::now();
    for p in &balance_points {
        det.insert(p.clone());
    }
    let total = t0.elapsed().as_secs_f64();
    let report = det.health();
    let ghost_rate_max = report.ghost_rates().into_iter().fold(0.0f64, f64::max);
    writeln!(
        out,
        "#### Shard balance (S={shards}, clustered stream, r={balance_r:.4})\n"
    )?;
    let mut t = Table::new([
        "total",
        "per slide",
        "owned skew",
        "slide skew",
        "max ghost rate",
    ]);
    t.row([
        secs(total),
        secs(total / n as f64),
        format!("{:.2}", report.owned_skew()),
        format!("{:.2}", report.slide_skew()),
        format!("{:.3}", ghost_rate_max),
    ]);
    writeln!(out, "{}", t.render())?;
    writeln!(
        out,
        "(skew = max/mean across shards, 1.0 = perfectly balanced; these \
         are the `dod_shard_balance_*` gauges `/metrics` exports)\n"
    )?;
    if let Some(json) = json {
        json.row([
            ("experiment", JsonVal::from("stream_health_balance")),
            ("shards", JsonVal::from(shards)),
            ("n", JsonVal::from(n)),
            ("window", JsonVal::from(w)),
            ("r", JsonVal::from(balance_r)),
            ("k", JsonVal::from(k)),
            ("total_secs", JsonVal::from(total)),
            ("slide_us", JsonVal::from(total / n as f64 * 1e6)),
            ("owned_skew", JsonVal::from(report.owned_skew())),
            ("slide_skew", JsonVal::from(report.slide_skew())),
            ("ghost_rate_max", JsonVal::from(ghost_rate_max)),
            (
                "ghosts",
                JsonVal::from(report.stats().ghost_inserts as usize),
            ),
        ]);
    }
    Ok(())
}

/// The `--shards` grid: the same scenario fed through the sharded async
/// pipeline at each shard count, reporting slide throughput. Exactness is
/// asserted against a single `StreamDetector` consuming the same stream;
/// scaling comes from pivot partitioning (each shard's window is ~`W/S`,
/// so discovery work shrinks) plus the per-shard pump threads.
fn shard_grid(
    cfg: &Config,
    out: &mut dyn Write,
    json: &mut Option<JsonReport>,
    scenario: &StreamScenario,
) -> io::Result<()> {
    // Heavier per-slide work than the single-window rows (window of
    // n/2): sharding is the tool for windows one core cannot slide fast
    // enough, so that is the regime the grid measures. Dimensionality
    // stays moderate on purpose — metric partitioning (like the metric
    // DBSCAN it borrows from) pays off at low intrinsic dimension;
    // concentration of measure in high dimension puts every point within
    // the ±2r ghost band of every pivot.
    let dim = 8;
    // 4× the single-window rows' stream and a window of n/2: sharding is
    // the tool for windows one core cannot slide fast enough, so the
    // grid measures a window heavy enough that per-slide distance work
    // dominates per-point constants.
    let n = ((16000.0 * cfg.scale) as usize).max(512);
    let w = (n / 2).clamp(64, 4096);
    let k = 8;
    // More clusters than shards: each shard owns several, so per-shard
    // windows shrink ~S× in *both* costs — scan length and neighbor
    // density (per-insert state updates scale with cluster occupancy,
    // which sharding only dilutes when clusters outnumber shards).
    // Churn is disabled here (it stays on in the exactness proptests):
    // a teleported cluster lands far from every warm-up pivot and
    // multi-ghosts for the rest of the stream — the known re-pivoting
    // limitation (see ROADMAP) — which would measure partition staleness,
    // not steady-state sharding throughput.
    let scenario = StreamScenario {
        dim,
        clusters: 16,
        spread: 14.0,
        churn_every: 0,
        ..scenario.clone()
    };
    let points = scenario.generate(n, cfg.seed ^ 0x5aad);
    // r is fixed from the scenario's geometry rather than calibrated:
    // same-cluster pairs sit at ≈ cluster_std·√(2·dim), so 1.1× that
    // covers a point's cluster-mates while staying far below the
    // inter-cluster gaps — quantile calibration is cliff-prone here (one
    // tail point in the sample and r jumps to the tail scale, ghosting
    // every point into every shard).
    let r = 1.1 * scenario.cluster_std * (2.0 * dim as f64).sqrt();
    writeln!(
        out,
        "### Sharded pipeline (`--shards`): n={n}, W={w}, dim={dim}, r={r:.4}, k={k}\n"
    )?;

    // Reference answer: one synchronous detector over the same stream.
    let query = Query::new(r, k).expect("calibrated query is valid");
    let mut single = StreamDetector::open(
        VectorSpace::new(L2, dim),
        query,
        WindowSpec::Count(w),
        Backend::Exhaustive,
    )
    .expect("valid stream parameters");
    for p in &points {
        single.insert(p.clone());
    }
    let want = single.outliers();

    // Two rows per shard count: the synchronous sharded detector
    // isolates the partitioning win (each shard's discovery scans ~W/S
    // residents, so total work drops ~S× even on one core); the async
    // pipeline adds the per-shard pump threads and bounded-queue
    // decoupling, which additionally overlaps slides when cores exist.
    let mut t = Table::new([
        "shards",
        "mode",
        "total",
        "per slide",
        "slides/sec",
        "speedup vs S=1",
        "ghosts",
    ]);
    let mut baselines: [Option<f64>; 2] = [None, None];
    for &shards in &cfg.shards {
        let open = || {
            ShardedStreamDetector::open(
                VectorSpace::new(L2, dim),
                query,
                WindowSpec::Count(w),
                Backend::Exhaustive,
                ShardSpec::new(shards).with_warmup((w / 4).max(64)),
            )
            .expect("valid shard spec")
        };
        for (mode_idx, mode) in ["sync", "pipeline"].into_iter().enumerate() {
            let (total, got, stats) = if mode == "sync" {
                let mut det = open();
                let t0 = std::time::Instant::now();
                for p in &points {
                    det.insert(p.clone());
                }
                let got = det.outliers();
                (t0.elapsed().as_secs_f64(), got, det.stats())
            } else {
                let pipeline = open().into_pipeline(1024);
                let t0 = std::time::Instant::now();
                // Chunked feeding: one queue handoff per 128 points, the
                // high-throughput producer pattern `insert_many` is for.
                for chunk in points.chunks(128) {
                    pipeline
                        .insert_many(chunk.to_vec())
                        .expect("pipeline alive");
                }
                // The report is the drain barrier: it reflects every insert.
                let got = pipeline.outliers().expect("report");
                let total = t0.elapsed().as_secs_f64();
                let stats = pipeline.stats().expect("stats");
                drop(pipeline.finish().expect("finish"));
                (total, got, stats)
            };
            assert_eq!(got, want, "sharded {mode} diverged at S={shards}");
            let slides_per_sec = n as f64 / total;
            if shards == 1 {
                baselines[mode_idx] = Some(total);
            }
            let speedup = baselines[mode_idx]
                .map_or_else(|| "-".to_string(), |b| format!("{:.1}x", b / total));
            t.row([
                shards.to_string(),
                mode.to_string(),
                secs(total),
                secs(total / n as f64),
                format!("{slides_per_sec:.0}"),
                speedup,
                stats.ghost_inserts.to_string(),
            ]);
            if let Some(json) = json {
                json.row([
                    ("experiment", JsonVal::from("stream_sharded")),
                    ("engine", JsonVal::from(format!("sharded {mode}"))),
                    ("shards", JsonVal::from(shards)),
                    ("n", JsonVal::from(n)),
                    ("window", JsonVal::from(w)),
                    ("r", JsonVal::from(r)),
                    ("k", JsonVal::from(k)),
                    ("ghosts", JsonVal::from(stats.ghost_inserts as usize)),
                    ("total_secs", JsonVal::from(total)),
                    ("slide_us", JsonVal::from(total / n as f64 * 1e6)),
                    ("slides_per_sec", JsonVal::from(slides_per_sec)),
                ]);
            }
        }
    }
    writeln!(out, "{}", t.render())?;
    writeln!(
        out,
        "(answers asserted equal to the single-window detector at every shard \
         count; \"sync\" isolates the ~W/S work reduction, \"pipeline\" adds \
         the per-shard pump threads)\n"
    )?;
    Ok(())
}

/// The `--durability` grid: the same stream fed through a WAL-backed
/// session at each sync policy, against a no-WAL baseline (`none`). What
/// the grid prices is the write amplification of durability — framing +
/// fsync per policy — not the detection itself, which is identical (and
/// asserted identical) in every row.
fn durability_grid(
    cfg: &Config,
    out: &mut dyn Write,
    json: &mut Option<JsonReport>,
    scenario: &StreamScenario,
) -> io::Result<()> {
    // Same cluster geometry as the shard grid, sized down: fsync cost per
    // op is flat, so durability overhead shows at any n — no need for a
    // window heavy enough to make distance work dominate.
    let dim = 8;
    let n = ((8000.0 * cfg.scale) as usize).max(512);
    let w = (n / 4).clamp(64, 2048);
    let k = 8;
    let scenario = StreamScenario {
        dim,
        clusters: 16,
        spread: 14.0,
        churn_every: 0,
        ..scenario.clone()
    };
    let points = scenario.generate(n, cfg.seed ^ 0xd07a);
    let r = 1.1 * scenario.cluster_std * (2.0 * dim as f64).sqrt();
    let query = Query::new(r, k).expect("calibrated query is valid");
    let spec = ShardSpec::new(2).with_warmup((w / 4).max(64));
    writeln!(
        out,
        "### Durability overhead (`--durability`): n={n}, W={w}, dim={dim}, \
         r={r:.4}, k={k}, S=2\n"
    )?;

    // Reference: the no-WAL sharded detector over the same stream. Its
    // answer doubles as the exactness oracle for every durable row.
    let mut plain = ShardedStreamDetector::open(
        VectorSpace::new(L2, dim),
        query,
        WindowSpec::Count(w),
        Backend::Exhaustive,
        spec,
    )
    .expect("valid shard spec");
    let t0 = std::time::Instant::now();
    for p in &points {
        plain.insert(p.clone());
    }
    let want = plain.outliers();
    let none_secs = t0.elapsed().as_secs_f64();

    let mut t = Table::new([
        "durability",
        "total",
        "per slide",
        "overhead vs none",
        "fsyncs",
        "wal bytes",
    ]);
    let scratch = std::env::temp_dir().join(format!("dod_bench_wal_{}", std::process::id()));
    for policy_name in &cfg.durability {
        let (total, fsyncs, wal_bytes) = if policy_name == "none" {
            (none_secs, None, None)
        } else {
            let sync = match policy_name.as_str() {
                "always" => SyncPolicy::Always,
                "never" => SyncPolicy::Never,
                // Config::from_args admits nothing else.
                _ => SyncPolicy::EveryN(32),
            };
            let dir = scratch.join(policy_name);
            let _ = std::fs::remove_dir_all(&dir);
            let (mut sess, stats) = DurableSession::open(
                VectorSpace::new(L2, dim),
                query,
                WindowSpec::Count(w),
                Backend::Exhaustive,
                spec,
                &dir,
                DurabilityPolicy::with_sync(sync),
            )
            .expect("fresh durable session");
            assert!(stats.is_fresh(), "scratch dir held a stale WAL");
            let telemetry = sess.telemetry();
            let t0 = std::time::Instant::now();
            for p in &points {
                sess.insert(p.clone());
            }
            let got = sess.outliers();
            let total = t0.elapsed().as_secs_f64();
            assert_eq!(got, want, "durable session ({policy_name}) diverged");
            sess.close();
            let (fsyncs, bytes) = (telemetry.fsyncs.get(), telemetry.appended_bytes.get());
            let _ = std::fs::remove_dir_all(&dir);
            (total, Some(fsyncs), Some(bytes))
        };
        let overhead = total / none_secs;
        t.row([
            policy_name.clone(),
            secs(total),
            secs(total / n as f64),
            format!("{overhead:.2}x"),
            fsyncs.map_or_else(|| "-".to_string(), |f| f.to_string()),
            wal_bytes.map_or_else(|| "-".to_string(), |b| b.to_string()),
        ]);
        if let Some(json) = json {
            let mut row = vec![
                ("experiment", JsonVal::from("stream_wal")),
                ("engine", JsonVal::from(policy_name.as_str())),
                ("n", JsonVal::from(n)),
                ("window", JsonVal::from(w)),
                ("r", JsonVal::from(r)),
                ("k", JsonVal::from(k)),
                ("total_secs", JsonVal::from(total)),
                ("slide_us", JsonVal::from(total / n as f64 * 1e6)),
                ("overhead_vs_none", JsonVal::from(overhead)),
            ];
            if let Some(fsyncs) = fsyncs {
                row.push(("fsyncs", JsonVal::from(fsyncs as usize)));
            }
            if let Some(bytes) = wal_bytes {
                row.push(("wal_bytes", JsonVal::from(bytes as usize)));
            }
            json.row(row);
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);
    writeln!(out, "{}", t.render())?;
    writeln!(
        out,
        "(every durable row's outliers asserted equal to the no-WAL detector; \
         `always` fsyncs per batch — here per point, the worst case — \
         `everyN` amortizes over 32 ops, `never` leaves flushing to the OS)\n"
    )?;
    Ok(())
}
