//! The per-slide batch re-detection baseline the streaming engine is
//! measured against.
//!
//! One shared implementation so the `stream` experiments subcommand and
//! the `streaming` criterion bench cannot drift apart: ingest a point into
//! a FIFO window, snapshot it, re-run the randomized nested loop, map
//! positions back to global sequence numbers.

use dod_core::{nested_loop, DodParams};
use dod_metrics::{VectorSet, L2};
use std::collections::VecDeque;

/// A count-window stream answered by from-scratch batch detection per
/// slide. Seq numbering matches `dod_stream` (0, 1, 2, … in arrival
/// order), so outputs are directly comparable.
pub struct BatchSlideBaseline {
    window: VecDeque<Vec<f32>>,
    capacity: usize,
    front_seq: u64,
    params: DodParams,
    seed: u64,
}

impl BatchSlideBaseline {
    /// A baseline over the `capacity` most recent points.
    pub fn new(capacity: usize, params: DodParams, seed: u64) -> Self {
        assert!(capacity >= 1, "count window needs capacity >= 1");
        BatchSlideBaseline {
            window: VecDeque::new(),
            capacity,
            front_seq: 0,
            params,
            seed,
        }
    }

    /// Ingests one point and returns the current outliers as seqs,
    /// ascending — the answer `StreamDetector::outliers` must reproduce.
    pub fn slide(&mut self, point: &[f32]) -> Vec<u64> {
        self.window.push_back(point.to_vec());
        if self.window.len() > self.capacity {
            self.window.pop_front();
            self.front_seq += 1;
        }
        let snapshot = VectorSet::from_rows(self.window.make_contiguous(), L2);
        nested_loop::detect(&snapshot, &self.params, self.seed)
            .outliers
            .into_iter()
            .map(|pos| self.front_seq + pos as u64)
            .collect()
    }

    /// Current window fill.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// `true` before the first slide.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slides_expire_fifo_and_map_seqs() {
        // r=0.5, k=1 over a window of 2: a lone far point is an outlier.
        let mut b = BatchSlideBaseline::new(2, DodParams::new(0.5, 1), 0);
        assert_eq!(b.slide(&[0.0]), vec![0]); // alone: no neighbor at all
        assert_eq!(b.slide(&[0.1]), Vec::<u64>::new());
        // Seq 2 evicts seq 0; window = {0.1, 9.0}: both isolated.
        assert_eq!(b.slide(&[9.0]), vec![1, 2]);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
    }
}
