//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§6).
//!
//! The `experiments` binary drives the [`experiments`] module:
//!
//! ```text
//! experiments tables            # Tables 3, 4, 5, 6, 7, 8 in one pass
//! experiments table5            # any single table
//! experiments fig6_7            # build-time and run-time vs n
//! experiments fig8_9            # run time vs k and vs r
//! experiments fig10             # run time vs thread count
//! experiments ablation          # §6.2 Connect/Detour ablation
//! experiments all               # everything
//! ```
//!
//! Common flags: `--scale <f64>` (dataset size multiplier), `--seed`,
//! `--threads`, `--families deep,glove,...`; the `stream` experiment adds
//! `--shards 1,2,4` for the sharded-pipeline throughput grid.
//!
//! `experiments compare a.json b.json [--threshold 0.25]` diffs two
//! `--json` artifacts and exits nonzero on regressions beyond the
//! threshold (the perf-trajectory ritual; see [`compare`]).
//!
//! Cardinalities default to [`dod_datasets::Family::default_n`] — scaled
//! down from the paper's millions to laptop scale; EXPERIMENTS.md records
//! the shape comparisons against the paper's numbers.

pub mod compare;
pub mod experiments;
pub mod graphs;
pub mod paper;
pub mod report;
pub mod slide_baseline;
pub mod workload;

pub use graphs::{build_all_graphs, BuiltGraphs};
pub use report::Table;
pub use slide_baseline::BatchSlideBaseline;
pub use workload::{Config, Workload};
