//! Experiment configuration and per-family workload preparation.

use dod_core::VerifyStrategy;
use dod_datasets::{calibrate_r, AnyDataset, Family};
use dod_metrics::Dataset;

/// Harness-wide configuration, parsed from the command line.
#[derive(Debug, Clone)]
pub struct Config {
    /// Multiplier on every family's default cardinality.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Threads for detection (the paper's default is 12; ours should match
    /// the machine).
    pub threads: usize,
    /// Threads for graph construction (the paper uses 48).
    pub build_threads: usize,
    /// Families to evaluate.
    pub families: Vec<Family>,
    /// Sample size of the radius calibration.
    pub calib_samples: usize,
    /// Write machine-readable results to this path (`--json`).
    pub json: Option<String>,
    /// Shard counts for the stream experiment's sharded-pipeline grid
    /// (`--shards 1,2,4`); empty = skip the grid.
    pub shards: Vec<usize>,
    /// Durability policies for the stream experiment's WAL-overhead grid
    /// (`--durability none,everyN,always`); empty = skip the grid.
    /// `none` is the no-WAL baseline; the rest are WAL sync policies.
    pub durability: Vec<String>,
    /// Print a per-phase time breakdown (filter/verify for the table
    /// experiments, insert/expiry per slide for the stream experiment)
    /// after the result tables (`--trace-summary`).
    pub trace_summary: bool,
    /// Run the stream experiment's index-health grid (`--health`): a
    /// long churning stream tracking recall audits, tombstone ratio and
    /// repair counters over stream position, the audit-on vs audit-off
    /// overhead comparison, and shard-balance skew.
    pub health: bool,
    /// Run the table experiments' query-cost grid (`--cost`): distance
    /// evaluations by phase, graph hops and pruning power per index
    /// spec, plus the counting-hook overhead micro-benchmark.
    pub cost: bool,
}

impl Default for Config {
    fn default() -> Self {
        let hw = std::thread::available_parallelism().map_or(2, |p| p.get());
        Config {
            scale: 1.0,
            seed: 42,
            threads: hw,
            build_threads: hw,
            families: Family::ALL.to_vec(),
            calib_samples: 800,
            json: None,
            shards: Vec::new(),
            durability: Vec::new(),
            trace_summary: false,
            health: false,
            cost: false,
        }
    }
}

impl Config {
    /// Parses `--scale`, `--seed`, `--threads`, `--families` style flags.
    /// Unknown flags abort with a usage message.
    pub fn from_args(args: &[String]) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut next = |flag: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} expects a value"))
            };
            match arg.as_str() {
                "--scale" => {
                    cfg.scale = next("--scale")?
                        .parse()
                        .map_err(|e| format!("--scale: {e}"))?
                }
                "--seed" => {
                    cfg.seed = next("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?
                }
                "--threads" => {
                    cfg.threads = next("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?
                }
                "--build-threads" => {
                    cfg.build_threads = next("--build-threads")?
                        .parse()
                        .map_err(|e| format!("--build-threads: {e}"))?
                }
                "--json" => cfg.json = Some(next("--json")?),
                "--trace-summary" => cfg.trace_summary = true,
                "--health" => cfg.health = true,
                "--cost" => cfg.cost = true,
                "--shards" => {
                    let list = next("--shards")?;
                    cfg.shards = list
                        .split(',')
                        .map(|s| {
                            s.trim()
                                .parse::<usize>()
                                .map_err(|e| format!("--shards {s:?}: {e}"))
                        })
                        .collect::<Result<_, _>>()?;
                    if cfg.shards.contains(&0) {
                        return Err("--shards entries must be >= 1".into());
                    }
                }
                "--durability" => {
                    let list = next("--durability")?;
                    cfg.durability = list
                        .split(',')
                        .map(|s| {
                            let s = s.trim();
                            match s {
                                "none" | "everyN" | "always" | "never" => Ok(s.to_string()),
                                _ => Err(format!(
                                    "--durability {s:?}: expected none, everyN, always or never"
                                )),
                            }
                        })
                        .collect::<Result<_, _>>()?;
                }
                "--families" => {
                    let list = next("--families")?;
                    cfg.families = list
                        .split(',')
                        .map(|s| {
                            Family::parse(s.trim()).ok_or_else(|| format!("unknown family {s:?}"))
                        })
                        .collect::<Result<_, _>>()?;
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        if cfg.scale <= 0.0 {
            return Err("--scale must be positive".into());
        }
        Ok(cfg)
    }

    /// The cardinality a family runs at under this config.
    pub fn n_for(&self, family: Family) -> usize {
        ((family.default_n() as f64 * self.scale) as usize).max(64)
    }
}

/// A prepared evaluation workload: dataset plus the calibrated default
/// query, mirroring one row of the paper's Tables 1 + 2.
pub struct Workload {
    /// The emulated dataset family.
    pub family: Family,
    /// Objects.
    pub data: AnyDataset,
    /// Cardinality.
    pub n: usize,
    /// Calibrated default radius (paper Table 2's per-dataset `r`).
    pub r: f64,
    /// Default count threshold (paper Table 2's `k`).
    pub k: usize,
    /// Graph degree `K` (paper §6).
    pub degree: usize,
}

impl Workload {
    /// Generates and calibrates the workload for one family.
    pub fn prepare(family: Family, cfg: &Config) -> Workload {
        let n = cfg.n_for(family);
        let gen = family.generate(n, cfg.seed);
        let k = family.default_k().min((n / 10).max(1));
        let r = calibrate_r(
            &gen.data,
            k,
            family.target_outlier_ratio(),
            cfg.calib_samples.min(n),
            cfg.seed ^ 0xca11b,
        );
        Workload {
            family,
            data: gen.data,
            n,
            r,
            k,
            degree: family.graph_degree(),
        }
    }

    /// The verification strategy the paper fixes for this dataset
    /// (§6 "Algorithms": VP-tree on HEPMASS, PAMAP2 and Words; linear
    /// scan elsewhere).
    pub fn verify_strategy(&self) -> VerifyStrategy {
        match self.family {
            Family::Hepmass | Family::Pamap2 | Family::Words => VerifyStrategy::VpTree,
            _ => VerifyStrategy::Linear,
        }
    }

    /// The `m` suspected outliers receiving exact `K'` lists: sized to
    /// comfortably cover the expected outlier population (the paper keeps
    /// `m` a constant ≪ n chosen per dataset).
    pub fn exact_m(&self) -> usize {
        exact_m(self.family, self.n)
    }

    /// Bytes of raw object data (reported alongside index sizes).
    pub fn data_bytes(&self) -> usize {
        self.data.data_bytes()
    }

    /// Sub-sampled view for the scalability experiments (first
    /// `rate · n` objects of a deterministic shuffle).
    pub fn sample_ids(&self, rate: f64, seed: u64) -> Vec<u32> {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut ids: Vec<u32> = (0..self.n as u32).collect();
        ids.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        ids.truncate(((self.n as f64 * rate) as usize).max(32));
        ids
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (n={}, {}, r={:.4}, k={})",
            self.family,
            self.n,
            self.family.metric(),
            self.r,
            self.k
        )
    }
}

/// The exact-list budget `m` for a family at cardinality `n`.
pub fn exact_m(family: Family, n: usize) -> usize {
    ((n as f64 * family.target_outlier_ratio() * 2.0) as usize).clamp(32, n.max(1))
}

/// Outlier ratio check used by tests: counts true outliers via the
/// brute-force definition on a sample.
pub fn sampled_outlier_ratio(w: &Workload, sample: usize) -> f64 {
    let step = (w.n / sample.max(1)).max(1);
    let mut outliers = 0usize;
    let mut total = 0usize;
    let mut p = 0;
    while p < w.n {
        let mut count = 0;
        for j in 0..w.n {
            if j != p && w.data.dist(p, j) <= w.r {
                count += 1;
                if count >= w.k {
                    break;
                }
            }
        }
        if count < w.k {
            outliers += 1;
        }
        total += 1;
        p += step;
    }
    outliers as f64 / total.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_round_trip() {
        let args: Vec<String> = ["--scale", "0.5", "--seed", "9", "--families", "glove,words"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let cfg = Config::from_args(&args).unwrap();
        assert_eq!(cfg.scale, 0.5);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.families, vec![Family::Glove, Family::Words]);
    }

    #[test]
    fn trace_summary_flag_round_trips() {
        assert!(!Config::from_args(&[]).unwrap().trace_summary);
        let cfg = Config::from_args(&["--trace-summary".to_string()]).unwrap();
        assert!(cfg.trace_summary);
    }

    #[test]
    fn health_flag_round_trips() {
        assert!(!Config::from_args(&[]).unwrap().health);
        let cfg = Config::from_args(&["--health".to_string()]).unwrap();
        assert!(cfg.health);
    }

    #[test]
    fn cost_flag_round_trips() {
        assert!(!Config::from_args(&[]).unwrap().cost);
        let cfg = Config::from_args(&["--cost".to_string()]).unwrap();
        assert!(cfg.cost);
    }

    #[test]
    fn json_flag_round_trips() {
        let args: Vec<String> = ["--json", "BENCH_dod.json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let cfg = Config::from_args(&args).unwrap();
        assert_eq!(cfg.json.as_deref(), Some("BENCH_dod.json"));
        assert!(Config::from_args(&["--json".to_string()]).is_err());
    }

    #[test]
    fn bad_args_are_rejected() {
        for bad in [
            vec!["--scale".to_string()],
            vec!["--scale".to_string(), "-1".to_string()],
            vec!["--families".to_string(), "nope".to_string()],
            vec!["--durability".to_string(), "fsync".to_string()],
            vec!["--wat".to_string()],
        ] {
            assert!(Config::from_args(&bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn durability_flag_round_trips() {
        assert!(Config::from_args(&[]).unwrap().durability.is_empty());
        let args: Vec<String> = ["--durability", "none, everyN,always"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let cfg = Config::from_args(&args).unwrap();
        assert_eq!(cfg.durability, vec!["none", "everyN", "always"]);
    }

    #[test]
    fn workload_calibration_hits_target_ratio_ballpark() {
        let cfg = Config {
            scale: 0.1, // small but calibratable
            ..Config::default()
        };
        let w = Workload::prepare(Family::Sift, &cfg);
        let ratio = sampled_outlier_ratio(&w, 200);
        let target = Family::Sift.target_outlier_ratio();
        assert!(
            ratio < target * 8.0 + 0.02,
            "ratio {ratio} far above target {target}"
        );
    }

    #[test]
    fn verify_strategy_matches_paper_assignments() {
        let cfg = Config {
            scale: 0.05,
            ..Config::default()
        };
        for f in [Family::Hepmass, Family::Pamap2, Family::Words] {
            let w = Workload::prepare(f, &cfg);
            assert_eq!(w.verify_strategy(), VerifyStrategy::VpTree);
        }
        let w = Workload::prepare(Family::Sift, &cfg);
        assert_eq!(w.verify_strategy(), VerifyStrategy::Linear);
    }

    #[test]
    fn sample_ids_are_deterministic_prefix_nested() {
        let cfg = Config {
            scale: 0.05,
            ..Config::default()
        };
        let w = Workload::prepare(Family::Glove, &cfg);
        let small = w.sample_ids(0.4, 3);
        let large = w.sample_ids(0.8, 3);
        // Same shuffle, so the smaller sample is a prefix of the larger.
        assert_eq!(&large[..small.len()], &small[..]);
    }
}
