//! Builds the four compared proximity graphs for a workload, with timing.

use crate::workload::Workload;
use dod_graph::mrpg::{self, BuildBreakdown};
use dod_graph::{GraphKind, MrpgParams, ProximityGraph};
use dod_metrics::Dataset;
use std::time::Instant;

/// One built graph plus its construction time.
pub struct BuiltGraph {
    /// The graph.
    pub graph: ProximityGraph,
    /// Construction wall-clock seconds.
    pub build_secs: f64,
    /// Phase decomposition (MRPG kinds only).
    pub breakdown: Option<BuildBreakdown>,
}

/// All four graphs of the paper's comparison.
pub struct BuiltGraphs {
    /// NSW, KGraph, MRPG-basic, MRPG — in the paper's table order.
    pub graphs: Vec<BuiltGraph>,
}

impl BuiltGraphs {
    /// Iterator over `(kind, built)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&GraphKind, &BuiltGraph)> {
        self.graphs.iter().map(|b| (&b.graph.kind, b))
    }

    /// The full MRPG (for experiments that only need the best graph).
    pub fn mrpg(&self) -> &BuiltGraph {
        self.graphs
            .iter()
            .find(|b| b.graph.kind == GraphKind::Mrpg)
            .expect("MRPG is always built")
    }
}

/// MRPG parameters the harness uses for a workload (paper §6 defaults:
/// `K` per family, `K' = 4K`, `m` sized to the outlier budget at the
/// actual cardinality `n` (subsets of a workload pass their own `n`).
pub fn mrpg_params(w: &Workload, n: usize, threads: usize, seed: u64, full: bool) -> MrpgParams {
    let mut p = if full {
        MrpgParams::new(w.degree)
    } else {
        MrpgParams::basic(w.degree)
    };
    p.exact_m = Some(crate::workload::exact_m(w.family, n));
    p.threads = threads;
    p.seed = seed;
    p
}

/// Builds NSW, KGraph, MRPG-basic and MRPG over a dataset.
pub fn build_all_graphs<D: Dataset + ?Sized>(
    data: &D,
    w: &Workload,
    threads: usize,
    seed: u64,
) -> BuiltGraphs {
    let mut graphs = Vec::with_capacity(4);

    let t = Instant::now();
    let nsw = mrpg::build_nsw(data, w.degree, seed);
    graphs.push(BuiltGraph {
        graph: nsw,
        build_secs: t.elapsed().as_secs_f64(),
        breakdown: None,
    });

    let t = Instant::now();
    let kgraph = mrpg::build_kgraph(data, w.degree, threads, seed);
    graphs.push(BuiltGraph {
        graph: kgraph,
        build_secs: t.elapsed().as_secs_f64(),
        breakdown: None,
    });

    let n = data.len();
    let (basic, basic_breakdown) = mrpg::build(data, &mrpg_params(w, n, threads, seed, false));
    graphs.push(BuiltGraph {
        graph: basic,
        build_secs: basic_breakdown.total_secs(),
        breakdown: Some(basic_breakdown),
    });

    let (full, full_breakdown) = mrpg::build(data, &mrpg_params(w, n, threads, seed, true));
    graphs.push(BuiltGraph {
        graph: full,
        build_secs: full_breakdown.total_secs(),
        breakdown: Some(full_breakdown),
    });

    BuiltGraphs { graphs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Config;
    use dod_datasets::Family;

    #[test]
    fn builds_all_four_kinds_in_order() {
        let cfg = Config {
            scale: 0.04,
            ..Config::default()
        };
        let w = Workload::prepare(Family::Glove, &cfg);
        let built = build_all_graphs(&w.data, &w, 2, 0);
        let kinds: Vec<GraphKind> = built.graphs.iter().map(|b| b.graph.kind).collect();
        assert_eq!(
            kinds,
            vec![
                GraphKind::Nsw,
                GraphKind::KGraph,
                GraphKind::MrpgBasic,
                GraphKind::Mrpg
            ]
        );
        assert_eq!(built.mrpg().graph.kind, GraphKind::Mrpg);
        for b in &built.graphs {
            assert!(b.build_secs > 0.0);
            b.graph.assert_invariants();
        }
        // Breakdown present exactly for the MRPG kinds.
        assert!(built.graphs[0].breakdown.is_none());
        assert!(built.graphs[3].breakdown.is_some());
    }
}
