//! CLI driver regenerating the paper's tables and figures, plus the
//! perf-trajectory comparison ritual.
//!
//! ```text
//! experiments <subcommand> [flags]
//!
//! subcommands:
//!   tables | table3..table8 | fig6_7 | fig8_9 | fig10 | ablation |
//!   hnsw | stream | all
//!   compare <baseline.json> <candidate.json> [--threshold F]
//! flags:
//!   --scale <f64>       dataset size multiplier (default 1.0)
//!   --seed <u64>        master seed (default 42)
//!   --threads <usize>   detection threads (default: hardware)
//!   --build-threads <usize>
//!   --families <list>   comma-separated subset of
//!                       deep,glove,hepmass,mnist,pamap2,sift,words
//!   --json <path>       also write machine-readable results (tables,
//!                       stream and stream_sharded rows), e.g.
//!                       BENCH_dod.json / BENCH_stream.json
//!   --shards <list>     stream experiment only: run the sharded async
//!                       pipeline at these shard counts (e.g. 1,2,4)
//!   --trace-summary     tables/stream: print a per-phase time breakdown
//!                       (filter/verify, insert/expiry) after the tables
//!   --health            stream experiment only: run the index-health
//!                       grid (recall-audit overhead, graph-health
//!                       trajectory over a churning stream, shard-balance
//!                       skew), e.g. for BENCH_health.json
//!   --cost              table experiments only: run the query-cost grid
//!                       (distance evaluations by phase, hops, pruning
//!                       power per index spec, counting-hook overhead),
//!                       e.g. for BENCH_cost.json
//!
//! compare diffs two --json artifacts row by row and exits nonzero when
//! any timing metric regressed by more than --threshold (default 0.25,
//! i.e. 25%).
//! ```

use dod_bench::experiments::{self, Which};
use dod_bench::Config;

fn usage() -> ! {
    eprintln!(
        "usage: experiments <tables|table3|table4|table5|table6|table7|table8|\
         fig6_7|fig8_9|fig10|ablation|hnsw|stream|all> [--scale F] [--seed N] \
         [--threads N] [--build-threads N] [--families a,b,c] [--json PATH] \
         [--shards 1,2,4] [--trace-summary] [--health] [--cost]\n       \
         experiments compare <baseline.json> <candidate.json> [--threshold F]"
    );
    std::process::exit(2);
}

fn run_compare(args: &[String]) -> ! {
    let mut paths = Vec::new();
    let mut threshold = 0.25f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => {
                let Some(v) = it.next() else {
                    eprintln!("--threshold expects a value");
                    usage()
                };
                match v.parse::<f64>() {
                    Ok(t) if t >= 0.0 && t.is_finite() => threshold = t,
                    _ => {
                        eprintln!("--threshold must be a non-negative fraction, got {v:?}");
                        usage()
                    }
                }
            }
            p if !p.starts_with("--") => paths.push(p.to_string()),
            other => {
                eprintln!("unknown compare flag {other:?}");
                usage()
            }
        }
    }
    let [a, b] = paths.as_slice() else {
        eprintln!("compare expects exactly two artifact paths");
        usage()
    };
    let read = |p: &str| {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("cannot read {p}: {e}");
            std::process::exit(2);
        })
    };
    match dod_bench::compare::compare(&read(a), &read(b), threshold) {
        Ok(cmp) => {
            println!("# compare {a} -> {b}\n\n{}", cmp.rendered);
            std::process::exit(if cmp.regressions.is_empty() { 0 } else { 1 });
        }
        Err(e) => {
            eprintln!("compare failed: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(sub) = args.first() else { usage() };
    if sub == "compare" {
        run_compare(&args[1..]);
    }
    let Some(which) = Which::parse(sub) else {
        eprintln!("unknown subcommand {sub:?}");
        usage()
    };
    let cfg = match Config::from_args(&args[1..]) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("error: {e}");
            usage()
        }
    };
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    if let Err(e) = experiments::run(&cfg, which, &mut out) {
        eprintln!("experiment failed: {e}");
        std::process::exit(1);
    }
}
