//! CLI driver regenerating the paper's tables and figures.
//!
//! ```text
//! experiments <subcommand> [flags]
//!
//! subcommands:
//!   tables | table3..table8 | fig6_7 | fig8_9 | fig10 | ablation |
//!   hnsw | stream | all
//! flags:
//!   --scale <f64>       dataset size multiplier (default 1.0)
//!   --seed <u64>        master seed (default 42)
//!   --threads <usize>   detection threads (default: hardware)
//!   --build-threads <usize>
//!   --families <list>   comma-separated subset of
//!                       deep,glove,hepmass,mnist,pamap2,sift,words
//!   --json <path>       also write machine-readable results (tables and
//!                       stream rows), e.g. BENCH_dod.json / BENCH_stream.json
//! ```

use dod_bench::experiments::{self, Which};
use dod_bench::Config;

fn usage() -> ! {
    eprintln!(
        "usage: experiments <tables|table3|table4|table5|table6|table7|table8|\
         fig6_7|fig8_9|fig10|ablation|hnsw|stream|all> [--scale F] [--seed N] \
         [--threads N] [--build-threads N] [--families a,b,c] [--json PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(sub) = args.first() else { usage() };
    let Some(which) = Which::parse(sub) else {
        eprintln!("unknown subcommand {sub:?}");
        usage()
    };
    let cfg = match Config::from_args(&args[1..]) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("error: {e}");
            usage()
        }
    };
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    if let Err(e) = experiments::run(&cfg, which, &mut out) {
        eprintln!("experiment failed: {e}");
        std::process::exit(1);
    }
}
