//! `experiments compare a.json b.json` — the perf-trajectory ritual.
//!
//! Diffs two machine-readable `BENCH_*.json` artifacts (as written by
//! `--json`), matching rows by their identity fields and reporting the
//! per-row change of every timing metric. With `--threshold t`, any
//! metric that regressed by more than `t` (fractional, e.g. `0.25` =
//! 25 %) makes the run fail, so CI can diff the current PR's artifact
//! against the previous one and flag slowdowns automatically.
//!
//! JSON parsing is delegated to [`dod_wire`], the workspace's shared
//! wire format (the parser started its life in this module and was
//! promoted when the HTTP serving layer needed the same dialect); this
//! module keeps the artifact-diffing logic on top of it.

use crate::report::Table;
use std::collections::BTreeMap;
use std::fmt::Write as _;

pub use dod_wire::{parse_json, JsonValue as JVal};

/// The timing metrics a row can carry, with their improvement direction.
/// Everything else in a row is identity, except [`INFORMATIONAL`].
const METRICS: &[(&str, Direction)] = &[
    ("detect_secs", Direction::LowerIsBetter),
    ("build_secs", Direction::LowerIsBetter),
    ("total_secs", Direction::LowerIsBetter),
    ("slide_us", Direction::LowerIsBetter),
    ("speedup_vs_batch", Direction::HigherIsBetter),
    ("slides_per_sec", Direction::HigherIsBetter),
    // --cost rows: distance evaluations are deterministic per seed, so a
    // jump means the filter really got worse, not that CI was slow.
    ("dist_evals", Direction::LowerIsBetter),
    ("pruning_power", Direction::HigherIsBetter),
];

/// Fields that are neither identity nor gated metrics: run-dependent
/// observations (ghost replica counts, false-positive tallies). Folding
/// them into the identity key would make rows unmatchable across runs —
/// the exact failure mode a regression gate must not have.
const INFORMATIONAL: &[&str] = &[
    "ghosts",
    "false_positives",
    "overhead_vs_none",
    "fsyncs",
    "wal_bytes",
    // --health observations: auditor tallies, graph-structure gauges and
    // shard-balance skews drift run to run like ghost counts do.
    "audits",
    "audit_overhead",
    "recall_estimate",
    "tombstone_ratio",
    "live",
    "tombstones",
    "compactions",
    "bridge_edges",
    "owned_skew",
    "slide_skew",
    "ghost_rate_max",
    // --cost observations: the phase split rides along with the gated
    // total, and the counting-hook micro-benchmark is pure timer noise.
    "filter_dist_evals",
    "verify_dist_evals",
    "hops",
    "raw_secs",
    "counted_secs",
    "counting_overhead",
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    LowerIsBetter,
    HigherIsBetter,
}

/// One artifact's rows, keyed by their identity fields.
fn rows_by_key(doc: &JVal) -> Result<BTreeMap<String, BTreeMap<String, f64>>, String> {
    let JVal::Obj(fields) = doc else {
        return Err("artifact root must be an object".into());
    };
    let rows = fields
        .iter()
        .find(|(k, _)| k == "rows")
        .map(|(_, v)| v)
        .ok_or("artifact has no \"rows\" array")?;
    let JVal::Arr(rows) = rows else {
        return Err("\"rows\" must be an array".into());
    };
    let is_metric = |k: &str| METRICS.iter().any(|&(m, _)| m == k);
    let mut out = BTreeMap::new();
    for row in rows {
        let JVal::Obj(fields) = row else {
            return Err("row must be an object".into());
        };
        let mut key = String::new();
        let mut metrics = BTreeMap::new();
        for (k, v) in fields {
            if INFORMATIONAL.contains(&k.as_str()) {
                continue;
            }
            match v {
                JVal::Num(x) if is_metric(k) => {
                    metrics.insert(k.clone(), *x);
                }
                JVal::Null if is_metric(k) => {}
                JVal::Num(x) => {
                    let _ = write!(key, "{k}={x} ");
                }
                JVal::Str(s) => {
                    let _ = write!(key, "{k}={s} ");
                }
                _ => {}
            }
        }
        out.insert(key.trim_end().to_string(), metrics);
    }
    Ok(out)
}

/// Outcome of a comparison: the rendered report plus the regressions
/// found above the threshold.
pub struct Comparison {
    /// The Markdown report.
    pub rendered: String,
    /// `(row key, metric)` pairs that regressed beyond the threshold.
    pub regressions: Vec<(String, String)>,
}

/// Diffs two artifacts (`a` = baseline, `b` = candidate). `threshold` is
/// the tolerated fractional regression per metric.
pub fn compare(a_src: &str, b_src: &str, threshold: f64) -> Result<Comparison, String> {
    let a = rows_by_key(&parse_json(a_src).map_err(|e| format!("baseline: {e}"))?)?;
    let b = rows_by_key(&parse_json(b_src).map_err(|e| format!("candidate: {e}"))?)?;

    let mut rendered = String::new();
    let mut regressions = Vec::new();
    let mut t = Table::new([
        "row",
        "metric",
        "baseline",
        "candidate",
        "change",
        "verdict",
    ]);
    let mut compared = 0usize;
    for (key, am) in &a {
        let Some(bm) = b.get(key) else {
            let _ = writeln!(rendered, "- row dropped from candidate: `{key}`");
            continue;
        };
        for &(metric, dir) in METRICS {
            let (Some(&av), Some(&bv)) = (am.get(metric), bm.get(metric)) else {
                continue;
            };
            if !(av.is_finite() && bv.is_finite()) || av <= 0.0 {
                continue;
            }
            compared += 1;
            // Fractional regression: positive = got worse.
            let regression = match dir {
                Direction::LowerIsBetter => bv / av - 1.0,
                Direction::HigherIsBetter => av / bv - 1.0,
            };
            let verdict = if regression > threshold {
                regressions.push((key.clone(), metric.to_string()));
                "REGRESSED"
            } else if regression < -threshold {
                "improved"
            } else {
                "~"
            };
            t.row([
                key.clone(),
                metric.to_string(),
                format!("{av:.6}"),
                format!("{bv:.6}"),
                format!("{:+.1}%", regression * 100.0),
                verdict.to_string(),
            ]);
        }
    }
    for key in b.keys() {
        if !a.contains_key(key) {
            let _ = writeln!(rendered, "- new row in candidate: `{key}`");
        }
    }
    let _ = writeln!(
        rendered,
        "\ncompared {compared} metrics across {} matched rows \
         (threshold {:.0}%):\n\n{}",
        a.iter().filter(|(k, _)| b.contains_key(*k)).count(),
        threshold * 100.0,
        t.render()
    );
    if regressions.is_empty() {
        let _ = writeln!(rendered, "no regressions beyond the threshold.");
    } else {
        let _ = writeln!(
            rendered,
            "{} metric(s) REGRESSED beyond the threshold.",
            regressions.len()
        );
    }
    Ok(Comparison {
        rendered,
        regressions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{JsonReport, JsonVal};

    fn artifact(slide_us: f64, speedup: f64) -> String {
        let mut j = JsonReport::new();
        j.meta("scale", 0.25);
        j.row([
            ("experiment", JsonVal::from("stream")),
            ("engine", JsonVal::from("stream graph")),
            ("n", JsonVal::from(1000usize)),
            ("slide_us", JsonVal::from(slide_us)),
            ("speedup_vs_batch", JsonVal::from(speedup)),
        ]);
        j.render()
    }

    #[test]
    fn round_trips_our_own_artifacts() {
        let doc = parse_json(&artifact(12.5, 8.0)).expect("parse");
        let rows = rows_by_key(&doc).expect("rows");
        assert_eq!(rows.len(), 1);
        let (key, metrics) = rows.iter().next().unwrap();
        assert!(
            key.contains("engine=stream graph") && key.contains("n=1000"),
            "{key}"
        );
        assert_eq!(metrics["slide_us"], 12.5);
        assert_eq!(metrics["speedup_vs_batch"], 8.0);
    }

    #[test]
    fn parser_handles_escapes_null_and_nesting() {
        let v =
            parse_json(r#"{"a": "q\"\\\nA", "b": [1, null, -2.5e-1], "c": true}"#).expect("parse");
        let JVal::Obj(fields) = v else { panic!() };
        assert_eq!(fields[0].1, JVal::Str("q\"\\\nA".into()));
        assert_eq!(
            fields[1].1,
            JVal::Arr(vec![JVal::Num(1.0), JVal::Null, JVal::Num(-0.25)])
        );
        assert_eq!(fields[2].1, JVal::Bool(true));
        assert!(parse_json("{\"a\": 1} trailing").is_err());
        assert!(parse_json("{").is_err());
    }

    #[test]
    fn identical_artifacts_have_no_regressions() {
        let a = artifact(10.0, 8.0);
        let cmp = compare(&a, &a, 0.2).expect("compare");
        assert!(cmp.regressions.is_empty(), "{}", cmp.rendered);
    }

    #[test]
    fn slowdowns_and_speedup_drops_both_regress() {
        // 50% slower slides and a halved speedup: two regressions.
        let cmp = compare(&artifact(10.0, 8.0), &artifact(15.0, 4.0), 0.2).expect("compare");
        assert_eq!(cmp.regressions.len(), 2, "{}", cmp.rendered);
        assert!(cmp.rendered.contains("REGRESSED"));
        // Improvements never trip the threshold.
        let cmp = compare(&artifact(10.0, 8.0), &artifact(5.0, 16.0), 0.2).expect("compare");
        assert!(cmp.regressions.is_empty());
        assert!(cmp.rendered.contains("improved"));
    }

    #[test]
    fn informational_fields_never_enter_the_identity_key() {
        // Two runs of the same config with different ghost counts must
        // still match rows — otherwise the gate compares nothing and
        // silently passes on a real regression.
        let with_ghosts = |ghosts: usize, slide_us: f64| {
            let mut j = JsonReport::new();
            j.row([
                ("experiment", JsonVal::from("stream_sharded")),
                ("shards", JsonVal::from(4usize)),
                ("ghosts", JsonVal::from(ghosts)),
                ("slide_us", JsonVal::from(slide_us)),
            ]);
            j.render()
        };
        let cmp = compare(&with_ghosts(100, 10.0), &with_ghosts(9000, 30.0), 0.2).expect("compare");
        assert_eq!(
            cmp.regressions.len(),
            1,
            "rows must match despite ghost drift:\n{}",
            cmp.rendered
        );
    }

    #[test]
    fn health_observations_never_enter_the_identity_key() {
        // Same --health config, different recall/tombstone/skew readings:
        // the rows must still match so the slide_us gate actually gates.
        let health_row = |recall: f64, skew: f64, slide_us: f64| {
            let mut j = JsonReport::new();
            j.row([
                ("experiment", JsonVal::from("stream_health")),
                ("engine", JsonVal::from("graph audit-on")),
                ("n", JsonVal::from(12000usize)),
                ("recall_estimate", JsonVal::from(recall)),
                ("tombstone_ratio", JsonVal::from(0.01 * skew)),
                ("audit_overhead", JsonVal::from(0.002 * skew)),
                ("owned_skew", JsonVal::from(skew)),
                ("slide_us", JsonVal::from(slide_us)),
            ]);
            j.render()
        };
        let cmp = compare(
            &health_row(1.0, 1.1, 10.0),
            &health_row(0.97, 1.8, 30.0),
            0.2,
        )
        .expect("compare");
        assert_eq!(
            cmp.regressions.len(),
            1,
            "rows must match despite health drift:\n{}",
            cmp.rendered
        );
    }

    #[test]
    fn unmatched_rows_are_noted_not_fatal() {
        let mut j = JsonReport::new();
        j.row([
            ("experiment", JsonVal::from("stream")),
            ("engine", JsonVal::from("other")),
            ("slide_us", JsonVal::from(1.0)),
        ]);
        let cmp = compare(&artifact(10.0, 8.0), &j.render(), 0.2).expect("compare");
        assert!(cmp.rendered.contains("row dropped from candidate"));
        assert!(cmp.rendered.contains("new row in candidate"));
        assert!(cmp.regressions.is_empty());
    }
}
