//! VP-tree vs linear scan: build cost, range counting with early
//! termination, and kNN — the primitives behind the VP-tree baseline and
//! the verification phase.

use criterion::{criterion_group, criterion_main, Criterion};
use dod_datasets::Family;
use dod_metrics::Dataset;
use dod_vptree::VpTree;
use std::hint::black_box;

fn bench_vptree(c: &mut Criterion) {
    let n = 4000;
    let gen = Family::Pamap2.generate(n, 1);
    let data = &gen.data;
    let tree = VpTree::build(data, 0);
    // A radius in the meaningful range: ~ the 20-NN distance of object 0.
    let r = dod_datasets::exact_knn_distance(data, 0, 20);

    let mut g = c.benchmark_group("vptree");
    g.sample_size(20);
    g.bench_function("build_4k_pamap2", |b| {
        b.iter(|| black_box(VpTree::build(data, 0)))
    });
    g.bench_function("range_count_limit20", |b| {
        let mut q = 0;
        b.iter(|| {
            q = (q + 97) % n;
            black_box(tree.range_count(data, q, r, 20))
        })
    });
    g.bench_function("range_count_unlimited", |b| {
        let mut q = 0;
        b.iter(|| {
            q = (q + 97) % n;
            black_box(tree.range_count(data, q, r, usize::MAX))
        })
    });
    g.bench_function("linear_scan_count_limit20", |b| {
        let mut q = 0;
        b.iter(|| {
            q = (q + 97) % n;
            let mut count = 0;
            for j in 0..n {
                if j != q && data.dist(q, j) <= r {
                    count += 1;
                    if count >= 20 {
                        break;
                    }
                }
            }
            black_box(count)
        })
    });
    g.bench_function("knn_10", |b| {
        let mut q = 0;
        b.iter(|| {
            q = (q + 97) % n;
            black_box(tree.knn(data, q, 10))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_vptree);
criterion_main!(benches);
