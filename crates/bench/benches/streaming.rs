//! Streaming slide cost: incremental maintenance (both `StreamIndex`
//! backends) vs per-slide batch re-detection, at the acceptance workload
//! n=4000, W=1024.
//!
//! Each timed iteration is one *slide*: ingest the next point of a
//! drift/burst stream into a pre-warmed window and answer "current
//! outliers". The batch baseline answers the same question by re-running
//! the randomized nested loop over a window snapshot. The final
//! `speedup_summary` "benchmark" feeds the whole stream through all three
//! engines and prints the end-to-end ratio the acceptance criterion asks
//! for (incremental ≥ 5x cheaper than batch).

use criterion::{criterion_group, criterion_main, Criterion};
use dod_bench::BatchSlideBaseline;
use dod_core::{DodParams, Query};
use dod_datasets::{calibrate_r, StreamScenario};
use dod_metrics::{VectorSet, L2};
use dod_stream::{Backend, GraphParams, StreamDetector, VectorSpace, WindowSpec};
use std::hint::black_box;

const N: usize = 4000;
const W: usize = 1024;
const DIM: usize = 8;
const K: usize = 8;

fn workload() -> (Vec<Vec<f32>>, f64) {
    let points = StreamScenario::new(DIM).generate(N, 42);
    let prefix = VectorSet::from_rows(&points[..W], L2);
    let r = calibrate_r(&prefix, K, 0.01, 400, 7);
    (points, r)
}

fn warmed_detector(
    points: &[Vec<f32>],
    r: f64,
    backend: Backend,
) -> StreamDetector<VectorSpace<L2>> {
    let mut det = StreamDetector::open(
        VectorSpace::new(L2, DIM),
        Query::new(r, K).expect("calibrated query is valid"),
        WindowSpec::Count(W),
        backend,
    )
    .expect("valid stream parameters");
    for p in &points[..W] {
        det.insert(p.clone());
    }
    det
}

fn bench_slides(c: &mut Criterion) {
    let (points, r) = workload();
    let mut g = c.benchmark_group("streaming_slide_n4000_w1024");
    g.sample_size(10);

    for (name, backend) in [
        ("incremental_exhaustive", Backend::Exhaustive),
        ("incremental_graph", Backend::Graph(GraphParams::default())),
    ] {
        let mut det = warmed_detector(&points, r, backend);
        let mut i = W;
        g.bench_function(name, |b| {
            b.iter(|| {
                det.insert(points[i % N].clone());
                i += 1;
                black_box(det.outliers())
            })
        });
    }

    {
        let mut baseline = BatchSlideBaseline::new(W, DodParams::new(r, K), 0);
        for p in &points[..W] {
            baseline.slide(p);
        }
        let mut i = W;
        g.bench_function("batch_per_slide", |b| {
            b.iter(|| {
                let out = baseline.slide(&points[i % N]);
                i += 1;
                black_box(out)
            })
        });
    }
    g.finish();
}

/// Not a micro-benchmark: one full pass of the stream through every
/// engine, printing the end-to-end speedup (this is the ≥5x acceptance
/// number).
fn speedup_summary(_c: &mut Criterion) {
    let (points, r) = workload();

    let t0 = std::time::Instant::now();
    let mut baseline = BatchSlideBaseline::new(W, DodParams::new(r, K), 0);
    let mut batch_out = 0usize;
    for p in &points {
        batch_out += baseline.slide(p).len();
    }
    let batch_secs = t0.elapsed().as_secs_f64();

    println!("\n== streaming end-to-end (n={N}, W={W}, r={r:.4}, k={K}) ==");
    println!(
        "batch_per_slide              {batch_secs:>9.3}s total ({:.0} us/slide, {batch_out} outlier-slides)",
        batch_secs / N as f64 * 1e6
    );
    for (name, backend) in [
        ("incremental_exhaustive", Backend::Exhaustive),
        ("incremental_graph", Backend::Graph(GraphParams::default())),
    ] {
        let mut det = StreamDetector::open(
            VectorSpace::new(L2, DIM),
            Query::new(r, K).expect("calibrated query is valid"),
            WindowSpec::Count(W),
            backend,
        )
        .expect("valid stream parameters");
        let t0 = std::time::Instant::now();
        let mut out = 0usize;
        for p in &points {
            det.insert(p.clone());
            out += det.outliers().len();
        }
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(out, batch_out, "{name} disagrees with batch");
        println!(
            "{name:<28} {secs:>9.3}s total ({:.0} us/slide) -> {:.1}x cheaper than batch",
            secs / N as f64 * 1e6,
            batch_secs / secs
        );
    }
}

criterion_group!(benches, bench_slides, speedup_summary);
criterion_main!(benches);
