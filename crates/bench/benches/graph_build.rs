//! Graph-construction benchmark: one entry per column of the paper's
//! Table 3, on a reduced glove-like workload.

use criterion::{criterion_group, criterion_main, Criterion};
use dod_datasets::Family;
use dod_graph::mrpg;
use dod_graph::MrpgParams;
use std::hint::black_box;

fn bench_builds(c: &mut Criterion) {
    let n = 2000;
    let gen = Family::Glove.generate(n, 3);
    let data = &gen.data;
    let k = 16; // reduced degree to keep criterion iterations snappy

    let mut g = c.benchmark_group("graph_build_glove2k");
    g.sample_size(10);
    g.bench_function("nsw", |b| b.iter(|| black_box(mrpg::build_nsw(data, k, 0))));
    g.bench_function("kgraph_nndescent", |b| {
        b.iter(|| black_box(mrpg::build_kgraph(data, k, 2, 0)))
    });
    g.bench_function("mrpg_basic", |b| {
        let mut p = MrpgParams::basic(k);
        p.threads = 2;
        b.iter(|| black_box(mrpg::build(data, &p)))
    });
    g.bench_function("mrpg_full", |b| {
        let mut p = MrpgParams::new(k);
        p.threads = 2;
        b.iter(|| black_box(mrpg::build(data, &p)))
    });
    g.finish();
}

criterion_group!(benches, bench_builds);
criterion_main!(benches);
