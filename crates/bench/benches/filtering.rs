//! Filtering-phase benchmark: Greedy-Counting cost per object on each
//! proximity graph (the quantity Table 8 decomposes), plus the exact-K\'
//! shortcut path.

use criterion::{criterion_group, criterion_main, Criterion};
use dod_core::{greedy_count, TraversalBuffer};
use dod_datasets::{calibrate_r, Family};
use dod_graph::mrpg;
use dod_graph::MrpgParams;
use std::hint::black_box;

fn bench_filtering(c: &mut Criterion) {
    let n = 4000;
    let gen = Family::Sift.generate(n, 5);
    let data = &gen.data;
    let k = Family::Sift.default_k();
    let r = calibrate_r(data, k, Family::Sift.target_outlier_ratio(), 200, 1);

    let kgraph = mrpg::build_kgraph(data, 16, 2, 0);
    let mut params = MrpgParams::new(16);
    params.threads = 2;
    let (mrpg_graph, _) = mrpg::build(data, &params);

    let mut g = c.benchmark_group("greedy_counting_sift4k");
    g.sample_size(20);
    for (name, graph) in [("kgraph", &kgraph), ("mrpg", &mrpg_graph)] {
        g.bench_function(name, |b| {
            let mut buf = TraversalBuffer::new(n);
            let mut q = 0;
            b.iter(|| {
                q = (q + 131) % n;
                black_box(greedy_count(graph, data, q, r, k, &mut buf))
            })
        });
    }
    // The shortcut path for exact-K' nodes (no graph walk at all).
    let exact_ids: Vec<u32> = mrpg_graph.exact.keys().copied().collect();
    assert!(!exact_ids.is_empty());
    g.bench_function("exact_shortcut", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % exact_ids.len();
            let e = &mrpg_graph.exact[&exact_ids[i]];
            black_box(e.dists.partition_point(|&d| d <= r))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_filtering);
criterion_main!(benches);
