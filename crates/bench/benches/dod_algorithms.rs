//! Full-detection benchmark: one entry per column of the paper's Table 5,
//! on a reduced glove-like workload. Index construction happens outside
//! the timed region, matching the paper's offline/online split.

use criterion::{criterion_group, criterion_main, Criterion};
use dod_bench::{build_all_graphs, Config, Workload};
use dod_core::{dolphin, nested_loop, snif, DodParams, Engine, IndexSpec, Query};
use dod_datasets::Family;
use std::hint::black_box;

fn bench_algorithms(c: &mut Criterion) {
    let cfg = Config {
        scale: 0.25, // 3000 glove-like objects
        ..Config::default()
    };
    let w = Workload::prepare(Family::Glove, &cfg);
    let params = DodParams::new(w.r, w.k).with_threads(2);
    let query = Query::new(w.r, w.k)
        .expect("calibrated query")
        .with_threads(2);
    let built = build_all_graphs(&w.data, &w, 2, 0);
    let vp = Engine::builder(&w.data)
        .index(IndexSpec::VpTree)
        .threads(2)
        .build()
        .expect("vptree engine");

    let mut g = c.benchmark_group("detection_glove3k");
    g.sample_size(10);
    g.bench_function("nested_loop", |b| {
        b.iter(|| black_box(nested_loop::detect(&w.data, &params, 0)))
    });
    g.bench_function("snif", |b| {
        b.iter(|| black_box(snif::detect(&w.data, &params, 0)))
    });
    g.bench_function("dolphin", |b| {
        b.iter(|| black_box(dolphin::detect(&w.data, &params, 0)))
    });
    g.bench_function("vptree", |b| {
        b.iter(|| black_box(vp.query(query).expect("query")))
    });
    for built_graph in built.graphs {
        let name = match built_graph.graph.kind {
            dod_graph::GraphKind::Nsw => "graph_nsw",
            dod_graph::GraphKind::KGraph => "graph_kgraph",
            dod_graph::GraphKind::MrpgBasic => "graph_mrpg_basic",
            dod_graph::GraphKind::Mrpg => "graph_mrpg",
        };
        let engine = Engine::builder(&w.data)
            .prebuilt_graph(built_graph.graph)
            .verify(w.verify_strategy())
            .threads(2)
            .build()
            .expect("graph engine");
        g.bench_function(name, |b| {
            b.iter(|| black_box(engine.query(query).expect("query")))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
