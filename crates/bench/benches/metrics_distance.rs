//! Microbenchmark: distance-function throughput at the paper's Table 1
//! dimensionalities. Distance evaluations are the cost unit of every DOD
//! algorithm, so these numbers calibrate all other results.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dod_metrics::{edit_distance, Angular, Dataset, VectorMetric, VectorSet, L1, L2, L4};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_pair(dim: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let b = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
    (a, b)
}

fn bench_metrics(c: &mut Criterion) {
    let mut g = c.benchmark_group("distance");
    g.sample_size(30);

    let (a, b) = random_pair(96, 1);
    g.bench_function("l2_96d_deep", |bench| {
        bench.iter(|| black_box(L2.dist(black_box(&a), black_box(&b))))
    });
    let (a, b) = random_pair(27, 2);
    g.bench_function("l1_27d_hepmass", |bench| {
        bench.iter(|| black_box(L1.dist(black_box(&a), black_box(&b))))
    });
    let (a, b) = random_pair(784, 3);
    g.bench_function("l4_784d_mnist", |bench| {
        bench.iter(|| black_box(L4.dist(black_box(&a), black_box(&b))))
    });
    let (a, b) = random_pair(128, 4);
    g.bench_function("l2_128d_sift", |bench| {
        bench.iter(|| black_box(L2.dist(black_box(&a), black_box(&b))))
    });

    // Angular goes through the dataset so rows are pre-normalized.
    let set = VectorSet::from_rows(&[random_pair(25, 5).0, random_pair(25, 6).1], Angular);
    g.bench_function("angular_25d_glove", |bench| {
        bench.iter(|| black_box(set.dist(black_box(0), black_box(1))))
    });

    let mut rng = StdRng::seed_from_u64(7);
    let word = |len: usize, rng: &mut StdRng| -> Vec<u8> {
        (0..len).map(|_| b'a' + rng.gen_range(0..26u8)).collect()
    };
    let (wa, wb) = (word(12, &mut rng), word(12, &mut rng));
    g.bench_function("edit_12x12_words", |bench| {
        bench.iter(|| black_box(edit_distance(black_box(&wa), black_box(&wb))))
    });
    let (wa, wb) = (word(45, &mut rng), word(45, &mut rng));
    g.bench_function("edit_45x45_words_tail", |bench| {
        bench.iter_batched(
            || (wa.clone(), wb.clone()),
            |(a, b)| black_box(edit_distance(&a, &b)),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
