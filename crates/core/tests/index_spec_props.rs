//! Property tests for the [`IndexSpec`] wire spelling: every spec the
//! wire can express round-trips through `Display` → `FromStr` without
//! losing the variant or the degree.

use dod_core::IndexSpec;

use proptest::prelude::*;

proptest! {
    /// `parse(display(parse(s)))` preserves structure for every
    /// wire-expressible spec, and `display` is a fixed point after one
    /// canonicalization.
    #[test]
    fn wire_spelling_round_trips(kind in 0usize..5, degree in 1usize..512, bare in 0usize..2) {
        let bare = bare == 1;
        let spelled = match (kind, bare) {
            (0, true) => "mrpg".to_string(),
            (0, false) => format!("mrpg:{degree}"),
            (1, true) => "nsw".to_string(),
            (1, false) => format!("nsw:{degree}"),
            (2, true) => "kgraph".to_string(),
            (2, false) => format!("kgraph:{degree}"),
            (3, _) => "vptree".to_string(),
            _ => "none".to_string(),
        };
        let spec: IndexSpec = spelled.parse().expect("valid spelling");
        let canonical = spec.to_string();
        let reparsed: IndexSpec = canonical.parse().expect("canonical spelling");
        // One round canonicalizes; after that, display∘parse is identity.
        prop_assert_eq!(&reparsed.to_string(), &canonical);
        // The variant and the effective degree survive the trip.
        let degree_of = |s: &IndexSpec| match s {
            IndexSpec::Mrpg(p) => Some(p.k),
            IndexSpec::Nsw { degree } | IndexSpec::KGraph { degree } => Some(*degree),
            _ => None,
        };
        prop_assert_eq!(degree_of(&spec), degree_of(&reparsed));
        prop_assert_eq!(
            std::mem::discriminant(&spec),
            std::mem::discriminant(&reparsed)
        );
        if !bare && kind < 3 {
            prop_assert_eq!(degree_of(&spec), Some(degree));
        }
    }

    /// Garbage never panics: it is either a typed `InvalidSpec` or (for
    /// the few lucky strings) a valid spec that re-displays canonically.
    #[test]
    fn arbitrary_strings_never_panic(s in "[a-z0-9:._ -]{0,20}") {
        match s.parse::<IndexSpec>() {
            Ok(spec) => {
                let canonical = spec.to_string();
                prop_assert_eq!(canonical.parse::<IndexSpec>().unwrap().to_string(), canonical);
            }
            Err(e) => {
                let typed = matches!(e, dod_core::DodError::InvalidSpec { .. });
                prop_assert!(typed, "unexpected error kind: {}", e);
            }
        }
    }
}
